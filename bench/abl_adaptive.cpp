// Ablation: adaptive delta selection (§3 adaptability) — ship the smaller
// of the ed-script and block-move encodings, at the cost of computing
// both. Compares bytes and CPU across workload shapes: scattered line
// edits (ed's home turf), moved blocks and binary-ish content (where line
// diffs fall apart).
#include <chrono>
#include <cstdio>

#include "core/workload.hpp"
#include "diff/diff.hpp"
#include "util/rng.hpp"

using namespace shadow;

namespace {

struct Row {
  std::size_t bytes;
  double micros;
};

template <typename F>
Row measure(F&& compute) {
  const auto t0 = std::chrono::steady_clock::now();
  const diff::Delta d = compute();
  const auto t1 = std::chrono::steady_clock::now();
  return Row{d.wire_size(),
             std::chrono::duration<double, std::micro>(t1 - t0).count()};
}

}  // namespace

int main() {
  const std::string text_base = core::make_file(100'000, 1);
  std::string scattered = core::modify_percent(text_base, 5, 2);
  std::string moved = text_base.substr(text_base.size() / 3) +
                      text_base.substr(0, text_base.size() / 3);
  Rng rng(3);
  const Bytes raw = rng.bytes(100'000);
  const std::string binary_base(raw.begin(), raw.end());
  std::string binary_edit = binary_base;
  binary_edit.insert(30'000, "spliced-binary-patch");

  struct Case {
    const char* name;
    const std::string* base;
    const std::string* target;
  };
  const Case cases[] = {
      {"5% scattered line edits", &text_base, &scattered},
      {"block move (1/3 rotated)", &text_base, &moved},
      {"binary splice", &binary_base, &binary_edit},
  };

  std::printf("=== Ablation: adaptive delta selection (100k inputs) ===\n");
  std::printf("%-26s %14s %14s %14s   %s\n", "workload", "ed-script-B",
              "block-move-B", "adaptive-B", "adaptive cost");
  for (const auto& c : cases) {
    const Row ed = measure([&] {
      return diff::Delta::compute(*c.base, *c.target,
                                  diff::Algorithm::kHuntMcIlroy);
    });
    const Row bm = measure([&] {
      return diff::Delta::compute(*c.base, *c.target,
                                  diff::Algorithm::kBlockMove);
    });
    const Row ad = measure(
        [&] { return diff::Delta::compute_adaptive(*c.base, *c.target); });
    std::printf("%-26s %14zu %14zu %14zu   %.1f ms (vs %.1f + %.1f)\n",
                c.name, ed.bytes, bm.bytes, ad.bytes, ad.micros / 1000.0,
                ed.micros / 1000.0, bm.micros / 1000.0);
  }
  std::printf("\nexpected: adaptive always matches the better column — "
              "ed-script bytes on line edits, block-move bytes on moves "
              "and binary content — for roughly the summed CPU of both "
              "algorithms. At 9600 baud, one avoided 30 KB delta buys "
              "~25 s; the extra milliseconds of CPU are noise.\n");
  return 0;
}
