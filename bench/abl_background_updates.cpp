// Ablation (paper §5.1): "With caching, we can send updates in the
// background rather than waiting for the user to submit the job again
// ... the changes could be sent in the background while the user is
// modifying the second file."
//
// Two files are edited with realistic think time between sessions, then a
// job over both is submitted. With background updates the transfers
// overlap the editing; without, everything queues behind the submit.
// The metric the user feels: submit-to-results latency.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

namespace {

double run(bool background, double think_seconds) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  system.add_server(sc);
  system.add_client("ws");
  system.add_client("_unused");  // keep topologies identical
  system.connect("ws", "super", sim::LinkConfig::cypress_9600());
  system.settle();

  auto& client = system.client("ws");
  client.env().background_updates = background;
  auto& editor = system.editor("ws");

  // Editing session 1, then think time, session 2, then think time.
  (void)editor.create("/home/user/a.f", core::make_file(30'000, 1));
  system.simulator().run_until(system.simulator().now() +
                               sim::from_seconds(think_seconds));
  (void)editor.create("/home/user/b.f", core::make_file(30'000, 2));
  system.simulator().run_until(system.simulator().now() +
                               sim::from_seconds(think_seconds));

  // Submit and measure what the user waits for.
  bool done = false;
  sim::SimTime t_done = 0;
  client.on_job_output([&](const client::JobView&) {
    done = true;
    t_done = system.simulator().now();
  });
  const sim::SimTime t0 = system.simulator().now();
  client::ShadowClient::SubmitOptions opts;
  opts.files = {"/home/user/a.f", "/home/user/b.f"};
  opts.command_file = "cat a.f b.f > all\nwc all\n";
  auto token = client.submit(opts);
  system.settle();
  if (!token.ok() || !done) {
    std::fprintf(stderr, "cycle failed\n");
    return -1;
  }
  return sim::to_seconds(t_done - t0);
}

}  // namespace

int main() {
  std::printf("=== Ablation: background updates (paper 5.1 concurrency) "
              "===\n");
  std::printf("two 30k files edited with think time, then one job over "
              "both; Cypress 9600\n\n");
  std::printf("%-12s %28s %28s\n", "think-time", "submit latency (bg ON)",
              "submit latency (bg OFF)");
  for (double think : {0.0, 15.0, 30.0, 60.0}) {
    const double on = run(true, think);
    const double off = run(false, think);
    std::printf("%9.0f s %26.1f s %26.1f s\n", think, on, off);
  }
  std::printf("\nexpected: with background updates ON the submit latency "
              "falls as think time grows (transfers overlap editing) until "
              "it bottoms out at job+output cost; with updates OFF the "
              "user always waits for both full transfers after submit.\n");
  return 0;
}
