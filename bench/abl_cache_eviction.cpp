// Ablation (paper §5.1): "It allows the remote host to decide how much
// disk space should be used for caching ... and also which files should
// be removed from the cache first."
//
// A working set larger than the cache budget is edited and resubmitted
// round-robin; we compare eviction policies on hit rate and the extra
// full transfers the misses cost.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

namespace {

struct Report {
  double delta_share = 0;  // fraction of refreshes served as deltas
  u64 evictions = 0;
  u64 full_transfers = 0;
  u64 delta_transfers = 0;
  u64 payload_bytes = 0;
  bool all_jobs_ok = true;
};

Report run(cache::EvictionPolicy policy, u64 budget, int files, int rounds) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  sc.cache_budget = budget;
  sc.eviction = policy;
  system.add_server(sc);
  system.add_client("ws");
  system.connect("ws", "super", sim::LinkConfig::cypress_9600());
  system.settle();

  auto& editor = system.editor("ws");
  auto& client = system.client("ws");
  Report report;

  std::vector<std::string> contents(static_cast<std::size_t>(files));
  for (int round = 0; round < rounds; ++round) {
    for (int f = 0; f < files; ++f) {
      auto& content = contents[static_cast<std::size_t>(f)];
      content = (round == 0)
                    ? core::make_file(10'000, static_cast<u64>(f))
                    : core::modify_percent(content, 3,
                                           static_cast<u64>(round * 31 + f));
      const std::string path = "/home/user/f" + std::to_string(f);
      (void)editor.create(path, content);
      client::ShadowClient::SubmitOptions opts;
      opts.files = {path};
      opts.command_file = "wc f" + std::to_string(f) + "\n";
      auto token = client.submit(opts);
      system.settle();
      if (!token.ok() || !client.job_done(token.value())) {
        report.all_jobs_ok = false;
      }
    }
  }

  const auto& cache_stats = system.server("super").file_cache().stats();
  const auto& server_stats = system.server("super").stats();
  const u64 refreshes =
      server_stats.full_transfers + server_stats.delta_transfers;
  report.delta_share =
      refreshes == 0 ? 0
                     : static_cast<double>(server_stats.delta_transfers) /
                           static_cast<double>(refreshes);
  report.evictions = cache_stats.evictions;
  report.full_transfers = server_stats.full_transfers;
  report.delta_transfers = server_stats.delta_transfers;
  report.payload_bytes = system.total_payload_bytes();
  return report;
}

}  // namespace

int main() {
  constexpr u64 kBudget = 40'000;  // holds ~4 of the 8 hot files
  constexpr int kFiles = 8;
  constexpr int kRounds = 4;
  std::printf("=== Ablation: cache eviction policies (paper 5.1 best-effort "
              "cache) ===\n");
  std::printf("%d files x 10k, budget %llu (so ~half fit), %d edit+submit "
              "rounds\n\n",
              kFiles, static_cast<unsigned long long>(kBudget), kRounds);
  std::printf("%-16s %9s %10s %8s %8s %14s %6s\n", "policy", "delta-sh",
              "evictions", "full-tx", "delta-tx", "payload-B", "ok");
  for (auto policy :
       {cache::EvictionPolicy::kLru, cache::EvictionPolicy::kFifo,
        cache::EvictionPolicy::kLargestFirst}) {
    const Report r = run(policy, kBudget, kFiles, kRounds);
    std::printf("%-16s %8.1f%% %10llu %8llu %8llu %14llu %6s\n",
                cache::eviction_policy_name(policy), r.delta_share * 100.0,
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.full_transfers),
                static_cast<unsigned long long>(r.delta_transfers),
                static_cast<unsigned long long>(r.payload_bytes),
                r.all_jobs_ok ? "yes" : "NO");
  }
  std::printf("\nunbounded-cache reference:\n");
  const Report ref = run(cache::EvictionPolicy::kLru, 0, kFiles, kRounds);
  std::printf("%-16s %8.1f%% %10llu %8llu %8llu %14llu %6s\n", "unlimited",
              ref.delta_share * 100.0,
              static_cast<unsigned long long>(ref.evictions),
              static_cast<unsigned long long>(ref.full_transfers),
              static_cast<unsigned long long>(ref.delta_transfers),
              static_cast<unsigned long long>(ref.payload_bytes),
              ref.all_jobs_ok ? "yes" : "NO");
  std::printf("\nexpected: every policy completes all jobs (best-effort "
              "never breaks correctness); eviction turns would-be deltas "
              "into full transfers (delta share drops, bytes rise); "
              "unlimited cache = all deltas, minimum bytes.\n");
  return 0;
}
