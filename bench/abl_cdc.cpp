// CDC codec ablation (docs/DELTAS.md): bytes on the wire, encode/apply
// CPU time and server resident state for the content-defined chunking
// codec against the line-diff codecs and full transfer, on the workloads
// the crossover policy routes to each — a 1% in-place edit of a multi-MB
// binary checkpoint (CDC's home turf, where line diffs degrade to full
// transfer) and the same edit rate on large structured text (where the
// classic codecs are already good).
//
// google-benchmark binary, exported to BENCH_cdc.json. wire_bytes and
// resident_state_bytes are attached as counters; vs_full_x is the
// full-transfer-bytes / codec-bytes ratio (the tracked claim: >= 5x for
// CDC on the binary edit).
#include <benchmark/benchmark.h>

#include <string>

#include "cdc/cdc_delta.hpp"
#include "cdc/signature.hpp"
#include "core/workload.hpp"
#include "diff/diff.hpp"

namespace {

using shadow::cdc::CdcDelta;
using shadow::cdc::ChunkerParams;
using shadow::cdc::Signature;
using shadow::cdc::signature_of;
using shadow::core::make_binary_file;
using shadow::core::make_structured_file;
using shadow::core::modify_percent;
using shadow::core::overwrite_percent;
using shadow::diff::Algorithm;
using shadow::diff::Delta;

constexpr std::size_t kBinaryBytes = 4 * 1024 * 1024;
constexpr std::size_t kTextBytes = 2 * 1024 * 1024;

const std::string& binary_base() {
  static const std::string base = make_binary_file(kBinaryBytes, 42);
  return base;
}

std::string binary_edited(double percent) {
  return overwrite_percent(binary_base(), percent, 7);
}

const std::string& text_base() {
  static const std::string base = make_structured_file(kTextBytes, 42);
  return base;
}

std::string text_edited(double percent) {
  return modify_percent(text_base(), percent, 7);
}

void attach(benchmark::State& state, std::size_t wire_bytes,
            std::size_t resident_bytes, std::size_t target_bytes) {
  state.counters["wire_bytes"] =
      benchmark::Counter(static_cast<double>(wire_bytes));
  state.counters["resident_state_bytes"] =
      benchmark::Counter(static_cast<double>(resident_bytes));
  state.counters["vs_full_x"] = benchmark::Counter(
      wire_bytes > 0
          ? static_cast<double>(target_bytes) / static_cast<double>(wire_bytes)
          : 0.0);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(target_bytes));
}

/// CDC encode: chunk-delta the target against the base's signature (all
/// the client holds when answering a digest-hinted pull).
void run_cdc_encode(benchmark::State& state, const std::string& base,
                    const std::string& target) {
  const Signature base_sig = signature_of(base, ChunkerParams{});
  std::size_t wire = 0;
  for (auto _ : state) {
    const CdcDelta d = CdcDelta::compute(base_sig, target);
    wire = d.wire_size();
    benchmark::DoNotOptimize(wire);
  }
  // Server residency for this file under CDC: the digests, not the bytes.
  attach(state, wire, signature_of(target, ChunkerParams{}).digest_bytes(),
         target.size());
}

/// Line-diff encode via the delta envelope (what a legacy codec ships).
void run_line_encode(benchmark::State& state, Algorithm algo,
                     const std::string& base, const std::string& target) {
  std::size_t wire = 0;
  for (auto _ : state) {
    const Delta d = Delta::compute(base, target, algo);
    wire = d.wire_size();
    benchmark::DoNotOptimize(wire);
  }
  // A line-diffing server must keep the full content resident.
  attach(state, wire, target.size(), target.size());
}

/// Full transfer: the no-codec baseline both families are measured against.
void run_full(benchmark::State& state, const std::string& target) {
  std::size_t wire = 0;
  for (auto _ : state) {
    const Delta d = Delta::make_full(target);
    wire = d.wire_size();
    benchmark::DoNotOptimize(wire);
  }
  attach(state, wire, target.size(), target.size());
}

// ---- binary checkpoint, in-place edits ---------------------------------

void BM_Cdc_Encode_Binary4M_1pct(benchmark::State& s) {
  run_cdc_encode(s, binary_base(), binary_edited(1));
}
void BM_Cdc_Encode_Binary4M_10pct(benchmark::State& s) {
  run_cdc_encode(s, binary_base(), binary_edited(10));
}
void BM_HuntMcIlroy_Encode_Binary4M_1pct(benchmark::State& s) {
  run_line_encode(s, Algorithm::kHuntMcIlroy, binary_base(),
                  binary_edited(1));
}
void BM_Tichy_Encode_Binary4M_1pct(benchmark::State& s) {
  run_line_encode(s, Algorithm::kBlockMove, binary_base(),
                  binary_edited(1));
}
void BM_Full_Binary4M(benchmark::State& s) { run_full(s, binary_edited(1)); }

// ---- structured text, line edits ---------------------------------------

void BM_Cdc_Encode_Text2M_1pct(benchmark::State& s) {
  run_cdc_encode(s, text_base(), text_edited(1));
}
void BM_HuntMcIlroy_Encode_Text2M_1pct(benchmark::State& s) {
  run_line_encode(s, Algorithm::kHuntMcIlroy, text_base(), text_edited(1));
}
void BM_Myers_Encode_Text2M_1pct(benchmark::State& s) {
  run_line_encode(s, Algorithm::kMyers, text_base(), text_edited(1));
}
void BM_Full_Text2M(benchmark::State& s) { run_full(s, text_edited(1)); }

// ---- receive side -------------------------------------------------------

/// Content-mode apply: rebuild target bytes from base bytes + delta (what
/// a client does when a CDC update lands).
void BM_Cdc_Apply_Binary4M_1pct(benchmark::State& s) {
  const std::string target = binary_edited(1);
  const Signature base_sig = signature_of(binary_base(), ChunkerParams{});
  const CdcDelta d = CdcDelta::compute(base_sig, target);
  for (auto _ : s) {
    auto applied = d.apply(binary_base());
    benchmark::DoNotOptimize(applied);
  }
  attach(s, d.wire_size(), signature_of(target, ChunkerParams{}).digest_bytes(),
         target.size());
}

/// Digest-only advance: what the SERVER does instead of apply — O(ops)
/// digest bookkeeping, no content bytes touched. The gap between this and
/// apply is the per-update CPU the digest-only cache saves.
void BM_Cdc_SignatureAdvance_Binary4M_1pct(benchmark::State& s) {
  const std::string target = binary_edited(1);
  const Signature base_sig = signature_of(binary_base(), ChunkerParams{});
  const CdcDelta d = CdcDelta::compute(base_sig, target);
  for (auto _ : s) {
    auto advanced = d.signature_after(base_sig);
    benchmark::DoNotOptimize(advanced);
  }
  attach(s, d.wire_size(), signature_of(target, ChunkerParams{}).digest_bytes(),
         target.size());
}

}  // namespace

BENCHMARK(BM_Cdc_Encode_Binary4M_1pct);
BENCHMARK(BM_Cdc_Encode_Binary4M_10pct);
BENCHMARK(BM_HuntMcIlroy_Encode_Binary4M_1pct);
BENCHMARK(BM_Tichy_Encode_Binary4M_1pct);
BENCHMARK(BM_Full_Binary4M);
BENCHMARK(BM_Cdc_Encode_Text2M_1pct);
BENCHMARK(BM_HuntMcIlroy_Encode_Text2M_1pct);
BENCHMARK(BM_Myers_Encode_Text2M_1pct);
BENCHMARK(BM_Full_Text2M);
BENCHMARK(BM_Cdc_Apply_Binary4M_1pct);
BENCHMARK(BM_Cdc_SignatureAdvance_Binary4M_1pct);

BENCHMARK_MAIN();
