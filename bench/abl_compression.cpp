// Ablation (paper §8.3): "We also plan to explore data compression
// techniques to improve the efficiency of data transfer."
//
// Measures codec throughput (google-benchmark) and prints an
// end-to-end table: bytes on the wire and 9600-baud transfer seconds for
// full files and for deltas, with each codec.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compress/compress.hpp"
#include "core/workload.hpp"
#include "diff/diff.hpp"

namespace {

using shadow::Bytes;
using shadow::compress::Codec;
using shadow::core::modify_percent;

// Structured records compress; make_file's uniform randomness would not.
Bytes text_file() {
  const std::string f = shadow::core::make_structured_file(100'000, 11);
  return Bytes(f.begin(), f.end());
}

Bytes delta_bytes() {
  const std::string base = shadow::core::make_structured_file(100'000, 11);
  const std::string edited = modify_percent(base, 10, 5);
  const auto d = shadow::diff::Delta::compute(
      base, edited, shadow::diff::Algorithm::kHuntMcIlroy);
  shadow::BufWriter w;
  d.encode(w);
  return w.take();
}

void run_codec(benchmark::State& state, Codec codec, const Bytes& input) {
  std::size_t out_size = 0;
  for (auto _ : state) {
    const Bytes packed = shadow::compress::compress(input, codec);
    out_size = packed.size();
    benchmark::DoNotOptimize(packed.data());
  }
  state.counters["in_bytes"] =
      benchmark::Counter(static_cast<double>(input.size()));
  state.counters["out_bytes"] =
      benchmark::Counter(static_cast<double>(out_size));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}

void BM_Rle_File(benchmark::State& s) { run_codec(s, Codec::kRle, text_file()); }
void BM_Lz77_File(benchmark::State& s) {
  run_codec(s, Codec::kLz77, text_file());
}
void BM_Rle_Delta(benchmark::State& s) {
  run_codec(s, Codec::kRle, delta_bytes());
}
void BM_Lz77_Delta(benchmark::State& s) {
  run_codec(s, Codec::kLz77, delta_bytes());
}
void BM_Lz77_Decompress(benchmark::State& s) {
  const Bytes packed = shadow::compress::compress(text_file(), Codec::kLz77);
  for (auto _ : s) {
    auto out = shadow::compress::decompress(packed);
    benchmark::DoNotOptimize(out.ok());
  }
  s.SetBytesProcessed(static_cast<int64_t>(s.iterations()) * 100'000);
}

BENCHMARK(BM_Rle_File);
BENCHMARK(BM_Lz77_File);
BENCHMARK(BM_Rle_Delta);
BENCHMARK(BM_Lz77_Delta);
BENCHMARK(BM_Lz77_Decompress);

void print_wire_table() {
  const double baud = 9600.0;
  std::printf("\n=== Bytes on the wire & 9600-baud seconds ===\n");
  std::printf("%-22s %10s %10s %14s\n", "payload", "raw-B", "packed-B",
              "seconds@9600");
  struct Row {
    const char* name;
    Bytes data;
  };
  const Row rows[] = {
      {"full file (100k)", text_file()},
      {"10%-edit ed delta", delta_bytes()},
  };
  for (const auto& row : rows) {
    for (Codec codec : {Codec::kStored, Codec::kRle, Codec::kLz77}) {
      const Bytes packed = shadow::compress::compress(row.data, codec);
      char name[64];
      std::snprintf(name, sizeof(name), "%s/%s", row.name,
                    shadow::compress::codec_name(codec));
      std::printf("%-22s %10zu %10zu %14.1f\n", name, row.data.size(),
                  packed.size(), packed.size() * 8.0 / baud);
    }
  }
  std::printf("expected: lz77 shrinks text ~2-3x; deltas (already mostly "
              "fresh text) compress less; compression stacks with "
              "shadowing rather than replacing it.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_wire_table();
  return 0;
}
