// Ablation: trunk contention — a whole department behind ONE 9600-baud
// leased line (§2.1: the supercomputer "is likely to be swamped with
// several such remote login and file transfer sessions"; Cypress was
// precisely a shared capillary into the backbone).
//
// K scientists each edit a 30 KB input (staggered by think time) and then
// everyone submits. We measure when the LAST scientist gets results, for
// shadow editing vs a conventional RJE (no cache, transfers at submit).
#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

namespace {

double run(int k, bool shadow_mode) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  if (!shadow_mode) sc.cache_budget = 1;  // conventional: caches nothing
  system.add_server(sc);
  std::vector<std::string> names;
  for (int i = 0; i < k; ++i) {
    const std::string name = "ws" + std::to_string(i);
    client::ShadowEnvironment env;
    env.background_updates = shadow_mode;
    system.add_client(name, env);
    names.push_back(name);
  }
  system.connect_shared(names, "super", sim::LinkConfig::cypress_9600());
  system.settle();

  // First round: everyone's file reaches the server once (both systems
  // pay this; it is not what we measure).
  std::vector<std::string> contents(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    contents[static_cast<std::size_t>(i)] =
        core::make_file(30'000, static_cast<u64>(i));
    (void)system.editor(names[static_cast<std::size_t>(i)])
        .create("/home/user/f", contents[static_cast<std::size_t>(i)]);
    client::ShadowClient::SubmitOptions job;
    job.files = {"/home/user/f"};
    job.command_file = "wc f\n";
    (void)system.client(names[static_cast<std::size_t>(i)]).submit(job);
  }
  system.settle();

  // The measured round: staggered 2%-edits (5 minutes of thinking apart),
  // then everyone submits at once.
  for (int i = 0; i < k; ++i) {
    auto& content = contents[static_cast<std::size_t>(i)];
    content = core::modify_percent(content, 2, static_cast<u64>(100 + i));
    (void)system.editor(names[static_cast<std::size_t>(i)])
        .edit("/home/user/f", [&](const std::string&) { return content; });
    system.simulator().run_until(system.simulator().now() +
                                 sim::from_seconds(300));
  }
  int remaining = k;
  sim::SimTime last_done = system.simulator().now();
  const sim::SimTime t0 = system.simulator().now();
  for (int i = 0; i < k; ++i) {
    auto& client = system.client(names[static_cast<std::size_t>(i)]);
    client.on_job_output([&](const client::JobView&) {
      --remaining;
      last_done = system.simulator().now();
    });
    client::ShadowClient::SubmitOptions job;
    job.files = {"/home/user/f"};
    job.command_file = "wc f\n";
    (void)client.submit(job);
  }
  system.settle();
  if (remaining != 0) std::fprintf(stderr, "jobs missing!\n");
  return sim::to_seconds(last_done - t0);
}

}  // namespace

int main() {
  std::printf("=== Ablation: trunk contention — K scientists, ONE 9600-baud "
              "line ===\n");
  std::printf("staggered 2%% edits on 30k inputs, then simultaneous "
              "resubmits; time until the LAST result arrives\n\n");
  std::printf("%4s %24s %24s %10s\n", "K", "conventional RJE (s)",
              "shadow editing (s)", "advantage");
  for (int k : {1, 2, 4, 8}) {
    const double conventional = run(k, false);
    const double shadow_time = run(k, true);
    std::printf("%4d %24.1f %24.1f %9.1fx\n", k, conventional, shadow_time,
                conventional / shadow_time);
  }
  std::printf("\nexpected: conventional resubmits serialize K full files "
              "through the shared line (latency grows ~linearly in K); "
              "shadow deltas are small enough that even the K=8 burst "
              "clears in seconds — and most transfers already happened "
              "inside the think time.\n");
  return 0;
}
