// Ablation (paper §8.3): "There are different algorithms proposed to
// compute the differences between two files [MM85, Tic84]. We will study
// these algorithms and adopt the one that offers better performance."
//
// Compares Hunt–McIlroy (the prototype's algorithm), Myers O(ND)
// (Miller–Myers), and Tichy block-move on CPU time and delta size across
// edit patterns. google-benchmark binary; delta sizes are attached as
// counters, and a summary table prints at exit.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "core/workload.hpp"
#include "diff/diff.hpp"

namespace {

using shadow::core::make_file;
using shadow::core::modify_percent;
using shadow::diff::Algorithm;
using shadow::diff::Delta;

constexpr std::size_t kFileSize = 100'000;

std::string base_file() { return make_file(kFileSize, 42); }

// Scattered small edits (the paper's primary workload).
std::string scattered(double percent) {
  return modify_percent(base_file(), percent, 7);
}

// A block move: the pattern Tichy wins on and line-LCS handles poorly.
std::string block_moved() {
  const std::string b = base_file();
  return b.substr(b.size() / 3) + b.substr(0, b.size() / 3);
}

void run_algo(benchmark::State& state, Algorithm algo,
              const std::string& target) {
  const std::string base = base_file();
  std::size_t delta_bytes = 0;
  for (auto _ : state) {
    const Delta d = Delta::compute(base, target, algo);
    delta_bytes = d.wire_size();
    benchmark::DoNotOptimize(delta_bytes);
  }
  state.counters["delta_bytes"] =
      benchmark::Counter(static_cast<double>(delta_bytes));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFileSize));
}

void BM_HuntMcIlroy_1pct(benchmark::State& s) {
  run_algo(s, Algorithm::kHuntMcIlroy, scattered(1));
}
void BM_HuntMcIlroy_10pct(benchmark::State& s) {
  run_algo(s, Algorithm::kHuntMcIlroy, scattered(10));
}
void BM_HuntMcIlroy_50pct(benchmark::State& s) {
  run_algo(s, Algorithm::kHuntMcIlroy, scattered(50));
}
void BM_HuntMcIlroy_BlockMove(benchmark::State& s) {
  run_algo(s, Algorithm::kHuntMcIlroy, block_moved());
}
void BM_Myers_1pct(benchmark::State& s) {
  run_algo(s, Algorithm::kMyers, scattered(1));
}
void BM_Myers_10pct(benchmark::State& s) {
  run_algo(s, Algorithm::kMyers, scattered(10));
}
void BM_Myers_50pct(benchmark::State& s) {
  run_algo(s, Algorithm::kMyers, scattered(50));
}
void BM_Myers_BlockMove(benchmark::State& s) {
  run_algo(s, Algorithm::kMyers, block_moved());
}
void BM_Tichy_1pct(benchmark::State& s) {
  run_algo(s, Algorithm::kBlockMove, scattered(1));
}
void BM_Tichy_10pct(benchmark::State& s) {
  run_algo(s, Algorithm::kBlockMove, scattered(10));
}
void BM_Tichy_50pct(benchmark::State& s) {
  run_algo(s, Algorithm::kBlockMove, scattered(50));
}
void BM_Tichy_BlockMove(benchmark::State& s) {
  run_algo(s, Algorithm::kBlockMove, block_moved());
}

BENCHMARK(BM_HuntMcIlroy_1pct);
BENCHMARK(BM_HuntMcIlroy_10pct);
BENCHMARK(BM_HuntMcIlroy_50pct);
BENCHMARK(BM_HuntMcIlroy_BlockMove);
BENCHMARK(BM_Myers_1pct);
BENCHMARK(BM_Myers_10pct);
BENCHMARK(BM_Myers_50pct);
BENCHMARK(BM_Myers_BlockMove);
BENCHMARK(BM_Tichy_1pct);
BENCHMARK(BM_Tichy_10pct);
BENCHMARK(BM_Tichy_50pct);
BENCHMARK(BM_Tichy_BlockMove);

void print_size_table() {
  std::printf("\n=== Delta sizes (bytes) on a %zu-byte file ===\n",
              kFileSize);
  std::printf("%-14s %12s %12s %12s %12s\n", "algorithm", "1%-edit",
              "10%-edit", "50%-edit", "block-move");
  const Algorithm algos[] = {Algorithm::kHuntMcIlroy, Algorithm::kMyers,
                             Algorithm::kBlockMove};
  const std::string base = base_file();
  const std::string targets[] = {scattered(1), scattered(10), scattered(50),
                                 block_moved()};
  for (Algorithm algo : algos) {
    std::printf("%-14s", shadow::diff::algorithm_name(algo));
    for (const auto& target : targets) {
      std::printf(" %12zu", Delta::compute(base, target, algo).wire_size());
    }
    std::printf("\n");
  }
  std::printf("expected: block-move delta tiny only for Tichy; ed-script "
              "algorithms treat a move as delete+insert.\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Machine-readable output (bench/bench_to_json.sh -> BENCH_diff.json)
  // must stay pure JSON, so the human-oriented table is suppressed then.
  bool json_output = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark_format=json") == 0) {
      json_output = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_output) print_size_table();
  return 0;
}
