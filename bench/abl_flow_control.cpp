// Ablation (paper §5.2): demand-driven vs request-driven data flow.
//
// N clients edit files concurrently against one server over slow links.
// The request-driven baseline pushes every update immediately; the
// demand-driven server pulls on its own schedule with a bounded number of
// outstanding pulls. We report the §5.2 claims: update requests are short
// in the demand model, the server controls its inflow (deferred pulls
// instead of a growing unsolicited backlog), and total bytes match once
// the system quiesces.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

namespace {

struct RunReport {
  u64 total_payload_bytes = 0;
  double quiesce_seconds = 0;
  u64 unsolicited = 0;
  u64 deferred_pulls = 0;
  u64 updates = 0;
  double notify_cost = 0;  // bytes on wire per editing session, pre-pull
};

RunReport run(client::FlowMode mode, int clients, int edits_per_client) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  sc.max_outstanding_pulls = 4;
  system.add_server(sc);

  std::vector<sim::Link*> links;
  for (int c = 0; c < clients; ++c) {
    const std::string name = "ws" + std::to_string(c);
    auto& cl = system.add_client(name);
    cl.env().flow = mode;
    links.push_back(
        &system.connect(name, "super", sim::LinkConfig::cypress_9600()));
  }
  system.settle();

  // Everyone edits everything in a burst — the §5.2 overrun scenario.
  for (int e = 0; e < edits_per_client; ++e) {
    for (int c = 0; c < clients; ++c) {
      const std::string name = "ws" + std::to_string(c);
      const std::string path = "/home/user/f" + std::to_string(e);
      auto st = system.editor(name).edit(path, [&](const std::string&) {
        return core::make_file(20'000,
                               static_cast<u64>(c * 100 + e));
      });
      if (!st.ok()) std::fprintf(stderr, "edit failed\n");
    }
  }
  const sim::SimTime t0 = system.simulator().now();
  system.settle();

  RunReport report;
  report.quiesce_seconds = sim::to_seconds(system.simulator().now() - t0);
  report.total_payload_bytes = system.total_payload_bytes();
  auto& st = system.server("super").stats();
  report.unsolicited = st.unsolicited_updates;
  report.deferred_pulls = st.pulls_deferred;
  report.updates = st.updates_received;
  return report;
}

}  // namespace

int main() {
  std::printf("=== Ablation: demand-driven vs request-driven flow "
              "(paper 5.2) ===\n");
  std::printf("4 clients x 6 edited 20k files, Cypress links, pull window "
              "4\n\n");
  std::printf("%-18s %14s %12s %14s %12s %12s\n", "mode", "payload-B",
              "quiesce-s", "unsolicited", "deferred", "updates");
  for (auto mode : {client::FlowMode::kDemandDriven,
                    client::FlowMode::kRequestDriven}) {
    const RunReport r = run(mode, 4, 6);
    std::printf("%-18s %14llu %12.1f %14llu %12llu %12llu\n",
                client::flow_mode_name(mode),
                static_cast<unsigned long long>(r.total_payload_bytes),
                r.quiesce_seconds,
                static_cast<unsigned long long>(r.unsolicited),
                static_cast<unsigned long long>(r.deferred_pulls),
                static_cast<unsigned long long>(r.updates));
  }
  std::printf("\nexpected (5.2): demand-driven shows zero unsolicited "
              "inflow and nonzero deferred pulls (the server is pacing "
              "its intake); request-driven shows every update arriving "
              "unsolicited with nothing the server can do about it. "
              "Total bytes are comparable — flow control is about WHO "
              "controls timing, not volume.\n");
  return 0;
}
