// Ablation: the shadow advantage across line speeds (paper §2.2 and §8.1
// both argue the point: slow lines motivate the design, but "the utility
// of our system is not limited to networks using low-speed lines" — and
// one day lines get fast enough that the workstation's diff CPU becomes
// the bottleneck).
//
// Sweeps line rate from 1200 baud to 10 Mbps for a fixed workload (100 KB
// file, 5% edit) and reports F-time, S-time and the speedup. The
// crossover question: at what speed does shadow processing stop paying?
#include <cstdio>

#include "figure_common.hpp"

using namespace shadow;

int main() {
  // The line roster is the shared preset table in src/sim/link.cpp — the
  // same names the scenario specs (docs/SCENARIOS.md) resolve, so this
  // sweep and a population-scale run always agree on what a "modem-56k"
  // is.
  std::printf("=== Ablation: speedup vs line speed (100k file, 5%% edit) "
              "===\n");
  std::printf("workstation diff throughput fixed at 100 KB/s "
              "(1987-class CPU)\n\n");
  std::printf("%-20s %12s %12s %10s\n", "line", "F-time(s)", "S-time(s)",
              "speedup");
  for (const auto& preset : sim::link_presets()) {
    const sim::LinkConfig config = preset.make();
    const auto point = bench::run_point(config, 100'000, 5, 7);
    std::printf("%-20s %12.1f %12.1f %9.1fx\n", preset.name, point.f_time,
                point.s_time, point.speedup());
  }
  std::printf("\nexpected: the speedup is largest on the slowest lines "
              "(transfer dominates), decays as bandwidth grows, and "
              "approaches ~1x once the line outruns the workstation's "
              "diff computation — on a 10 Mbps LAN, 1987-vintage shadow "
              "processing no longer pays. The paper's niche (long-haul "
              "1200 baud - 56 kbps) is exactly where the win lives.\n");
  return 0;
}
