// Overload ablation: goodput and p99 submit->output latency as offered
// load sweeps past the executor's capacity, with shedding off vs on.
//
// 8 workstations submit fixed-cost jobs (burn 100000 abstract ops at
// 1e6 ops/s of simulated CPU = 100 ms/job; 2 concurrent executor slots
// = 20 jobs/s capacity) at a configured aggregate rate for 20 simulated
// seconds, plus a 2 s grace window.
//
//   shed=0 — no budgets: every submit is accepted. Past saturation the
//     backlog (and thus the p99 latency of what does complete) grows
//     with the offered load; goodput pins at capacity.
//   shed=1 — --max-active-jobs 8: submits past the budget are answered
//     ServerBusy + retry-after, and the clients re-submit after their
//     jittered backoff. Goodput still pins at capacity, but p99 stays
//     near (queue depth / drain rate) no matter how hard it is driven —
//     the excess queues politely at the clients.
//
// The simulation is deterministic, so the numbers are stable across
// runs; google-benchmark is used only as the export harness
// (->Iterations(1)), and BENCH_overload.json is written by
// bench/bench_to_json.sh. See docs/OPERATIONS.md.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/workload.hpp"
#include "util/logging.hpp"

namespace {

using namespace shadow;

constexpr int kClients = 8;
constexpr double kWindowSeconds = 20.0;
constexpr double kGraceSeconds = 2.0;
constexpr u64 kBurnOps = 100'000;        // 100 ms at 1e6 ops/s
constexpr std::size_t kExecutorSlots = 2;  // capacity = 20 jobs/s

void BM_OverloadSweep(benchmark::State& state) {
  const double offered = static_cast<double>(state.range(0));  // jobs/s
  const bool shed = state.range(1) != 0;

  double goodput = 0.0, p50_ms = 0.0, p99_ms = 0.0;
  u64 completed = 0, submitted = 0, busy_replies = 0, retries = 0;

  for (auto _ : state) {
    core::ShadowSystem system;
    server::ServerConfig sc;
    sc.name = "super";
    sc.cpu_ops_per_second = 1e6;
    sc.max_concurrent_jobs = kExecutorSlots;
    if (shed) {
      sc.overload.max_active_jobs = 8;
      sc.overload.retry_after_usec = 200'000;
    }
    system.add_server(sc);
    std::vector<std::string> names;
    for (int i = 0; i < kClients; ++i) {
      const std::string name = "ws" + std::to_string(i);
      system.add_client(name);
      system.connect(name, "super", sim::LinkConfig::arpanet_56k());
      names.push_back(name);
    }
    system.settle();

    // One tiny input each, cached before the measured window: the sweep
    // loads the job queue, not the transfer path.
    for (const auto& name : names) {
      (void)system.editor(name).create("/home/user/in",
                                       core::make_file(100, 7));
    }
    system.settle();

    const sim::SimTime t0 = system.simulator().now();
    const sim::SimTime t_end =
        t0 + sim::from_seconds(kWindowSeconds + kGraceSeconds);
    std::vector<u64> submit_at(static_cast<std::size_t>(kClients * 4096), 0);
    std::vector<double> latencies;
    for (int i = 0; i < kClients; ++i) {
      system.client(names[static_cast<std::size_t>(i)])
          .on_job_output([&, i](const client::JobView& view) {
            const u64 at =
                submit_at[static_cast<std::size_t>(i) * 4096 + view.token];
            const sim::SimTime now = system.simulator().now();
            if (at == 0 || now > t_end) return;
            ++completed;
            latencies.push_back(sim::to_seconds(now - at) * 1e3);
          });
    }

    // Deterministic arrivals: kClients interleaved streams at the
    // aggregate rate, staggered so no two clients submit in lockstep.
    const double interval = static_cast<double>(kClients) / offered;
    for (int i = 0; i < kClients; ++i) {
      auto* cl = &system.client(names[static_cast<std::size_t>(i)]);
      double at = interval * static_cast<double>(i) /
                  static_cast<double>(kClients);
      while (at < kWindowSeconds) {
        system.simulator().schedule(sim::from_seconds(at), [&, cl, i] {
          client::ShadowClient::SubmitOptions job;
          job.files = {"/home/user/in"};
          job.command_file = "burn " + std::to_string(kBurnOps) + "\n";
          auto token = cl->submit(job);
          if (!token.ok() || token.value() >= 4096) return;
          ++submitted;
          submit_at[static_cast<std::size_t>(i) * 4096 + token.value()] =
              system.simulator().now();
        });
        at += interval;
      }
    }
    system.simulator().run_until(t_end);

    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
      p50_ms = latencies[latencies.size() / 2];
      p99_ms = latencies[latencies.size() * 99 / 100];
    }
    goodput = static_cast<double>(latencies.size()) /
              (kWindowSeconds + kGraceSeconds);
    for (const auto& name : names) {
      const auto& cs = system.client(name).stats();
      busy_replies += cs.server_busy;
      retries += cs.busy_retries;
    }
  }

  state.counters["offered_jobs_per_sec"] = benchmark::Counter(offered);
  state.counters["shed"] = benchmark::Counter(shed ? 1.0 : 0.0);
  state.counters["goodput_jobs_per_sec"] = benchmark::Counter(goodput);
  state.counters["p50_latency_ms"] = benchmark::Counter(p50_ms);
  state.counters["p99_latency_ms"] = benchmark::Counter(p99_ms);
  state.counters["submitted"] =
      benchmark::Counter(static_cast<double>(submitted));
  state.counters["completed"] =
      benchmark::Counter(static_cast<double>(completed));
  state.counters["busy_replies"] =
      benchmark::Counter(static_cast<double>(busy_replies));
  state.counters["busy_retries"] =
      benchmark::Counter(static_cast<double>(retries));
}

BENCHMARK(BM_OverloadSweep)
    ->ArgsProduct({{10, 20, 40, 80}, {0, 1}})
    ->ArgNames({"offered", "shed"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  shadow::Logger::instance().set_level(shadow::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
