// Durability-cost ablation: what does crash consistency charge per
// operation? Journal appends (the per-acknowledgment cost, over both the
// in-memory storage model and the real filesystem with genuine fsyncs),
// group commit vs sync-per-record acknowledgment throughput at 1/32/1024
// simulated writers (the headline: one fsync amortized over a batch),
// raw journal scanning, and full server recovery (snapshot restore +
// journal replay + orphan requeue) as a function of journal length.
// google-benchmark binary; exported to BENCH_persist.json by
// bench/bench_to_json.sh.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "core/workload.hpp"
#include "net/loopback.hpp"
#include "persist/durable_store.hpp"
#include "persist/storage.hpp"
#include "persist/wal.hpp"
#include "server/shadow_server.hpp"
#include "util/logging.hpp"
#include "vfs/cluster.hpp"

namespace {

using namespace shadow;

// A representative cached-shadow record: a ~2 KB payload, the dominant
// record type in an editing session.
Bytes sample_body() {
  const std::string content = core::make_file(2'000, 9);
  BufWriter w;
  w.put_string("bench-domain/11");
  w.put_varint(7);
  w.put_string(content);
  return w.take();
}

void BM_JournalAppendMem(benchmark::State& state) {
  persist::MemDir dir;
  persist::DurableStore store(&dir, /*compact_every=*/1u << 30);
  const Bytes body = sample_body();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.append(persist::RecordType::kShadowCached, body).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(body.size()));
}

void BM_JournalAppendFs(benchmark::State& state) {
  // The real cost of the durability promise: every append fsyncs. Run in
  // a temp directory; expect this to be wildly slower than MemDir — that
  // gap IS the measurement.
  const auto root =
      std::filesystem::temp_directory_path() / "shadow_bench_persist";
  std::filesystem::remove_all(root);
  persist::FsDir dir(root.string());
  persist::DurableStore store(&dir, /*compact_every=*/1u << 30);
  const Bytes body = sample_body();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.append(persist::RecordType::kShadowCached, body).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(body.size()));
  std::filesystem::remove_all(root);
}

// ---- group commit vs sync-per-record ----
//
// Each iteration models one commit window at N concurrent writers: N
// records arrive, then the server acknowledges all of them. Sync-per-
// record pays N fsyncs; group commit stages the N records and pays one
// fsync per sealed batch (the byte cap can seal mid-window at 1024
// writers — that is the real policy, not a benchmark artifact).
// items_per_second IS acks/sec.

void BM_SyncPerRecordAcksFs(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const auto root =
      std::filesystem::temp_directory_path() / "shadow_bench_gc_sync";
  std::filesystem::remove_all(root);
  persist::FsDir dir(root.string());
  persist::DurableStore store(&dir, /*compact_every=*/1u << 30);
  const Bytes body = sample_body();
  for (auto _ : state) {
    for (int w = 0; w < writers; ++w) {
      benchmark::DoNotOptimize(
          store.append(persist::RecordType::kShadowCached, body).ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * writers);
  std::filesystem::remove_all(root);
}

void BM_GroupCommitAcksFs(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const auto root =
      std::filesystem::temp_directory_path() / "shadow_bench_gc_group";
  std::filesystem::remove_all(root);
  persist::FsDir dir(root.string());
  persist::DurableStore store(&dir, /*compact_every=*/1u << 30);
  persist::GroupCommitConfig gc;
  gc.window_us = 1'000'000;  // the loop closes every window explicitly
  store.set_group_commit(gc);
  const Bytes body = sample_body();
  int64_t acked = 0;
  auto on_durable = [&acked](const Status& st) {
    if (st.ok()) ++acked;
  };
  for (auto _ : state) {
    for (int w = 0; w < writers; ++w) {
      benchmark::DoNotOptimize(
          store
              .append_deferred(persist::RecordType::kShadowCached, body,
                               on_durable)
              .ok());
    }
    benchmark::DoNotOptimize(store.flush().ok());
  }
  state.SetItemsProcessed(acked);
  state.counters["fsyncs_per_window"] = benchmark::Counter(
      static_cast<double>(store.stats().group_flushes) /
      static_cast<double>(state.iterations()));
  std::filesystem::remove_all(root);
}

void BM_GroupCommitPipelinedAcksFs(benchmark::State& state) {
  // Same window model with the pipeline worker: the batch fsync runs on
  // a second thread while this one frames + CRCs the next window's
  // records into the parked buffer.
  const int writers = static_cast<int>(state.range(0));
  const auto root =
      std::filesystem::temp_directory_path() / "shadow_bench_gc_pipe";
  std::filesystem::remove_all(root);
  int64_t acked = 0;
  {
    persist::FsDir dir(root.string());
    persist::DurableStore store(&dir, /*compact_every=*/1u << 30);
    persist::GroupCommitConfig gc;
    gc.window_us = 1'000'000;
    gc.pipeline = true;
    store.set_group_commit(gc);
    const Bytes body = sample_body();
    auto on_durable = [&acked](const Status& st) {
      if (st.ok()) ++acked;
    };
    for (auto _ : state) {
      for (int w = 0; w < writers; ++w) {
        benchmark::DoNotOptimize(
            store
                .append_deferred(persist::RecordType::kShadowCached, body,
                                 on_durable)
                .ok());
      }
      benchmark::DoNotOptimize(store.flush().ok());
    }
    store.wait_idle();
  }
  state.SetItemsProcessed(acked);
  std::filesystem::remove_all(root);
}

void BM_GroupCommitWindow0Fs(benchmark::State& state) {
  // The compatibility guarantee, measured: window=0 append_deferred must
  // cost what classic append costs (same writes, same fsync-per-record).
  const auto root =
      std::filesystem::temp_directory_path() / "shadow_bench_gc_w0";
  std::filesystem::remove_all(root);
  persist::FsDir dir(root.string());
  persist::DurableStore store(&dir, /*compact_every=*/1u << 30);
  persist::GroupCommitConfig gc;  // window_us == 0
  store.set_group_commit(gc);
  const Bytes body = sample_body();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store
            .append_deferred(persist::RecordType::kShadowCached, body,
                             [](const Status&) {})
            .ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  std::filesystem::remove_all(root);
}

void BM_ReplayScan(benchmark::State& state) {
  // Raw journal scan throughput at recovery time.
  const int records = static_cast<int>(state.range(0));
  BufWriter w;
  w.put_raw(persist::journal_header());
  const Bytes body = sample_body();
  for (int i = 0; i < records; ++i) {
    w.put_raw(persist::frame_record(persist::RecordType::kShadowCached, body));
  }
  const Bytes journal = w.take();
  for (auto _ : state) {
    const auto scan = persist::scan_journal(journal);
    benchmark::DoNotOptimize(scan.records.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(journal.size()));
  state.counters["journal_bytes"] =
      benchmark::Counter(static_cast<double>(journal.size()));
}

/// Populate a MemDir with the durable droppings of a real editing
/// session: `edits` rounds of a client editing a 4 KB file against a
/// journaling server.
void populate_disk(persist::MemDir& disk, int edits) {
  persist::DurableStore store(&disk, /*compact_every=*/1u << 30);
  vfs::Cluster cluster;
  (void)cluster.add_host("ws").mkdir_p("/home/user");
  server::ServerConfig sc;
  sc.name = "super";
  server::ShadowServer server(sc, nullptr, &store);
  (void)server.recover_from_storage();
  client::ShadowEnvironment env;
  client::ShadowClient client("ws", env, &cluster, "bench-domain");
  client::ShadowEditor editor(&client, &cluster);
  auto pair = net::make_loopback_pair("ws", "super");
  server.attach(pair.b.get());
  client.connect("super", pair.a.get());
  net::pump(pair);
  std::string content = core::make_file(4'000, 17);
  (void)editor.create("/home/user/f", content);
  net::pump(pair);
  for (int i = 0; i < edits; ++i) {
    content = core::modify_percent(content, 5.0, 1000 + i);
    (void)editor.create("/home/user/f", content);
    net::pump(pair);
  }
}

void BM_ServerRecovery(benchmark::State& state) {
  // End-to-end recovery: construct a fresh server over the survived disk
  // and replay it back to serving state. Recovery itself compacts (it
  // folds the replay into a snapshot and truncates the journal), so the
  // disk is restored between iterations — every iteration replays the
  // same full journal.
  persist::MemDir disk;
  populate_disk(disk, static_cast<int>(state.range(0)));
  const Bytes journal_image =
      disk.read(persist::DurableStore::kJournalName).value_or(Bytes{});
  u64 recovered = 0;
  for (auto _ : state) {
    persist::DurableStore store(&disk, /*compact_every=*/1u << 30);
    server::ServerConfig sc;
    sc.name = "super";
    server::ShadowServer server(sc, nullptr, &store);
    benchmark::DoNotOptimize(server.recover_from_storage().ok());
    recovered = server.stats().recovered_records;
    state.PauseTiming();
    (void)disk.write_atomic(persist::DurableStore::kJournalName,
                            journal_image);
    if (disk.exists(persist::DurableStore::kSnapshotName)) {
      (void)disk.remove(persist::DurableStore::kSnapshotName);
    }
    state.ResumeTiming();
  }
  state.counters["records"] =
      benchmark::Counter(static_cast<double>(recovered));
}

BENCHMARK(BM_JournalAppendMem);
BENCHMARK(BM_JournalAppendFs);
BENCHMARK(BM_SyncPerRecordAcksFs)->Arg(1)->Arg(32)->Arg(1024);
BENCHMARK(BM_GroupCommitAcksFs)->Arg(1)->Arg(32)->Arg(1024);
BENCHMARK(BM_GroupCommitPipelinedAcksFs)->Arg(1)->Arg(32)->Arg(1024);
BENCHMARK(BM_GroupCommitWindow0Fs);
BENCHMARK(BM_ReplayScan)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_ServerRecovery)->Arg(16)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  shadow::Logger::instance().set_level(shadow::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
