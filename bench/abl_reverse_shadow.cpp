// Ablation (paper §8.3): reverse shadow processing — "cache the output on
// the supercomputer, and, next time the same job is run, send the
// differences between the current output and the previous output".
//
// A job with large output (sorting the data file) is re-run after
// progressively larger input edits; we compare output-leg bytes with
// reverse shadow off/on, and with LZ77 stacked on top.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

namespace {

struct Report {
  u64 output_bytes = 0;     // JobOutput payload bytes over all runs
  u64 delta_hits = 0;
  double total_seconds = 0; // end-to-end time of all cycles
};

Report run(bool reverse_shadow, compress::Codec codec,
           const std::vector<double>& edit_percents) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  sc.reverse_shadow = reverse_shadow;
  sc.output_codec = codec;
  system.add_server(sc);
  system.add_client("ws");
  system.connect("ws", "super", sim::LinkConfig::cypress_9600());
  system.settle();

  auto& editor = system.editor("ws");
  auto& client = system.client("ws");
  // Structured records: realistic scientific data that actually
  // compresses, so the codec rows are meaningful.
  std::string content = core::make_structured_file(60'000, 1);

  const sim::SimTime t0 = system.simulator().now();
  int round = 0;
  for (double percent : edit_percents) {
    if (round++ > 0) {
      content = core::modify_percent(content, percent,
                                     static_cast<u64>(round));
    }
    (void)editor.create("/home/user/data.f", content);
    client::ShadowClient::SubmitOptions opts;
    opts.files = {"/home/user/data.f"};
    opts.command_file = "sort data.f\n";
    opts.output_path = "/home/user/sorted.out";
    opts.error_path = "/home/user/sorted.err";
    auto token = client.submit(opts);
    system.settle();
    if (!token.ok() || !client.job_done(token.value())) {
      std::fprintf(stderr, "cycle failed\n");
    }
  }

  Report report;
  report.output_bytes = system.server("super").stats().output_bytes;
  report.delta_hits = system.server("super").stats().output_delta_hits;
  report.total_seconds = sim::to_seconds(system.simulator().now() - t0);
  return report;
}

}  // namespace

int main() {
  // First run plus re-runs after 0.5/2/5 percent input edits.
  const std::vector<double> percents = {0, 0.5, 2, 5};
  std::printf("=== Ablation: reverse shadow processing (paper 8.3) ===\n");
  std::printf("job 'sort data.f' on a 60k file, re-run after small edits; "
              "output ~= input size\n\n");
  std::printf("%-34s %14s %10s %12s\n", "configuration", "output-B",
              "delta-hits", "total-s");
  struct Config {
    const char* name;
    bool reverse;
    compress::Codec codec;
  };
  const Config configs[] = {
      {"baseline (full output each run)", false, compress::Codec::kStored},
      {"reverse shadow", true, compress::Codec::kStored},
      {"reverse shadow + lz77", true, compress::Codec::kLz77},
      {"lz77 only", false, compress::Codec::kLz77},
  };
  for (const auto& config : configs) {
    const Report r = run(config.reverse, config.codec, percents);
    std::printf("%-34s %14llu %10llu %12.1f\n", config.name,
                static_cast<unsigned long long>(r.output_bytes),
                static_cast<unsigned long long>(r.delta_hits),
                r.total_seconds);
  }
  std::printf("\nexpected: reverse shadow cuts output bytes several-fold on "
              "re-runs (3 of 4 runs ship deltas); compression stacks for "
              "further savings; the combination wins.\n");
  return 0;
}
