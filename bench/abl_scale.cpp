// Population-scale sweep: the scenario harness driven programmatically
// over population size x workload mix, exporting p50/p99 submit latency,
// acks/sec, bytes saved and shed rate per configuration.
//
// Three mixes (matching the canned examples/*.scn library):
//   flash  — everyone submits inside one short window (overload path)
//   heavy  — continuous edit-submit cycles (steady-state delta traffic)
//   mixed  — 9600-baud labs + lossy 56k modems + modern WAN share shards
//
// Each configuration is ONE deterministic replay (the simulation is a
// pure function of the spec + seed); google-benchmark is only the export
// harness (->Iterations(1)), and BENCH_scale.json is written by
// bench/bench_to_json.sh with provenance stamps. See docs/SCENARIOS.md.
#include <benchmark/benchmark.h>

#include <string>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "util/logging.hpp"

namespace {

using namespace shadow;
using scenario::HostClass;
using scenario::Scenario;
using scenario::Workload;

Scenario base_scenario(u64 population) {
  Scenario s;
  s.seed = 42;
  s.server.shards = 4;
  s.server.executor_slots = 16;
  s.server.cpu_ops_per_second = 50e6;
  s.server.max_active_jobs = 256;
  s.server.max_pulls = 256;
  (void)population;
  return s;
}

Scenario flash_mix(u64 population) {
  Scenario s = base_scenario(population);
  s.name = "flash-" + std::to_string(population);
  s.duration = 120 * sim::kMicrosPerSecond;
  HostClass crowd;
  crowd.name = "crowd";
  crowd.quantity = population;
  crowd.link = "modem-56k";
  crowd.workload = Workload::kFlashCrowd;
  crowd.file_size = 20'000;
  crowd.file_spread = 0.25;
  crowd.burst = 10 * sim::kMicrosPerSecond;
  // 1 CPU-second per job: the whole crowd's demand (population seconds of
  // CPU) collides with shards*executor_slots, so the admission budget
  // sheds — the overload column of the sweep (cf. examples/flash_crowd.scn).
  crowd.job_ops = 50'000'000;
  s.hosts.push_back(crowd);
  return s;
}

Scenario heavy_mix(u64 population) {
  Scenario s = base_scenario(population);
  s.name = "heavy-" + std::to_string(population);
  s.duration = 180 * sim::kMicrosPerSecond;
  HostClass editors;
  editors.name = "editors";
  editors.quantity = population;
  editors.link = "arpanet-56k";
  editors.workload = Workload::kHeavyEditor;
  editors.file_size = 40'000;
  editors.file_spread = 0.2;
  editors.edit_percent = 3;
  editors.burst = 30 * sim::kMicrosPerSecond;
  editors.think = 45 * sim::kMicrosPerSecond;
  editors.job_ops = 1'000'000;
  s.hosts.push_back(editors);
  return s;
}

Scenario mixed_mix(u64 population) {
  Scenario s = base_scenario(population);
  s.name = "mixed-" + std::to_string(population);
  s.duration = 180 * sim::kMicrosPerSecond;
  scenario::LinkProfile commuter;
  (void)scenario::resolve_link(s, "modem-56k", &commuter);
  commuter.loss = 0.001;
  commuter.jitter = 40'000;
  commuter.jitter_p = 0.02;
  s.links["commuter"] = commuter;

  HostClass labs;  // dial-up-era labs on 9600 baud
  labs.name = "labs";
  labs.quantity = population / 4;
  labs.link = "cypress-9600";
  labs.workload = Workload::kHeavyEditor;
  labs.file_size = 20'000;
  labs.edit_percent = 4;
  labs.burst = 20 * sim::kMicrosPerSecond;
  labs.think = 60 * sim::kMicrosPerSecond;
  s.hosts.push_back(labs);

  HostClass commuters;  // lossy 56k modems
  commuters.name = "commuters";
  commuters.quantity = population / 2;
  commuters.link = "commuter";
  commuters.workload = Workload::kCasual;
  commuters.file_size = 30'000;
  commuters.burst = 30 * sim::kMicrosPerSecond;
  commuters.think = 90 * sim::kMicrosPerSecond;
  commuters.submit_p = 0.6;
  s.hosts.push_back(commuters);

  HostClass campus;  // modern WAN
  campus.name = "campus";
  campus.quantity = population - labs.quantity - commuters.quantity;
  campus.link = "modern-wan";
  campus.workload = Workload::kHeavyEditor;
  campus.file_size = 100'000;
  campus.edit_percent = 2;
  campus.burst = 20 * sim::kMicrosPerSecond;
  campus.think = 40 * sim::kMicrosPerSecond;
  s.hosts.push_back(campus);
  return s;
}

void BM_ScenarioScale(benchmark::State& state) {
  const int mix = static_cast<int>(state.range(0));
  const u64 population = static_cast<u64>(state.range(1));

  Scenario spec;
  switch (mix) {
    case 0: spec = flash_mix(population); break;
    case 1: spec = heavy_mix(population); break;
    default: spec = mixed_mix(population); break;
  }

  scenario::ScenarioReport report;
  for (auto _ : state) {
    auto result = scenario::ScenarioRunner(spec).run();
    if (!result.ok()) {
      state.SkipWithError(result.error().message.c_str());
      return;
    }
    report = std::move(result).take();
  }

  state.counters["population"] =
      benchmark::Counter(static_cast<double>(report.population));
  state.counters["submitted"] =
      benchmark::Counter(static_cast<double>(report.submitted));
  state.counters["completed"] =
      benchmark::Counter(static_cast<double>(report.completed));
  state.counters["p50_latency_ms"] = benchmark::Counter(report.p50_ms);
  state.counters["p99_latency_ms"] = benchmark::Counter(report.p99_ms);
  state.counters["acks_per_sec"] = benchmark::Counter(report.acks_per_sec);
  state.counters["payload_bytes"] =
      benchmark::Counter(static_cast<double>(report.payload_bytes));
  state.counters["saved_bytes"] =
      benchmark::Counter(static_cast<double>(report.saved_bytes));
  state.counters["saved_ratio"] = benchmark::Counter(report.saved_ratio);
  state.counters["shed_rate"] = benchmark::Counter(report.shed_rate);
  state.counters["cache_evictions"] =
      benchmark::Counter(static_cast<double>(report.cache_evictions));
}

BENCHMARK(BM_ScenarioScale)
    ->ArgsProduct({{0, 1, 2}, {500, 2000}})
    ->ArgNames({"mix", "population"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  shadow::Logger::instance().set_level(shadow::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
