// Sharding ablation: acks/sec on the Update hot path as a function of
// shard count, under a standing backlog of waiting jobs — the workload
// the thread-per-core refactor exists for. Each editor's updates land on
// its pinned shard, so the per-message scans (the needed-by-job check and
// the scheduler pass, both O(jobs x refs)) run over 1/Nth of the backlog.
//
// Two throughput numbers per configuration:
//   items_per_second  — REAL acks/sec, measured inline on one thread.
//     Gains here come purely from partitioned state: shorter scans,
//     smaller tables. This is what a single core actually sustains.
//   tpc_acks_per_sec  — thread-per-core projection: every op's cost is
//     attributed to its shard, and the projected rate is acks divided by
//     the BUSIEST shard's time — the standard critical-path model for N
//     independent loops (valid because routed connections share nothing).
//   model_speedup     — total attributed time / busiest shard's time.
//
// google-benchmark binary; exported to BENCH_shard.json by
// bench/bench_to_json.sh (which also stamps the host core count).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "compress/compress.hpp"
#include "core/workload.hpp"
#include "diff/delta.hpp"
#include "net/loopback.hpp"
#include "proto/messages.hpp"
#include "server/sharded_server.hpp"
#include "util/logging.hpp"

namespace {

using namespace shadow;
using Clock = std::chrono::steady_clock;

constexpr const char* kDomain = "bench-net";
constexpr std::size_t kFilesPerEditor = 2;
constexpr std::size_t kJobsPerEditor = 4;

struct Editor {
  std::string name;
  net::LoopbackPair pair;
  std::size_t shard = 0;
  u64 acks = 0;
  std::vector<Bytes> update_wires;  // pre-encoded, cycled round-robin
  std::size_t next_wire = 0;
};

naming::GlobalFileId file_id(const std::string& host, u64 inode) {
  naming::GlobalFileId id;
  id.domain = kDomain;
  id.host = host;
  id.path = "/work/f" + std::to_string(inode);
  id.inode = inode;
  return id;
}

Bytes update_wire(const naming::GlobalFileId& id, const std::string& content) {
  BufWriter w;
  diff::Delta::make_full(content).encode(w);
  proto::Update update;
  update.file = id;
  update.base_version = 0;
  update.new_version = 3;
  update.payload = compress::compress(w.take(), compress::Codec::kStored);
  return proto::encode_message(update);
}

void BM_ShardedAcks(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::size_t editors = static_cast<std::size_t>(state.range(1));

  server::ServerConfig config;
  config.name = "super";
  server::ShardedServer sharded(config, shards);

  std::vector<std::unique_ptr<Editor>> fleet;
  fleet.reserve(editors);
  for (std::size_t e = 0; e < editors; ++e) {
    auto editor = std::make_unique<Editor>();
    editor->name = "ws" + std::to_string(e);
    editor->pair = net::make_loopback_pair(editor->name, "super");
    Editor* raw = editor.get();
    editor->pair.a->set_receiver([raw](Bytes wire) {
      auto decoded = proto::decode_message(wire);
      if (!decoded.ok()) return;
      if (const auto* ack = std::get_if<proto::UpdateAck>(&decoded.value())) {
        if (ack->ok) ++raw->acks;
      }
    });
    sharded.attach(editor->pair.b.get());
    proto::Hello hello;
    hello.client_name = editor->name;
    hello.domain = kDomain;
    (void)editor->pair.a->send(proto::encode_message(hello));
    net::pump(editor->pair);
    editor->shard = *sharded.shard_of_client(editor->name);

    // Standing backlog: jobs blocked on a version that never arrives, so
    // every later update pays the full needed-by-job + scheduler scans.
    for (std::size_t j = 0; j < kJobsPerEditor; ++j) {
      proto::SubmitJob submit;
      submit.client_job_token = j + 1;
      submit.command_file = "run model\n";
      for (std::size_t f = 0; f < kFilesPerEditor; ++f) {
        proto::JobFileRef ref;
        ref.file = file_id(editor->name, f + 1);
        ref.local_name = "f" + std::to_string(f);
        ref.version = 1'000'000;  // never satisfied: stays kWaitingFiles
        submit.files.push_back(ref);
      }
      (void)editor->pair.a->send(proto::encode_message(submit));
      net::pump(editor->pair);
    }

    for (std::size_t f = 0; f < kFilesPerEditor; ++f) {
      editor->update_wires.push_back(update_wire(
          file_id(editor->name, f + 1),
          core::make_file(2'000, static_cast<u64>(e * 31 + f))));
    }
    editor->acks = 0;  // setup traffic doesn't count
    fleet.push_back(std::move(editor));
  }

  std::vector<double> shard_seconds(shards, 0.0);
  std::size_t turn = 0;
  for (auto _ : state) {
    Editor& editor = *fleet[turn % editors];
    ++turn;
    const Bytes& wire =
        editor.update_wires[editor.next_wire++ % editor.update_wires.size()];
    const auto begin = Clock::now();
    (void)editor.pair.a->send(wire);
    net::pump(editor.pair);
    shard_seconds[editor.shard] +=
        std::chrono::duration<double>(Clock::now() - begin).count();
  }

  u64 acks = 0;
  for (const auto& editor : fleet) acks += editor->acks;
  if (acks != static_cast<u64>(state.iterations())) {
    state.SkipWithError("ack count != iterations");
    return;
  }
  double total = 0.0;
  double busiest = 0.0;
  for (double s : shard_seconds) {
    total += s;
    busiest = std::max(busiest, s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(acks));
  if (busiest > 0.0) {
    state.counters["tpc_acks_per_sec"] =
        benchmark::Counter(static_cast<double>(acks) / busiest);
    state.counters["model_speedup"] = benchmark::Counter(total / busiest);
  }
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
  state.counters["editors"] = benchmark::Counter(static_cast<double>(editors));
  state.counters["standing_jobs"] =
      benchmark::Counter(static_cast<double>(editors * kJobsPerEditor));
}

BENCHMARK(BM_ShardedAcks)
    ->ArgsProduct({{1, 2, 4, 8}, {32, 256}})
    ->ArgNames({"shards", "editors"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  shadow::Logger::instance().set_level(shadow::LogLevel::kError);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
