// Macro experiment: the paper's §2.1 motivation, quantified. A scientist
// repeats the edit-submit-fetch cycle on a 200 KB input over a 9600-baud
// line for one 8-hour working day, thinking ~5 minutes between runs.
//
// Conventional RJE (the baseline the paper attacks): the full file travels
// with EVERY submission, nothing is cached (we model it with a 1-byte
// cache budget — best-effort caching keeps nothing — and no background
// updates). Shadow editing: background deltas while the scientist thinks.
//
// Reported: iterations finished in the day, total time spent waiting on
// the network, and bytes moved.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

namespace {

struct DayReport {
  int iterations = 0;
  double waiting_seconds = 0;  // submit -> results, summed
  u64 payload_bytes = 0;
};

DayReport run_day(bool shadow_mode, double think_seconds) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  if (!shadow_mode) sc.cache_budget = 1;  // best-effort cache keeps nothing
  system.add_server(sc);
  client::ShadowEnvironment env;
  env.background_updates = shadow_mode;
  system.add_client("ws", env);
  sim::Link& link =
      system.connect("ws", "super", sim::LinkConfig::cypress_9600());
  system.settle();

  auto& editor = system.editor("ws");
  auto& client = system.client("ws");
  auto& sim = system.simulator();

  const sim::SimTime day_end = 8ull * 3600 * sim::kMicrosPerSecond;
  std::string content = core::make_file(200'000, 1);
  DayReport report;

  bool job_done = false;
  client.on_job_output([&](const client::JobView&) { job_done = true; });

  int iteration = 0;
  while (sim.now() < day_end) {
    // Editing session (~3% of the file changes).
    if (iteration > 0) {
      content = core::modify_percent(content, 3,
                                     static_cast<u64>(iteration));
    }
    if (!editor.edit("/home/user/model.in",
                     [&](const std::string&) { return content; })
             .ok()) {
      break;
    }
    // Think time; with shadow editing the delta flows in the background.
    sim.run_until(sim.now() + sim::from_seconds(think_seconds));

    client::ShadowClient::SubmitOptions job;
    job.files = {"/home/user/model.in"};
    job.command_file = "wc model.in\n";
    auto token = client.submit(job);
    if (!token.ok()) break;
    job_done = false;
    const sim::SimTime wait_start = sim.now();
    while (!job_done && sim.step()) {
    }
    if (!job_done) break;  // drained without completing (shouldn't happen)
    report.waiting_seconds += sim::to_seconds(sim.now() - wait_start);
    ++iteration;
    if (sim.now() < day_end) report.iterations = iteration;
  }
  report.payload_bytes = link.total_payload_bytes();
  return report;
}

}  // namespace

int main() {
  std::printf("=== Macro: a scientist's 8-hour day on a 9600-baud line "
              "(200k input, 3%% edits, 5-min think time) ===\n\n");
  std::printf("%-18s %12s %18s %14s\n", "system", "iterations",
              "hours waiting", "MB transferred");
  const double think = 300.0;
  const DayReport conventional = run_day(false, think);
  const DayReport shadow_day = run_day(true, think);
  std::printf("%-18s %12d %18.2f %14.2f\n", "conventional RJE",
              conventional.iterations, conventional.waiting_seconds / 3600.0,
              conventional.payload_bytes / 1048576.0);
  std::printf("%-18s %12d %18.2f %14.2f\n", "shadow editing",
              shadow_day.iterations, shadow_day.waiting_seconds / 3600.0,
              shadow_day.payload_bytes / 1048576.0);
  std::printf("\nexpected: the shadow user finishes noticeably more "
              "iterations and spends a small fraction of the conventional "
              "user's dead time waiting — the transfers hid inside the "
              "think time (5.1), and what remained were deltas (5.1) "
              "rather than 200 KB re-sends.\n");
  return 0;
}
