// Ablation: client-side version storage — verbatim copies vs Tichy/RCS
// reverse deltas (paper §6.3.2 keeps old versions; [Tic84] in its
// bibliography is the classic way to keep them cheaply).
//
// A user keeps editing one file; we track workstation disk use for the
// retained history and the CPU cost of reconstructing the oldest retained
// base (what answering a worst-case PullRequest costs).
#include <chrono>
#include <cstdio>

#include "core/workload.hpp"
#include "version/version_store.hpp"

using namespace shadow;

namespace {

struct Report {
  u64 stored_bytes = 0;
  double reconstruct_oldest_us = 0;
};

Report run(version::StorageMode mode, std::size_t file_bytes, int edits,
           std::size_t retention) {
  version::VersionChain chain(retention, mode);
  std::string content = core::make_file(file_bytes, 7);
  chain.append(content);
  for (int i = 0; i < edits; ++i) {
    content = core::modify_percent(content, 2, static_cast<u64>(i + 1));
    chain.append(content);
  }
  Report report;
  report.stored_bytes = chain.stored_bytes();
  // Time reconstruction of the oldest retained version.
  u64 oldest = chain.latest_number().value();
  while (chain.has(oldest - 1)) --oldest;
  const auto t0 = std::chrono::steady_clock::now();
  auto v = chain.get(oldest);
  const auto t1 = std::chrono::steady_clock::now();
  if (!v.ok()) std::fprintf(stderr, "reconstruction failed!\n");
  report.reconstruct_oldest_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  return report;
}

}  // namespace

int main() {
  std::printf("=== Ablation: version storage — full copies vs reverse "
              "deltas (RCS) ===\n");
  std::printf("100k file, 2%%-edits, varying retention window\n\n");
  std::printf("%-10s %18s %18s %22s\n", "retention", "full-mode bytes",
              "rcs-mode bytes", "rcs reconstruct(us)");
  for (std::size_t retention : {2u, 4u, 8u, 16u}) {
    const Report full = run(version::StorageMode::kFull, 100'000,
                            static_cast<int>(retention) + 4, retention);
    const Report rcs = run(version::StorageMode::kReverseDelta, 100'000,
                           static_cast<int>(retention) + 4, retention);
    std::printf("%-10zu %18llu %18llu %22.0f\n", retention,
                static_cast<unsigned long long>(full.stored_bytes),
                static_cast<unsigned long long>(rcs.stored_bytes),
                rcs.reconstruct_oldest_us);
  }
  std::printf("\nexpected: full-mode storage grows linearly with the "
              "retention window (one file copy per version); rcs-mode "
              "stays near one copy + small deltas, at microseconds of "
              "reconstruction cost per pull.\n");
  return 0;
}
