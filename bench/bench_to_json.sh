#!/usr/bin/env bash
# Regenerate the tracked Release-mode benchmark snapshots:
#   BENCH_diff.json     — diff-algorithm ablation (abl_diff_algos)
#   BENCH_persist.json  — durability costs: journal append, replay scan,
#                         server recovery (abl_persist)
#   BENCH_shard.json    — thread-per-core sharding sweep: acks/sec at
#                         1/2/4/8 shards x 32/256 editors (abl_shards)
#   BENCH_overload.json — overload-control sweep: goodput + p50/p99
#                         submit latency vs offered load, shedding
#                         off vs on (abl_overload; deterministic sim)
#   BENCH_scale.json    — population-scale scenario sweep: workload mix
#                         x population, p50/p99 submit latency,
#                         acks/sec, bytes saved (abl_scale;
#                         deterministic sim)
#   BENCH_cdc.json      — CDC codec ablation: wire bytes, encode/apply
#                         CPU, server resident state vs line-diff codecs
#                         and full transfer (abl_cdc)
# Future PRs compare against these files to keep a perf trajectory for the
# Delta::compute hot path and the crash-consistency overhead.
#
# Usage: bench/bench_to_json.sh [build-dir]   (default: build-rel)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build-rel}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target abl_diff_algos abl_persist abl_shards abl_overload abl_scale abl_cdc -j"$(nproc)"

# Provenance stamp: which commit and build type produced these numbers.
# A snapshot from a dirty tree is marked so regressions aren't chased
# against unreproducible baselines.
GIT_SHA="$(git -C "$ROOT" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if ! git -C "$ROOT" diff --quiet HEAD 2>/dev/null; then
  GIT_SHA="${GIT_SHA}-dirty"
fi
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt" | head -n1)"
BUILD_TYPE="${BUILD_TYPE:-unknown}"
# Hardware context for the sharding sweep: the tpc_acks_per_sec projection
# models one loop per core, so the core count the numbers were taken on is
# part of their provenance.
HOST_CORES="$(nproc 2>/dev/null || echo unknown)"

# Inject the stamp into the benchmark JSON's "context" object. Google
# Benchmark emits `"context": {` on its own line; extend it in place so
# the file stays valid JSON without needing jq.
stamp_json() {
  local file="$1"
  sed -i "s/^  \"context\": {\$/  \"context\": {\n    \"git_sha\": \"$GIT_SHA\",\n    \"build_type\": \"$BUILD_TYPE\",\n    \"host_cores\": \"$HOST_CORES\",/" "$file"
  if ! grep -q '"git_sha"' "$file"; then
    echo "warning: could not stamp provenance into $file" >&2
  fi
}

# min_time smooths scheduler noise; JSON format suppresses the size table.
"$BUILD/bench/abl_diff_algos" \
  --benchmark_format=json \
  --benchmark_min_time=0.5 \
  > "$ROOT/BENCH_diff.json"
stamp_json "$ROOT/BENCH_diff.json"

echo "wrote $ROOT/BENCH_diff.json ($GIT_SHA, $BUILD_TYPE)"

"$BUILD/bench/abl_persist" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  > "$ROOT/BENCH_persist.json"
stamp_json "$ROOT/BENCH_persist.json"

echo "wrote $ROOT/BENCH_persist.json ($GIT_SHA, $BUILD_TYPE)"

"$BUILD/bench/abl_shards" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  > "$ROOT/BENCH_shard.json"
stamp_json "$ROOT/BENCH_shard.json"

echo "wrote $ROOT/BENCH_shard.json ($GIT_SHA, $BUILD_TYPE, ${HOST_CORES} cores)"

# Deterministic simulation: no min_time — each configuration is one
# exact replay, and the counters (goodput, p50/p99 latency) are the
# quantities of interest, not wall time.
"$BUILD/bench/abl_overload" \
  --benchmark_format=json \
  > "$ROOT/BENCH_overload.json"
stamp_json "$ROOT/BENCH_overload.json"

echo "wrote $ROOT/BENCH_overload.json ($GIT_SHA, $BUILD_TYPE)"

# Same deal: each (mix, population) cell is one exact scenario replay.
"$BUILD/bench/abl_scale" \
  --benchmark_format=json \
  > "$ROOT/BENCH_scale.json"
stamp_json "$ROOT/BENCH_scale.json"

echo "wrote $ROOT/BENCH_scale.json ($GIT_SHA, $BUILD_TYPE)"

# CDC codec ablation: the wire_bytes / resident_state_bytes counters are
# deterministic; min_time smooths the CPU timings.
"$BUILD/bench/abl_cdc" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  > "$ROOT/BENCH_cdc.json"
stamp_json "$ROOT/BENCH_cdc.json"

echo "wrote $ROOT/BENCH_cdc.json ($GIT_SHA, $BUILD_TYPE)"
