#!/usr/bin/env bash
# Regenerate the tracked Release-mode benchmark snapshots:
#   BENCH_diff.json     — diff-algorithm ablation (abl_diff_algos)
#   BENCH_persist.json  — durability costs: journal append, replay scan,
#                         server recovery (abl_persist)
# Future PRs compare against these files to keep a perf trajectory for the
# Delta::compute hot path and the crash-consistency overhead.
#
# Usage: bench/bench_to_json.sh [build-dir]   (default: build-rel)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build-rel}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target abl_diff_algos abl_persist -j"$(nproc)"

# min_time smooths scheduler noise; JSON format suppresses the size table.
"$BUILD/bench/abl_diff_algos" \
  --benchmark_format=json \
  --benchmark_min_time=0.5 \
  > "$ROOT/BENCH_diff.json"

echo "wrote $ROOT/BENCH_diff.json"

"$BUILD/bench/abl_persist" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  > "$ROOT/BENCH_persist.json"

echo "wrote $ROOT/BENCH_persist.json"
