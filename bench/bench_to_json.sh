#!/usr/bin/env bash
# Regenerate BENCH_diff.json — the tracked Release-mode snapshot of the
# diff-algorithm ablation (abl_diff_algos). Future PRs compare against this
# file to keep a perf trajectory for the Delta::compute hot path.
#
# Usage: bench/bench_to_json.sh [build-dir]   (default: build-rel)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build-rel}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target abl_diff_algos -j"$(nproc)"

# min_time smooths scheduler noise; JSON format suppresses the size table.
"$BUILD/bench/abl_diff_algos" \
  --benchmark_format=json \
  --benchmark_min_time=0.5 \
  > "$ROOT/BENCH_diff.json"

echo "wrote $ROOT/BENCH_diff.json"
