// Figure 1 reproduction: Cypress (9600 baud) transfer times vs. % of file
// modified, for 100k/200k/500k files.
//
// Paper's qualitative result: S-time curves sit far below the F-time
// horizontal lines, converging toward them as the modified fraction grows;
// at <= 20% modified the whole cycle is ~4x faster than conventional batch,
// and at ~1% it approaches ~20x for large files.
#include <cstdio>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace shadow;
  std::printf("=== Figure 1: Cypress transfer times "
              "(100k/200k/500k file sizes) ===\n");
  std::printf("paper: S-time(500k) stays under ~200 s for small edits while "
              "F-time(500k) is ~600 s;\n");
  std::printf("paper: curves rise with %% modified and stay below their "
              "F-time line even at 80%%.\n\n");
  bench::print_transfer_figure(
      "measured:",
      bench::link_arg(argc, argv, sim::LinkConfig::cypress_9600()),
      {100'000, 200'000, 500'000}, {1, 5, 10, 20, 40, 60, 80},
      bench::csv_arg(argc, argv));
  return 0;
}
