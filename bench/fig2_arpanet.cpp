// Figure 2 reproduction: ARPANET (56 kbps, shared/congested) transfer
// times to the University of Illinois, for 100k/200k/500k files.
//
// The paper estimated these times with FTP because the prototype could not
// be installed at a production site; we run the same protocol over the
// arpanet_56k() link model. Qualitative result: same shape as Cypress but
// faster in absolute terms; the shadow advantage persists on the faster
// line ("the utility of our system is not limited to networks using
// low-speed lines").
#include <cstdio>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace shadow;
  std::printf("=== Figure 2: ARPANET transfer times to Univ. of Illinois "
              "(100k/200k/500k) ===\n");
  std::printf("paper: same qualitative shape as Figure 1 at ~5-6x shorter "
              "absolute times;\n");
  std::printf("paper: S-time(500k) ~ 1/4 of F-time(500k) at 20%% "
              "modified.\n\n");
  bench::print_transfer_figure(
      "measured:",
      bench::link_arg(argc, argv, sim::LinkConfig::arpanet_56k()),
      {100'000, 200'000, 500'000}, {1, 5, 10, 20, 40, 60, 80},
      bench::csv_arg(argc, argv));
  return 0;
}
