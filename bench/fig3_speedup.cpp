// Figure 3 reproduction: the speedup-factor table (F-time / S-time over
// ARPANET) for file sizes 10k/50k/100k/500k at 1/5/10/20 % modified.
//
// This is the paper's only exact numeric table, so we print paper value
// and measured value side by side. Expected shape: speedup grows with file
// size (fixed costs amortize) and shrinks as the modified fraction grows;
// ~4x at 20% modified, >20x at 1% for large files.
#include <cstdio>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace shadow;
  std::FILE* csv = nullptr;
  if (const char* path = bench::csv_arg(argc, argv)) {
    csv = std::fopen(path, "w");
    if (csv != nullptr) {
      std::fprintf(csv,
                   "file_size,percent_modified,paper_speedup,"
                   "measured_speedup\n");
    }
  }
  const std::size_t sizes[] = {10'000, 50'000, 100'000, 500'000};
  const double percents[] = {1, 5, 10, 20};
  // Figure 3 of the paper (speedup factor = F-time / S-time).
  const double paper[4][4] = {
      {13.5, 9.3, 6.5, 3.7},   // 10k
      {22.5, 11.9, 7.1, 4.3},  // 50k
      {24.2, 12.0, 7.5, 4.3},  // 100k
      {24.9, 12.5, 7.6, 4.3},  // 500k
  };

  std::printf("=== Figure 3: speedup factor (F-time/S-time), ARPANET ===\n");
  std::printf("%-10s %-22s %-22s %-22s %-22s\n", "File Size", "1% modified",
              "5% modified", "10% modified", "20% modified");
  std::printf("%-10s %-22s %-22s %-22s %-22s\n", "", "paper / measured",
              "paper / measured", "paper / measured", "paper / measured");
  for (int si = 0; si < 4; ++si) {
    std::printf("%-10s", (std::to_string(sizes[si] / 1000) + "k").c_str());
    for (int pi = 0; pi < 4; ++pi) {
      const auto point = bench::run_point(sim::LinkConfig::arpanet_56k(),
                                          sizes[si], percents[pi],
                                          /*seed=*/static_cast<u64>(si * 17 +
                                                                    pi + 3));
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%5.1f / %5.1fx", paper[si][pi],
                    point.speedup());
      std::printf(" %-21s", cell);
      if (csv != nullptr) {
        std::fprintf(csv, "%zu,%g,%.1f,%.2f\n", sizes[si], percents[pi],
                     paper[si][pi], point.speedup());
      }
    }
    std::printf("\n");
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("\nshape checks (paper's claims):\n");
  std::printf("  - speedup decreases left to right (more editing => less "
              "advantage)\n");
  std::printf("  - speedup increases top to bottom at 1%% (larger files "
              "amortize fixed costs)\n");
  std::printf("  - ~4x at 20%% modified, >10x at 1%% for files >= 50k\n");
  return 0;
}
