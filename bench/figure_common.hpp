// Shared harness for the paper's Figures 1-3 (§8.1).
//
// Experimental protocol, exactly as the paper describes it: "In each
// experiment, we submitted a job with a data file. After obtaining the
// results, we edited the data file and resubmitted the same job. We
// modified the data file by a different amount every time (1% to 80% of
// the text) before resubmitting. We measured the total amount of time
// spent in each case."
//
// F-time: the first submission, which transfers the entire file — this is
// what a conventional batch system pays on EVERY submission (the paper's
// horizontal lines). S-time: the resubmission after editing p% — shadow
// processing ships only the ed-script delta.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "core/workload.hpp"

namespace shadow::bench {

struct FigurePoint {
  std::size_t file_size = 0;
  double percent = 0;
  double f_time = 0;   // conventional/full-transfer cycle seconds
  double s_time = 0;   // shadow cycle seconds
  u64 f_bytes = 0;
  u64 s_bytes = 0;
  double speedup() const { return s_time > 0 ? f_time / s_time : 0; }
};

/// One (file size, % modified) point on a fresh system: first submission
/// (full transfer) then an edited resubmission (delta transfer).
inline FigurePoint run_point(const sim::LinkConfig& link_config,
                             std::size_t file_size, double percent,
                             u64 seed) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  system.add_server(sc);
  system.add_client("ws");
  sim::Link& link = system.connect("ws", "super", link_config);
  system.settle();

  client::ShadowClient::SubmitOptions opts;
  opts.files = {"/home/user/data.f"};
  opts.command_file = "wc data.f\n";
  opts.output_path = "/home/user/job.out";
  opts.error_path = "/home/user/job.err";

  const std::string v1 = core::make_file(file_size, seed);
  const auto first =
      core::run_submit_cycle(system, "ws", "/home/user/data.f", v1, opts,
                             &link);
  const std::string v2 = core::modify_percent(v1, percent, seed * 31 + 7);
  const auto second =
      core::run_submit_cycle(system, "ws", "/home/user/data.f", v2, opts,
                             &link);

  FigurePoint point;
  point.file_size = file_size;
  point.percent = percent;
  point.f_time = first.seconds;
  point.s_time = second.seconds;
  point.f_bytes = first.payload_bytes;
  point.s_bytes = second.payload_bytes;
  if (!first.completed || !second.completed) {
    std::fprintf(stderr, "WARNING: cycle did not complete (size=%zu p=%g)\n",
                 file_size, percent);
  }
  return point;
}

/// Figure 1/2 style report: S-time curves per file size with the F-time
/// reference line. When `csv_path` is non-null, machine-readable rows are
/// also written there (for replotting the paper's figures).
inline void print_transfer_figure(const char* title,
                                  const sim::LinkConfig& link_config,
                                  const std::vector<std::size_t>& sizes,
                                  const std::vector<double>& percents,
                                  const char* csv_path = nullptr) {
  std::FILE* csv = nullptr;
  if (csv_path != nullptr) {
    csv = std::fopen(csv_path, "w");
    if (csv != nullptr) {
      std::fprintf(csv,
                   "file_size,percent_modified,f_time_s,s_time_s,"
                   "f_bytes,s_bytes,speedup\n");
    }
  }
  std::printf("%s\n", title);
  std::printf("link: %s  (%.0f bps, latency %.0f ms, congestion x%.1f)\n\n",
              link_config.name.c_str(), link_config.bits_per_second,
              link_config.latency / 1000.0, link_config.congestion_factor);
  for (std::size_t size : sizes) {
    FigurePoint f_ref = run_point(link_config, size, percents.front(),
                                  /*seed=*/size);
    std::printf("file size %4zuk   F-time (full transfer each submit): "
                "%8.1f s   [%llu bytes]\n",
                size / 1000, f_ref.f_time,
                static_cast<unsigned long long>(f_ref.f_bytes));
    std::printf("  %%modified   S-time(s)   S-bytes     speedup(F/S)\n");
    for (double percent : percents) {
      const FigurePoint p = run_point(link_config, size, percent,
                                      /*seed=*/size + 1);
      std::printf("  %8.0f   %9.1f   %9llu   %8.1fx\n", percent, p.s_time,
                  static_cast<unsigned long long>(p.s_bytes), p.speedup());
      if (csv != nullptr) {
        std::fprintf(csv, "%zu,%g,%.3f,%.3f,%llu,%llu,%.2f\n", size,
                     percent, p.f_time, p.s_time,
                     static_cast<unsigned long long>(p.f_bytes),
                     static_cast<unsigned long long>(p.s_bytes),
                     p.speedup());
      }
    }
    std::printf("\n");
  }
  if (csv != nullptr) {
    std::fclose(csv);
    std::printf("csv written to %s\n", csv_path);
  }
}

/// Shared argv handling for the figure binaries: "--csv PATH".
inline const char* csv_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return argv[i + 1];
  }
  return nullptr;
}

/// Shared argv handling: "--link NAME" swaps the measured line for any
/// preset from sim::link_presets() (the same names the scenario specs
/// use), so a figure can be replayed over a modem-56k or modern-wan line
/// without editing the bench. Unknown names list the roster and exit(2).
inline sim::LinkConfig link_arg(int argc, char** argv,
                                const sim::LinkConfig& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != "--link") continue;
    sim::LinkConfig config;
    if (sim::link_preset(argv[i + 1], &config)) return config;
    std::fprintf(stderr, "unknown link preset '%s'; known:", argv[i + 1]);
    for (const auto& preset : sim::link_presets()) {
      std::fprintf(stderr, " %s", preset.name);
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  return fallback;
}

}  // namespace shadow::bench
