// Name resolution in an NFS domain — the scenario of §5.3 and §6.5.
//
// Machine C exports /usr; workstation A mounts it as /proj1 and
// workstation B mounts it as /others. Both users work on the SAME physical
// file under DIFFERENT names (one even through a symlink). The shadow
// system resolves every alias to one (domain id, file id) pair, so the
// supercomputer keeps exactly one cached copy.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

int main() {
  core::ShadowSystem system("internet-net-128.10");

  server::ServerConfig sc;
  sc.name = "supercomputer";
  system.add_server(sc);

  // The paper's exact topology (§5.3).
  system.add_client("machine-A");
  system.add_client("machine-B");
  auto& machine_c = system.cluster().add_host("machine-C");
  (void)machine_c.mkdir_p("/usr");
  (void)system.cluster().mount("machine-A", "/proj1", "machine-C", "/usr");
  (void)system.cluster().mount("machine-B", "/others", "machine-C", "/usr");

  system.connect("machine-A", "supercomputer",
                 sim::LinkConfig::cypress_9600());
  system.connect("machine-B", "supercomputer",
                 sim::LinkConfig::cypress_9600());
  system.settle();

  // User on A creates /proj1/foo — physically machine-C:/usr/foo.
  (void)system.editor("machine-A")
      .create("/proj1/foo", core::make_file(20'000, 1));
  system.settle();

  naming::NameResolver resolver(system.domain_id(), &system.cluster());
  const auto from_a = resolver.resolve("machine-A", "/proj1/foo").value();
  const auto from_b = resolver.resolve("machine-B", "/others/foo").value();
  std::printf("machine-A name /proj1/foo  -> %s\n", from_a.display().c_str());
  std::printf("machine-B name /others/foo -> %s\n", from_b.display().c_str());
  std::printf("same file id? %s (key %s)\n",
              from_a.key() == from_b.key() ? "YES" : "no",
              from_a.key().c_str());

  auto& server = system.server("supercomputer");
  std::printf("cached copies at the supercomputer: %zu (one, despite two "
              "names)\n",
              server.file_cache().entry_count());

  // User on B edits the same file through THEIR name; the server updates
  // the single cached copy with a delta — no duplicate appears.
  auto content = system.cluster().read_file("machine-B", "/others/foo");
  (void)system.editor("machine-B")
      .create("/others/foo", core::modify_percent(content.value(), 2, 3));
  system.settle();
  std::printf("after machine-B edits via its own mount: %zu cached copy, "
              "%llu full + %llu delta transfers\n",
              server.file_cache().entry_count(),
              static_cast<unsigned long long>(server.stats().full_transfers),
              static_cast<unsigned long long>(
                  server.stats().delta_transfers));

  // A symlink alias on A — still the same shadow file.
  (void)system.cluster().host("machine-A").value()->symlink(
      "/proj1/foo", "/home/user/shortcut");
  const auto via_link =
      resolver.resolve("machine-A", "/home/user/shortcut").value();
  std::printf("symlink /home/user/shortcut resolves to the same id? %s\n",
              via_link.key() == from_a.key() ? "YES" : "no");

  // A job submitted from B runs on the copy A populated: zero transfer.
  const auto updates_before = server.stats().updates_received;
  client::ShadowClient::SubmitOptions job;
  job.files = {"/others/foo"};
  job.command_file = "wc foo\n";
  job.output_path = "/home/user/foo.out";
  job.error_path = "/home/user/foo.err";
  auto token = system.client("machine-B").submit(job);
  system.settle();
  std::printf("job from machine-B used the shared cache: %s "
              "(extra transfers: %llu)\n",
              token.ok() && system.client("machine-B").job_done(token.value())
                  ? "completed"
                  : "FAILED",
              static_cast<unsigned long long>(server.stats().updates_received -
                                              updates_before));

  // The server's per-domain mapping file (§5.3's "file that lists the
  // user-specified names and the corresponding shadow identifiers").
  std::printf("\nserver mapping file for domain %s:\n%s",
              system.domain_id().c_str(),
              server.domains()
                  .domain(system.domain_id())
                  .to_mapping_file()
                  .c_str());
  return 0;
}
