// Quickstart: the edit-submit-fetch cycle of the paper, end to end.
//
// A scientist at workstation "merlin" edits a data file, submits a batch
// job to the supercomputer over a 9600-baud Cypress line, fixes a mistake,
// and resubmits. The second submission ships only an ed-script delta —
// the whole point of shadow editing.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "core/workload.hpp"

using namespace shadow;

int main() {
  // 1. Assemble the world: one supercomputer, one workstation, one slow
  //    long-haul link between them. ShadowSystem wires the vfs cluster,
  //    the discrete-event simulator and the shadow protocol together.
  core::ShadowSystem system;

  server::ServerConfig server_config;
  server_config.name = "supercomputer";
  system.add_server(server_config);

  system.add_client("merlin");
  sim::Link& line =
      system.connect("merlin", "supercomputer", sim::LinkConfig::cypress_9600());
  system.settle();  // Hello handshake

  auto& editor = system.editor("merlin");
  auto& client = system.client("merlin");

  // 2. First editing session: create a 100 KB input file. The shadow
  //    editor wraps "the user's editor of choice" — when the session ends
  //    its postprocessor notifies the server, which pulls the file into
  //    its cache in the background.
  const std::string version1 = core::make_file(100'000, /*seed=*/2026);
  if (auto st = editor.create("/home/user/simulation.in", version1); !st.ok()) {
    std::fprintf(stderr, "edit failed: %s\n", st.to_string().c_str());
    return 1;
  }

  // 3. Submit a job: a command file plus the list of data files. Only
  //    names and version numbers cross the wire — the server already has
  //    (or will pull) the content.
  client::ShadowClient::SubmitOptions job;
  job.files = {"/home/user/simulation.in"};
  job.command_file =
      "sort simulation.in > sorted\n"
      "head 5 sorted\n"
      "wc simulation.in\n";
  job.output_path = "/home/user/simulation.out";
  job.error_path = "/home/user/simulation.err";

  auto token = client.submit(job);
  if (!token.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 token.error().to_string().c_str());
    return 1;
  }
  const double t_start = sim::to_seconds(system.simulator().now());
  system.settle();  // run the world until the output comes back
  const double first_cycle = sim::to_seconds(system.simulator().now()) - t_start;

  std::printf("first submission (full 100 KB transfer): %.1f s, %llu bytes "
              "on the wire\n",
              first_cycle,
              static_cast<unsigned long long>(line.total_payload_bytes()));
  auto output = system.cluster().read_file("merlin",
                                           "/home/user/simulation.out");
  std::printf("job output (first 2 lines):\n");
  const std::string& out = output.value();
  std::size_t shown = 0;
  for (std::size_t i = 0, line_start = 0; i < out.size() && shown < 2; ++i) {
    if (out[i] == '\n') {
      std::printf("  %s\n", out.substr(line_start, i - line_start).c_str());
      line_start = i + 1;
      ++shown;
    }
  }

  // 4. The scientist spots a mistake, fixes ~2% of the file and resubmits
  //    the same job. Watch the byte counter: only the delta travels.
  const u64 bytes_before = line.total_payload_bytes();
  const std::string version2 = core::modify_percent(version1, 2, 7);
  client::ShadowClient::SubmitOptions same_job = job;
  const auto report = core::run_submit_cycle(
      system, "merlin", "/home/user/simulation.in", version2, same_job,
      &line);

  std::printf("resubmission after editing 2%% of the file: %.1f s, %llu "
              "bytes on the wire\n",
              report.seconds,
              static_cast<unsigned long long>(line.total_payload_bytes() -
                                              bytes_before));
  std::printf("speedup over a conventional batch resubmission: %.1fx\n",
              first_cycle / report.seconds);

  // 5. Status, the third user command of §6.2.
  client.on_status([](const std::vector<proto::JobStatusInfo>& jobs) {
    for (const auto& info : jobs) {
      std::printf("job %llu: %s\n",
                  static_cast<unsigned long long>(info.job_id),
                  proto::job_state_name(info.state));
    }
  });
  (void)client.request_status();
  system.settle();
  return 0;
}
