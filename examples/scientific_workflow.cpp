// A week in the life of a computational scientist (the paper's §1-§2
// motivation): iterative refinement of simulation inputs against TWO
// supercomputer centers, with the final result routed to a third machine —
// the departmental host with the high-speed printer (§8.3's output
// routing).
//
// Demonstrates: multiple simultaneous server sessions (§6.1), per-server
// caches, background updates overlapping think time (§5.1), output
// routing, and the status command.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"
#include "util/strings.hpp"

using namespace shadow;

namespace {

void think(core::ShadowSystem& system, double seconds) {
  system.simulator().run_until(system.simulator().now() +
                               sim::from_seconds(seconds));
}

}  // namespace

int main() {
  core::ShadowSystem system;

  // Two NSF-style supercomputer centers and the department's print host.
  server::ServerConfig cyber;
  cyber.name = "cyber-205";           // reachable over a 9600-baud line
  cyber.reverse_shadow = true;        // output deltas on re-runs
  system.add_server(cyber);
  server::ServerConfig cray;
  cray.name = "cray-xmp";             // reachable over ARPANET
  system.add_server(cray);

  system.add_client("workstation");
  system.add_client("print-host");

  sim::Link& slow_line = system.connect("workstation", "cyber-205",
                                        sim::LinkConfig::cypress_9600());
  system.connect("workstation", "cray-xmp", sim::LinkConfig::arpanet_56k());
  // The print host keeps a session with the Cray so routed output (§8.3)
  // has somewhere to land.
  system.connect("print-host", "cray-xmp", sim::LinkConfig::cypress_9600());
  system.settle();

  auto& editor = system.editor("workstation");
  auto& client = system.client("workstation");

  // Monday: prepare the model parameters and the observation data.
  std::string params = core::make_structured_file(40'000, 1);
  std::string observations = core::make_file(80'000, 2);
  (void)editor.create("/home/user/model.params", params);
  (void)editor.create("/home/user/obs.dat", observations);
  think(system, 120);  // coffee; both files flow to both caches meanwhile

  std::printf("after the first editing sessions: cyber cache=%zu files, "
              "cray cache=%zu files (background updates, 5.1)\n",
              system.server("cyber-205").file_cache().entry_count(),
              system.server("cray-xmp").file_cache().entry_count());

  // Tuesday: a calibration run on the Cyber.
  client::ShadowClient::SubmitOptions calibrate;
  calibrate.files = {"/home/user/model.params", "/home/user/obs.dat"};
  // The last command prints the full calibration table, so the job's
  // output is large — that is what reverse shadow processing deltas.
  calibrate.command_file =
      "grep station-00 model.params > hot\n"
      "cat hot obs.dat > merged\n"
      "sort merged\n";
  calibrate.output_path = "/home/user/calibration.out";
  calibrate.error_path = "/home/user/calibration.err";
  calibrate.server = "cyber-205";
  auto calib_token = client.submit(calibrate);
  system.settle();
  std::printf("calibration on cyber-205 done: %s of results\n",
              format_bytes(static_cast<double>(
                  system.cluster()
                      .read_file("workstation", "/home/user/calibration.out")
                      .value_or("")
                      .size())).c_str());

  // Wednesday-Thursday: three refinement iterations. Each edits ~3% of
  // the parameters and re-runs the same calibration; shadow editing ships
  // only deltas, and reverse shadow ships only OUTPUT deltas back.
  for (int iteration = 0; iteration < 3; ++iteration) {
    params = core::modify_percent(params, 3, static_cast<u64>(10 + iteration));
    (void)editor.create("/home/user/model.params", params);
    think(system, 300);  // the scientist studies the last plot
    auto token = client.submit(calibrate);
    system.settle();
    if (!token.ok() || !client.job_done(token.value())) {
      std::fprintf(stderr, "iteration %d failed\n", iteration);
      return 1;
    }
  }
  const auto& cyber_stats = system.server("cyber-205").stats();
  std::printf("after 3 refinements on cyber-205: %llu delta transfers in, "
              "%llu output deltas out, %llu full transfers total\n",
              static_cast<unsigned long long>(cyber_stats.delta_transfers),
              static_cast<unsigned long long>(cyber_stats.output_delta_hits),
              static_cast<unsigned long long>(cyber_stats.full_transfers));

  // Friday: the production run goes to the Cray (more capacity), and the
  // report is routed straight to the department's print host (§8.3).
  client::ShadowClient::SubmitOptions production;
  production.files = {"/home/user/model.params", "/home/user/obs.dat"};
  production.command_file =
      "matmul 48 7\n"
      "scale 1.5 model.params > scaled\n"
      "cat scaled obs.dat > report\n"
      "wc report\n";
  production.output_path = "/home/user/final-report.out";
  production.error_path = "/home/user/final-report.err";
  production.server = "cray-xmp";
  production.output_route = "print-host";
  auto prod_token = client.submit(production);
  system.settle();

  const bool printed =
      system.cluster()
          .read_file("print-host", "/home/user/final-report.out")
          .ok();
  std::printf("production run on cray-xmp: output %s on print-host\n",
              printed ? "delivered" : "MISSING");

  // The week in numbers.
  std::printf("\nweek total on the 9600-baud line: %s payload "
              "(a conventional RJE would have re-sent ~%s of inputs)\n",
              format_bytes(static_cast<double>(
                  slow_line.total_payload_bytes())).c_str(),
              format_bytes(4.0 * (40'000 + 80'000)).c_str());
  (void)calib_token;
  (void)prod_token;
  return 0;
}
