// Shadow editing over REAL TCP sockets — the prototype's deployment shape
// (§7: "clients and servers are implemented as UNIX processes that use a
// reliable transport protocol (TCP/IP); a server process listens at a
// well-known port for connections from clients").
//
// This demo runs both roles in one process over localhost, but the two
// sides communicate only through the socket: start the server, connect a
// client, run a full edit-submit-fetch cycle, edit, resubmit, and print
// real byte counts from the socket layer.
#include <unistd.h>

#include <cstdio>

#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "core/workload.hpp"
#include "net/tcp_transport.hpp"
#include "server/shadow_server.hpp"
#include "vfs/cluster.hpp"

using namespace shadow;

namespace {

// Drive both poll loops until traffic quiesces.
void pump(net::TcpTransport& a, net::TcpTransport& b) {
  int quiet = 0;
  for (int i = 0; i < 5000 && quiet < 25; ++i) {
    const std::size_t moved = a.poll() + b.poll();
    if (moved == 0) {
      ++quiet;
      ::usleep(1000);
    } else {
      quiet = 0;
    }
  }
}

}  // namespace

int main() {
  // --- server side -------------------------------------------------------
  server::ServerConfig config;
  config.name = "supercomputer";
  server::ShadowServer server(config);

  net::TcpListener listener;
  if (auto st = listener.listen(0); !st.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("shadow server listening on 127.0.0.1:%u\n", listener.port());

  // --- client side -------------------------------------------------------
  vfs::Cluster cluster;
  (void)cluster.add_host("workstation").mkdir_p("/home/user");

  auto to_server = net::tcp_connect(listener.port(), "supercomputer");
  auto from_client = listener.accept_blocking(2000);
  if (!to_server.ok() || !from_client.ok()) {
    std::fprintf(stderr, "connection setup failed\n");
    return 1;
  }
  server.attach(from_client.value().get());

  client::ShadowEnvironment env;
  client::ShadowClient client("workstation", env, &cluster, "tcp-demo-net");
  client::ShadowEditor editor(&client, &cluster);
  client.connect("supercomputer", to_server.value().get());
  pump(*to_server.value(), *from_client.value());
  std::printf("client connected over TCP\n\n");

  // --- first cycle: full transfer -----------------------------------------
  const std::string version1 = core::make_file(50'000, 99);
  (void)editor.create("/home/user/data.f", version1);
  pump(*to_server.value(), *from_client.value());

  client::ShadowClient::SubmitOptions job;
  job.files = {"/home/user/data.f"};
  job.command_file = "sort data.f > s\nhead 3 s\n";
  job.output_path = "/home/user/top3.out";
  job.error_path = "/home/user/top3.err";
  auto token1 = client.submit(job);
  pump(*to_server.value(), *from_client.value());
  std::printf("first submission: job %s, client sent %llu bytes over the "
              "socket\n",
              token1.ok() && client.job_done(token1.value()) ? "completed"
                                                             : "FAILED",
              static_cast<unsigned long long>(
                  to_server.value()->bytes_sent()));

  // --- second cycle: delta transfer ----------------------------------------
  const u64 sent_before = to_server.value()->bytes_sent();
  (void)editor.create("/home/user/data.f",
                      core::modify_percent(version1, 2, 5));
  pump(*to_server.value(), *from_client.value());
  auto token2 = client.submit(job);
  pump(*to_server.value(), *from_client.value());
  const u64 resubmit_bytes = to_server.value()->bytes_sent() - sent_before;
  std::printf("resubmission after a 2%% edit: job %s, client sent %llu "
              "bytes (vs ~50k for a conventional RJE)\n",
              token2.ok() && client.job_done(token2.value()) ? "completed"
                                                             : "FAILED",
              static_cast<unsigned long long>(resubmit_bytes));

  std::printf("\njob output:\n%s",
              cluster.read_file("workstation", "/home/user/top3.out")
                  .value_or("<missing>")
                  .c_str());
  std::printf("\nserver stats: %llu updates (%llu full, %llu delta), "
              "%llu jobs completed\n",
              static_cast<unsigned long long>(
                  server.stats().updates_received),
              static_cast<unsigned long long>(server.stats().full_transfers),
              static_cast<unsigned long long>(
                  server.stats().delta_transfers),
              static_cast<unsigned long long>(server.stats().jobs_completed));
  return 0;
}
