// Tilde trees meet shadow editing (paper §5.3, [CM86]).
//
// Doug and Jim share a research tree under different tilde names. Doug
// edits and submits jobs using "~work/..." names; mid-project the tree
// migrates to another file server — neither user's names change, the
// shadow server keeps a single cached copy throughout, and resubmissions
// keep shipping deltas.
#include <cstdio>

#include "core/system.hpp"
#include "core/workload.hpp"
#include "naming/tilde.hpp"

using namespace shadow;

int main() {
  core::ShadowSystem system("net-128.10");
  server::ServerConfig sc;
  sc.name = "supercomputer";
  system.add_server(sc);
  system.add_client("dougs-sun");
  system.add_client("jims-vax");
  auto& alpha = system.cluster().add_host("fileserver-alpha");
  auto& beta = system.cluster().add_host("fileserver-beta");
  (void)alpha;
  (void)beta;
  system.connect("dougs-sun", "supercomputer",
                 sim::LinkConfig::cypress_9600());
  system.connect("jims-vax", "supercomputer",
                 sim::LinkConfig::cypress_9600());
  system.settle();

  // The tilde forest: one research tree, two personal views.
  naming::TildeForest forest(&system.cluster());
  (void)forest.create_tree("comer-shadow-research", "fileserver-alpha",
                           "/trees/shadow");
  (void)forest.bind("doug", "work", "comer-shadow-research");
  (void)forest.bind("jim", "dougs", "comer-shadow-research");
  system.client("dougs-sun").set_tilde(&forest, "doug");
  system.client("jims-vax").set_tilde(&forest, "jim");

  // Doug edits through his tilde name.
  std::string data = core::make_file(50'000, 1);
  (void)system.editor("dougs-sun").create("~work/experiment.dat", data);
  system.settle();

  auto& server = system.server("supercomputer");
  std::printf("after doug's first edit of ~work/experiment.dat: %zu cached "
              "copy at the server\n",
              server.file_cache().entry_count());

  // Jim edits THE SAME file through HIS name — still one cached copy.
  data = core::modify_percent(data, 2, 9);
  (void)system.editor("jims-vax").create("~dougs/experiment.dat", data);
  system.settle();
  std::printf("after jim's edit of ~dougs/experiment.dat: %zu cached copy "
              "(two users, two names, one file)\n",
              server.file_cache().entry_count());

  // Doug submits a job by tilde name; output goes back under a tilde name.
  client::ShadowClient::SubmitOptions job;
  job.files = {"~work/experiment.dat"};
  job.command_file = "sort experiment.dat > s\nwc s\n";
  job.output_path = "~work/experiment.out";
  job.error_path = "~work/experiment.err";
  auto token = system.client("dougs-sun").submit(job);
  system.settle();
  std::printf("job via tilde names: %s; output at %s -> %s",
              token.ok() &&
                      system.client("dougs-sun").job_done(token.value())
                  ? "completed"
                  : "FAILED",
              "~work/experiment.out",
              system.cluster()
                  .read_file("fileserver-alpha", "/trees/shadow/experiment.out")
                  .value_or("<missing>\n")
                  .c_str());

  // The tree migrates to another file server. Views are untouched.
  (void)forest.migrate_tree("comer-shadow-research", "fileserver-beta",
                            "/trees/shadow");
  std::printf("\ntree migrated alpha -> beta; doug's name still works:\n");
  data = core::modify_percent(data, 2, 10);
  (void)system.editor("dougs-sun").create("~work/experiment.dat", data);
  auto token2 = system.client("dougs-sun").submit(job);
  system.settle();
  std::printf("resubmission after migration: %s (the server sees a new "
              "physical file and pulls it fresh, then deltas resume)\n",
              token2.ok() &&
                      system.client("dougs-sun").job_done(token2.value())
                  ? "completed"
                  : "FAILED");
  std::printf("server transfers: %llu full, %llu delta\n",
              static_cast<unsigned long long>(server.stats().full_transfers),
              static_cast<unsigned long long>(
                  server.stats().delta_transfers));
  return 0;
}
