// Trace-driven sessions: describe a user's day as data, replay it under
// different system configurations, and compare. The same trace text can
// live in a file and be swept by scripts — this example embeds one.
#include <cstdio>

#include "core/trace.hpp"
#include "core/system.hpp"

using namespace shadow;

namespace {

const char kTraceText[] =
    "# Monday morning: set up the model, iterate twice, go to lunch.\n"
    "client ws\n"
    "edit /home/user/model.in create=80000 seed=1\n"
    "think 240\n"
    "submit cmd=\"sort model.in > s\\nhead 20 s\\nwc model.in\\n\" "
    "files=/home/user/model.in out=/home/user/run1.out err=/home/user/run1.err\n"
    "await\n"
    "think 600\n"
    "edit /home/user/model.in percent=2 seed=2\n"
    "think 180\n"
    "submit cmd=\"sort model.in > s\\nhead 20 s\\nwc model.in\\n\" "
    "files=/home/user/model.in out=/home/user/run2.out err=/home/user/run2.err\n"
    "await\n"
    "think 300\n"
    "edit /home/user/model.in percent=1 seed=3\n"
    "submit cmd=\"sort model.in > s\\nhead 20 s\\nwc model.in\\n\" "
    "files=/home/user/model.in out=/home/user/run3.out err=/home/user/run3.err\n"
    "await\n";

core::TraceReport replay(const core::Trace& trace,
                         const sim::LinkConfig& link_config,
                         bool background_updates) {
  core::ShadowSystem system;
  server::ServerConfig sc;
  sc.name = "super";
  system.add_server(sc);
  client::ShadowEnvironment env;
  env.background_updates = background_updates;
  system.add_client(trace.client, env);
  sim::Link& link = system.connect(trace.client, "super", link_config);
  system.settle();
  auto report = core::run_trace(system, trace, &link);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report.error().to_string().c_str());
    return {};
  }
  return report.value();
}

}  // namespace

int main() {
  auto trace = core::Trace::parse(kTraceText);
  if (!trace.ok()) {
    std::fprintf(stderr, "bad trace: %s\n",
                 trace.error().to_string().c_str());
    return 1;
  }
  std::printf("replaying a 3-iteration morning (80k model file) under "
              "three configurations:\n\n");
  std::printf("%-34s %10s %12s %14s\n", "configuration", "waiting-s",
              "elapsed-s", "bytes moved");
  struct Config {
    const char* name;
    sim::LinkConfig link;
    bool background;
  };
  const Config configs[] = {
      {"Cypress 9600, background updates", sim::LinkConfig::cypress_9600(),
       true},
      {"Cypress 9600, submit-time only", sim::LinkConfig::cypress_9600(),
       false},
      {"ARPANET 56k, background updates", sim::LinkConfig::arpanet_56k(),
       true},
  };
  for (const auto& config : configs) {
    const auto report = replay(trace.value(), config.link,
                               config.background);
    std::printf("%-34s %10.1f %12.1f %14llu\n", config.name,
                report.waiting_seconds, report.elapsed_seconds,
                static_cast<unsigned long long>(report.payload_bytes));
  }
  std::printf("\nthe trace format is plain text — edit the scenario, rerun, "
              "compare. (See core/trace.hpp.)\n");
  return 0;
}
