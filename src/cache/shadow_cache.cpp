#include "cache/shadow_cache.hpp"

#include "telemetry/registry.hpp"

namespace shadow::cache {

namespace {
// Process-wide cache telemetry, summed over every ShadowCache instance
// (per-instance numbers stay in CacheStats). The invariant suite checks
// cache.lookups == cache.hits + cache.misses.
struct CacheMetrics {
  telemetry::Counter& lookups;
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& puts;
  telemetry::Counter& put_bytes;
  telemetry::Counter& evictions;
  telemetry::Counter& rejected;
  telemetry::Counter& digest_puts;
  telemetry::Histogram& entry_bytes;

  static CacheMetrics& get() {
    auto& r = telemetry::Registry::global();
    static CacheMetrics m{r.counter("cache.lookups"),
                          r.counter("cache.hits"),
                          r.counter("cache.misses"),
                          r.counter("cache.puts"),
                          r.counter("cache.put_bytes"),
                          r.counter("cache.evictions"),
                          r.counter("cache.rejected"),
                          r.counter("cache.digest_puts"),
                          r.histogram("cache.entry_bytes")};
    return m;
  }
};
}  // namespace

const char* eviction_policy_name(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kLargestFirst: return "largest-first";
  }
  return "?";
}

ShadowCache::ShadowCache(u64 byte_budget, EvictionPolicy policy)
    : byte_budget_(byte_budget), policy_(policy) {}

std::unordered_map<std::string, CacheEntry>::iterator
ShadowCache::pick_victim() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (victim == entries_.end()) {
      victim = it;
      continue;
    }
    switch (policy_) {
      case EvictionPolicy::kLru:
        if (it->second.last_access < victim->second.last_access) victim = it;
        break;
      case EvictionPolicy::kFifo:
        if (it->second.inserted_at < victim->second.inserted_at) victim = it;
        break;
      case EvictionPolicy::kLargestFirst:
        // Ranked by what eviction actually frees: a digest entry for a
        // huge file charges only its signature, so it ranks small.
        if (it->second.charge() > victim->second.charge()) {
          victim = it;
        }
        break;
    }
  }
  return victim;
}

void ShadowCache::make_room(std::size_t incoming_size) {
  if (byte_budget_ == 0) return;
  while (!entries_.empty() && bytes_used_ + incoming_size > byte_budget_) {
    auto victim = pick_victim();
    bytes_used_ -= victim->second.charge();
    entries_.erase(victim);
    ++stats_.evictions;
    CacheMetrics::get().evictions.add();
  }
}

Status ShadowCache::put(const std::string& key, u64 version,
                        std::string content, u32 crc) {
  ++stats_.puts;
  CacheMetrics& metrics = CacheMetrics::get();
  metrics.puts.add();
  metrics.put_bytes.add(content.size());
  metrics.entry_bytes.observe(content.size());
  ++tick_;
  if (byte_budget_ != 0 && content.size() > byte_budget_) {
    // The file alone exceeds the whole budget: refuse (best-effort).
    erase(key);
    ++stats_.rejected;
    metrics.rejected.add();
    return Error{ErrorCode::kResourceExhausted,
                 "content larger than cache budget"};
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_used_ -= it->second.charge();
    make_room(content.size());
    it->second.kind = EntryKind::kContent;
    it->second.signature = cdc::Signature{};
    it->second.content = std::move(content);
    it->second.version = version;
    it->second.crc = crc;
    it->second.last_access = tick_;
    bytes_used_ += it->second.charge();
    return Status();
  }
  make_room(content.size());
  CacheEntry entry;
  entry.key = key;
  entry.version = version;
  entry.crc = crc;
  entry.last_access = tick_;
  entry.inserted_at = tick_;
  entry.content = std::move(content);
  bytes_used_ += entry.charge();
  entries_.emplace(key, std::move(entry));
  return Status();
}

Status ShadowCache::put_digest(const std::string& key, u64 version,
                               cdc::Signature signature, u32 crc) {
  ++stats_.puts;
  CacheMetrics& metrics = CacheMetrics::get();
  metrics.puts.add();
  metrics.digest_puts.add();
  const std::size_t charge =
      sizeof(cdc::ChunkerParams) +
      signature.chunks.size() * sizeof(cdc::ChunkDigest);
  metrics.put_bytes.add(charge);
  metrics.entry_bytes.observe(charge);
  ++tick_;
  if (byte_budget_ != 0 && charge > byte_budget_) {
    erase(key);
    ++stats_.rejected;
    metrics.rejected.add();
    return Error{ErrorCode::kResourceExhausted,
                 "signature larger than cache budget"};
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_used_ -= it->second.charge();
    make_room(charge);
    it->second.kind = EntryKind::kDigest;
    it->second.content.clear();
    it->second.content.shrink_to_fit();
    it->second.signature = std::move(signature);
    it->second.version = version;
    it->second.crc = crc;
    it->second.last_access = tick_;
    bytes_used_ += it->second.charge();
    return Status();
  }
  make_room(charge);
  CacheEntry entry;
  entry.key = key;
  entry.kind = EntryKind::kDigest;
  entry.signature = std::move(signature);
  entry.version = version;
  entry.crc = crc;
  entry.last_access = tick_;
  entry.inserted_at = tick_;
  bytes_used_ += entry.charge();
  entries_.emplace(key, std::move(entry));
  return Status();
}

Result<const CacheEntry*> ShadowCache::get(const std::string& key) {
  ++tick_;
  CacheMetrics& metrics = CacheMetrics::get();
  metrics.lookups.add();
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    metrics.misses.add();
    return Error{ErrorCode::kCacheMiss, "not cached: " + key};
  }
  ++stats_.hits;
  metrics.hits.add();
  it->second.last_access = tick_;
  return &it->second;
}

std::optional<u64> ShadowCache::version_of(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.version;
}

const CacheEntry* ShadowCache::peek(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

ShadowCache::DigestStats ShadowCache::digest_stats() const {
  DigestStats stats;
  for (const auto& [key, entry] : entries_) {
    if (entry.kind != EntryKind::kDigest) continue;
    ++stats.entries;
    stats.resident_bytes += entry.charge();
    stats.represented_bytes += entry.represented_bytes();
  }
  return stats;
}

void ShadowCache::erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.charge();
  entries_.erase(it);
}

bool ShadowCache::evict_one() {
  auto victim = pick_victim();
  if (victim == entries_.end()) return false;
  bytes_used_ -= victim->second.charge();
  entries_.erase(victim);
  ++stats_.evictions;
  CacheMetrics::get().evictions.add();
  return true;
}

void ShadowCache::clear() {
  entries_.clear();
  bytes_used_ = 0;
}

void ShadowCache::encode(BufWriter& out) const {
  out.put_varint(tick_);
  out.put_varint(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.put_string(key);
    out.put_varint(entry.version);
    out.put_u32(entry.crc);
    out.put_varint(entry.last_access);
    out.put_varint(entry.inserted_at);
    out.put_u8(static_cast<u8>(entry.kind));
    if (entry.kind == EntryKind::kDigest) {
      entry.signature.encode(out);
    } else {
      out.put_string(entry.content);
    }
  }
}

Status ShadowCache::restore(BufReader& in, bool with_kinds) {
  clear();
  SHADOW_ASSIGN_OR_RETURN(tick, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  if (count > in.remaining()) {
    return Error{ErrorCode::kProtocolError, "entry count exceeds data"};
  }
  tick_ = tick;
  for (u64 i = 0; i < count; ++i) {
    CacheEntry entry;
    SHADOW_ASSIGN_OR_RETURN(key, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(version, in.get_varint());
    SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
    SHADOW_ASSIGN_OR_RETURN(last_access, in.get_varint());
    SHADOW_ASSIGN_OR_RETURN(inserted_at, in.get_varint());
    entry.key = key;
    entry.version = version;
    entry.crc = crc;
    entry.last_access = last_access;
    entry.inserted_at = inserted_at;
    u8 kind = static_cast<u8>(EntryKind::kContent);
    if (with_kinds) {
      SHADOW_ASSIGN_OR_RETURN(k, in.get_u8());
      kind = k;
    }
    if (kind > static_cast<u8>(EntryKind::kDigest)) {
      return Error{ErrorCode::kProtocolError, "bad cache entry kind"};
    }
    entry.kind = static_cast<EntryKind>(kind);
    if (entry.kind == EntryKind::kDigest) {
      SHADOW_ASSIGN_OR_RETURN(sig, cdc::Signature::decode(in));
      entry.signature = std::move(sig);
    } else {
      SHADOW_ASSIGN_OR_RETURN(content, in.get_string());
      entry.content = std::move(content);
    }
    bytes_used_ += entry.charge();
    entries_.emplace(std::move(key), std::move(entry));
  }
  make_room(0);  // trim if the snapshot exceeds the configured budget
  return Status();
}

void ShadowCache::set_byte_budget(u64 budget) {
  byte_budget_ = budget;
  make_room(0);
}

}  // namespace shadow::cache
