// Server-side shadow file cache (paper §5.1).
//
// "Caching is a best effort storage system": entries may be evicted at any
// time under the disk-space budget, and the protocol survives — the server
// just asks for a full file instead of a delta. The remote host decides
// how much disk to devote and which files to remove first; we expose the
// budget and three eviction policies so the ablation bench can compare
// them.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

#include "cdc/signature.hpp"
#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::cache {

enum class EvictionPolicy : u8 {
  kLru = 0,           // least recently used first
  kFifo = 1,          // oldest insertion first
  kLargestFirst = 2,  // biggest file first (frees space fastest)
};

const char* eviction_policy_name(EvictionPolicy policy);

/// How a cached version is held. A digest entry is the CDC codec's
/// memory model (docs/DELTAS.md): the server keeps only the version's
/// chunk-digest signature — O(digests) resident, not O(bytes) — and
/// advances it from CDC deltas without ever materializing the file.
enum class EntryKind : u8 {
  kContent = 0,  // full bytes resident
  kDigest = 1,   // chunk-digest signature only
};

struct CacheEntry {
  std::string key;      // cache key ("<domain>/<shadow-id>")
  std::string content;  // kContent: cached file content (else empty)
  u64 version = 0;      // client version number this entry equals
  u32 crc = 0;          // fingerprint of the version's content
  u64 last_access = 0;  // logical tick of last get/put
  u64 inserted_at = 0;  // logical tick of first insertion
  EntryKind kind = EntryKind::kContent;
  cdc::Signature signature;  // kDigest: the version's chunk digests

  /// Bytes this entry charges against the cache budget.
  std::size_t charge() const {
    return kind == EntryKind::kDigest ? signature.digest_bytes()
                                      : content.size();
  }
  /// Content bytes the entry REPRESENTS (= charge() for kContent; the
  /// described file size for kDigest).
  u64 represented_bytes() const {
    return kind == EntryKind::kDigest ? signature.total_bytes()
                                      : content.size();
  }
  bool has_bytes() const { return kind == EntryKind::kContent; }
};

struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 puts = 0;
  u64 evictions = 0;
  u64 rejected = 0;  // puts refused because the item alone exceeds budget

  double hit_rate() const {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ShadowCache {
 public:
  /// `byte_budget` caps total cached content bytes; 0 means unlimited.
  explicit ShadowCache(u64 byte_budget = 0,
                       EvictionPolicy policy = EvictionPolicy::kLru);

  /// Insert or replace. Evicts other entries as needed; if the content
  /// alone exceeds the budget the put is refused (best-effort: the file
  /// simply is not cached) and kResourceExhausted is returned.
  Status put(const std::string& key, u64 version, std::string content,
             u32 crc);

  /// Insert or replace with a digest-only entry: the cache charges
  /// signature.digest_bytes() (not the file size) against the budget.
  /// `crc` is the whole-file fingerprint of the described content.
  Status put_digest(const std::string& key, u64 version,
                    cdc::Signature signature, u32 crc);

  /// Look up; counts a hit/miss and refreshes recency.
  Result<const CacheEntry*> get(const std::string& key);

  /// Version held for a key without touching recency (used when deciding
  /// which base version to request from a client).
  std::optional<u64> version_of(const std::string& key) const;
  /// Entry lookup without stats or recency side effects (nullptr when
  /// absent) — for flow-control decisions that are not real accesses.
  const CacheEntry* peek(const std::string& key) const;
  bool contains(const std::string& key) const {
    return entries_.count(key) != 0;
  }

  void erase(const std::string& key);
  /// Evict a specific entry as if under pressure (failure injection).
  bool evict_one();
  void clear();

  u64 bytes_used() const { return bytes_used_; }
  u64 byte_budget() const { return byte_budget_; }

  /// Digest-entry accounting for telemetry and the CDC ablation: how many
  /// entries are digest-only, what they cost resident, and how many
  /// content bytes they stand in for (the O(bytes) a content cache would
  /// have spent).
  struct DigestStats {
    u64 entries = 0;
    u64 resident_bytes = 0;     // signature bytes charged to the budget
    u64 represented_bytes = 0;  // file bytes the signatures describe
  };
  DigestStats digest_stats() const;
  void set_byte_budget(u64 budget);
  std::size_t entry_count() const { return entries_.size(); }
  EvictionPolicy policy() const { return policy_; }
  const CacheStats& stats() const { return stats_; }

  /// Checkpoint the cached CONTENT (entries + recency clock; statistics
  /// and configuration are not part of the snapshot).
  void encode(BufWriter& out) const;
  /// Restore entries into this cache (replacing current content); the
  /// budget/policy stay as configured, and an over-budget snapshot is
  /// trimmed by the usual eviction. `with_kinds` is false when reading a
  /// pre-CDC snapshot (server snapshot v3 and earlier): every entry is
  /// then a content entry with no kind byte.
  Status restore(BufReader& in, bool with_kinds = true);

 private:
  /// Pick the victim according to the policy; returns entries_.end() when
  /// the cache is empty.
  std::unordered_map<std::string, CacheEntry>::iterator pick_victim();
  void make_room(std::size_t incoming_size);

  std::unordered_map<std::string, CacheEntry> entries_;
  u64 byte_budget_;
  u64 bytes_used_ = 0;
  u64 tick_ = 0;
  EvictionPolicy policy_;
  CacheStats stats_;
};

}  // namespace shadow::cache
