// Server-side shadow file cache (paper §5.1).
//
// "Caching is a best effort storage system": entries may be evicted at any
// time under the disk-space budget, and the protocol survives — the server
// just asks for a full file instead of a delta. The remote host decides
// how much disk to devote and which files to remove first; we expose the
// budget and three eviction policies so the ablation bench can compare
// them.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::cache {

enum class EvictionPolicy : u8 {
  kLru = 0,           // least recently used first
  kFifo = 1,          // oldest insertion first
  kLargestFirst = 2,  // biggest file first (frees space fastest)
};

const char* eviction_policy_name(EvictionPolicy policy);

struct CacheEntry {
  std::string key;      // cache key ("<domain>/<shadow-id>")
  std::string content;  // cached file content
  u64 version = 0;      // client version number this content equals
  u32 crc = 0;          // fingerprint of content
  u64 last_access = 0;  // logical tick of last get/put
  u64 inserted_at = 0;  // logical tick of first insertion
};

struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 puts = 0;
  u64 evictions = 0;
  u64 rejected = 0;  // puts refused because the item alone exceeds budget

  double hit_rate() const {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ShadowCache {
 public:
  /// `byte_budget` caps total cached content bytes; 0 means unlimited.
  explicit ShadowCache(u64 byte_budget = 0,
                       EvictionPolicy policy = EvictionPolicy::kLru);

  /// Insert or replace. Evicts other entries as needed; if the content
  /// alone exceeds the budget the put is refused (best-effort: the file
  /// simply is not cached) and kResourceExhausted is returned.
  Status put(const std::string& key, u64 version, std::string content,
             u32 crc);

  /// Look up; counts a hit/miss and refreshes recency.
  Result<const CacheEntry*> get(const std::string& key);

  /// Version held for a key without touching recency (used when deciding
  /// which base version to request from a client).
  std::optional<u64> version_of(const std::string& key) const;
  bool contains(const std::string& key) const {
    return entries_.count(key) != 0;
  }

  void erase(const std::string& key);
  /// Evict a specific entry as if under pressure (failure injection).
  bool evict_one();
  void clear();

  u64 bytes_used() const { return bytes_used_; }
  u64 byte_budget() const { return byte_budget_; }
  void set_byte_budget(u64 budget);
  std::size_t entry_count() const { return entries_.size(); }
  EvictionPolicy policy() const { return policy_; }
  const CacheStats& stats() const { return stats_; }

  /// Checkpoint the cached CONTENT (entries + recency clock; statistics
  /// and configuration are not part of the snapshot).
  void encode(BufWriter& out) const;
  /// Restore entries into this cache (replacing current content); the
  /// budget/policy stay as configured, and an over-budget snapshot is
  /// trimmed by the usual eviction.
  Status restore(BufReader& in);

 private:
  /// Pick the victim according to the policy; returns entries_.end() when
  /// the cache is empty.
  std::unordered_map<std::string, CacheEntry>::iterator pick_victim();
  void make_room(std::size_t incoming_size);

  std::unordered_map<std::string, CacheEntry> entries_;
  u64 byte_budget_;
  u64 bytes_used_ = 0;
  u64 tick_ = 0;
  EvictionPolicy policy_;
  CacheStats stats_;
};

}  // namespace shadow::cache
