#include "cdc/cdc_delta.hpp"

#include <unordered_map>

#include "util/crc32.hpp"

namespace shadow::cdc {

namespace {

/// digest.map_key() → index of first chunk with that digest. Collisions on
/// map_key with differing digests are resolved by the full struct compare.
std::unordered_multimap<u64, std::size_t> index_chunks(
    const std::vector<ChunkDigest>& chunks) {
  std::unordered_multimap<u64, std::size_t> index;
  index.reserve(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    index.emplace(chunks[i].map_key(), i);
  }
  return index;
}

std::size_t find_chunk(const std::unordered_multimap<u64, std::size_t>& index,
                       const std::vector<ChunkDigest>& chunks,
                       const ChunkDigest& want) {
  auto [lo, hi] = index.equal_range(want.map_key());
  for (auto it = lo; it != hi; ++it) {
    if (chunks[it->second] == want) return it->second;
  }
  return chunks.size();  // not found
}

}  // namespace

CdcDelta CdcDelta::compute(const Signature& base, std::string_view target) {
  CdcDelta d;
  d.params = base.params.valid() ? base.params : ChunkerParams{};
  d.target_crc = crc32(reinterpret_cast<const u8*>(target.data()),
                       target.size());
  d.target_bytes = target.size();
  const auto index = index_chunks(base.chunks);
  const std::vector<ChunkSpan> spans = chunk_spans(target, d.params);
  d.ops.reserve(spans.size());
  for (const ChunkSpan& s : spans) {
    const std::string_view chunk = target.substr(s.offset, s.length);
    const ChunkDigest digest = digest_chunk(chunk);
    CdcOp op;
    if (find_chunk(index, base.chunks, digest) < base.chunks.size()) {
      op.kind = CdcOp::Kind::kCopy;
      op.digest = digest;
    } else {
      op.kind = CdcOp::Kind::kLiteral;
      op.literal = std::string(chunk);
    }
    d.ops.push_back(std::move(op));
  }
  return d;
}

Result<std::string> CdcDelta::apply(std::string_view base) const {
  // Resolve copy digests against the base bytes: chunk the base with the
  // delta's params and index spans by digest.
  std::vector<ChunkDigest> base_digests;
  std::vector<ChunkSpan> base_spans;
  if (has_copies()) {
    if (!params.valid()) {
      return Error{ErrorCode::kProtocolError, "cdc delta: bad params"};
    }
    base_spans = chunk_spans(base, params);
    base_digests.reserve(base_spans.size());
    for (const ChunkSpan& s : base_spans) {
      base_digests.push_back(digest_chunk(base.substr(s.offset, s.length)));
    }
  }
  const auto index = index_chunks(base_digests);
  std::string out;
  out.reserve(target_bytes);
  for (const CdcOp& op : ops) {
    if (op.kind == CdcOp::Kind::kLiteral) {
      out.append(op.literal);
      continue;
    }
    const std::size_t i = find_chunk(index, base_digests, op.digest);
    if (i >= base_digests.size()) {
      return Error{ErrorCode::kVersionMismatch,
                   "cdc delta copies a chunk the base does not have"};
    }
    out.append(base.substr(base_spans[i].offset, base_spans[i].length));
  }
  const u32 actual = crc32(reinterpret_cast<const u8*>(out.data()),
                           out.size());
  if (out.size() != target_bytes || actual != target_crc) {
    return Error{ErrorCode::kVersionMismatch,
                 "cdc apply fails the target CRC"};
  }
  return out;
}

Result<Signature> CdcDelta::signature_after(const Signature& base) const {
  const auto index = index_chunks(base.chunks);
  Signature next;
  next.params = params;
  next.chunks.reserve(ops.size());
  u64 total = 0;
  u32 crc = 0;
  for (const CdcOp& op : ops) {
    ChunkDigest digest;
    if (op.kind == CdcOp::Kind::kCopy) {
      if (find_chunk(index, base.chunks, op.digest) >= base.chunks.size()) {
        return Error{ErrorCode::kVersionMismatch,
                     "cdc delta copies a chunk the base does not have"};
      }
      digest = op.digest;
    } else {
      digest = digest_chunk(op.literal);
    }
    crc = crc32_combine(crc, digest.crc, digest.length);
    total += digest.length;
    next.chunks.push_back(digest);
  }
  // The composed CRC must equal the sender's whole-file CRC — the
  // digest-only analogue of the verified apply.
  if (total != target_bytes || crc != target_crc) {
    return Error{ErrorCode::kVersionMismatch,
                 "cdc signature advance fails the target CRC"};
  }
  return next;
}

bool CdcDelta::has_copies() const {
  for (const CdcOp& op : ops) {
    if (op.kind == CdcOp::Kind::kCopy) return true;
  }
  return false;
}

u64 CdcDelta::literal_bytes() const {
  u64 total = 0;
  for (const CdcOp& op : ops) {
    if (op.kind == CdcOp::Kind::kLiteral) total += op.literal.size();
  }
  return total;
}

u64 CdcDelta::copied_bytes() const {
  u64 total = 0;
  for (const CdcOp& op : ops) {
    if (op.kind == CdcOp::Kind::kCopy) total += op.digest.length;
  }
  return total;
}

std::size_t CdcDelta::wire_size() const {
  BufWriter w;
  encode(w);
  return w.size();
}

void CdcDelta::encode(BufWriter& out) const {
  out.put_varint(params.seed);
  out.put_varint(params.min_bytes);
  out.put_varint(params.avg_bytes);
  out.put_varint(params.max_bytes);
  out.put_u32(target_crc);
  out.put_varint(target_bytes);
  out.put_varint(ops.size());
  for (const CdcOp& op : ops) {
    out.put_u8(static_cast<u8>(op.kind));
    if (op.kind == CdcOp::Kind::kCopy) {
      out.put_varint(op.digest.length);
      out.put_u32(op.digest.crc);
      out.put_u64(op.digest.fnv);
    } else {
      out.put_string(op.literal);
    }
  }
}

Result<CdcDelta> CdcDelta::decode(BufReader& in) {
  CdcDelta d;
  SHADOW_ASSIGN_OR_RETURN(seed, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(min_bytes, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(avg_bytes, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(max_bytes, in.get_varint());
  d.params.seed = seed;
  d.params.min_bytes = static_cast<u32>(min_bytes);
  d.params.avg_bytes = static_cast<u32>(avg_bytes);
  d.params.max_bytes = static_cast<u32>(max_bytes);
  if (min_bytes > 0xFFFFFFFFull || avg_bytes > 0xFFFFFFFFull ||
      max_bytes > 0xFFFFFFFFull || !d.params.valid()) {
    return Error{ErrorCode::kProtocolError, "cdc delta: bad chunker params"};
  }
  SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
  d.target_crc = crc;
  SHADOW_ASSIGN_OR_RETURN(target_bytes, in.get_varint());
  d.target_bytes = target_bytes;
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  // Every op costs at least 2 encoded bytes; cap the reserve accordingly
  // so junk input cannot demand a runaway allocation.
  if (count > in.remaining() / 2) {
    return Error{ErrorCode::kProtocolError, "cdc delta: op count too big"};
  }
  d.ops.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(tag, in.get_u8());
    if (tag > 1) {
      return Error{ErrorCode::kProtocolError, "cdc delta: bad op tag"};
    }
    CdcOp op;
    op.kind = static_cast<CdcOp::Kind>(tag);
    if (op.kind == CdcOp::Kind::kCopy) {
      SHADOW_ASSIGN_OR_RETURN(length, in.get_varint());
      if (length == 0 || length > d.params.max_bytes) {
        return Error{ErrorCode::kProtocolError, "cdc delta: bad copy length"};
      }
      op.digest.length = static_cast<u32>(length);
      SHADOW_ASSIGN_OR_RETURN(chunk_crc, in.get_u32());
      SHADOW_ASSIGN_OR_RETURN(fnv, in.get_u64());
      op.digest.crc = chunk_crc;
      op.digest.fnv = fnv;
    } else {
      SHADOW_ASSIGN_OR_RETURN(literal, in.get_string());
      if (literal.size() > d.params.max_bytes) {
        return Error{ErrorCode::kProtocolError,
                     "cdc delta: literal exceeds max chunk size"};
      }
      op.literal = std::move(literal);
    }
    d.ops.push_back(std::move(op));
  }
  return d;
}

}  // namespace shadow::cdc
