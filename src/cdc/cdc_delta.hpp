// The CDC delta format: a chunk-granular op sequence reconciling a target
// file against a base the receiver may hold only as a Signature.
//
//   Copy{digest}     — the target chunk already exists in the base; the
//                      receiver resolves bytes (content mode) or just the
//                      digest (digest-only mode) from its base.
//   Literal{bytes}   — a chunk the base does not have, shipped verbatim.
//
// Exactly one op per target chunk, in target order. That discipline is
// what makes the digest-only server possible: `signature_after` maps each
// op to one chunk digest — copies are looked up in the base signature,
// literals are digested — so the server advances its signature and the
// combined whole-file CRC without ever materializing the file, while
// `apply` rebuilds real bytes for a receiver that has the base content.
// Both paths verify the result against `target_crc` (fail closed).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "cdc/signature.hpp"
#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::cdc {

struct CdcOp {
  enum class Kind : u8 { kCopy = 0, kLiteral = 1 };

  Kind kind = Kind::kLiteral;
  ChunkDigest digest;   // kCopy: which base chunk
  std::string literal;  // kLiteral: the chunk bytes

  bool operator==(const CdcOp&) const = default;
};

struct CdcDelta {
  ChunkerParams params;
  std::vector<CdcOp> ops;
  u32 target_crc = 0;   // whole-file CRC of the reconstructed target
  u64 target_bytes = 0; // size of the reconstructed target

  /// Diff `target` against `base`'s signature. The base CONTENT is not
  /// needed — only its digests — so the client can answer a digest-hinted
  /// pull from any retained version. An empty base signature yields an
  /// all-literal delta (first transfer of a CDC-tracked file).
  static CdcDelta compute(const Signature& base, std::string_view target);

  /// Rebuild the target from the base bytes. Chunks the base with the
  /// delta's own params to resolve copy digests; CRC-verifies the result.
  Result<std::string> apply(std::string_view base) const;

  /// Digest-only advance: the signature of the target, computed from the
  /// base SIGNATURE alone. Fails if a copy references a digest the base
  /// does not hold (stale base — re-pull full).
  Result<Signature> signature_after(const Signature& base) const;

  /// True when any op copies from the base (an all-literal delta applies
  /// against anything, including no base at all).
  bool has_copies() const;

  u64 literal_bytes() const;
  u64 copied_bytes() const;

  std::size_t wire_size() const;
  void encode(BufWriter& out) const;
  static Result<CdcDelta> decode(BufReader& in);

  bool operator==(const CdcDelta&) const = default;
};

}  // namespace shadow::cdc
