#include "cdc/chunker.hpp"

#include <array>

namespace shadow::cdc {

namespace {

// SplitMix64 — the same mixer Rng uses for seeding; good enough to turn
// (seed, byte value) into 256 well-spread gear constants.
u64 splitmix64(u64& state) {
  u64 z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::array<u64, 256> make_gear_table(u64 seed) {
  std::array<u64, 256> table{};
  u64 state = seed;
  for (auto& g : table) g = splitmix64(state);
  return table;
}

bool is_power_of_two(u32 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

bool ChunkerParams::valid() const {
  return min_bytes >= 64 && is_power_of_two(avg_bytes) &&
         min_bytes < avg_bytes && avg_bytes <= max_bytes &&
         max_bytes <= (16u << 20);
}

std::vector<ChunkSpan> chunk_spans(std::string_view data,
                                   const ChunkerParams& params) {
  std::vector<ChunkSpan> spans;
  if (data.empty()) return spans;
  // Gear tables are cheap (2 KiB) but rebuilding one per call would
  // dominate small diffs; cache the last seed used. Thread-local so the
  // sharded server's per-core loops never contend.
  thread_local u64 cached_seed = 0;
  thread_local std::array<u64, 256> gear{};
  thread_local bool gear_ready = false;
  if (!gear_ready || cached_seed != params.seed) {
    gear = make_gear_table(params.seed);
    cached_seed = params.seed;
    gear_ready = true;
  }

  const u64 mask = params.avg_bytes - 1;  // avg is a power of two
  const auto* bytes = reinterpret_cast<const u8*>(data.data());
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t remaining = data.size() - start;
    if (remaining <= params.min_bytes) {
      spans.push_back({start, remaining});
      break;
    }
    const std::size_t limit =
        remaining < params.max_bytes ? remaining : params.max_bytes;
    // Gear hash: h = (h << 1) + gear[byte]. The top bits accumulate
    // content history; masking against avg-1 gives an expected cut every
    // `avg` bytes past the minimum.
    u64 h = 0;
    std::size_t cut = limit;  // force-cut at max if no boundary fires
    for (std::size_t i = 0; i < limit; ++i) {
      h = (h << 1) + gear[bytes[start + i]];
      if (i + 1 >= params.min_bytes && (h & mask) == 0) {
        cut = i + 1;
        break;
      }
    }
    spans.push_back({start, cut});
    start += cut;
  }
  return spans;
}

}  // namespace shadow::cdc
