// Content-defined chunking: a seeded Gear rolling hash splits a byte
// stream at content-dependent boundaries, so a local edit only moves the
// cut points near the edit — every untouched chunk keeps its identity and
// can be referenced by digest instead of re-sent. This is the substrate of
// the CDC delta codec (docs/DELTAS.md): the server remembers only chunk
// digests, the client ships changed chunks.
//
// The chunker is deterministic for a given (seed, min, avg, max): both
// ends of the wire and every replay cut the same boundaries, which the
// conformance suite pins.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace shadow::cdc {

/// Chunking parameters. They ride inside signatures and deltas so the two
/// sides always agree on where boundaries fall; a signature cut with one
/// seed is useless against a delta cut with another.
struct ChunkerParams {
  u64 seed = 0x5eedc0de;  // gear-table seed
  u32 min_bytes = 2048;   // no boundary before this many bytes
  u32 avg_bytes = 8192;   // expected chunk size; must be a power of two
  u32 max_bytes = 65536;  // hard cut at this many bytes

  /// min >= 64, avg a power of two, min < avg <= max, max bounded so a
  /// hostile delta cannot demand absurd chunk allocations.
  bool valid() const;

  bool operator==(const ChunkerParams&) const = default;
};

/// One chunk within a buffer.
struct ChunkSpan {
  std::size_t offset = 0;
  std::size_t length = 0;

  bool operator==(const ChunkSpan&) const = default;
};

/// Cut `data` into content-defined chunks. Spans are contiguous, cover the
/// whole buffer, and every span except possibly the last is at least
/// `min_bytes` long. Empty input yields no spans. Params must be valid().
std::vector<ChunkSpan> chunk_spans(std::string_view data,
                                   const ChunkerParams& params);

}  // namespace shadow::cdc
