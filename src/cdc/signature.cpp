#include "cdc/signature.hpp"

#include "util/crc32.hpp"

namespace shadow::cdc {

u64 fnv1a64(const u8* data, std::size_t len) {
  u64 h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

ChunkDigest digest_chunk(std::string_view chunk) {
  ChunkDigest d;
  d.length = static_cast<u32>(chunk.size());
  d.crc = crc32(reinterpret_cast<const u8*>(chunk.data()), chunk.size());
  d.fnv = fnv1a64(chunk);
  return d;
}

u64 Signature::total_bytes() const {
  u64 total = 0;
  for (const ChunkDigest& c : chunks) total += c.length;
  return total;
}

u32 Signature::whole_crc() const {
  u32 crc = 0;  // crc32 of the empty string
  for (const ChunkDigest& c : chunks) {
    crc = crc32_combine(crc, c.crc, c.length);
  }
  return crc;
}

std::size_t Signature::digest_bytes() const {
  // length + crc + fnv per chunk, plus the params header. This is the
  // honest resident cost a digest-only cache entry charges.
  return sizeof(ChunkerParams) + chunks.size() * sizeof(ChunkDigest);
}

void Signature::encode(BufWriter& out) const {
  out.put_varint(params.seed);
  out.put_varint(params.min_bytes);
  out.put_varint(params.avg_bytes);
  out.put_varint(params.max_bytes);
  out.put_varint(chunks.size());
  for (const ChunkDigest& c : chunks) {
    out.put_varint(c.length);
    out.put_u32(c.crc);
    out.put_u64(c.fnv);
  }
}

Result<Signature> Signature::decode(BufReader& in) {
  Signature sig;
  SHADOW_ASSIGN_OR_RETURN(seed, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(min_bytes, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(avg_bytes, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(max_bytes, in.get_varint());
  sig.params.seed = seed;
  sig.params.min_bytes = static_cast<u32>(min_bytes);
  sig.params.avg_bytes = static_cast<u32>(avg_bytes);
  sig.params.max_bytes = static_cast<u32>(max_bytes);
  if (min_bytes > 0xFFFFFFFFull || avg_bytes > 0xFFFFFFFFull ||
      max_bytes > 0xFFFFFFFFull || !sig.params.valid()) {
    return Error{ErrorCode::kProtocolError, "bad chunker params"};
  }
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  // Each digest costs at least 13 encoded bytes; a count that large in a
  // small buffer is corruption, and bounding it here keeps a hostile
  // count from triggering a runaway reserve.
  if (count > in.remaining() / 13) {
    return Error{ErrorCode::kProtocolError, "signature chunk count too big"};
  }
  sig.chunks.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    ChunkDigest c;
    SHADOW_ASSIGN_OR_RETURN(length, in.get_varint());
    if (length == 0 || length > sig.params.max_bytes) {
      return Error{ErrorCode::kProtocolError, "bad chunk length"};
    }
    c.length = static_cast<u32>(length);
    SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
    SHADOW_ASSIGN_OR_RETURN(fnv, in.get_u64());
    c.crc = crc;
    c.fnv = fnv;
    sig.chunks.push_back(c);
  }
  return sig;
}

Signature signature_of(std::string_view data, const ChunkerParams& params) {
  Signature sig;
  sig.params = params;
  const std::vector<ChunkSpan> spans = chunk_spans(data, params);
  sig.chunks.reserve(spans.size());
  for (const ChunkSpan& s : spans) {
    sig.chunks.push_back(digest_chunk(data.substr(s.offset, s.length)));
  }
  return sig;
}

}  // namespace shadow::cdc
