// Chunk-digest signatures: the server-side representation of a CDC-cached
// file. A Signature is the ordered list of (length, CRC32, FNV-1a64)
// digests of a file's content-defined chunks plus the params that cut
// them — everything needed to reconcile a new version against the file
// WITHOUT the file's bytes. Per-user server memory for a CDC file is
// O(digests), not O(bytes) (ROADMAP: the enabler for millions of cached
// files).
//
// The digest composes a weak and a strong hash: CRC32 doubles as the
// building block for the whole-file fingerprint (chunk CRCs combine into
// the file CRC via crc32_combine, so a digest-only server still verifies
// content integrity end to end), and FNV-1a64 guards against CRC
// collisions when matching chunks.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "cdc/chunker.hpp"
#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::cdc {

/// FNV-1a 64-bit over a byte range (the strong half of a chunk digest).
u64 fnv1a64(const u8* data, std::size_t len);
inline u64 fnv1a64(std::string_view s) {
  return fnv1a64(reinterpret_cast<const u8*>(s.data()), s.size());
}

/// Identity of one chunk: length + weak hash + strong hash. Two chunks
/// with equal digests are treated as byte-identical; the conformance
/// sweep and the whole-file CRC check backstop that assumption.
struct ChunkDigest {
  u32 length = 0;
  u32 crc = 0;
  u64 fnv = 0;

  /// Stable key for hash-map lookups during delta compute/apply.
  u64 map_key() const {
    return fnv ^ (static_cast<u64>(crc) << 32 | length);
  }

  bool operator==(const ChunkDigest&) const = default;
};

ChunkDigest digest_chunk(std::string_view chunk);

/// Ordered chunk digests of a whole file.
struct Signature {
  ChunkerParams params;
  std::vector<ChunkDigest> chunks;

  /// Total content bytes the signature describes.
  u64 total_bytes() const;
  /// CRC32 of the whole described content, composed from the chunk CRCs
  /// (no content bytes needed).
  u32 whole_crc() const;
  /// Resident cost of holding this signature — what a digest-only cache
  /// entry charges against the byte budget.
  std::size_t digest_bytes() const;

  void encode(BufWriter& out) const;
  static Result<Signature> decode(BufReader& in);

  bool operator==(const Signature&) const = default;
};

/// Chunk + digest `data` in one pass.
Signature signature_of(std::string_view data, const ChunkerParams& params);

}  // namespace shadow::cdc
