#include "cdc/sniff.hpp"

#include <cstddef>

#include "util/types.hpp"

namespace shadow::cdc {

bool looks_binary(std::string_view data) {
  const std::size_t window = data.size() < 8192 ? data.size() : 8192;
  if (window == 0) return false;
  std::size_t opaque = 0;
  for (std::size_t i = 0; i < window; ++i) {
    const u8 b = static_cast<u8>(data[i]);
    if (b == 0) return true;  // NUL never appears in our text workloads
    const bool printable = (b >= 0x20 && b < 0x7F) || b == '\n' ||
                           b == '\r' || b == '\t';
    if (!printable) ++opaque;
  }
  return opaque * 10 > window * 3;
}

}  // namespace shadow::cdc
