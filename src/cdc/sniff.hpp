// Binariness sniff for codec crossover (docs/DELTAS.md): line-based diffs
// degrade to full transfer on binary content, so the client routes files
// that look binary to the CDC codec at a much lower size threshold.
#pragma once

#include <string_view>

namespace shadow::cdc {

/// Heuristic over the first 8 KiB: any NUL byte, or more than 30%
/// non-printable non-whitespace bytes, reads as binary. Empty input is
/// text.
bool looks_binary(std::string_view data);

}  // namespace shadow::cdc
