#include "client/shadow_client.hpp"

#include <algorithm>
#include <chrono>

#include "cdc/signature.hpp"
#include "cdc/sniff.hpp"
#include "telemetry/registry.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "vfs/path.hpp"

namespace shadow::client {

namespace {
u64 steady_micros() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

/// Per-(client, server) jitter seed: every endpoint pair gets its own
/// reproducible backoff stream (thundering-herd decorrelation).
u64 session_seed(const std::string& client, const std::string& server) {
  const std::string pair = client + "|" + server;
  return crc32(reinterpret_cast<const u8*>(pair.data()), pair.size());
}

// Workstation-side telemetry summed over every ShadowClient instance
// (per-instance numbers stay in ClientStats).
struct ClientMetrics {
  telemetry::Counter& notifies_sent;
  telemetry::Counter& updates_sent;
  telemetry::Counter& update_payload_bytes;
  telemetry::Counter& full_sent;
  telemetry::Counter& delta_sent;
  telemetry::Counter& cdc_sent;
  telemetry::Counter& pulls_received;
  telemetry::Counter& acks_received;
  telemetry::Counter& nack_full_resends;
  telemetry::Counter& session_resyncs;
  telemetry::Counter& lost_job_resubmits;
  telemetry::Counter& outputs_received;
  telemetry::Counter& output_payload_bytes;
  telemetry::Counter& output_nacks_sent;
  telemetry::Counter& output_delta_applied;
  telemetry::Counter& server_busy;
  telemetry::Counter& busy_retries;
  telemetry::Counter& heartbeats_sent;

  static ClientMetrics& get() {
    auto& r = telemetry::Registry::global();
    static ClientMetrics m{r.counter("client.notifies_sent"),
                           r.counter("client.updates_sent"),
                           r.counter("client.update_payload_bytes"),
                           r.counter("client.full_sent"),
                           r.counter("client.delta_sent"),
                           r.counter("client.cdc_sent"),
                           r.counter("client.pulls_received"),
                           r.counter("client.acks_received"),
                           r.counter("client.nack_full_resends"),
                           r.counter("client.session_resyncs"),
                           r.counter("client.lost_job_resubmits"),
                           r.counter("client.outputs_received"),
                           r.counter("client.output_payload_bytes"),
                           r.counter("client.output_nacks_sent"),
                           r.counter("client.output_delta_applied"),
                           r.counter("client.server_busy"),
                           r.counter("client.busy_retries"),
                           r.counter("client.heartbeats_sent")};
    return m;
  }
};
}  // namespace

ShadowClient::ShadowClient(std::string name, ShadowEnvironment env,
                           vfs::Cluster* cluster, std::string domain_id)
    : name_(std::move(name)),
      env_(std::move(env)),
      cluster_(cluster),
      resolver_(std::move(domain_id), cluster),
      versions_(env_.retention_limit, env_.version_storage) {}

void ShadowClient::connect(const std::string& server_name,
                           net::Transport* transport) {
  Session session;
  session.server_name = server_name;
  session.transport = transport;
  auto [it, inserted] = sessions_.insert_or_assign(server_name,
                                                   std::move(session));
  Session* raw = &it->second;
  // A snapshot restored before this connect supplies the acked-version map.
  if (auto restored = restored_server_has_.find(server_name);
      restored != restored_server_has_.end()) {
    raw->server_has = restored->second;
  }
  const u64 seed = session_seed(name_, server_name);
  // ServerBusy retries are always jittered (decorrelated recovery is the
  // point of the backoff); the retransmit/census timers follow the
  // environment knob so the historical deterministic schedules survive.
  const double jitter =
      env_.retransmit_jitter > 0 ? env_.retransmit_jitter : 0.2;
  raw->busy_backoff.set_jitter(jitter, seed);
  if (env_.retransmit_jitter > 0) {
    raw->census_backoff.set_jitter(env_.retransmit_jitter, seed ^ 0x9e3779b9u);
  }
  if (env_.reliable_session) {
    proto::ReliableChannel::Config channel_config;
    channel_config.retransmit_jitter = env_.retransmit_jitter;
    channel_config.jitter_seed = seed;
    if (env_.retransmit_initial_usec > 0) {
      channel_config.retransmit_initial = env_.retransmit_initial_usec;
    }
    if (env_.retransmit_cap_usec > 0) {
      channel_config.retransmit_cap = env_.retransmit_cap_usec;
    }
    raw->channel =
        std::make_unique<proto::ReliableChannel>(transport, channel_config);
    raw->channel->set_receiver(
        [this, raw](Bytes wire) { on_message(raw, std::move(wire)); });
    raw->channel->on_desync([this, raw] { resync_session(raw); });
    if (sim_ != nullptr) raw->channel->attach_simulator(sim_);
  } else {
    transport->set_receiver(
        [this, raw](Bytes wire) { on_message(raw, std::move(wire)); });
  }
  if (env_.default_server.empty()) env_.default_server = server_name;

  proto::Hello hello;
  hello.client_name = name_;
  hello.domain = resolver_.domain_id();
  hello.codecs = offered_codecs();
  send(raw, hello);
}

void ShadowClient::send(Session* session, const proto::Message& m) {
  Status st = session->channel != nullptr
                  ? session->channel->send(proto::encode_message(m))
                  : session->transport->send(proto::encode_message(m));
  if (!st.ok()) {
    SHADOW_WARN() << name_ << ": send to " << session->server_name
                  << " failed: " << st.to_string();
  }
}

void ShadowClient::resync_session(Session* session) {
  // The session lost messages beyond repair (or the server reset). Forget
  // what the server holds — every subsequent update is then diffed
  // against base 0, i.e. a full-file transfer, the paper's escape hatch
  // (§5.1) — and re-announce the newest version of every shadowed file so
  // whatever the lost frames carried is offered again.
  ++stats_.session_resyncs;
  ClientMetrics::get().session_resyncs.add();
  session->server_has.clear();
  session->cdc_files.clear();
  for (const auto& [key, id] : ids_) {
    auto latest = versions_.chain(key).latest();
    if (!latest.ok()) continue;
    if (env_.flow == FlowMode::kRequestDriven) {
      Status st = send_update(session, id, 0, latest.value().number);
      if (!st.ok()) {
        SHADOW_WARN() << name_ << ": resync push failed: " << st.to_string();
      }
    } else {
      proto::NotifyNewVersion notify;
      notify.file = id;
      notify.version = latest.value().number;
      notify.size = latest.value().content.size();
      notify.crc = latest.value().crc;
      ++stats_.notifies_sent;
      ClientMetrics::get().notifies_sent.add();
      send(session, notify);
    }
  }
  // Submissions the server never answered may have died with the lost
  // frames; resend them (the server dedupes on the token).
  for (const auto& [token, msg] : pending_submits_) {
    auto it = jobs_.find(token);
    if (it == jobs_.end() || it->second.server != session->server_name) {
      continue;
    }
    send(session, msg);
  }
  // Submissions the server DID answer may still be gone: a crashed server
  // whose disk lost the journal record forgets the job entirely, and the
  // client would wait for its output forever. Take a full-status census;
  // the reply names every job this server still knows, and anything of
  // ours missing from it gets resubmitted (handle(StatusReply)).
  bool awaiting_output = false;
  for (const auto& [token, view] : jobs_) {
    if (view.server == session->server_name && view.job_id != 0 &&
        !view.output_received) {
      awaiting_output = true;
    }
  }
  if (awaiting_output) {
    status_sweep_pending_.insert(session->server_name);
    proto::StatusQuery query;
    query.job_id = 0;  // everything of mine
    send(session, query);
    // The census itself rides the lossy link; retry on a (jittered)
    // backoff until its StatusReply lands.
    arm_census_retry(session);
  }
}

void ShadowClient::set_simulator(sim::Simulator* simulator) {
  sim_ = simulator;
  for (auto& [server_name, session] : sessions_) {
    if (session.channel != nullptr && sim_ != nullptr) {
      session.channel->attach_simulator(sim_);
    }
  }
}

std::size_t ShadowClient::tick() {
  std::size_t resent = 0;
  for (auto& [server_name, session] : sessions_) {
    if (session.channel != nullptr) resent += session.channel->tick();
  }
  if (sim_ != nullptr) return resent;  // timers are sim-scheduled
  const u64 now = steady_micros();
  for (auto& [server_name, session] : sessions_) {
    // Fire ServerBusy retries past their steady-clock deadline.
    std::vector<u64> due;
    for (const auto& [token, at] : session.retry_at_us) {
      if (at <= now) due.push_back(token);
    }
    for (const u64 token : due) {
      session.retry_at_us.erase(token);
      fire_retry(&session, token);
    }
    // Re-send the lost-job census if its reply never came.
    if (session.census_retry_at_us != 0 &&
        session.census_retry_at_us <= now &&
        status_sweep_pending_.count(session.server_name) != 0) {
      session.census_retry_at_us = 0;
      proto::StatusQuery query;
      query.job_id = 0;
      send(&session, query);
      arm_census_retry(&session);
    }
  }
  return resent;
}

std::size_t ShadowClient::heartbeat() {
  std::size_t sent = 0;
  for (auto& [server_name, session] : sessions_) {
    // A v0 server would log "unexpected message type" at every beat.
    if (!session.hello_done || session.server_protocol < 1) continue;
    proto::Heartbeat beat;
    beat.client_time_us = sim_ != nullptr ? sim_->now() : steady_micros();
    ++stats_.heartbeats_sent;
    ClientMetrics::get().heartbeats_sent.add();
    send(&session, beat);
    ++sent;
  }
  return sent;
}

bool ShadowClient::backing_off(const std::string& server) const {
  for (const auto& [server_name, session] : sessions_) {
    if (!server.empty() && server_name != server) continue;
    if (!session.retry_at_us.empty()) return true;
  }
  return false;
}

u32 ShadowClient::server_protocol(const std::string& server) const {
  auto it = sessions_.find(server.empty() ? env_.default_server : server);
  return it == sessions_.end() ? 0 : it->second.server_protocol;
}

void ShadowClient::arm_census_retry(Session* session) {
  const u64 delay = session->census_backoff.next();
  if (sim_ == nullptr) {
    session->census_retry_at_us = steady_micros() + delay;
    return;
  }
  if (session->census_retry_armed) return;
  session->census_retry_armed = true;
  sim_->schedule(delay, [this, session] {
    session->census_retry_armed = false;
    if (status_sweep_pending_.count(session->server_name) == 0) return;
    proto::StatusQuery query;
    query.job_id = 0;
    send(session, query);
    arm_census_retry(session);
  });
}

const proto::ReliableChannel* ShadowClient::session_channel(
    const std::string& server) const {
  auto it = sessions_.find(server.empty() ? env_.default_server : server);
  return it == sessions_.end() ? nullptr : it->second.channel.get();
}

Result<ShadowClient::Session*> ShadowClient::session_for(
    const std::string& server) {
  const std::string& target = server.empty() ? env_.default_server : server;
  auto it = sessions_.find(target);
  if (it == sessions_.end()) {
    return Error{ErrorCode::kNotFound, "not connected to server: " + target};
  }
  return &it->second;
}

void ShadowClient::on_message(Session* session, Bytes wire) {
  auto decoded = proto::decode_message(wire);
  if (!decoded.ok()) {
    SHADOW_WARN() << name_ << ": dropping malformed message from "
                  << session->server_name << ": "
                  << decoded.error().to_string();
    return;
  }
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::HelloReply> ||
                      std::is_same_v<T, proto::PullRequest> ||
                      std::is_same_v<T, proto::UpdateAck> ||
                      std::is_same_v<T, proto::SubmitReply> ||
                      std::is_same_v<T, proto::StatusReply> ||
                      std::is_same_v<T, proto::JobOutput> ||
                      std::is_same_v<T, proto::ServerBusy>) {
          handle(session, m);
        } else {
          SHADOW_WARN() << name_ << ": unexpected message from server";
        }
      },
      decoded.value());
}

void ShadowClient::handle(Session* session, const proto::HelloReply& m) {
  session->hello_done = true;
  session->server_protocol = m.protocol_version;
  // Negotiated codec set: what we offered AND what the server announced.
  // A v0 reply carries no codecs field and decodes as kLegacyCodecs.
  session->codecs = m.codecs & offered_codecs();
  // The server accepted the session: any pending Hello retry is obsolete
  // and the shed-work backoff starts over.
  session->retry_at_us.erase(0);
  session->busy_backoff.reset();
}

void ShadowClient::handle(Session* session, const proto::ServerBusy& m) {
  ++stats_.server_busy;
  ClientMetrics::get().server_busy.add();
  // Back off at least as long as the server asked, with our own jittered
  // exponential schedule on top — many shed clients must not return in
  // one synchronized burst.
  const u64 delay =
      std::max<u64>(m.retry_after_usec, session->busy_backoff.next());
  SHADOW_DEBUG() << name_ << ": " << session->server_name << " busy ("
                 << m.reason << (m.draining ? ", draining" : "")
                 << "); retrying "
                 << (m.client_job_token == 0
                         ? std::string("session")
                         : "job token " + std::to_string(m.client_job_token))
                 << " in " << delay << " us";
  if (m.client_job_token == 0) {
    // The whole session was refused (overloaded shard or drain): Hello
    // again after the delay. Work already queued behind hello_done waits
    // with us.
    session->hello_done = false;
    schedule_retry(session, 0, delay);
    return;
  }
  auto it = jobs_.find(m.client_job_token);
  if (it != jobs_.end()) {
    it->second.detail = "shed by server (" + m.reason + "); backing off";
  }
  schedule_retry(session, m.client_job_token, delay);
}

void ShadowClient::schedule_retry(Session* session, u64 token,
                                  u64 delay_us) {
  const u64 now = sim_ != nullptr ? sim_->now() : steady_micros();
  session->retry_at_us[token] = now + delay_us;
  if (sim_ == nullptr) return;  // tick() fires it past the deadline
  sim_->schedule(delay_us, [this, session, token] {
    // Cancelled (the server answered meanwhile) or superseded by a later
    // reschedule: the map is the source of truth.
    auto it = session->retry_at_us.find(token);
    if (it == session->retry_at_us.end() || it->second > sim_->now()) return;
    session->retry_at_us.erase(it);
    fire_retry(session, token);
  });
}

void ShadowClient::fire_retry(Session* session, u64 token) {
  ++stats_.busy_retries;
  ClientMetrics::get().busy_retries.add();
  if (token == 0) {
    proto::Hello hello;
    hello.client_name = name_;
    hello.domain = resolver_.domain_id();
    hello.codecs = offered_codecs();
    send(session, hello);
    return;
  }
  if (!session->hello_done) {
    // The session itself is still being refused; the submit retry waits
    // for the Hello to land rather than racing it.
    schedule_retry(session, token, session->busy_backoff.next());
    return;
  }
  auto archived = submit_archive_.find(token);
  if (archived == submit_archive_.end()) return;  // output arrived meanwhile
  send(session, archived->second);
}

Result<std::pair<std::string, std::string>> ShadowClient::translate(
    const std::string& path) const {
  if (naming::TildeForest::is_tilde_path(path)) {
    if (tilde_ == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "tilde names not configured (set_tilde): " + path};
    }
    return tilde_->locate(tilde_user_, path);
  }
  return std::make_pair(name_, path);
}

Result<naming::GlobalFileId> ShadowClient::resolve_name(
    const std::string& path) const {
  SHADOW_ASSIGN_OR_RETURN(where, translate(path));
  return resolver_.resolve(where.first, where.second);
}

Result<std::pair<naming::GlobalFileId, version::VersionNumber>>
ShadowClient::capture_version(const std::string& local_path) {
  SHADOW_ASSIGN_OR_RETURN(where, translate(local_path));
  SHADOW_ASSIGN_OR_RETURN(id, resolver_.resolve(where.first, where.second));
  SHADOW_ASSIGN_OR_RETURN(content,
                          cluster_->read_file(where.first, where.second));
  ids_[id.key()] = id;
  auto& chain = versions_.chain(id.key());
  chain.set_retention_limit(env_.retention_limit);
  // Skip a new version when the content is unchanged (re-saving without
  // edits must not spam the server).
  auto latest = chain.latest();
  if (latest.ok() && latest.value().content == content) {
    return std::make_pair(id, latest.value().number);
  }
  const auto number = chain.append(std::move(content));
  return std::make_pair(id, number);
}

Status ShadowClient::edited(const std::string& local_path) {
  SHADOW_ASSIGN_OR_RETURN(captured, capture_version(local_path));
  const auto& [id, number] = captured;
  if (!env_.background_updates) {
    return Status();  // server learns at submit time
  }
  for (auto& [server_name, session] : sessions_) {
    if (env_.flow == FlowMode::kRequestDriven) {
      // Push unprompted, diffed against what the server last acked.
      const u64 base = session.server_has.count(id.key()) != 0
                           ? session.server_has[id.key()]
                           : 0;
      SHADOW_TRY(send_update(&session, id, base, number));
    } else {
      proto::NotifyNewVersion notify;
      notify.file = id;
      notify.version = number;
      auto chain_latest = versions_.chain(id.key()).latest();
      if (chain_latest.ok()) {
        notify.size = chain_latest.value().content.size();
        notify.crc = chain_latest.value().crc;
      }
      ++stats_.notifies_sent;
      ClientMetrics::get().notifies_sent.add();
      send(&session, notify);
    }
  }
  return Status();
}

bool ShadowClient::prefer_cdc(const Session& session, const std::string& key,
                              const std::string& content) const {
  if ((session.codecs & proto::kCodecCdc) == 0) return false;
  // Sticky: the server may hold this file as digests only; any other
  // codec would force it into a full re-pull.
  if (session.cdc_files.count(key) != 0) return true;
  if (content.size() >= env_.cdc_min_bytes) return true;
  return content.size() >= env_.cdc_min_binary_bytes &&
         cdc::looks_binary(content);
}

Status ShadowClient::send_update(Session* session,
                                 const naming::GlobalFileId& file, u64 base,
                                 u64 version, bool force_cdc) {
  auto& chain = versions_.chain(file.key());
  SHADOW_ASSIGN_OR_RETURN(target, chain.get(version));

  const bool want_cdc =
      (session->codecs & proto::kCodecCdc) != 0 &&
      (force_cdc || prefer_cdc(*session, file.key(), target.content));

  diff::Delta delta;
  u64 actual_base = 0;
  bool have_delta = false;
  if (want_cdc) {
    // Chunk delta against the base's signature. The signature is derived
    // from content alone, so recomputing it from the retained base is
    // exactly what a digest-only server holds for the same version.
    cdc::Signature base_sig;
    base_sig.params = env_.cdc_params;
    u64 sig_base = 0;
    if (base != 0) {
      auto base_version = chain.get(base);
      if (base_version.ok()) {
        base_sig = cdc::signature_of(base_version.value().content,
                                     env_.cdc_params);
        sig_base = base;
      }
    }
    delta = diff::Delta::compute_cdc(base_sig, target.content);
    if (delta.needs_base()) actual_base = sig_base;
    have_delta = true;
  } else if (base != 0) {
    auto base_version = chain.get(base);
    if (base_version.ok()) {
      delta = env_.adaptive_diff
                  ? diff::Delta::compute_adaptive(
                        base_version.value().content, target.content)
                  : diff::Delta::compute(base_version.value().content,
                                         target.content, env_.algorithm);
      if (delta.needs_base()) actual_base = base;
      have_delta = true;
    }
    // Base no longer stored (§6.3.2): fall through with the full content.
  }
  if (!have_delta) {
    // First submission (or evicted base): the full-content copy is made
    // only on this path, not eagerly before every diff.
    delta = diff::Delta::make_full(target.content);
  }
  if (delta.format == diff::Delta::Format::kCdc) {
    session->cdc_files.insert(file.key());
    ++stats_.cdc_sent;
    ClientMetrics::get().cdc_sent.add();
  }

  BufWriter w;
  delta.encode(w);
  proto::Update update;
  update.file = file;
  update.base_version = actual_base;
  update.new_version = version;
  update.payload = compress::compress(w.take(), env_.codec);

  ++stats_.updates_sent;
  stats_.update_payload_bytes += update.payload.size();
  ClientMetrics& metrics = ClientMetrics::get();
  metrics.updates_sent.add();
  metrics.update_payload_bytes.add(update.payload.size());
  if (actual_base == 0) {
    ++stats_.full_sent;
    metrics.full_sent.add();
  } else {
    ++stats_.delta_sent;
    metrics.delta_sent.add();
  }
  // Charge the workstation's diff-computation time to the simulated clock
  // (a 1987 workstation took real seconds to diff a big file). The delta
  // was computed above against an immutable version, so deferring the
  // send is safe.
  if (sim_ != nullptr && actual_base != 0 &&
      env_.diff_bytes_per_second > 0) {
    const double seconds =
        static_cast<double>(target.content.size()) /
        env_.diff_bytes_per_second;
    sim_->schedule(sim::from_seconds(seconds),
                   [this, session, update = std::move(update)]() {
                     send(session, update);
                   });
    return Status();
  }
  send(session, update);
  return Status();
}

void ShadowClient::handle(Session* session, const proto::PullRequest& m) {
  ++stats_.pulls_received;
  ClientMetrics::get().pulls_received.add();
  auto& chain = versions_.chain(m.file.key());
  // Serve the requested version, or the latest if the user has moved on.
  u64 target = m.want_version;
  if (!chain.has(target)) {
    const auto latest = chain.latest_number();
    if (!latest || *latest < m.want_version) {
      SHADOW_WARN() << name_ << ": pull for unknown version "
                    << m.want_version << " of " << m.file.display();
      return;
    }
    target = *latest;
  } else if (const auto latest = chain.latest_number();
             latest && *latest > target) {
    target = *latest;  // newer content supersedes the request
  }
  const u64 base = (m.have_version != 0 && chain.has(m.have_version))
                       ? m.have_version
                       : 0;
  // A codec_hint of kCodecCdc means the server holds the base as chunk
  // digests and can apply nothing but a chunk delta against it.
  const bool force_cdc = (m.codec_hint & proto::kCodecCdc) != 0 &&
                         (session->codecs & proto::kCodecCdc) != 0;
  Status st = send_update(session, m.file, base, target, force_cdc);
  if (!st.ok()) {
    SHADOW_WARN() << name_ << ": failed to answer pull: " << st.to_string();
  }
}

void ShadowClient::handle(Session* session, const proto::UpdateAck& m) {
  ++stats_.acks_received;
  ClientMetrics::get().acks_received.add();
  if (!m.ok) {
    // The server could not apply our update (corrupt payload, wrong base
    // — a desync). Forget what it holds and resend the newest version as
    // full content: delta sync must degrade to a full-file transfer,
    // never to a corrupt shadow copy (§5.1).
    SHADOW_WARN() << name_ << ": server failed to apply update v"
                  << m.version << " of " << m.file.display() << ": "
                  << m.error << "; resending full";
    session->server_has.erase(m.file.key());
    session->cdc_files.erase(m.file.key());
    const auto latest = versions_.chain(m.file.key()).latest_number();
    if (latest) {
      ++stats_.nack_full_resends;
      ClientMetrics::get().nack_full_resends.add();
      Status st = send_update(session, m.file, 0, *latest);
      if (!st.ok()) {
        SHADOW_WARN() << name_ << ": full resend failed: " << st.to_string();
      }
    }
    return;
  }
  session->server_has[m.file.key()] = m.version;
  // §6.3.2: older versions may be GC'd once a later one is acknowledged.
  // With several servers, only GC below the minimum acked version.
  u64 min_acked = m.version;
  for (const auto& [server_name, other] : sessions_) {
    auto it = other.server_has.find(m.file.key());
    const u64 acked = it == other.server_has.end() ? 0 : it->second;
    min_acked = std::min(min_acked, acked);
  }
  if (min_acked > 0) {
    versions_.chain(m.file.key()).acknowledge(min_acked);
  }
}

Result<u64> ShadowClient::submit(const SubmitOptions& options) {
  SHADOW_ASSIGN_OR_RETURN(session, session_for(options.server));

  proto::SubmitJob msg;
  msg.client_job_token = next_token_++;
  msg.command_file = options.command_file;
  msg.output_name = options.output_path;
  msg.error_name = options.error_path;
  msg.output_route = options.output_route;

  for (const auto& path : options.files) {
    SHADOW_ASSIGN_OR_RETURN(captured, capture_version(path));
    const auto& [id, number] = captured;
    // A lazily-edited file (background_updates off) is announced now, so
    // the demand-driven server knows whom to pull from.
    if (env_.flow == FlowMode::kRequestDriven) {
      const u64 base = session->server_has.count(id.key()) != 0
                           ? session->server_has[id.key()]
                           : 0;
      if (base < number) {
        SHADOW_TRY(send_update(session, id, base, number));
      }
    }
    proto::JobFileRef ref;
    ref.file = id;
    ref.local_name = vfs::basename(path);
    ref.version = number;
    auto latest = versions_.chain(id.key()).get(number);
    if (latest.ok()) ref.crc = latest.value().crc;
    msg.files.push_back(std::move(ref));
  }

  JobView view;
  view.token = msg.client_job_token;
  view.server = session->server_name;
  view.state = proto::JobState::kQueued;
  view.output_path = options.output_path;
  view.error_path = options.error_path;
  jobs_[view.token] = view;

  // Kept until SubmitReply so a session resync can resend the submission
  // (the server dedupes on the token); archived until the output arrives
  // so a job lost to a server crash can be submitted afresh.
  pending_submits_[view.token] = msg;
  submit_archive_[view.token] = msg;
  send(session, msg);
  return view.token;
}

void ShadowClient::handle(Session* session, const proto::SubmitReply& m) {
  pending_submits_.erase(m.client_job_token);
  // Answered — a busy-backoff retry for this token is obsolete, and an
  // accepted job means the server is taking work again.
  session->retry_at_us.erase(m.client_job_token);
  if (m.accepted) session->busy_backoff.reset();
  auto it = jobs_.find(m.client_job_token);
  if (it == jobs_.end()) return;
  it->second.job_id = m.job_id;
  if (!m.accepted) {
    it->second.state = proto::JobState::kFailed;
    it->second.detail = m.reason;
  }
}

Status ShadowClient::request_status(u64 job_id, const std::string& server) {
  SHADOW_ASSIGN_OR_RETURN(session, session_for(server));
  proto::StatusQuery query;
  query.job_id = job_id;
  send(session, query);
  return Status();
}

void ShadowClient::handle(Session* session, const proto::StatusReply& m) {
  for (const auto& info : m.jobs) {
    for (auto& [token, view] : jobs_) {
      if (view.job_id == info.job_id &&
          view.server == session->server_name) {
        view.state = info.state;
        view.detail = info.detail;
      }
    }
  }
  // A census requested by resync_session: any job the server acknowledged
  // that is now absent from its books was lost with the crash. Submit it
  // again as a fresh job — same token, so a dedupe on a server that DID
  // survive is still possible and the view needs no rewiring.
  const bool census_answered =
      status_sweep_pending_.erase(session->server_name) > 0;
  if (census_answered) {
    session->census_backoff.reset();
    session->census_retry_at_us = 0;
  }
  if (census_answered) {
    for (auto& [token, view] : jobs_) {
      if (view.server != session->server_name || token == 0 ||
          view.job_id == 0 || view.output_received ||
          view.state == proto::JobState::kFailed) {
        continue;
      }
      // Match by OUR token, not the server's job id: a restarted server
      // renumbers from 1, so a fresh job can shadow a lost one's id.
      bool known = false;
      for (const auto& info : m.jobs) {
        if (info.client_job_token == token) known = true;
      }
      if (known) continue;
      auto archived = submit_archive_.find(token);
      if (archived == submit_archive_.end()) continue;
      SHADOW_INFO() << name_ << ": server " << session->server_name
                    << " lost job " << view.job_id << " (token " << token
                    << "); resubmitting";
      view.job_id = 0;
      view.state = proto::JobState::kQueued;
      view.detail = "resubmitted after server lost the job";
      ++stats_.lost_job_resubmits;
      ClientMetrics::get().lost_job_resubmits.add();
      pending_submits_[token] = archived->second;
      send(session, archived->second);
    }
  }
  if (status_callback_) status_callback_(m.jobs);
}

void ShadowClient::handle(Session* session, const proto::JobOutput& m) {
  ++stats_.outputs_received;
  stats_.output_payload_bytes += m.output_payload.size() +
                                 m.error_payload.size();
  {
    ClientMetrics& metrics = ClientMetrics::get();
    metrics.outputs_received.add();
    metrics.output_payload_bytes.add(m.output_payload.size() +
                                     m.error_payload.size());
  }

  auto decode_payload = [](const Bytes& payload) -> Result<diff::Delta> {
    SHADOW_ASSIGN_OR_RETURN(raw, compress::decompress(payload));
    BufReader reader(raw);
    SHADOW_ASSIGN_OR_RETURN(delta, diff::Delta::decode(reader));
    if (!reader.at_end()) {
      return Error{ErrorCode::kProtocolError,
                   "trailing bytes after output delta"};
    }
    return delta;
  };

  auto nack = [&](const std::string& why) {
    proto::JobOutputAck ack;
    ack.job_id = m.job_id;
    ack.ok = false;
    ack.error = why;
    ++stats_.output_nacks_sent;
    ClientMetrics::get().output_nacks_sent.add();
    send(session, ack);
  };

  auto output_delta = decode_payload(m.output_payload);
  if (!output_delta.ok()) {
    nack(output_delta.error().to_string());
    return;
  }

  const std::string cache_key = session->server_name + "|" + m.output_name;
  std::string output_content;
  if (output_delta.value().needs_base()) {
    // Reverse shadow (§8.3): the delta is against our previous output.
    auto prev = output_cache_.find(cache_key);
    if (prev == output_cache_.end() ||
        prev->second.generation != m.output_base_generation) {
      nack("output base generation not available");
      return;
    }
    auto applied = output_delta.value().apply(prev->second.content);
    if (!applied.ok()) {
      nack(applied.error().to_string());
      return;
    }
    output_content = std::move(applied).take();
    ++stats_.output_delta_applied;
    ClientMetrics::get().output_delta_applied.add();
  } else {
    output_content = output_delta.value().full;
  }
  if (m.output_generation > 0) {
    output_cache_[cache_key] =
        OutputCacheEntry{m.output_generation, output_content};
  }

  auto error_delta = decode_payload(m.error_payload);
  if (!error_delta.ok()) {
    nack(error_delta.error().to_string());
    return;
  }
  auto error_applied = error_delta.value().apply("");
  if (!error_applied.ok()) {
    nack(error_applied.error().to_string());
    return;
  }

  // Write results into the local filesystem at the requested paths
  // (which may be tilde names).
  auto out_where = translate(m.output_name);
  auto err_where = translate(m.error_name);
  if (!out_where.ok() || !err_where.ok()) {
    nack("cannot translate output path");
    return;
  }
  Status write_out = cluster_->write_file(
      out_where.value().first, out_where.value().second, output_content);
  Status write_err = cluster_->write_file(
      err_where.value().first, err_where.value().second,
      error_applied.value());
  if (!write_out.ok() || !write_err.ok()) {
    nack("failed to store output locally");
    return;
  }

  proto::JobOutputAck ack;
  ack.job_id = m.job_id;
  ack.ok = true;
  send(session, ack);

  // Update the job view. Routed outputs (from jobs another client
  // submitted) get a synthetic view with token 0.
  JobView* view = nullptr;
  for (auto& [token, v] : jobs_) {
    if (v.job_id == m.job_id && v.server == session->server_name) view = &v;
  }
  if (view == nullptr && m.client_job_token != 0) {
    for (auto& [token, v] : jobs_) {
      if (token == m.client_job_token) view = &v;
    }
  }
  if (view == nullptr) {
    JobView routed;
    routed.token = 0;
    routed.job_id = m.job_id;
    routed.server = session->server_name;
    routed.output_path = m.output_name;
    routed.error_path = m.error_name;
    jobs_[0] = routed;
    view = &jobs_[0];
  }
  view->state = m.exit_code == 0 ? proto::JobState::kDelivered
                                 : proto::JobState::kFailed;
  view->exit_code = m.exit_code;
  view->output_received = true;
  submit_archive_.erase(view->token);
  if (output_callback_) output_callback_(*view);
}

bool ShadowClient::job_done(u64 token) const {
  auto it = jobs_.find(token);
  return it != jobs_.end() && it->second.output_received;
}

std::map<std::string, u64> ShadowClient::acked_versions(
    const std::string& server) const {
  auto it = sessions_.find(server);
  if (it == sessions_.end()) return {};
  return it->second.server_has;
}

void ShadowClient::resync(const std::string& server) {
  for (auto& [name, session] : sessions_) {
    if (!server.empty() && name != server) continue;
    resync_session(&session);
  }
}

namespace {
constexpr u32 kClientSnapshotMagic = 0x53484356;  // "SHCV"
constexpr u8 kSnapshotVersion = 1;
}  // namespace

Bytes ShadowClient::save_state() const {
  BufWriter w;
  w.put_u32(kClientSnapshotMagic);
  w.put_u8(kSnapshotVersion);
  versions_.encode(w);
  w.put_varint(ids_.size());
  for (const auto& [key, id] : ids_) {
    w.put_string(key);
    id.encode(w);
  }
  w.put_varint(output_cache_.size());
  for (const auto& [key, entry] : output_cache_) {
    w.put_string(key);
    w.put_varint(entry.generation);
    w.put_string(entry.content);
  }
  // Per-server acknowledged versions (live sessions + restored stashes).
  std::map<std::string, std::map<std::string, u64>> acked =
      restored_server_has_;
  for (const auto& [server_name, session] : sessions_) {
    acked[server_name] = session.server_has;
  }
  w.put_varint(acked.size());
  for (const auto& [server_name, has] : acked) {
    w.put_string(server_name);
    w.put_varint(has.size());
    for (const auto& [key, ver] : has) {
      w.put_string(key);
      w.put_varint(ver);
    }
  }
  return w.take();
}

Status ShadowClient::restore_state(const Bytes& snapshot) {
  BufReader r(snapshot);
  SHADOW_ASSIGN_OR_RETURN(magic, r.get_u32());
  SHADOW_ASSIGN_OR_RETURN(version, r.get_u8());
  if (magic != kClientSnapshotMagic || version != kSnapshotVersion) {
    return Error{ErrorCode::kInvalidArgument, "not a client snapshot"};
  }
  SHADOW_ASSIGN_OR_RETURN(versions, version::VersionStore::decode(r));
  versions_ = std::move(versions);
  SHADOW_ASSIGN_OR_RETURN(id_count, r.get_varint());
  if (id_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "id count exceeds data"};
  }
  ids_.clear();
  for (u64 i = 0; i < id_count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(key, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(id, naming::GlobalFileId::decode(r));
    ids_.emplace(std::move(key), std::move(id));
  }
  SHADOW_ASSIGN_OR_RETURN(output_count, r.get_varint());
  if (output_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "output count exceeds data"};
  }
  output_cache_.clear();
  for (u64 i = 0; i < output_count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(key, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(generation, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(content, r.get_string());
    output_cache_[key] = OutputCacheEntry{generation, std::move(content)};
  }
  SHADOW_ASSIGN_OR_RETURN(server_count, r.get_varint());
  if (server_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "server count exceeds data"};
  }
  restored_server_has_.clear();
  for (u64 i = 0; i < server_count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(server_name, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(entry_count, r.get_varint());
    if (entry_count > r.remaining()) {
      return Error{ErrorCode::kProtocolError, "acked count exceeds data"};
    }
    auto& has = restored_server_has_[server_name];
    for (u64 j = 0; j < entry_count; ++j) {
      SHADOW_ASSIGN_OR_RETURN(key, r.get_string());
      SHADOW_ASSIGN_OR_RETURN(ver, r.get_varint());
      has[key] = ver;
    }
    // An already-open session picks the restored map up immediately.
    auto session = sessions_.find(server_name);
    if (session != sessions_.end()) {
      session->second.server_has = has;
    }
  }
  if (!r.at_end()) {
    return Error{ErrorCode::kProtocolError, "trailing bytes in snapshot"};
  }
  return Status();
}

}  // namespace shadow::client
