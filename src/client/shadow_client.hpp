// The client side of the shadow system (paper §6): runs at the user's
// workstation, hides all communication, tracks versions of shadow files,
// answers the server's pull requests with deltas, submits jobs, and
// receives results. "Multiple clients can have connections open to a
// server simultaneously, and a client can have simultaneous connections
// to multiple servers" (§6.1) — a ShadowClient holds one session per
// server.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <memory>

#include "client/shadow_env.hpp"
#include "naming/resolver.hpp"
#include "naming/tilde.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"
#include "proto/session.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"
#include "version/version_store.hpp"
#include "vfs/cluster.hpp"

namespace shadow::client {

struct ClientStats {
  u64 notifies_sent = 0;
  u64 pulls_received = 0;
  u64 updates_sent = 0;
  u64 update_payload_bytes = 0;
  u64 full_sent = 0;           // updates carrying full content
  u64 delta_sent = 0;          // updates carrying a delta
  u64 cdc_sent = 0;            // updates carrying a chunk (CDC) delta
  u64 acks_received = 0;
  u64 outputs_received = 0;
  u64 output_payload_bytes = 0;
  u64 output_delta_applied = 0;  // reverse-shadow deltas applied
  u64 output_nacks_sent = 0;
  u64 session_resyncs = 0;    // desyncs detected by the reliable session
  u64 nack_full_resends = 0;  // full-content resends after an UpdateAck nack
  u64 lost_job_resubmits = 0;  // acked jobs a restarted server had lost
  u64 server_busy = 0;         // ServerBusy replies received
  u64 busy_retries = 0;        // Hellos/submits re-sent after backoff
  u64 heartbeats_sent = 0;     // explicit lease renewals
};

/// Client-side view of one submitted job.
struct JobView {
  u64 token = 0;
  u64 job_id = 0;          // server-assigned (0 until SubmitReply)
  std::string server;
  proto::JobState state = proto::JobState::kQueued;
  std::string detail;
  int exit_code = 0;
  bool output_received = false;
  std::string output_path;
  std::string error_path;
};

class ShadowClient {
 public:
  struct SubmitOptions {
    std::vector<std::string> files;  // local paths of data files
    std::string command_file;       // job command file CONTENT
    std::string output_path = "/home/user/job.out";
    std::string error_path = "/home/user/job.err";
    std::string server;        // empty = environment default (§6.2)
    std::string output_route;  // deliver output to this client instead
  };

  /// `name` is both the client's identity and its vfs host name.
  ShadowClient(std::string name, ShadowEnvironment env,
               vfs::Cluster* cluster, std::string domain_id);

  /// Open a session to a server over `transport` (sends Hello). The first
  /// connected server becomes the environment default if none is set.
  void connect(const std::string& server_name, net::Transport* transport);

  /// Attach the discrete-event clock so the workstation's diff-computation
  /// time (env().diff_bytes_per_second) is charged to the simulation, and
  /// reliable-session retransmit timers self-schedule with backoff.
  /// Without a simulator updates are sent immediately.
  void set_simulator(sim::Simulator* simulator);

  /// One retransmit round on every reliable session (no-op without
  /// env().reliable_session), plus due ServerBusy/census retries when no
  /// simulator drives their timers. Poll-driven hosts without a simulator
  /// call this when traffic stalls. Returns the number of frames resent.
  std::size_t tick();

  /// Renew this client's session lease on every connected server that
  /// negotiated protocol v1 (explicit Heartbeat; any other traffic also
  /// renews). Poll-driven hosts call this on a timer well inside the
  /// server's --lease-usec. Returns the number of heartbeats sent.
  std::size_t heartbeat();

  /// True while a ServerBusy from `server` has a retry pending (the
  /// session is backing off rather than failed). "" = any server.
  bool backing_off(const std::string& server = "") const;

  /// Protocol version `server` announced in its HelloReply (0 before the
  /// handshake or for a legacy server).
  u32 server_protocol(const std::string& server) const;

  /// The reliable session to `server` (nullptr when not connected or when
  /// the session layer is off) — diagnostics and tests.
  const proto::ReliableChannel* session_channel(
      const std::string& server) const;

  /// Enable Tilde names (§5.3, [CM86]): paths beginning with '~' are
  /// resolved through `user`'s view in `forest`. The forest must outlive
  /// the client.
  void set_tilde(const naming::TildeForest* forest, std::string user) {
    tilde_ = forest;
    tilde_user_ = std::move(user);
  }

  /// (host, absolute path) a local name denotes: the client's own host for
  /// plain paths, the tilde tree's location for '~' paths. The editor and
  /// all file captures go through this.
  Result<std::pair<std::string, std::string>> translate(
      const std::string& path) const;

  /// Full resolution of a local/tilde name to its global id (tooling and
  /// diagnostics; the file must exist).
  Result<naming::GlobalFileId> resolve_name(const std::string& path) const;

  const std::string& name() const { return name_; }
  ShadowEnvironment& env() { return env_; }
  const ClientStats& stats() const { return stats_; }
  version::VersionStore& versions() { return versions_; }
  const std::map<u64, JobView>& jobs() const { return jobs_; }

  /// Shadow-editor postprocessor (§6.2): call after an editing session
  /// wrote `local_path`. Creates a new version and — depending on the
  /// environment — notifies or pushes to every connected server.
  Status edited(const std::string& local_path);

  /// Submit a job (§6.2). Returns the client-side job token immediately;
  /// SubmitReply/JobOutput arrive asynchronously.
  Result<u64> submit(const SubmitOptions& options);

  /// Ask a server for job status (§6.2); the StatusReply updates jobs()
  /// and fires the status callback.
  Status request_status(u64 job_id = 0, const std::string& server = "");

  /// True when the output of `token` has been received and written.
  bool job_done(u64 token) const;

  /// Versions the server has acknowledged holding, per file key. What
  /// "acked" means for the crash harness: the server promised these are
  /// durable, so they must survive any server crash.
  std::map<std::string, u64> acked_versions(const std::string& server) const;

  /// Force a resync: re-announce every file's latest version and resend
  /// pending submits. Used after reconnecting to a restarted server
  /// ("" = every connected server).
  void resync(const std::string& server = "");

  /// Snapshot the client's durable shadow state: version chains, resolved
  /// file ids, reverse-shadow output cache, and per-server acknowledged
  /// versions. Restoring after a restart lets the next edit ship a DELTA
  /// instead of the full file the fresh-state path would pay.
  Bytes save_state() const;
  /// Restore into a freshly constructed client (before or after connect).
  Status restore_state(const Bytes& snapshot);

  /// Fired when a job's output has been written to the local filesystem.
  void on_job_output(std::function<void(const JobView&)> fn) {
    output_callback_ = std::move(fn);
  }
  /// Fired when a StatusReply arrives.
  void on_status(std::function<void(const std::vector<proto::JobStatusInfo>&)> fn) {
    status_callback_ = std::move(fn);
  }

 private:
  struct Session {
    std::string server_name;
    net::Transport* transport = nullptr;
    /// Present iff env.reliable_session: the ack/retransmit layer between
    /// this client and the server. On desync, server_has is cleared so
    /// every subsequent update degrades to a full-file transfer.
    std::unique_ptr<proto::ReliableChannel> channel;
    bool hello_done = false;
    /// Version the server acknowledged holding, per file key
    /// (request-driven mode pushes deltas against this).
    std::map<std::string, u64> server_has;
    /// From HelloReply; a v0 server never sends ServerBusy and would not
    /// understand a Heartbeat.
    u32 server_protocol = 0;
    /// Delta codecs negotiated with this server (intersection of what we
    /// offered in Hello and what the HelloReply announced). A v0 peer
    /// that never sent the field lands on kLegacyCodecs.
    u32 codecs = proto::kLegacyCodecs;
    /// Files whose last update to this server went as a CDC delta: the
    /// server may hold them as digests only, so stay on the chunk codec
    /// (an ed-script against a digest entry costs the server a full
    /// re-pull). Cleared on resync/nack with the rest of the peer state.
    std::set<std::string> cdc_files;
    /// Jittered exponential backoff for ServerBusy retries; the server's
    /// retry_after_usec is the floor of every delay. Reset when the
    /// server accepts work again.
    sim::Backoff busy_backoff{100'000, 8'000'000};
    /// Backoff for re-sending the lost-job census query when its
    /// StatusReply never came (the sweep itself can be shed or lost).
    sim::Backoff census_backoff{250'000, 4'000'000};
    /// Retries outstanding against this session: 0 = Hello, otherwise
    /// the job token of a shed submit. With a simulator they are
    /// sim-scheduled; without one tick() fires them past their
    /// steady-clock deadline (microseconds).
    std::map<u64, u64> retry_at_us;
    bool census_retry_armed = false;
    u64 census_retry_at_us = 0;  // non-sim deadline; 0 = none
  };

  void on_message(Session* session, Bytes wire);
  void handle(Session* session, const proto::HelloReply& m);
  void handle(Session* session, const proto::PullRequest& m);
  void handle(Session* session, const proto::UpdateAck& m);
  void handle(Session* session, const proto::SubmitReply& m);
  void handle(Session* session, const proto::StatusReply& m);
  void handle(Session* session, const proto::JobOutput& m);
  void handle(Session* session, const proto::ServerBusy& m);

  void send(Session* session, const proto::Message& m);
  Result<Session*> session_for(const std::string& server);

  /// Reliable-session desync recovery: forget peer state, re-announce
  /// every file's latest version (degrades to full-file transfers).
  void resync_session(Session* session);

  /// Ensure the VFS content of `local_path` is captured as a version;
  /// returns (file id, version of the current content).
  Result<std::pair<naming::GlobalFileId, version::VersionNumber>>
  capture_version(const std::string& local_path);

  /// Build and send an Update for `file` targeting `version`, diffed
  /// against `base` (0 = full). `force_cdc` answers a PullRequest whose
  /// codec_hint asked for a chunk delta (the server holds the base as
  /// digests and cannot apply anything else).
  Status send_update(Session* session, const naming::GlobalFileId& file,
                     u64 base, u64 version, bool force_cdc = false);

  /// Codecs this client offers in its Hello (env-gated).
  u32 offered_codecs() const {
    return env_.cdc ? proto::kAllCodecs : proto::kLegacyCodecs;
  }
  /// True when `content` should cross over to the CDC codec for this
  /// session: the codec is negotiated AND the file is big, binary-and-
  /// not-small, or already digest-tracked by the server.
  bool prefer_cdc(const Session& session, const std::string& key,
                  const std::string& content) const;

  /// Send the fresh Hello of a busy-backoff retry (token 0) or re-send an
  /// archived submit (token != 0).
  void fire_retry(Session* session, u64 token);
  /// Arm the retry: sim-scheduled when a simulator is attached, else a
  /// steady-clock deadline tick() checks.
  void schedule_retry(Session* session, u64 token, u64 delay_us);
  /// Re-send the lost-job census query if its reply never arrived.
  void arm_census_retry(Session* session);

  std::string name_;
  ShadowEnvironment env_;
  sim::Simulator* sim_ = nullptr;
  const naming::TildeForest* tilde_ = nullptr;
  std::string tilde_user_;
  vfs::Cluster* cluster_;
  naming::NameResolver resolver_;
  version::VersionStore versions_;
  std::map<std::string, naming::GlobalFileId> ids_;  // file key -> id
  std::map<std::string, Session> sessions_;          // server name -> session
  /// server_has maps restored before their sessions reconnect.
  std::map<std::string, std::map<std::string, u64>> restored_server_has_;
  std::map<u64, JobView> jobs_;                      // token -> view
  /// Submissions awaiting SubmitReply, kept for resend after a resync.
  std::map<u64, proto::SubmitJob> pending_submits_;
  /// Every submission until its output arrives — the raw material for
  /// resubmitting a job a crashed server acknowledged and then lost.
  std::map<u64, proto::SubmitJob> submit_archive_;
  /// Servers with a full StatusQuery sweep in flight (sent by resync);
  /// the matching StatusReply doubles as a lost-job census.
  std::set<std::string> status_sweep_pending_;
  u64 next_token_ = 1;
  ClientStats stats_;

  /// Reverse-shadow output cache: previous output content per
  /// (server, output name) so server-sent output deltas can be applied.
  struct OutputCacheEntry {
    u64 generation = 0;
    std::string content;
  };
  std::map<std::string, OutputCacheEntry> output_cache_;

  std::function<void(const JobView&)> output_callback_;
  std::function<void(const std::vector<proto::JobStatusInfo>&)>
      status_callback_;
};

}  // namespace shadow::client
