#include "client/shadow_editor.hpp"

namespace shadow::client {

Status ShadowEditor::edit(
    const std::string& path,
    const std::function<std::string(const std::string&)>& mutate) {
  // Tilde names (§5.3) and plain names both go through the client's
  // translation to a (host, absolute path) location.
  SHADOW_ASSIGN_OR_RETURN(where, client_->translate(path));
  std::string old_content;
  auto existing = cluster_->read_file(where.first, where.second);
  if (existing.ok()) {
    old_content = std::move(existing).take();
  } else if (existing.code() != ErrorCode::kNotFound) {
    return existing.error();
  }
  std::string new_content = mutate(old_content);
  SHADOW_TRY(cluster_->write_file(where.first, where.second, new_content));
  ++sessions_;
  // The postprocessor: notify/push to the connected servers (§6.2).
  return client_->edited(path);
}

Status ShadowEditor::create(const std::string& path,
                            const std::string& content) {
  return edit(path, [&](const std::string&) { return content; });
}

}  // namespace shadow::client
