// Shadow Editor (paper §6.2): encapsulates a conventional editor without
// modifying it — the user's view of the editor is unchanged; a
// postprocessor performs the shadow tasks when the editing session ends.
//
// In this reproduction an "editing session" is a function from old content
// to new content (tests and workload generators supply mutators); the
// postprocessor is ShadowClient::edited().
#pragma once

#include <functional>
#include <string>

#include "client/shadow_client.hpp"
#include "util/result.hpp"
#include "vfs/cluster.hpp"

namespace shadow::client {

class ShadowEditor {
 public:
  ShadowEditor(ShadowClient* client, vfs::Cluster* cluster)
      : client_(client), cluster_(cluster) {}

  /// One editing session on `path`: read (or start empty for a new file),
  /// apply `mutate`, write back, run the shadow postprocessor.
  Status edit(const std::string& path,
              const std::function<std::string(const std::string&)>& mutate);

  /// Create/overwrite a file with fixed content and shadow it (the "first
  /// edit" of the paper's scenarios).
  Status create(const std::string& path, const std::string& content);

  /// Number of editing sessions completed.
  u64 sessions() const { return sessions_; }

 private:
  ShadowClient* client_;
  vfs::Cluster* cluster_;
  u64 sessions_ = 0;
};

}  // namespace shadow::client
