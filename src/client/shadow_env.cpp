#include "client/shadow_env.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/text.hpp"

namespace shadow::client {

const char* flow_mode_name(FlowMode mode) {
  switch (mode) {
    case FlowMode::kDemandDriven: return "demand-driven";
    case FlowMode::kRequestDriven: return "request-driven";
  }
  return "?";
}

std::string ShadowEnvironment::to_text() const {
  std::string out;
  out += "default_server " + default_server + "\n";
  out += "editor " + editor + "\n";
  out += "retention_limit " + std::to_string(retention_limit) + "\n";
  out += std::string("version_storage ") +
         version::storage_mode_name(version_storage) + "\n";
  out += std::string("algorithm ") + diff::algorithm_name(algorithm) + "\n";
  out += std::string("adaptive_diff ") + (adaptive_diff ? "on" : "off") +
         "\n";
  out += std::string("cdc ") + (cdc ? "on" : "off") + "\n";
  out += "cdc_min_bytes " + std::to_string(cdc_min_bytes) + "\n";
  out += "cdc_min_binary_bytes " + std::to_string(cdc_min_binary_bytes) +
         "\n";
  out += "cdc_avg_chunk " + std::to_string(cdc_params.avg_bytes) + "\n";
  out += std::string("codec ") + compress::codec_name(codec) + "\n";
  out += std::string("background_updates ") +
         (background_updates ? "on" : "off") + "\n";
  out += std::string("flow ") + flow_mode_name(flow) + "\n";
  out += std::string("reliable_session ") +
         (reliable_session ? "on" : "off") + "\n";
  out += "retransmit_jitter " + std::to_string(retransmit_jitter) + "\n";
  out += "retransmit_initial_usec " + std::to_string(retransmit_initial_usec) +
         "\n";
  out += "retransmit_cap_usec " + std::to_string(retransmit_cap_usec) + "\n";
  out += "diff_bytes_per_second " +
         std::to_string(static_cast<long long>(diff_bytes_per_second)) +
         "\n";
  return out;
}

Result<ShadowEnvironment> ShadowEnvironment::from_text(
    const std::string& text) {
  ShadowEnvironment env;
  for (const auto& raw : split_lines(text)) {
    const std::string line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_nonempty(line, ' ');
    if (fields.size() != 2) {
      return Error{ErrorCode::kInvalidArgument,
                   "bad environment line: " + line};
    }
    const std::string& key = fields[0];
    const std::string& value = fields[1];
    if (key == "default_server") {
      env.default_server = value;
    } else if (key == "editor") {
      env.editor = value;
    } else if (key == "retention_limit") {
      env.retention_limit = static_cast<std::size_t>(std::stoul(value));
    } else if (key == "version_storage") {
      if (value == "full") {
        env.version_storage = version::StorageMode::kFull;
      } else if (value == "reverse-delta") {
        env.version_storage = version::StorageMode::kReverseDelta;
      } else {
        return Error{ErrorCode::kInvalidArgument,
                     "bad version_storage: " + value};
      }
    } else if (key == "algorithm") {
      SHADOW_ASSIGN_OR_RETURN(algo, diff::algorithm_from_name(value));
      env.algorithm = algo;
    } else if (key == "adaptive_diff") {
      env.adaptive_diff = (value == "on" || value == "true");
    } else if (key == "cdc") {
      env.cdc = (value == "on" || value == "true");
    } else if (key == "cdc_min_bytes") {
      env.cdc_min_bytes = std::stoull(value);
    } else if (key == "cdc_min_binary_bytes") {
      env.cdc_min_binary_bytes = std::stoull(value);
    } else if (key == "cdc_avg_chunk") {
      // avg must be a power of two; min/max scale with it (min = avg/4,
      // max = 8*avg, floored at the chunker's hard minimums).
      const u64 avg = std::stoull(value);
      cdc::ChunkerParams params;
      params.avg_bytes = static_cast<u32>(avg);
      params.min_bytes = static_cast<u32>(std::max<u64>(64, avg / 4));
      params.max_bytes = static_cast<u32>(avg * 8);
      if (!params.valid()) {
        return Error{ErrorCode::kInvalidArgument,
                     "bad cdc_avg_chunk (need power of two >= 128): " + value};
      }
      env.cdc_params = params;
    } else if (key == "codec") {
      if (value == "stored") env.codec = compress::Codec::kStored;
      else if (value == "rle") env.codec = compress::Codec::kRle;
      else if (value == "lz77") env.codec = compress::Codec::kLz77;
      else return Error{ErrorCode::kInvalidArgument, "bad codec: " + value};
    } else if (key == "background_updates") {
      env.background_updates = (value == "on" || value == "true");
    } else if (key == "reliable_session") {
      env.reliable_session = (value == "on" || value == "true");
    } else if (key == "retransmit_jitter") {
      env.retransmit_jitter = std::stod(value);
      if (env.retransmit_jitter < 0 || env.retransmit_jitter > 1) {
        return Error{ErrorCode::kInvalidArgument,
                     "retransmit_jitter must be in [0, 1]: " + value};
      }
    } else if (key == "retransmit_initial_usec") {
      env.retransmit_initial_usec = std::stoull(value);
    } else if (key == "retransmit_cap_usec") {
      env.retransmit_cap_usec = std::stoull(value);
    } else if (key == "diff_bytes_per_second") {
      env.diff_bytes_per_second = std::stod(value);
    } else if (key == "flow") {
      if (value == "demand-driven") env.flow = FlowMode::kDemandDriven;
      else if (value == "request-driven") env.flow = FlowMode::kRequestDriven;
      else return Error{ErrorCode::kInvalidArgument, "bad flow: " + value};
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown environment key: " + key};
    }
  }
  return env;
}

}  // namespace shadow::client
