// The shadow environment (paper §6.3.1): per-user customization database.
// Set up automatically with defaults; every knob the paper names is here —
// choice of editor, default host, retention of old versions — plus the
// knobs our reproduction adds for the ablation studies (diff algorithm,
// compression codec, flow-control mode, background updates).
#pragma once

#include <string>

#include "compress/compress.hpp"
#include "diff/delta.hpp"
#include "util/result.hpp"
#include "version/version_store.hpp"

namespace shadow::client {

/// Who drives data transfer (paper §5.2).
enum class FlowMode : u8 {
  /// The server pulls when it decides to (the paper's design).
  kDemandDriven = 0,
  /// The client pushes updates unprompted and tracks server state (the
  /// rejected baseline, implemented for the ablation bench).
  kRequestDriven = 1,
};

const char* flow_mode_name(FlowMode mode);

struct ShadowEnvironment {
  /// Default supercomputer for submit when none is named (§6.2).
  std::string default_server;
  /// The encapsulated editor (cosmetic; the paper reads $EDITOR).
  std::string editor = "vi";
  /// Old versions kept besides the latest (§6.3.2 customization).
  std::size_t retention_limit = 8;
  /// How old versions are stored on the workstation: verbatim, or as
  /// reverse deltas from their successor (Tichy's RCS technique — [Tic84]
  /// appears in the paper's bibliography).
  version::StorageMode version_storage = version::StorageMode::kFull;
  /// Diff algorithm for outgoing updates (§8.3 lists the alternatives).
  diff::Algorithm algorithm = diff::Algorithm::kHuntMcIlroy;
  /// Compute ed-script AND block-move deltas, ship the smaller (§3
  /// adaptability; doubles diff CPU, wins on moves and binary content).
  bool adaptive_diff = false;
  /// Offer the content-defined-chunking codec in the Hello handshake
  /// (docs/DELTAS.md). Off = the legacy two-codec client, byte-identical
  /// on the wire to pre-CDC builds.
  bool cdc = true;
  /// CDC crossover: files at least this big always go as chunk deltas
  /// (text included — past this size chunk matching beats line diffing
  /// on workstation CPU alone).
  u64 cdc_min_bytes = 256 * 1024;
  /// Lower crossover for content the binariness sniff flags: line-based
  /// ed-scripts degenerate on binaries long before they do on text.
  u64 cdc_min_binary_bytes = 16 * 1024;
  /// Chunking geometry for outgoing CDC deltas. Both sides derive the
  /// same cut points from the params carried in each delta/signature, so
  /// this is a per-client tuning knob, not a handshake matter.
  cdc::ChunkerParams cdc_params;
  /// Compression for outgoing payloads (§8.3).
  compress::Codec codec = compress::Codec::kStored;
  /// Notify the server as soon as an editing session ends, so updates can
  /// flow in the background (§5.1); false = server learns at submit time.
  bool background_updates = true;
  FlowMode flow = FlowMode::kDemandDriven;
  /// Run each server session over the reliable session layer (sequence
  /// numbers + CRC frames + ack/retransmit — proto::ReliableChannel).
  /// Required when the transport below can lose, reorder or corrupt
  /// messages; both ends must agree (ServerConfig::reliable_session).
  bool reliable_session = false;
  /// Fractional jitter on the reliable session's retransmit backoff and
  /// on the lost-job census retry timer, seeded per (client, server) so
  /// each schedule stays reproducible. Decorrelates the retry bursts of
  /// many clients recovering from one server outage (thundering herd);
  /// 0 keeps the historical deterministic schedules.
  double retransmit_jitter = 0.0;
  /// First retransmit delay / backoff cap for the reliable session's
  /// ack/retransmit timer, microseconds. 0 keeps the channel defaults
  /// (200ms / 1.6s), sized for LAN-class links. On slow lines these MUST
  /// exceed the worst-case frame transmission time plus a round trip, or
  /// every large frame is resent before its ack can possibly arrive and
  /// the retransmissions amplify the very congestion that delayed it.
  u64 retransmit_initial_usec = 0;
  u64 retransmit_cap_usec = 0;
  /// Workstation throughput for computing differential comparisons, in
  /// bytes of base file per second (simulation only). ~100 KB/s models the
  /// 1987-class workstations of the paper running HM75 diff; the cost is
  /// what makes the paper's speedups saturate near 25x on big files
  /// instead of growing without bound. 0 disables the model.
  double diff_bytes_per_second = 100'000;

  /// Serialize as a dotfile ("key value" lines).
  std::string to_text() const;
  static Result<ShadowEnvironment> from_text(const std::string& text);
};

}  // namespace shadow::client
