#include "compress/compress.hpp"

#include "util/byte_io.hpp"

namespace shadow::compress {

namespace {

// ---- RLE ----------------------------------------------------------------
// Runs of >= 3 equal bytes become (0xFF escape, byte, varint count);
// literal 0xFF bytes are escaped as (0xFF, 0xFF, count).

Bytes rle_compress(const Bytes& input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i]) ++run;
    if (run >= 3 || input[i] == 0xFF) {
      out.push_back(0xFF);
      out.push_back(input[i]);
      u64 v = run;
      while (v >= 0x80) {
        out.push_back(static_cast<u8>(v) | 0x80);
        v >>= 7;
      }
      out.push_back(static_cast<u8>(v));
      i += run;
    } else {
      out.push_back(input[i]);
      ++i;
    }
  }
  return out;
}

Result<Bytes> rle_decompress(const Bytes& input, std::size_t expected_size) {
  Bytes out;
  out.reserve(expected_size);
  std::size_t i = 0;
  while (i < input.size()) {
    if (input[i] != 0xFF) {
      out.push_back(input[i]);
      ++i;
      continue;
    }
    if (i + 2 > input.size()) {
      return Error{ErrorCode::kProtocolError, "truncated RLE escape"};
    }
    const u8 byte = input[i + 1];
    i += 2;
    u64 count = 0;
    int shift = 0;
    for (;;) {
      if (i >= input.size() || shift >= 64) {
        return Error{ErrorCode::kProtocolError, "truncated RLE run length"};
      }
      const u8 b = input[i++];
      count |= static_cast<u64>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    if (out.size() + count > expected_size) {
      return Error{ErrorCode::kProtocolError, "RLE run overflows output"};
    }
    out.insert(out.end(), static_cast<std::size_t>(count), byte);
  }
  return out;
}

// ---- LZ77 ---------------------------------------------------------------
// Token stream: 0x00 <varint len> <bytes>       literal run
//               0x01 <varint dist> <varint len> match (dist back, len >= 4)

constexpr std::size_t kWindow = 64 * 1024;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashSize = 1 << 16;
constexpr std::size_t kMaxChainSteps = 32;

u32 lz_hash(const u8* p) {
  // Hash of 4 bytes.
  u32 v = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
          (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
  return (v * 2654435761u) >> 16;
}

Bytes lz77_compress(const Bytes& input) {
  BufWriter out;
  const std::size_t n = input.size();
  // head[h] = most recent position with hash h (+1; 0 = none);
  // prev[i % kWindow] = previous position with the same hash.
  std::vector<u32> head(kHashSize, 0);
  std::vector<u32> prev(std::min(n, kWindow) + 1, 0);

  std::size_t literal_start = 0;
  auto flush_literals = [&](std::size_t end) {
    if (end <= literal_start) return;
    out.put_u8(0x00);
    out.put_varint(end - literal_start);
    out.put_raw(input.data() + literal_start, end - literal_start);
  };

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      const u32 h = lz_hash(input.data() + i) & (kHashSize - 1);
      u32 cand = head[h];
      std::size_t steps = 0;
      while (cand != 0 && steps++ < kMaxChainSteps) {
        const std::size_t pos = cand - 1;
        if (pos >= i || i - pos > kWindow) break;
        std::size_t len = 0;
        const std::size_t max_len = n - i;
        while (len < max_len && input[pos + len] == input[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - pos;
        }
        cand = prev[pos % prev.size()];
      }
      prev[i % prev.size()] = head[h];
      head[h] = static_cast<u32>(i + 1);
    }
    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.put_u8(0x01);
      out.put_varint(best_dist);
      out.put_varint(best_len);
      // Insert hash entries for the skipped positions so later matches can
      // reference them (standard lazy indexing, capped for speed).
      const std::size_t insert_end = std::min(i + best_len, n - kMinMatch);
      for (std::size_t j = i + 1; j < insert_end; ++j) {
        const u32 h2 = lz_hash(input.data() + j) & (kHashSize - 1);
        prev[j % prev.size()] = head[h2];
        head[h2] = static_cast<u32>(j + 1);
      }
      i += best_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
  return out.take();
}

Result<Bytes> lz77_decompress(const Bytes& input, std::size_t expected_size) {
  Bytes out;
  out.reserve(expected_size);
  BufReader in(input);
  while (!in.at_end()) {
    SHADOW_ASSIGN_OR_RETURN(tag, in.get_u8());
    if (tag == 0x00) {
      SHADOW_ASSIGN_OR_RETURN(len, in.get_varint());
      SHADOW_ASSIGN_OR_RETURN(bytes, in.get_raw(static_cast<std::size_t>(len)));
      if (out.size() + bytes.size() > expected_size) {
        return Error{ErrorCode::kProtocolError, "LZ77 literal overflow"};
      }
      out.insert(out.end(), bytes.begin(), bytes.end());
    } else if (tag == 0x01) {
      SHADOW_ASSIGN_OR_RETURN(dist, in.get_varint());
      SHADOW_ASSIGN_OR_RETURN(len, in.get_varint());
      if (dist == 0 || dist > out.size()) {
        return Error{ErrorCode::kProtocolError, "LZ77 distance out of range"};
      }
      if (out.size() + len > expected_size) {
        return Error{ErrorCode::kProtocolError, "LZ77 match overflow"};
      }
      // Byte-by-byte: matches may overlap their own output.
      std::size_t src = out.size() - static_cast<std::size_t>(dist);
      for (u64 k = 0; k < len; ++k) {
        out.push_back(out[src++]);
      }
    } else {
      return Error{ErrorCode::kProtocolError, "bad LZ77 token"};
    }
  }
  return out;
}

void put_header(BufWriter& w, Codec codec, std::size_t original_size) {
  w.put_u8(static_cast<u8>(codec));
  w.put_varint(original_size);
}

}  // namespace

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kStored: return "stored";
    case Codec::kRle: return "rle";
    case Codec::kLz77: return "lz77";
  }
  return "?";
}

Bytes compress(const Bytes& input, Codec codec) {
  Bytes body;
  switch (codec) {
    case Codec::kStored:
      body = input;
      break;
    case Codec::kRle:
      body = rle_compress(input);
      break;
    case Codec::kLz77:
      body = lz77_compress(input);
      break;
  }
  if (codec != Codec::kStored && body.size() >= input.size()) {
    codec = Codec::kStored;
    body = input;
  }
  BufWriter out;
  put_header(out, codec, input.size());
  out.put_raw(body);
  return out.take();
}

Result<Bytes> decompress(const Bytes& input) {
  BufReader in(input);
  SHADOW_ASSIGN_OR_RETURN(tag, in.get_u8());
  if (tag > 2) {
    return Error{ErrorCode::kProtocolError, "bad codec tag"};
  }
  const auto codec = static_cast<Codec>(tag);
  SHADOW_ASSIGN_OR_RETURN(original_size, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(body, in.get_raw(in.remaining()));
  Result<Bytes> out = [&]() -> Result<Bytes> {
    switch (codec) {
      case Codec::kStored:
        return body;
      case Codec::kRle:
        return rle_decompress(body, static_cast<std::size_t>(original_size));
      case Codec::kLz77:
        return lz77_decompress(body, static_cast<std::size_t>(original_size));
    }
    return Error{ErrorCode::kInternal, "unreachable"};
  }();
  if (out.ok() && out.value().size() != original_size) {
    return Error{ErrorCode::kProtocolError,
                 "decompressed size does not match header"};
  }
  return out;
}

double ratio(const Bytes& original, const Bytes& compressed) {
  if (original.empty()) return 1.0;
  return static_cast<double>(compressed.size()) /
         static_cast<double>(original.size());
}

}  // namespace shadow::compress
