// Transfer compression (paper §8.3 future work).
//
// Two self-describing codecs: RLE (cheap, good on repetitive data) and a
// byte-oriented LZ77 with a 64 KB window (general purpose). A compressed
// buffer begins with a 1-byte codec tag and the varint original size, so
// decompress() can validate and the protocol layer can negotiate per
// message. compress() never expands data beyond original + 6 bytes: when a
// codec loses, the buffer is stored with the kStored tag.
#pragma once

#include <string>

#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::compress {

enum class Codec : u8 {
  kStored = 0,  // no compression (also the fallback when a codec expands)
  kRle = 1,
  kLz77 = 2,
};

const char* codec_name(Codec codec);

/// Compress with the requested codec; falls back to kStored if the result
/// would be larger than the input.
Bytes compress(const Bytes& input, Codec codec);

/// Inverse of compress(); the codec is read from the tag byte.
Result<Bytes> decompress(const Bytes& input);

/// Compression ratio helper for reports: compressed size / original size.
double ratio(const Bytes& original, const Bytes& compressed);

}  // namespace shadow::compress
