#include "core/chaos.hpp"

#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "core/workload.hpp"
#include "naming/resolver.hpp"
#include "net/loopback.hpp"
#include "server/shadow_server.hpp"
#include "util/rng.hpp"
#include "vfs/cluster.hpp"

namespace shadow::core {

net::FaultPlan random_fault_plan(u64 seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE);
  net::FaultPlan plan;
  plan.seed = rng.next();
  if (rng.chance(0.5)) plan.drop_p = rng.uniform() * 0.20;
  if (rng.chance(0.5)) plan.duplicate_p = rng.uniform() * 0.20;
  if (rng.chance(0.5)) plan.reorder_p = rng.uniform() * 0.20;
  if (rng.chance(0.5)) plan.corrupt_p = rng.uniform() * 0.15;
  if (rng.chance(0.5)) plan.truncate_p = rng.uniform() * 0.15;
  if (rng.chance(0.5)) plan.delay_p = rng.uniform() * 0.20;
  plan.delay_messages = rng.between(1, 4);
  return plan;
}

ChaosOutcome run_chaos_trial(const ChaosOptions& options) {
  ChaosOutcome out;

  vfs::Cluster cluster;
  (void)cluster.add_host("ws").mkdir_p("/home/user");

  server::ServerConfig sc;
  sc.name = "super";
  sc.reliable_session = options.reliable_session;
  server::ShadowServer server(sc);

  auto pair = net::make_loopback_pair("ws", "super");
  net::FaultTransport to_server(pair.a.get(), options.client_to_server);
  net::FaultTransport to_client(pair.b.get(), options.server_to_client);

  client::ShadowEnvironment env;
  env.reliable_session = options.reliable_session;
  env.algorithm = options.algorithm;
  env.flow = options.flow;
  if (options.force_cdc) {
    env.cdc = true;
    env.cdc_min_bytes = 1;
    env.cdc_min_binary_bytes = 1;
  }
  client::ShadowClient client("ws", env, &cluster, "net-chaos");
  client::ShadowEditor editor(&client, &cluster);

  server.attach(&to_client);
  client.connect("super", &to_server);

  // Drive the poll-based world until nothing moves: poll both directions;
  // when idle, release held fault messages; when still idle, run one
  // retransmit round. Idle across several consecutive rounds = quiesced.
  auto quiesce = [&]() -> bool {
    std::size_t idle_rounds = 0;
    for (std::size_t round = 0; round < options.quiesce_budget; ++round) {
      if (to_server.poll() + to_client.poll() != 0) {
        idle_rounds = 0;
        continue;
      }
      to_server.flush();
      to_client.flush();
      if (to_server.poll() + to_client.poll() != 0) {
        idle_rounds = 0;
        continue;
      }
      if (client.tick() + server.tick() != 0) {
        idle_rounds = 0;
        continue;
      }
      if (++idle_rounds >= 3) return true;
    }
    return false;
  };

  const std::string path = "/home/user/data";
  std::string content = make_file(options.file_bytes, options.seed);
  Status st = editor.create(path, content);
  if (!st.ok()) {
    out.detail = "create failed: " + st.to_string();
    return out;
  }
  (void)quiesce();

  Rng edit_rng(options.seed ^ 0xED17u);
  for (int i = 0; i < options.edits; ++i) {
    content = modify_percent(content, options.edit_percent, edit_rng.next());
    st = editor.create(path, content);
    if (!st.ok()) {
      out.detail = "edit failed: " + st.to_string();
      return out;
    }
    // A little interleaved traffic — edits racing in-flight pulls are the
    // interesting case — but no full quiesce between sessions.
    (void)to_server.poll();
    (void)to_client.poll();
  }
  out.final_content = content;
  const bool settled = quiesce();

  client::ShadowClient::SubmitOptions job;
  job.files = {path};
  job.command_file = "sort data\n";
  job.output_path = "/home/user/job.out";
  job.error_path = "/home/user/job.err";
  auto token = client.submit(job);
  if (!token.ok()) {
    out.detail = "submit failed: " + token.error().to_string();
    return out;
  }
  bool job_done = false;
  for (int attempt = 0; attempt < 8 && !job_done; ++attempt) {
    (void)quiesce();
    job_done = client.job_done(token.value());
  }

  auto produced = cluster.read_file("ws", "/home/user/job.out");
  if (produced.ok()) out.job_output = produced.value();

  naming::NameResolver resolver("net-chaos", &cluster);
  auto id = resolver.resolve("ws", path);
  if (id.ok()) {
    auto entry = server.file_cache().get(server.domains().cache_key(id.value()));
    if (entry.ok()) {
      out.server_cached = entry.value()->content;
      out.server_entry_digest = !entry.value()->has_bytes();
      out.server_entry_crc = entry.value()->crc;
      out.server_described_bytes = entry.value()->represented_bytes();
    }
  }

  if (!job_done) {
    out.detail = "job output never arrived";
  } else if (!settled) {
    out.detail = "edit traffic did not quiesce within budget";
  } else {
    out.converged = true;
  }

  out.full_transfers = server.stats().full_transfers;
  out.delta_transfers = server.stats().delta_transfers;
  out.cdc_transfers = server.stats().cdc_transfers;
  out.digest_advances = server.stats().digest_advances;
  out.digest_advance_failures = server.stats().digest_advance_failures;
  out.cdc_sent = client.stats().cdc_sent;
  out.client_resyncs = client.stats().session_resyncs;
  out.server_resyncs = server.stats().session_resyncs;
  out.nack_full_resends = client.stats().nack_full_resends;
  out.to_server_faults = to_server.fault_stats();
  out.to_client_faults = to_client.fault_stats();
  if (const auto* channel = client.session_channel("super")) {
    out.client_session = channel->stats();
  }
  out.server_session = server.session_stats();
  return out;
}

}  // namespace shadow::core
