// Chaos harness: one edit→submit→retrieve workload run over a fault-
// injected link (net::FaultTransport on both directions), with a
// conformance oracle — the same seed under a transparent plan must produce
// byte-identical results. This is the executable form of the paper's
// robustness claim (§5.1): a flaky long-haul link degrades shadow transfers
// to full-file copies, never to wrong content.
//
// Shared between tests/chaos_test.cpp (the 50-seed property suite) and
// tools/chaos_main.cpp (the command-line reproducer for failing seeds).
#pragma once

#include <string>

#include "client/shadow_env.hpp"
#include "diff/delta.hpp"
#include "net/fault_transport.hpp"
#include "proto/session.hpp"
#include "util/types.hpp"

namespace shadow::core {

struct ChaosOptions {
  u64 seed = 1;
  diff::Algorithm algorithm = diff::Algorithm::kHuntMcIlroy;
  /// Run both ends over proto::ReliableChannel. Required for convergence
  /// under lossy plans; raw mode is only useful with surgical plans that
  /// keep the message envelope intact (e.g. corrupt_payload_only).
  bool reliable_session = true;
  /// Who drives transfers (the paper's demand-driven design by default).
  client::FlowMode flow = client::FlowMode::kDemandDriven;
  net::FaultPlan client_to_server;  // perturbs client→server messages
  net::FaultPlan server_to_client;  // perturbs server→client messages
  int edits = 6;
  std::size_t file_bytes = 4'000;
  double edit_percent = 5.0;
  /// Force every update onto the CDC chunk codec (crossover thresholds
  /// dropped to 1 byte). The server then tracks the file as digests only;
  /// the byte-identity oracle for such runs is job_output, since
  /// server_cached is empty for a digest entry by design.
  bool force_cdc = false;
  /// Poll/tick rounds before a quiesce attempt gives up.
  std::size_t quiesce_budget = 4'000;
};

struct ChaosOutcome {
  /// The workload ran to completion: traffic quiesced and the job's output
  /// arrived. False means messages were lost beyond recovery.
  bool converged = false;
  std::string detail;  // failure description when !converged

  std::string final_content;  // the client's last edit (expected content)
  std::string server_cached;  // server cache content at the end
  std::string job_output;     // retrieved job output file

  /// Server cache entry fingerprint for the workload file. With CDC the
  /// entry is digest-only (server_cached empty by design); byte identity
  /// is then proven by entry_crc == crc32(final_content) and
  /// described_bytes == final_content.size().
  bool server_entry_digest = false;
  u32 server_entry_crc = 0;
  u64 server_described_bytes = 0;

  u64 full_transfers = 0;   // server-side: updates carrying full content
  u64 delta_transfers = 0;  // server-side: updates carrying a delta
  u64 cdc_transfers = 0;    // server-side: updates carrying a chunk delta
  u64 digest_advances = 0;  // server-side: signature advanced without bytes
  u64 digest_advance_failures = 0;
  u64 cdc_sent = 0;         // client-side: updates shipped as chunk deltas
  u64 client_resyncs = 0;
  u64 server_resyncs = 0;
  u64 nack_full_resends = 0;  // client full resends after UpdateAck nack

  net::FaultStats to_server_faults;  // client→server direction
  net::FaultStats to_client_faults;  // server→client direction
  proto::ReliableChannel::Stats client_session;
  proto::ReliableChannel::Stats server_session;
};

/// Derive a random-but-reproducible fault plan from a seed: each fault
/// class is enabled with 50% probability at a modest rate, so schedules
/// range from clean to nasty but stay convergent (no disconnects).
net::FaultPlan random_fault_plan(u64 seed);

/// Run one trial. Deterministic in `options`.
ChaosOutcome run_chaos_trial(const ChaosOptions& options);

}  // namespace shadow::core
