#include "core/crash.hpp"

#include <map>
#include <memory>

#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "core/workload.hpp"
#include "net/loopback.hpp"
#include "persist/durable_store.hpp"
#include "persist/fault_fs.hpp"
#include "persist/wal.hpp"
#include "server/shadow_server.hpp"
#include "util/rng.hpp"
#include "vfs/cluster.hpp"

namespace shadow::core {

namespace {

/// One editing client: its own host, its own hot file, its own edit
/// stream. Writer 0 is the classic "ws" of the single-writer harness —
/// same name, same path, same Rng seed — so pre-group-commit schedules
/// keep their exact write-point numbering.
struct Writer {
  std::string host;
  std::string path;
  std::unique_ptr<client::ShadowClient> client;
  std::unique_ptr<client::ShadowEditor> editor;
  net::LoopbackPair pair;
  std::string content;
  Rng rng;

  Writer(u64 seed_value) : rng(seed_value) {}
};

}  // namespace

CrashOutcome run_crash_trial(const CrashOptions& options, u64 crash_at_write) {
  CrashOutcome out;
  const int writer_count = options.writers < 1 ? 1 : options.writers;
  const bool grouped = options.commit_window_us > 0;

  vfs::Cluster cluster;
  std::vector<std::unique_ptr<Writer>> writers;
  for (int w = 0; w < writer_count; ++w) {
    auto writer = std::make_unique<Writer>(
        w == 0 ? (options.seed ^ 0xC7A5Bu)
               : (options.seed ^ (0xC7A5Bu + static_cast<u64>(w) * 0x9E37u)));
    writer->host = w == 0 ? "ws" : "ws" + std::to_string(w);
    writer->path = w == 0 ? "/home/user/f" : "/home/user/g" + std::to_string(w);
    (void)cluster.add_host(writer->host).mkdir_p("/home/user");
    writers.push_back(std::move(writer));
  }

  persist::MemDir disk;
  persist::StorageFaultPlan fault_plan;
  fault_plan.crash_at_write = crash_at_write;
  fault_plan.torn_keep = options.torn_keep;
  fault_plan.lie_about_sync_after = options.lying_fsync_after;
  fault_plan.syncs_are_write_points = options.count_syncs_as_write_points;
  persist::FaultFs faults(&disk, fault_plan);
  persist::DurableStore store1(&faults, options.compact_every);

  persist::GroupCommitConfig gc;
  gc.window_us = options.commit_window_us;
  gc.max_batch_records = options.commit_max_batch_records;
  gc.pipeline = options.pipelined_persist;
  store1.set_group_commit(gc);

  server::ServerConfig sc;
  sc.name = "super";
  sc.max_job_retries = options.max_job_retries;
  auto server1 =
      std::make_unique<server::ShadowServer>(sc, nullptr, &store1);
  (void)server1->recover_from_storage();  // empty disk: no-op

  client::ShadowEnvironment env;
  env.retention_limit = 64;  // keep every version the checks below read
  for (auto& w : writers) {
    w->client = std::make_unique<client::ShadowClient>(w->host, env, &cluster,
                                                       "crash-domain");
    w->editor = std::make_unique<client::ShadowEditor>(w->client.get(),
                                                       &cluster);
    w->pair = net::make_loopback_pair(w->host, "super");
    server1->attach(w->pair.b.get());
    w->client->connect("super", w->pair.a.get());
    net::pump(w->pair);
  }

  // Deliver everything in flight. Under group commit the harness — not a
  // timer — closes every window, so deferred acks release at explicit,
  // reproducible points: flush, pump the released acks out, repeat until
  // the exchange quiesces (job chains append more records from inside
  // commit callbacks, hence the fixed extra rounds).
  auto settle = [&](server::ShadowServer& server) {
    for (auto& w : writers) net::pump(w->pair);
    if (!grouped) return;
    for (int round = 0; round < 5; ++round) {
      server.flush_persist();
      server.wait_persist_idle();
      for (auto& w : writers) net::pump(w->pair);
    }
  };

  // ---- Phase 1: the workload, dying at the chosen write point --------
  for (auto& w : writers) {
    w->content = make_file(options.file_bytes,
                           w.get() == writers.front().get()
                               ? options.seed
                               : options.seed * 131 + w->rng.next() % 997);
    Status created = w->editor->create(w->path, w->content);
    if (!created.ok()) {
      out.detail = "create failed: " + created.to_string();
      return out;
    }
    net::pump(w->pair);
  }
  settle(*server1);

  Writer& w0 = *writers.front();
  struct SubmittedJob {
    u64 token = 0;
    std::string output_path;
  };
  std::vector<std::string> data_paths;
  std::vector<SubmittedJob> submitted;

  for (int i = 0; i < options.edits; ++i) {
    for (std::size_t w = 0; w < writers.size(); ++w) {
      Writer& writer = *writers[w];
      writer.content = modify_percent(writer.content, options.edit_percent,
                                      writer.rng.next());
      Status st = writer.editor->create(writer.path, writer.content);
      if (!st.ok()) {
        out.detail = "edit failed: " + st.to_string();
        return out;
      }
      net::pump(writer.pair);
      if (w == 0 && grouped && options.pipelined_persist) {
        // Kick the batch fsync onto the worker NOW, so the remaining
        // writers' records arrive while it is in flight and exercise the
        // park-then-promote path.
        server1->flush_persist();
      }
    }
    settle(*server1);
    if (options.submit_every > 0 && (i + 1) % options.submit_every == 0) {
      // Immutable input file: never edited again, so the job's output is
      // the same whether it runs before the crash, after, or both.
      const std::string dpath = "/home/user/d" + std::to_string(i);
      Status st = w0.editor->create(
          dpath, make_file(options.file_bytes / 2, options.seed * 31 + i));
      if (!st.ok()) {
        out.detail = "data create failed: " + st.to_string();
        return out;
      }
      net::pump(w0.pair);
      client::ShadowClient::SubmitOptions job;
      job.files = {dpath};
      job.command_file = "sort d" + std::to_string(i) + "\n";
      job.output_path = "/home/user/out" + std::to_string(i);
      job.error_path = "/home/user/err" + std::to_string(i);
      auto token = w0.client->submit(job);
      if (!token.ok()) {
        out.detail = "submit failed: " + token.error().to_string();
        return out;
      }
      data_paths.push_back(dpath);
      submitted.push_back({token.value(), job.output_path});
      net::pump(w0.pair);
      settle(*server1);
    }
  }
  settle(*server1);

  out.write_points = faults.writes_seen();
  out.crashed_at = faults.dead() ? crash_at_write : 0;

  // What did the server PROMISE before the lights went out?
  std::vector<std::map<std::string, u64>> acked_per_writer;
  for (auto& w : writers) {
    const auto acked = w->client->acked_versions("super");
    acked_per_writer.emplace_back(acked.begin(), acked.end());
  }
  std::vector<u64> acked_job_ids;
  for (const auto& job : submitted) {
    const auto it = w0.client->jobs().find(job.token);
    if (it != w0.client->jobs().end() && it->second.job_id != 0) {
      acked_job_ids.push_back(it->second.job_id);
    }
  }

  // ---- The power cut -------------------------------------------------
  disk.crash(options.keep_unsynced_fraction, options.flip_bit_in_kept_tail,
             options.seed + crash_at_write);
  server1.reset();  // the old process is gone
  if (options.wipe_disk_before_restart) {
    for (const auto& name : disk.list()) (void)disk.remove(name);
  }

  // Journal damage report, read the way the recovering store will.
  if (disk.exists(persist::DurableStore::kJournalName)) {
    auto raw = disk.read(persist::DurableStore::kJournalName);
    if (raw.ok()) {
      const auto scan = persist::scan_journal(raw.value());
      out.discarded_tail_bytes = scan.total_bytes - scan.valid_bytes;
    }
  }
  out.snapshot_present = disk.exists(persist::DurableStore::kSnapshotName);

  // ---- Phase 2: recover a fresh server from whatever survived --------
  persist::DurableStore store2(&disk, options.compact_every);
  store2.set_group_commit(gc);
  server::ShadowServer server2(sc, nullptr, &store2);
  Status recovered = server2.recover_from_storage();
  out.clean_recovery = recovered.ok();
  if (!recovered.ok()) {
    out.detail = "recovery failed: " + recovered.to_string();
    return out;
  }
  out.recovered_records = server2.stats().recovered_records;
  out.requeued_jobs = server2.stats().requeued_jobs;
  out.retry_capped_jobs = server2.stats().retry_capped_jobs;

  // Invariant A: acked state survives byte-identically — for EVERY
  // writer, whichever batch its records rode in. A lying fsync (or a
  // deliberately wiped disk) voids the promise, so those trials only
  // assert convergence.
  const bool durability_holds =
      options.lying_fsync_after == 0 && !options.wipe_disk_before_restart;
  auto fail = [&](const std::string& why) {
    out.acked_survived = false;
    if (out.detail.empty()) out.detail = why;
  };
  if (durability_holds) {
    for (std::size_t w = 0; w < writers.size(); ++w) {
      Writer& writer = *writers[w];
      const auto& acked = acked_per_writer[w];
      std::vector<std::string> tracked;
      if (w == 0) tracked = data_paths;
      tracked.push_back(writer.path);
      for (const auto& path : tracked) {
        auto id = writer.client->resolve_name(path);
        if (!id.ok()) continue;
        const auto it = acked.find(id.value().key());
        if (it == acked.end()) continue;  // never acked: no promise to keep
        ++out.acked_versions_checked;
        const std::string key = server2.domains().cache_key(id.value());
        auto entry = server2.file_cache().get(key);
        if (!entry.ok()) {
          fail("acked file lost: " + writer.host + ":" + path + " v" +
               std::to_string(it->second));
          continue;
        }
        if (entry.value()->version < it->second) {
          fail("acked version regressed: " + path + " has v" +
               std::to_string(entry.value()->version) + " < acked v" +
               std::to_string(it->second));
          continue;
        }
        auto ours = writer.client->versions()
                        .chain(id.value().key())
                        .get(entry.value()->version);
        if (ours.ok() && ours.value().content != entry.value()->content) {
          fail("recovered content differs from client version for " + path);
        }
      }
    }
    for (const u64 job_id : acked_job_ids) {
      ++out.acked_jobs_checked;
      if (!server2.jobs().find(job_id).ok()) {
        fail("acked job lost: id " + std::to_string(job_id));
      }
    }
  }

  // ---- Phase 3: reconnect, resync, converge --------------------------
  const u64 full_before = w0.client->stats().full_sent;
  const u64 delta_before = w0.client->stats().delta_sent;

  for (auto& w : writers) {
    w->pair = net::make_loopback_pair(w->host, "super");
    server2.attach(w->pair.b.get());
    w->client->connect("super", w->pair.a.get());
    net::pump(w->pair);
    // Re-announce every file and resend unacknowledged submits — the
    // client-side half of crash recovery.
    w->client->resync("super");
    net::pump(w->pair);
  }
  settle(server2);

  for (auto& w : writers) {
    w->content =
        modify_percent(w->content, options.edit_percent, w->rng.next());
    Status st = w->editor->create(w->path, w->content);
    if (!st.ok()) {
      out.detail = "post-restart edit failed: " + st.to_string();
      return out;
    }
    net::pump(w->pair);
  }
  out.final_content = w0.content;
  settle(server2);

  bool all_done = true;
  for (int attempt = 0; attempt < 8; ++attempt) {
    settle(server2);
    all_done = true;
    for (const auto& job : submitted) {
      if (!w0.client->job_done(job.token)) all_done = false;
    }
    if (all_done) break;
  }

  out.post_restart_full = w0.client->stats().full_sent - full_before;
  out.post_restart_delta = w0.client->stats().delta_sent - delta_before;

  bool all_cached = true;
  for (auto& w : writers) {
    out.writer_final.push_back(w->content);
    std::string cached;
    auto id = w->client->resolve_name(w->path);
    if (id.ok()) {
      auto entry =
          server2.file_cache().get(server2.domains().cache_key(id.value()));
      if (entry.ok()) cached = entry.value()->content;
    }
    if (cached != w->content) all_cached = false;
    out.writer_cached.push_back(std::move(cached));
  }
  out.server_cached = out.writer_cached.front();
  for (const auto& job : submitted) {
    auto produced = cluster.read_file("ws", job.output_path);
    out.job_outputs.push_back(produced.ok() ? produced.value() : "");
  }

  if (!all_done) {
    if (out.detail.empty()) out.detail = "job outputs never arrived";
  } else if (!all_cached) {
    if (out.detail.empty()) out.detail = "server cache did not converge";
  } else {
    out.converged = true;
  }
  return out;
}

}  // namespace shadow::core
