#include "core/crash.hpp"

#include <map>
#include <memory>

#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "core/workload.hpp"
#include "net/loopback.hpp"
#include "persist/durable_store.hpp"
#include "persist/fault_fs.hpp"
#include "persist/wal.hpp"
#include "server/shadow_server.hpp"
#include "util/rng.hpp"
#include "vfs/cluster.hpp"

namespace shadow::core {

CrashOutcome run_crash_trial(const CrashOptions& options, u64 crash_at_write) {
  CrashOutcome out;

  vfs::Cluster cluster;
  (void)cluster.add_host("ws").mkdir_p("/home/user");

  persist::MemDir disk;
  persist::StorageFaultPlan fault_plan;
  fault_plan.crash_at_write = crash_at_write;
  fault_plan.torn_keep = options.torn_keep;
  fault_plan.lie_about_sync_after = options.lying_fsync_after;
  persist::FaultFs faults(&disk, fault_plan);
  persist::DurableStore store1(&faults, options.compact_every);

  server::ServerConfig sc;
  sc.name = "super";
  sc.max_job_retries = options.max_job_retries;
  auto server1 =
      std::make_unique<server::ShadowServer>(sc, nullptr, &store1);
  (void)server1->recover_from_storage();  // empty disk: no-op

  client::ShadowEnvironment env;
  env.retention_limit = 64;  // keep every version the checks below read
  client::ShadowClient client("ws", env, &cluster, "crash-domain");
  client::ShadowEditor editor(&client, &cluster);

  auto pair1 = net::make_loopback_pair("ws", "super");
  server1->attach(pair1.b.get());
  client.connect("super", pair1.a.get());
  net::pump(pair1);

  // ---- Phase 1: the workload, dying at the chosen write point --------
  const std::string edit_path = "/home/user/f";
  std::string content = make_file(options.file_bytes, options.seed);
  Status st = editor.create(edit_path, content);
  if (!st.ok()) {
    out.detail = "create failed: " + st.to_string();
    return out;
  }
  net::pump(pair1);

  struct SubmittedJob {
    u64 token = 0;
    std::string output_path;
  };
  std::vector<std::string> data_paths;
  std::vector<SubmittedJob> submitted;

  Rng edit_rng(options.seed ^ 0xC7A5Bu);
  for (int i = 0; i < options.edits; ++i) {
    content = modify_percent(content, options.edit_percent, edit_rng.next());
    st = editor.create(edit_path, content);
    if (!st.ok()) {
      out.detail = "edit failed: " + st.to_string();
      return out;
    }
    net::pump(pair1);
    if (options.submit_every > 0 && (i + 1) % options.submit_every == 0) {
      // Immutable input file: never edited again, so the job's output is
      // the same whether it runs before the crash, after, or both.
      const std::string dpath = "/home/user/d" + std::to_string(i);
      st = editor.create(
          dpath, make_file(options.file_bytes / 2, options.seed * 31 + i));
      if (!st.ok()) {
        out.detail = "data create failed: " + st.to_string();
        return out;
      }
      net::pump(pair1);
      client::ShadowClient::SubmitOptions job;
      job.files = {dpath};
      job.command_file = "sort d" + std::to_string(i) + "\n";
      job.output_path = "/home/user/out" + std::to_string(i);
      job.error_path = "/home/user/err" + std::to_string(i);
      auto token = client.submit(job);
      if (!token.ok()) {
        out.detail = "submit failed: " + token.error().to_string();
        return out;
      }
      data_paths.push_back(dpath);
      submitted.push_back({token.value(), job.output_path});
      net::pump(pair1);
    }
  }
  net::pump(pair1);

  out.write_points = faults.writes_seen();
  out.crashed_at = faults.dead() ? crash_at_write : 0;

  // What did the server PROMISE before the lights went out?
  const auto acked = client.acked_versions("super");
  std::vector<u64> acked_job_ids;
  for (const auto& job : submitted) {
    const auto it = client.jobs().find(job.token);
    if (it != client.jobs().end() && it->second.job_id != 0) {
      acked_job_ids.push_back(it->second.job_id);
    }
  }

  // ---- The power cut -------------------------------------------------
  disk.crash(options.keep_unsynced_fraction, options.flip_bit_in_kept_tail,
             options.seed + crash_at_write);
  server1.reset();  // the old process is gone
  if (options.wipe_disk_before_restart) {
    for (const auto& name : disk.list()) (void)disk.remove(name);
  }

  // Journal damage report, read the way the recovering store will.
  if (disk.exists(persist::DurableStore::kJournalName)) {
    auto raw = disk.read(persist::DurableStore::kJournalName);
    if (raw.ok()) {
      const auto scan = persist::scan_journal(raw.value());
      out.discarded_tail_bytes = scan.total_bytes - scan.valid_bytes;
    }
  }
  out.snapshot_present = disk.exists(persist::DurableStore::kSnapshotName);

  // ---- Phase 2: recover a fresh server from whatever survived --------
  persist::DurableStore store2(&disk, options.compact_every);
  server::ShadowServer server2(sc, nullptr, &store2);
  Status recovered = server2.recover_from_storage();
  out.clean_recovery = recovered.ok();
  if (!recovered.ok()) {
    out.detail = "recovery failed: " + recovered.to_string();
    return out;
  }
  out.recovered_records = server2.stats().recovered_records;
  out.requeued_jobs = server2.stats().requeued_jobs;
  out.retry_capped_jobs = server2.stats().retry_capped_jobs;

  // Invariant A: acked state survives byte-identically. A lying fsync (or
  // a deliberately wiped disk) voids the promise, so those trials only
  // assert convergence.
  const bool durability_holds =
      options.lying_fsync_after == 0 && !options.wipe_disk_before_restart;
  auto fail = [&](const std::string& why) {
    out.acked_survived = false;
    if (out.detail.empty()) out.detail = why;
  };
  if (durability_holds) {
    std::vector<std::string> tracked = data_paths;
    tracked.push_back(edit_path);
    for (const auto& path : tracked) {
      auto id = client.resolve_name(path);
      if (!id.ok()) continue;
      const auto it = acked.find(id.value().key());
      if (it == acked.end()) continue;  // never acked: no promise to keep
      ++out.acked_versions_checked;
      const std::string key = server2.domains().cache_key(id.value());
      auto entry = server2.file_cache().get(key);
      if (!entry.ok()) {
        fail("acked file lost: " + path + " v" + std::to_string(it->second));
        continue;
      }
      if (entry.value()->version < it->second) {
        fail("acked version regressed: " + path + " has v" +
             std::to_string(entry.value()->version) + " < acked v" +
             std::to_string(it->second));
        continue;
      }
      auto ours = client.versions()
                      .chain(id.value().key())
                      .get(entry.value()->version);
      if (ours.ok() && ours.value().content != entry.value()->content) {
        fail("recovered content differs from client version for " + path);
      }
    }
    for (const u64 job_id : acked_job_ids) {
      ++out.acked_jobs_checked;
      if (!server2.jobs().find(job_id).ok()) {
        fail("acked job lost: id " + std::to_string(job_id));
      }
    }
  }

  // ---- Phase 3: reconnect, resync, converge --------------------------
  const u64 full_before = client.stats().full_sent;
  const u64 delta_before = client.stats().delta_sent;

  auto pair2 = net::make_loopback_pair("ws", "super");
  server2.attach(pair2.b.get());
  client.connect("super", pair2.a.get());
  net::pump(pair2);
  // Re-announce every file and resend unacknowledged submits — the
  // client-side half of crash recovery.
  client.resync("super");
  net::pump(pair2);

  content = modify_percent(content, options.edit_percent, edit_rng.next());
  st = editor.create(edit_path, content);
  if (!st.ok()) {
    out.detail = "post-restart edit failed: " + st.to_string();
    return out;
  }
  out.final_content = content;
  net::pump(pair2);

  bool all_done = true;
  for (int attempt = 0; attempt < 8; ++attempt) {
    net::pump(pair2);
    all_done = true;
    for (const auto& job : submitted) {
      if (!client.job_done(job.token)) all_done = false;
    }
    if (all_done) break;
  }

  out.post_restart_full = client.stats().full_sent - full_before;
  out.post_restart_delta = client.stats().delta_sent - delta_before;

  auto id = client.resolve_name(edit_path);
  if (id.ok()) {
    auto entry =
        server2.file_cache().get(server2.domains().cache_key(id.value()));
    if (entry.ok()) out.server_cached = entry.value()->content;
  }
  for (const auto& job : submitted) {
    auto produced = cluster.read_file("ws", job.output_path);
    out.job_outputs.push_back(produced.ok() ? produced.value() : "");
  }

  if (!all_done) {
    if (out.detail.empty()) out.detail = "job outputs never arrived";
  } else if (out.server_cached != out.final_content) {
    if (out.detail.empty()) out.detail = "server cache did not converge";
  } else {
    out.converged = true;
  }
  return out;
}

}  // namespace shadow::core
