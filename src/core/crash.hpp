// Crash-point injection harness: one mixed edit+submit workload run over a
// fault-injected storage directory (persist::FaultFs over a MemDir), with
// the server journaling every durable mutation before it acknowledges.
// The storage is killed at an exact write point, the disk keeps only what
// a real power cut would keep, and a fresh server recovers from it. The
// matrix in tests/crash_matrix_test.cpp sweeps EVERY write point of the
// workload and asserts:
//
//   * recovery is always clean (a damaged tail is truncated, not fatal);
//   * every version/job the server acknowledged before the crash is still
//     there afterwards — byte-identical content, never an approximation;
//   * after reconnect + resync the system converges to the same final
//     state as a run that never crashed (the crash_at_write = 0 oracle).
//
// Shared between the test suite and tools/wal_main.cpp's --selftest.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace shadow::core {

struct CrashOptions {
  u64 seed = 1;
  int edits = 8;
  /// Every Nth edit round also creates an immutable data file and submits
  /// a sort job over it (immutable inputs keep job outputs deterministic
  /// across crash points).
  int submit_every = 3;
  std::size_t file_bytes = 1'500;
  double edit_percent = 6.0;
  /// Journal appends between compactions — small, so the matrix crosses
  /// several snapshot+truncate cycles and their crash windows.
  u64 compact_every = 6;
  u64 max_job_retries = 3;

  // --- how the storage dies ------------------------------------------
  /// Bytes of the dying append that still reach the disk (torn write).
  std::size_t torn_keep = 0;
  /// From this write index on, fsync lies (says OK, syncs nothing).
  /// Acked-durability cannot hold under a lying disk, so the matrix
  /// downgrades to convergence-only assertions. 0 = honest disk.
  u64 lying_fsync_after = 0;
  /// Fraction of unsynced bytes the power cut leaves behind (0 = strict).
  double keep_unsynced_fraction = 0.0;
  /// Flip one seeded bit in the kept unsynced tail (damaged-tail case).
  bool flip_bit_in_kept_tail = false;
  /// Restart from an empty disk instead of the crashed one — the
  /// no-durability baseline (everything degrades to full transfers).
  bool wipe_disk_before_restart = false;

  // --- group commit (docs/DURABILITY.md) ------------------------------
  /// Concurrent editing clients. Writer 0 keeps the classic "ws" name and
  /// owns the submit workload; writers 1.. edit their own files, so a
  /// batch holds records whose acks belong to DIFFERENT connections and a
  /// mid-batch crash strands some of every writer's promises.
  int writers = 1;
  /// Commit window handed to the server's store (µs). 0 = classic
  /// sync-per-record. >0 batches; the trial drives every flush point
  /// explicitly (never the wall clock), so with pipelined_persist false
  /// the write-point schedule stays deterministic in (options, crash_at).
  u64 commit_window_us = 0;
  u64 commit_max_batch_records = 128;
  /// Overlap the batch fsync with framing of the next records (the store's
  /// pipeline worker). Thread timing may shuffle which exact operation a
  /// given write index lands on, so pipelined sweeps assert the durability
  /// invariants per point rather than exact-op identity.
  bool pipelined_persist = false;
  /// Count sync() calls as crash points too (FaultFs), so a sweep can kill
  /// the storage BETWEEN a batch's appends and its fsync, or at the fsync
  /// itself — the group-commit crash windows that do not exist per-record.
  bool count_syncs_as_write_points = false;
};

struct CrashOutcome {
  /// Post-restart workload completed: every job's output arrived and the
  /// final edit reached the server.
  bool converged = false;
  /// recover_from_storage() returned OK (it must, whatever the damage).
  bool clean_recovery = false;
  /// Every acked version/job survived the crash with identical bytes.
  /// Trivially true when the trial skipped the check (lying fsync).
  bool acked_survived = true;
  std::string detail;  // first failed expectation, for the reproducer

  u64 write_points = 0;  // storage writes the whole workload performed
  u64 crashed_at = 0;    // write index this trial died at (0 = none)

  // Pre-crash acked state, for reporting.
  u64 acked_versions_checked = 0;
  u64 acked_jobs_checked = 0;

  // Recovery shape.
  u64 recovered_records = 0;
  u64 requeued_jobs = 0;
  u64 retry_capped_jobs = 0;
  u64 discarded_tail_bytes = 0;  // torn journal bytes truncated
  bool snapshot_present = false;

  // Post-restart transfer economics (the durability payoff: a recovered
  // cache lets the next edit ship a delta instead of the full file).
  u64 post_restart_full = 0;
  u64 post_restart_delta = 0;

  // Final state, compared against the no-crash oracle.
  std::string final_content;  // writer 0's last edit of its hot file
  std::string server_cached;  // server cache content for that file
  std::vector<std::string> job_outputs;  // one per submitted job, in order

  // Per-writer final/cached content (index 0 mirrors the scalars above).
  std::vector<std::string> writer_final;
  std::vector<std::string> writer_cached;
};

/// Run one trial, killing the storage at `crash_at_write` (1-based; 0 =
/// never — the oracle run, which still restarts the server so both sides
/// of the comparison walk the same code path). Deterministic in
/// (options, crash_at_write).
CrashOutcome run_crash_trial(const CrashOptions& options, u64 crash_at_write);

}  // namespace shadow::core
