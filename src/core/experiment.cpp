#include "core/experiment.hpp"

#include "util/logging.hpp"

namespace shadow::core {

CycleReport run_submit_cycle(
    ShadowSystem& system, const std::string& client_name,
    const std::string& data_path, const std::string& new_content,
    const client::ShadowClient::SubmitOptions& options, sim::Link* link) {
  CycleReport report;
  auto& client = system.client(client_name);
  auto& editor = system.editor(client_name);
  auto& sim = system.simulator();

  const u64 payload0 = link->total_payload_bytes();
  const u64 wire0 = link->total_wire_bytes();
  const sim::SimTime t0 = sim.now();

  bool done = false;
  sim::SimTime t_done = t0;
  client.on_job_output([&](const client::JobView& view) {
    (void)view;
    done = true;
    t_done = sim.now();
  });

  Status edit_status =
      editor.edit(data_path, [&](const std::string&) { return new_content; });
  if (!edit_status.ok()) {
    SHADOW_ERROR() << "cycle edit failed: " << edit_status.to_string();
    return report;
  }

  auto token = client.submit(options);
  if (!token.ok()) {
    SHADOW_ERROR() << "cycle submit failed: "
                   << token.error().to_string();
    return report;
  }

  system.settle();
  client.on_job_output(nullptr);

  report.completed = done;
  report.seconds = sim::to_seconds(t_done - t0);
  report.payload_bytes = link->total_payload_bytes() - payload0;
  report.wire_bytes = link->total_wire_bytes() - wire0;
  return report;
}

}  // namespace shadow::core
