// Shared harness for the paper's measurements: one edit-submit-fetch cycle
// (paper §8.1 — "we submitted a job with a data file; after obtaining the
// results, we edited the data file and resubmitted the same job. We
// measured the total amount of time spent in each case").
#pragma once

#include <string>

#include "core/system.hpp"

namespace shadow::core {

struct CycleReport {
  bool completed = false;
  double seconds = 0.0;     // edit end -> output delivered (sim time)
  u64 payload_bytes = 0;    // bytes that crossed the link this cycle
  u64 wire_bytes = 0;       // including per-message framing
};

/// Run one cycle: write `new_content` to `data_path` through the shadow
/// editor, submit `options`, and drain the simulator. Timing starts when
/// the editing session ends (the moment the user would hit "submit") and
/// stops when the job output lands on the client.
CycleReport run_submit_cycle(ShadowSystem& system,
                             const std::string& client_name,
                             const std::string& data_path,
                             const std::string& new_content,
                             const client::ShadowClient::SubmitOptions& options,
                             sim::Link* link);

}  // namespace shadow::core
