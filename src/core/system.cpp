#include "core/system.hpp"

#include <stdexcept>

namespace shadow::core {

ShadowSystem::ShadowSystem(std::string domain_id)
    : domain_id_(std::move(domain_id)) {}

client::ShadowClient& ShadowSystem::add_client(
    const std::string& name, const client::ShadowEnvironment& env) {
  auto& fs = cluster_.add_host(name);
  (void)fs.mkdir_p("/home/user");
  auto client_ptr = std::make_unique<client::ShadowClient>(
      name, env, &cluster_, domain_id_);
  client_ptr->set_simulator(&sim_);
  auto editor_ptr =
      std::make_unique<client::ShadowEditor>(client_ptr.get(), &cluster_);
  auto& ref = *client_ptr;
  clients_.emplace(name, std::move(client_ptr));
  editors_.emplace(name, std::move(editor_ptr));
  return ref;
}

server::ShadowServer& ShadowSystem::add_server(
    const server::ServerConfig& config, persist::DurableStore* store) {
  auto server_ptr =
      std::make_unique<server::ShadowServer>(config, &sim_, store);
  auto& ref = *server_ptr;
  servers_.emplace(config.name, std::move(server_ptr));
  return ref;
}

sim::Link& ShadowSystem::connect(const std::string& client_name,
                                 const std::string& server_name,
                                 const sim::LinkConfig& link_config) {
  auto& c = client(client_name);
  auto& s = server(server_name);
  links_.push_back(std::make_unique<sim::Link>(&sim_, link_config));
  sim::Link& link = *links_.back();
  auto pair = net::make_sim_pair(&link, client_name, server_name);
  // Server side first so its receiver exists before the client's Hello.
  s.attach(pair.b.get());
  c.connect(server_name, pair.a.get());
  transports_.push_back(std::move(pair.a));
  transports_.push_back(std::move(pair.b));
  return link;
}

sim::Link& ShadowSystem::connect_faulty(const std::string& client_name,
                                        const std::string& server_name,
                                        const sim::LinkConfig& link_config,
                                        const net::FaultPlan& plan) {
  auto& c = client(client_name);
  auto& s = server(server_name);
  links_.push_back(std::make_unique<sim::Link>(&sim_, link_config));
  sim::Link& link = *links_.back();
  auto pair = net::make_sim_pair(&link, client_name, server_name);
  // One decorator per direction with decorrelated seeds, so the two
  // directions don't drop/delay in lockstep.
  net::FaultPlan client_plan = plan;
  net::FaultPlan server_plan = plan;
  server_plan.seed = plan.seed + 1;
  fault_transports_.push_back(
      std::make_unique<net::FaultTransport>(pair.a.get(), client_plan));
  net::FaultTransport& client_side = *fault_transports_.back();
  fault_transports_.push_back(
      std::make_unique<net::FaultTransport>(pair.b.get(), server_plan));
  net::FaultTransport& server_side = *fault_transports_.back();
  client_side.set_simulator(&sim_);
  server_side.set_simulator(&sim_);
  // Server side first so its receiver exists before the client's Hello.
  s.attach(&server_side);
  c.connect(server_name, &client_side);
  transports_.push_back(std::move(pair.a));
  transports_.push_back(std::move(pair.b));
  return link;
}

sim::Link& ShadowSystem::connect_shared(
    const std::vector<std::string>& client_names,
    const std::string& server_name, const sim::LinkConfig& link_config) {
  auto& s = server(server_name);
  links_.push_back(std::make_unique<sim::Link>(&sim_, link_config));
  sim::Link& link = *links_.back();
  auto pair = net::make_sim_pair(&link, "trunk-client-side", server_name);
  // One mux per trunk end; channel i carries client i's session.
  muxes_.push_back(std::make_unique<net::Mux>(pair.a.get()));
  net::Mux& client_side = *muxes_.back();
  muxes_.push_back(std::make_unique<net::Mux>(pair.b.get()));
  net::Mux& server_side = *muxes_.back();
  for (std::size_t i = 0; i < client_names.size(); ++i) {
    // Server first so its receiver exists before the client's Hello.
    s.attach(server_side.channel(i, client_names[i]));
    client(client_names[i])
        .connect(server_name, client_side.channel(i, server_name));
  }
  transports_.push_back(std::move(pair.a));
  transports_.push_back(std::move(pair.b));
  return link;
}

client::ShadowClient& ShadowSystem::client(const std::string& name) {
  auto it = clients_.find(name);
  if (it == clients_.end()) {
    throw std::out_of_range("no such client: " + name);
  }
  return *it->second;
}

client::ShadowEditor& ShadowSystem::editor(const std::string& name) {
  auto it = editors_.find(name);
  if (it == editors_.end()) {
    throw std::out_of_range("no such client: " + name);
  }
  return *it->second;
}

server::ShadowServer& ShadowSystem::server(const std::string& name) {
  auto it = servers_.find(name);
  if (it == servers_.end()) {
    throw std::out_of_range("no such server: " + name);
  }
  return *it->second;
}

sim::SimTime ShadowSystem::settle() {
  sim_.run();
  return sim_.now();
}

u64 ShadowSystem::total_payload_bytes() const {
  u64 total = 0;
  for (const auto& link : links_) total += link->total_payload_bytes();
  return total;
}

u64 ShadowSystem::total_wire_bytes() const {
  u64 total = 0;
  for (const auto& link : links_) total += link->total_wire_bytes();
  return total;
}

}  // namespace shadow::core
