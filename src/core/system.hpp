// ShadowSystem: one-stop wiring of the whole distributed system inside the
// discrete-event simulator — hosts (vfs), clients, servers, and the
// simulated long-haul links between them. This is the facade examples and
// benches use; each piece remains usable on its own (e.g. a ShadowServer
// over a TcpTransport needs none of this).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "net/fault_transport.hpp"
#include "net/mux.hpp"
#include "net/sim_transport.hpp"
#include "server/shadow_server.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "vfs/cluster.hpp"

namespace shadow::core {

class ShadowSystem {
 public:
  explicit ShadowSystem(std::string domain_id = "nfs-net-128.10");

  sim::Simulator& simulator() { return sim_; }
  vfs::Cluster& cluster() { return cluster_; }
  const std::string& domain_id() const { return domain_id_; }

  /// Create a workstation: a vfs host with /home/user, a ShadowClient and
  /// a ShadowEditor.
  client::ShadowClient& add_client(
      const std::string& name,
      const client::ShadowEnvironment& env = client::ShadowEnvironment{});

  /// Create a supercomputer site running a ShadowServer. `store`
  /// (optional, must outlive the system) makes the server journal-backed —
  /// the scenario harness uses it to model commit windows at scale.
  server::ShadowServer& add_server(const server::ServerConfig& config,
                                   persist::DurableStore* store = nullptr);

  /// Connect a client to a server over a new simulated link; returns the
  /// link so callers can read its byte counters.
  sim::Link& connect(const std::string& client_name,
                     const std::string& server_name,
                     const sim::LinkConfig& link_config);

  /// connect() with per-direction fault injection (loss / jitter / the
  /// full FaultPlan): each endpoint is wrapped in a FaultTransport whose
  /// plan is seeded from `plan.seed` (client direction) and `plan.seed+1`
  /// (server direction), keeping every schedule reproducible. Lossy plans
  /// need reliable sessions on both ends (ShadowEnvironment /
  /// ServerConfig::reliable_session) or the protocol can stall.
  sim::Link& connect_faulty(const std::string& client_name,
                            const std::string& server_name,
                            const sim::LinkConfig& link_config,
                            const net::FaultPlan& plan);

  /// Connect SEVERAL clients to one server over a single shared trunk
  /// (multiplexed channels over one link): the department's one leased
  /// line of §2.1. All sessions contend for the trunk's bandwidth.
  sim::Link& connect_shared(const std::vector<std::string>& client_names,
                            const std::string& server_name,
                            const sim::LinkConfig& link_config);

  client::ShadowClient& client(const std::string& name);
  client::ShadowEditor& editor(const std::string& name);
  server::ShadowServer& server(const std::string& name);

  /// Run the simulator until no events remain; returns elapsed sim time.
  sim::SimTime settle();

  /// Total bytes that crossed every link (payload, excluding framing).
  u64 total_payload_bytes() const;
  /// Total bytes including per-message framing overhead.
  u64 total_wire_bytes() const;

 private:
  std::string domain_id_;
  sim::Simulator sim_;
  vfs::Cluster cluster_;
  std::map<std::string, std::unique_ptr<client::ShadowClient>> clients_;
  std::map<std::string, std::unique_ptr<client::ShadowEditor>> editors_;
  std::map<std::string, std::unique_ptr<server::ShadowServer>> servers_;
  std::vector<std::unique_ptr<sim::Link>> links_;
  std::vector<std::unique_ptr<net::SimTransport>> transports_;
  std::vector<std::unique_ptr<net::FaultTransport>> fault_transports_;
  std::vector<std::unique_ptr<net::Mux>> muxes_;
};

}  // namespace shadow::core
