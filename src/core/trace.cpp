#include "core/trace.hpp"

#include <set>

#include "core/workload.hpp"
#include "util/strings.hpp"
#include "util/text.hpp"

namespace shadow::core {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

// Split a line into tokens; double-quoted tokens may contain spaces and
// the escapes \n, \", and double-backslash.
Result<std::vector<std::string>> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    std::string token;
    bool quoted = false;
    while (i < line.size()) {
      const char c = line[i];
      if (!quoted && (c == ' ' || c == '\t')) break;
      if (c == '"') {
        quoted = !quoted;
        ++i;
        continue;
      }
      if (quoted && c == '\\' && i + 1 < line.size()) {
        const char next = line[i + 1];
        if (next == 'n') {
          token += '\n';
          i += 2;
          continue;
        }
        if (next == '"' || next == '\\') {
          token += next;
          i += 2;
          continue;
        }
      }
      token += c;
      ++i;
    }
    if (quoted) {
      return Error{ErrorCode::kInvalidArgument,
                   "unterminated quote in: " + line};
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

// "key=value" accessor over a token list.
std::string find_value(const std::vector<std::string>& tokens,
                       const std::string& key) {
  const std::string prefix = key + "=";
  for (const auto& token : tokens) {
    if (starts_with(token, prefix)) return token.substr(prefix.size());
  }
  return "";
}

}  // namespace

std::string Trace::to_text() const {
  std::string out = "client " + client + "\n";
  for (const auto& step : steps) {
    switch (step.kind) {
      case TraceStep::Kind::kEdit:
        out += "edit " + step.path;
        if (step.create_bytes > 0) {
          out += " create=" + std::to_string(step.create_bytes);
        }
        if (step.percent > 0) {
          out += " percent=" + std::to_string(step.percent);
        }
        out += " seed=" + std::to_string(step.seed) + "\n";
        break;
      case TraceStep::Kind::kThink:
        out += "think " + std::to_string(step.seconds) + "\n";
        break;
      case TraceStep::Kind::kSubmit: {
        out += "submit cmd=" + quote(step.command);
        out += " files=" + join(step.files, ",");
        if (!step.output_path.empty()) out += " out=" + step.output_path;
        if (!step.error_path.empty()) out += " err=" + step.error_path;
        if (!step.server.empty()) out += " server=" + step.server;
        if (!step.route.empty()) out += " route=" + step.route;
        out += "\n";
        break;
      }
      case TraceStep::Kind::kAwait:
        out += "await\n";
        break;
    }
  }
  return out;
}

Result<Trace> Trace::parse(const std::string& text) {
  Trace trace;
  for (const auto& raw : split_lines(text)) {
    std::string line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    SHADOW_ASSIGN_OR_RETURN(tokens, tokenize(line));
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0];
    if (verb == "client") {
      if (tokens.size() != 2) {
        return Error{ErrorCode::kInvalidArgument, "client needs a name"};
      }
      trace.client = tokens[1];
      continue;
    }
    TraceStep step;
    if (verb == "edit") {
      if (tokens.size() < 2) {
        return Error{ErrorCode::kInvalidArgument, "edit needs a path"};
      }
      step.kind = TraceStep::Kind::kEdit;
      step.path = tokens[1];
      const std::string create = find_value(tokens, "create");
      const std::string percent = find_value(tokens, "percent");
      const std::string seed = find_value(tokens, "seed");
      if (!create.empty()) {
        step.create_bytes = static_cast<std::size_t>(std::stoul(create));
      }
      if (!percent.empty()) step.percent = std::stod(percent);
      if (!seed.empty()) step.seed = std::stoull(seed);
    } else if (verb == "think") {
      if (tokens.size() != 2) {
        return Error{ErrorCode::kInvalidArgument, "think needs seconds"};
      }
      step.kind = TraceStep::Kind::kThink;
      step.seconds = std::stod(tokens[1]);
    } else if (verb == "submit") {
      step.kind = TraceStep::Kind::kSubmit;
      step.command = find_value(tokens, "cmd");
      if (step.command.empty()) {
        return Error{ErrorCode::kInvalidArgument, "submit needs cmd=..."};
      }
      const std::string files = find_value(tokens, "files");
      if (!files.empty()) step.files = split_nonempty(files, ',');
      step.output_path = find_value(tokens, "out");
      step.error_path = find_value(tokens, "err");
      step.server = find_value(tokens, "server");
      step.route = find_value(tokens, "route");
      if (step.output_path.empty()) step.output_path = "/home/user/job.out";
      if (step.error_path.empty()) step.error_path = "/home/user/job.err";
    } else if (verb == "await") {
      step.kind = TraceStep::Kind::kAwait;
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown trace verb: " + verb};
    }
    trace.steps.push_back(std::move(step));
  }
  if (trace.client.empty()) {
    return Error{ErrorCode::kInvalidArgument, "trace has no client line"};
  }
  return trace;
}

Result<TraceReport> run_trace(ShadowSystem& system, const Trace& trace,
                              sim::Link* link) {
  TraceReport report;
  auto& sim = system.simulator();
  auto& client = system.client(trace.client);
  auto& editor = system.editor(trace.client);
  const u64 payload_start = link != nullptr ? link->total_payload_bytes() : 0;
  const sim::SimTime t_start = sim.now();

  std::set<u64> outstanding;
  client.on_job_output([&](const client::JobView& view) {
    outstanding.erase(view.token);
    ++report.jobs_delivered;
  });

  for (const auto& step : trace.steps) {
    switch (step.kind) {
      case TraceStep::Kind::kEdit: {
        Status st = editor.edit(step.path, [&](const std::string& old) {
          if (old.empty() && step.create_bytes > 0) {
            return make_file(step.create_bytes, step.seed);
          }
          return step.percent > 0
                     ? modify_percent(old, step.percent, step.seed)
                     : old + "# touched\n";
        });
        if (!st.ok()) {
          client.on_job_output(nullptr);
          return st.error();
        }
        ++report.edits;
        break;
      }
      case TraceStep::Kind::kThink:
        sim.run_until(sim.now() + sim::from_seconds(step.seconds));
        break;
      case TraceStep::Kind::kSubmit: {
        client::ShadowClient::SubmitOptions options;
        options.command_file = step.command;
        options.files = step.files;
        options.output_path = step.output_path;
        options.error_path = step.error_path;
        options.server = step.server;
        options.output_route = step.route;
        auto token = client.submit(options);
        if (!token.ok()) {
          client.on_job_output(nullptr);
          return token.error();
        }
        // Routed jobs never come back to this client; don't await them.
        if (step.route.empty()) outstanding.insert(token.value());
        ++report.submits;
        break;
      }
      case TraceStep::Kind::kAwait: {
        const sim::SimTime wait_start = sim.now();
        while (!outstanding.empty() && sim.step()) {
        }
        report.waiting_seconds += sim::to_seconds(sim.now() - wait_start);
        if (!outstanding.empty()) {
          client.on_job_output(nullptr);
          return Error{ErrorCode::kInternal,
                       "trace await: jobs never completed"};
        }
        break;
      }
    }
  }
  system.settle();
  client.on_job_output(nullptr);
  report.elapsed_seconds = sim::to_seconds(sim.now() - t_start);
  if (link != nullptr) {
    report.payload_bytes = link->total_payload_bytes() - payload_start;
  }
  return report;
}

}  // namespace shadow::core
