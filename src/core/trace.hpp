// Trace-driven user sessions: a recorded sequence of edit / think /
// submit / await steps that replays against a ShadowSystem. Benches and
// users can describe a day's workload in a small text file and measure it
// under any configuration — the §2.1 edit-submit-fetch cycle as data.
//
// Text format (one step per line, # comments):
//   client ws1
//   edit /home/user/f create=20000 seed=5
//   think 300
//   edit /home/user/f percent=3 seed=6
//   submit cmd="sort f\nwc f" files=/home/user/f out=/home/user/o err=/home/user/e
//   await
//
// Values with spaces are double-quoted; "\n" and "\"" escapes apply.
#pragma once

#include <string>
#include <vector>

#include "core/system.hpp"
#include "util/result.hpp"

namespace shadow::core {

struct TraceStep {
  enum class Kind : u8 { kEdit, kThink, kSubmit, kAwait };
  Kind kind = Kind::kThink;

  // kEdit: modify `path` by `percent` with `seed`; when the file does not
  // exist yet (or create_bytes > 0 and it's the first touch), generate
  // create_bytes of synthetic content instead.
  std::string path;
  double percent = 0;
  u64 seed = 0;
  std::size_t create_bytes = 0;

  // kThink: simulated seconds of user inactivity.
  double seconds = 0;

  // kSubmit:
  std::string command;  // command-file CONTENT
  std::vector<std::string> files;
  std::string output_path;
  std::string error_path;
  std::string server;
  std::string route;

  bool operator==(const TraceStep&) const = default;
};

struct Trace {
  std::string client;
  std::vector<TraceStep> steps;

  bool operator==(const Trace&) const = default;

  std::string to_text() const;
  static Result<Trace> parse(const std::string& text);
};

struct TraceReport {
  int edits = 0;
  int submits = 0;
  int jobs_delivered = 0;
  double waiting_seconds = 0;  // time blocked in await steps
  double elapsed_seconds = 0;  // total simulated time of the replay
  u64 payload_bytes = 0;       // bytes that crossed `link` (if given)
};

/// Replay a trace on `system` (the client must exist and be connected).
/// `link` is optional and only feeds payload accounting.
Result<TraceReport> run_trace(ShadowSystem& system, const Trace& trace,
                              sim::Link* link = nullptr);

}  // namespace shadow::core
