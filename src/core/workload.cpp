#include "core/workload.hpp"

#include <algorithm>
#include <cstdio>

#include "util/rng.hpp"
#include "util/text.hpp"

namespace shadow::core {

std::string make_file(std::size_t bytes, u64 seed, std::size_t line_length,
                      bool exact) {
  Rng rng(seed);
  std::string out;
  out.reserve(bytes + line_length + 2);
  while (out.size() < bytes) {
    // Jitter line lengths a little so files are not perfectly regular.
    const std::size_t len =
        line_length / 2 + rng.below(line_length + 1);
    out += rng.ascii_line(len);
    out += '\n';
  }
  if (exact && out.size() > bytes) {
    out.resize(bytes);
    if (bytes > 0) out[bytes - 1] = '\n';
  }
  return out;
}

std::string make_structured_file(std::size_t bytes, u64 seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(bytes + 64);
  char line[80];
  while (out.size() < bytes) {
    std::snprintf(line, sizeof(line),
                  "station-%04u temperature %2u.%u humidity %2u wind %u\n",
                  static_cast<unsigned>(rng.below(40)),
                  static_cast<unsigned>(rng.below(40)),
                  static_cast<unsigned>(rng.below(10)),
                  static_cast<unsigned>(rng.below(100)),
                  static_cast<unsigned>(rng.below(30)));
    out += line;
  }
  return out;
}

std::string make_binary_file(std::size_t bytes, u64 seed) {
  Rng rng(seed ^ 0xB17A11ULL);
  std::string out(bytes, '\0');
  for (std::size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<char>(rng.below(256));
  }
  // Guarantee the binariness sniff fires even on tiny unlucky files.
  if (!out.empty()) out[out.size() / 2] = '\0';
  return out;
}

std::string overwrite_percent(const std::string& content, double percent,
                              u64 seed) {
  if (content.empty() || percent <= 0.0) return content;
  Rng rng(seed ^ 0x0BE17ULL);
  std::string out = content;
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(content.size()) *
                                  std::min(percent, 100.0) / 100.0));
  // One to four regions: a handful of records rewritten in place.
  const std::size_t regions = 1 + rng.below(4);
  for (std::size_t r = 0; r < regions; ++r) {
    const std::size_t span =
        std::max<std::size_t>(1, target / regions);
    const std::size_t at =
        rng.below(out.size() - std::min(span, out.size()) + 1);
    for (std::size_t i = 0; i < span && at + i < out.size(); ++i) {
      out[at + i] = static_cast<char>(rng.below(256));
    }
  }
  return out;
}

std::string modify_percent(const std::string& content, double percent,
                           u64 seed, const EditMix& mix) {
  if (content.empty() || percent <= 0.0) return content;
  Rng rng(seed);
  auto lines = split_lines(content);
  if (lines.empty()) return content;

  const double target =
      static_cast<double>(content.size()) * std::min(percent, 100.0) / 100.0;
  double touched = 0.0;
  // Guard against degenerate loops on tiny files.
  std::size_t max_steps = lines.size() * 4 + 64;

  while (touched < target && max_steps-- > 0 && !lines.empty()) {
    const std::size_t idx = rng.below(lines.size());
    const double roll = rng.uniform();
    if (roll < mix.insert_fraction) {
      // Insert a fresh line after idx.
      std::string line = rng.ascii_line(38) + "\n";
      touched += static_cast<double>(line.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                   std::move(line));
    } else if (roll < mix.insert_fraction + mix.delete_fraction &&
               lines.size() > 1) {
      touched += static_cast<double>(lines[idx].size());
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      // Change the line in place, preserving its length when possible so
      // the byte accounting stays honest.
      const bool had_newline =
          !lines[idx].empty() && lines[idx].back() == '\n';
      const std::size_t body_len =
          lines[idx].size() - (had_newline ? 1 : 0);
      std::string line = rng.ascii_line(std::max<std::size_t>(body_len, 1));
      if (had_newline) line += '\n';
      touched += static_cast<double>(lines[idx].size());
      lines[idx] = std::move(line);
    }
  }
  return join_lines(lines);
}

double changed_fraction(const std::string& before, const std::string& after) {
  if (before.empty()) return after.empty() ? 0.0 : 1.0;
  const std::size_t common = std::min(before.size(), after.size());
  std::size_t differing =
      std::max(before.size(), after.size()) - common;  // size delta
  for (std::size_t i = 0; i < common; ++i) {
    if (before[i] != after[i]) ++differing;
  }
  return static_cast<double>(differing) / static_cast<double>(before.size());
}

}  // namespace shadow::core
