// Workload generation for the paper's experiments (§8.1): synthetic data
// files of a target size, and "editing sessions" that modify a chosen
// percentage of the text (in bytes), mixing line changes, insertions and
// deletions — the edit-submit-fetch cycle's raw material.
#pragma once

#include <string>

#include "util/types.hpp"

namespace shadow::core {

/// Mix of edit operations applied by modify_percent. Fractions must sum
/// to <= 1; the remainder goes to in-place line changes.
struct EditMix {
  double insert_fraction = 0.10;
  double delete_fraction = 0.10;
};

/// Synthetic text file of ~`bytes` bytes (exact when `exact` is true):
/// newline-terminated lines of ~`line_length` printable characters.
/// Content is uniformly random — it does NOT compress (worst case for the
/// compression ablation, typical for already-dense data).
std::string make_file(std::size_t bytes, u64 seed,
                      std::size_t line_length = 40, bool exact = true);

/// Structured instrument-reading records ("station-0012 temperature 23.4
/// ..."): realistic scientific text with redundancy, so compression codecs
/// have something to find. ~`bytes` long, deterministic in `seed`.
std::string make_structured_file(std::size_t bytes, u64 seed);

/// Synthetic binary file: ~`bytes` of high-entropy bytes with NULs, the
/// shape line-based diffs give up on and the CDC codec is built for
/// (checkpoints, mesh dumps, instrument captures).
std::string make_binary_file(std::size_t bytes, u64 seed);

/// Simulate an editing session touching ~`percent` of the content bytes.
/// Deterministic in (content, percent, seed). percent in [0, 100].
std::string modify_percent(const std::string& content, double percent,
                           u64 seed, const EditMix& mix = EditMix{});

/// Binary editing session: overwrite ~`percent` of the bytes in a few
/// contiguous regions (the in-place record-update shape — most of the file
/// survives verbatim, which content-defined chunking exploits).
std::string overwrite_percent(const std::string& content, double percent,
                              u64 seed);

/// Bytes in which two strings differ, as a fraction of the first —
/// a sanity metric used by tests to validate modify_percent.
double changed_fraction(const std::string& before, const std::string& after);

}  // namespace shadow::core
