#include "diff/block_move.hpp"

#include <unordered_map>

#include "util/crc32.hpp"

namespace shadow::diff {

namespace {
// FNV-1a over a byte window; cheap and adequate as a seed-block hash (full
// byte comparison confirms every candidate before use).
u64 window_hash(const char* data, std::size_t len) {
  u64 h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<u8>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::size_t kMaxChain = 8;  // candidates kept per hash bucket
}  // namespace

BlockMoveDelta compute_block_move(std::string_view source,
                                  std::string_view target,
                                  std::size_t seed_length) {
  BlockMoveDelta delta;
  delta.source_size = source.size();
  delta.target_size = target.size();
  delta.source_crc =
      crc32(reinterpret_cast<const u8*>(source.data()), source.size());
  delta.target_crc =
      crc32(reinterpret_cast<const u8*>(target.data()), target.size());

  if (seed_length == 0) seed_length = 16;

  // Index EVERY source position's seed window (chains capped). A dense
  // index finds any match of length >= seed_length, which is what Tichy's
  // greedy construction assumes.
  std::unordered_map<u64, std::vector<std::size_t>> index;
  if (source.size() >= seed_length) {
    index.reserve(source.size());
    for (std::size_t off = 0; off + seed_length <= source.size(); ++off) {
      auto& chain = index[window_hash(source.data() + off, seed_length)];
      if (chain.size() < kMaxChain) chain.push_back(off);
    }
  }

  std::string pending;  // literal bytes awaiting an ADD op
  auto flush_pending = [&] {
    if (pending.empty()) return;
    BlockOp op;
    op.kind = BlockOp::Kind::kAdd;
    op.literal = std::move(pending);
    op.length = op.literal.size();
    pending.clear();
    delta.ops.push_back(std::move(op));
  };

  std::size_t t = 0;
  while (t < target.size()) {
    std::size_t best_len = 0;
    std::size_t best_src = 0;
    if (t + seed_length <= target.size() && !index.empty()) {
      const u64 h = window_hash(target.data() + t, seed_length);
      if (auto it = index.find(h); it != index.end()) {
        for (std::size_t cand : it->second) {
          if (source.compare(cand, seed_length, target, t, seed_length) !=
              0) {
            continue;  // hash collision
          }
          std::size_t len = seed_length;
          while (cand + len < source.size() && t + len < target.size() &&
                 source[cand + len] == target[t + len]) {
            ++len;
          }
          if (len > best_len) {
            best_len = len;
            best_src = cand;
          }
        }
      }
    }
    if (best_len >= seed_length) {
      flush_pending();
      BlockOp op;
      op.kind = BlockOp::Kind::kCopy;
      op.src_offset = best_src;
      op.length = best_len;
      delta.ops.push_back(op);
      t += best_len;
    } else {
      pending.push_back(target[t]);
      ++t;
    }
  }
  flush_pending();
  return delta;
}

Result<std::string> apply_block_move(const std::string& source,
                                     const BlockMoveDelta& delta) {
  const u32 src_crc =
      crc32(reinterpret_cast<const u8*>(source.data()), source.size());
  if (src_crc != delta.source_crc || source.size() != delta.source_size) {
    return Error{ErrorCode::kVersionMismatch,
                 "source does not match delta's source fingerprint"};
  }
  std::string out;
  out.reserve(static_cast<std::size_t>(delta.target_size));
  for (const auto& op : delta.ops) {
    switch (op.kind) {
      case BlockOp::Kind::kCopy: {
        if (op.src_offset > source.size() ||
            op.length > source.size() - op.src_offset) {
          return Error{ErrorCode::kInvalidArgument,
                       "copy op out of source bounds"};
        }
        out.append(source, static_cast<std::size_t>(op.src_offset),
                   static_cast<std::size_t>(op.length));
        break;
      }
      case BlockOp::Kind::kAdd:
        out += op.literal;
        break;
    }
  }
  const u32 out_crc =
      crc32(reinterpret_cast<const u8*>(out.data()), out.size());
  if (out.size() != delta.target_size || out_crc != delta.target_crc) {
    return Error{ErrorCode::kInternal,
                 "block-move reconstruction fails target fingerprint"};
  }
  return out;
}

void encode_block_move(const BlockMoveDelta& delta, BufWriter& out) {
  out.put_u32(delta.source_crc);
  out.put_u32(delta.target_crc);
  out.put_varint(delta.source_size);
  out.put_varint(delta.target_size);
  out.put_varint(delta.ops.size());
  for (const auto& op : delta.ops) {
    out.put_u8(static_cast<u8>(op.kind));
    if (op.kind == BlockOp::Kind::kCopy) {
      out.put_varint(op.src_offset);
      out.put_varint(op.length);
    } else {
      out.put_string(op.literal);
    }
  }
}

Result<BlockMoveDelta> decode_block_move(BufReader& in) {
  BlockMoveDelta delta;
  SHADOW_ASSIGN_OR_RETURN(source_crc, in.get_u32());
  SHADOW_ASSIGN_OR_RETURN(target_crc, in.get_u32());
  SHADOW_ASSIGN_OR_RETURN(source_size, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(target_size, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(num_ops, in.get_varint());
  delta.source_crc = source_crc;
  delta.target_crc = target_crc;
  delta.source_size = source_size;
  delta.target_size = target_size;
  for (u64 i = 0; i < num_ops; ++i) {
    BlockOp op;
    SHADOW_ASSIGN_OR_RETURN(kind_byte, in.get_u8());
    if (kind_byte > 1) {
      return Error{ErrorCode::kProtocolError, "bad block op kind"};
    }
    op.kind = static_cast<BlockOp::Kind>(kind_byte);
    if (op.kind == BlockOp::Kind::kCopy) {
      SHADOW_ASSIGN_OR_RETURN(off, in.get_varint());
      SHADOW_ASSIGN_OR_RETURN(len, in.get_varint());
      op.src_offset = off;
      op.length = len;
    } else {
      SHADOW_ASSIGN_OR_RETURN(lit, in.get_string());
      op.length = lit.size();
      op.literal = std::move(lit);
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

std::size_t block_move_wire_size(const BlockMoveDelta& delta) {
  BufWriter w;
  encode_block_move(delta, w);
  return w.size();
}

}  // namespace shadow::diff
