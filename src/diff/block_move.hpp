// Tichy string-to-string correction with block moves [Tic84] — the second
// future-work alternative the paper names (§8.3).
//
// Unlike the line-oriented ed scripts, a block-move delta reconstructs the
// target as a sequence of COPY(source offset, length) and ADD(literal
// bytes) operations over the raw byte strings. It handles moved blocks and
// byte-level edits that line diffs represent poorly.
//
// The implementation indexes the source by fixed-size seed blocks in a hash
// table and greedily extends matches in both directions — the classical
// greedy construction, linear-time in practice.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::diff {

/// One reconstruction operation.
struct BlockOp {
  enum class Kind : u8 { kCopy = 0, kAdd = 1 };
  Kind kind = Kind::kAdd;
  u64 src_offset = 0;  // kCopy: offset into the source
  u64 length = 0;      // kCopy: bytes to copy
  std::string literal; // kAdd: bytes to insert

  bool operator==(const BlockOp&) const = default;
};

/// Complete block-move delta with integrity fingerprints.
struct BlockMoveDelta {
  std::vector<BlockOp> ops;
  u64 source_size = 0;
  u64 target_size = 0;
  u32 source_crc = 0;
  u32 target_crc = 0;

  bool operator==(const BlockMoveDelta&) const = default;
};

/// Compute a block-move delta. `seed_length` is the minimum match length
/// worth emitting as a copy (also the hash-window size). Zero-copy: both
/// buffers are only read, never duplicated.
BlockMoveDelta compute_block_move(std::string_view source,
                                  std::string_view target,
                                  std::size_t seed_length = 16);

/// Reconstruct the target from the source; verifies both CRCs.
Result<std::string> apply_block_move(const std::string& source,
                                     const BlockMoveDelta& delta);

void encode_block_move(const BlockMoveDelta& delta, BufWriter& out);
Result<BlockMoveDelta> decode_block_move(BufReader& in);

std::size_t block_move_wire_size(const BlockMoveDelta& delta);

}  // namespace shadow::diff
