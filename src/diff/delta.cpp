#include "diff/delta.hpp"

#include "diff/hunt_mcilroy.hpp"
#include "diff/myers.hpp"
#include "telemetry/registry.hpp"
#include "util/crc32.hpp"

namespace shadow::diff {

namespace {
// Diff-engine telemetry (docs/OBSERVABILITY.md). Resolved once; hot-path
// cost is a relaxed fetch_add per metric. The invariant suite checks
// diff.computes == diff.ed_deltas + diff.block_deltas + diff.full_fallbacks.
struct DiffMetrics {
  telemetry::Counter& computes;
  telemetry::Counter& lines_compared;
  telemetry::Counter& ed_deltas;
  telemetry::Counter& block_deltas;
  telemetry::Counter& full_fallbacks;  // computed delta >= full content
  telemetry::Counter& delta_bytes;     // wire bytes actually produced
  telemetry::Counter& full_file_bytes;  // what full transfers would cost
  telemetry::Counter& applies;
  telemetry::Counter& apply_failures;
  telemetry::Histogram& delta_wire_bytes;

  static DiffMetrics& get() {
    auto& r = telemetry::Registry::global();
    static DiffMetrics m{r.counter("diff.computes"),
                         r.counter("diff.lines_compared"),
                         r.counter("diff.ed_deltas"),
                         r.counter("diff.block_deltas"),
                         r.counter("diff.full_fallbacks"),
                         r.counter("diff.delta_bytes"),
                         r.counter("diff.full_file_bytes"),
                         r.counter("diff.applies"),
                         r.counter("diff.apply_failures"),
                         r.histogram("diff.delta_wire_bytes")};
    return m;
  }
};
}  // namespace

const char* algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::kHuntMcIlroy: return "hunt-mcilroy";
    case Algorithm::kMyers: return "myers";
    case Algorithm::kBlockMove: return "block-move";
  }
  return "?";
}

Result<Algorithm> algorithm_from_name(const std::string& name) {
  if (name == "hunt-mcilroy" || name == "hm") return Algorithm::kHuntMcIlroy;
  if (name == "myers") return Algorithm::kMyers;
  if (name == "block-move" || name == "tichy") return Algorithm::kBlockMove;
  return Error{ErrorCode::kInvalidArgument,
               "unknown diff algorithm: " + name};
}

Delta Delta::make_full(std::string content) {
  Delta d;
  d.format = Format::kFull;
  d.full_crc = crc32(reinterpret_cast<const u8*>(content.data()),
                     content.size());
  d.full = std::move(content);
  return d;
}

Delta Delta::compute(std::string_view base, std::string_view target,
                     Algorithm algo) {
  DiffMetrics& metrics = DiffMetrics::get();
  metrics.computes.add();
  metrics.full_file_bytes.add(target.size());
  Delta d;
  switch (algo) {
    case Algorithm::kHuntMcIlroy:
    case Algorithm::kMyers: {
      // One LineTable per diff: the same tokenization feeds the LCS pass
      // and the ed-script builder (no re-splitting).
      LineTable table(base, target);
      metrics.lines_compared.add(table.old_lines().size() +
                                 table.new_lines().size());
      const MatchList matches = (algo == Algorithm::kHuntMcIlroy)
                                    ? hunt_mcilroy_lcs(table)
                                    : myers_lcs(table);
      d.format = Format::kEdScript;
      d.ed = build_ed_script(table, base, target, matches);
      break;
    }
    case Algorithm::kBlockMove: {
      d.format = Format::kBlockMove;
      d.blocks = compute_block_move(base, target);
      break;
    }
  }
  // Never ship a delta bigger than the content itself.
  const std::size_t wire = d.wire_size();
  if (wire >= target.size() + sizeof(u32)) {
    metrics.full_fallbacks.add();
    Delta full = make_full(std::string(target));
    const std::size_t full_wire = full.wire_size();
    metrics.delta_bytes.add(full_wire);
    metrics.delta_wire_bytes.observe(full_wire);
    return full;
  }
  (d.format == Format::kEdScript ? metrics.ed_deltas : metrics.block_deltas)
      .add();
  metrics.delta_bytes.add(wire);
  metrics.delta_wire_bytes.observe(wire);
  return d;
}

Delta Delta::compute_adaptive(std::string_view base,
                              std::string_view target) {
  Delta ed = compute(base, target, Algorithm::kHuntMcIlroy);
  Delta blocks = compute(base, target, Algorithm::kBlockMove);
  return blocks.wire_size() < ed.wire_size() ? blocks : ed;
}

Result<std::string> Delta::apply(const std::string& base) const {
  DiffMetrics& metrics = DiffMetrics::get();
  metrics.applies.add();
  auto applied = [&]() -> Result<std::string> {
    switch (format) {
      case Format::kFull: {
        // full_crc is set by make_full/decode; a default-constructed Delta
        // (crc 0 over empty content) also passes.
        const u32 actual = crc32(
            reinterpret_cast<const u8*>(full.data()), full.size());
        if (actual != full_crc) {
          return Error{ErrorCode::kVersionMismatch,
                       "full-content delta fails its CRC"};
        }
        return full;
      }
      case Format::kEdScript:
        return apply_ed_script(base, ed);
      case Format::kBlockMove:
        return apply_block_move(base, blocks);
    }
    return Error{ErrorCode::kInternal, "corrupt delta format tag"};
  }();
  if (!applied.ok()) metrics.apply_failures.add();
  return applied;
}

std::size_t Delta::wire_size() const {
  BufWriter w;
  encode(w);
  return w.size();
}

void Delta::encode(BufWriter& out) const {
  out.put_u8(static_cast<u8>(format));
  switch (format) {
    case Format::kFull:
      out.put_u32(full_crc);
      out.put_string(full);
      break;
    case Format::kEdScript:
      encode_ed_script(ed, out);
      break;
    case Format::kBlockMove:
      encode_block_move(blocks, out);
      break;
  }
}

Result<Delta> Delta::decode(BufReader& in) {
  Delta d;
  SHADOW_ASSIGN_OR_RETURN(tag, in.get_u8());
  if (tag > 2) {
    return Error{ErrorCode::kProtocolError, "bad delta format tag"};
  }
  d.format = static_cast<Format>(tag);
  switch (d.format) {
    case Format::kFull: {
      SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
      SHADOW_ASSIGN_OR_RETURN(content, in.get_string());
      d.full_crc = crc;
      d.full = std::move(content);
      break;
    }
    case Format::kEdScript: {
      SHADOW_ASSIGN_OR_RETURN(script, decode_ed_script(in));
      d.ed = std::move(script);
      break;
    }
    case Format::kBlockMove: {
      SHADOW_ASSIGN_OR_RETURN(blocks, decode_block_move(in));
      d.blocks = std::move(blocks);
      break;
    }
  }
  return d;
}

}  // namespace shadow::diff
