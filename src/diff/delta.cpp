#include "diff/delta.hpp"

#include "diff/hunt_mcilroy.hpp"
#include "diff/myers.hpp"
#include "telemetry/registry.hpp"
#include "util/crc32.hpp"

namespace shadow::diff {

namespace {
// Diff-engine telemetry (docs/OBSERVABILITY.md). Resolved once; hot-path
// cost is a relaxed fetch_add per metric. The invariant suite checks
// diff.computes == diff.ed_deltas + diff.block_deltas + diff.full_fallbacks.
struct DiffMetrics {
  telemetry::Counter& computes;
  telemetry::Counter& lines_compared;
  telemetry::Counter& ed_deltas;
  telemetry::Counter& block_deltas;
  telemetry::Counter& full_fallbacks;  // computed delta >= full content
  telemetry::Counter& delta_bytes;     // wire bytes actually produced
  telemetry::Counter& full_file_bytes;  // what full transfers would cost
  telemetry::Counter& applies;
  telemetry::Counter& apply_failures;
  telemetry::Histogram& delta_wire_bytes;

  static DiffMetrics& get() {
    auto& r = telemetry::Registry::global();
    static DiffMetrics m{r.counter("diff.computes"),
                         r.counter("diff.lines_compared"),
                         r.counter("diff.ed_deltas"),
                         r.counter("diff.block_deltas"),
                         r.counter("diff.full_fallbacks"),
                         r.counter("diff.delta_bytes"),
                         r.counter("diff.full_file_bytes"),
                         r.counter("diff.applies"),
                         r.counter("diff.apply_failures"),
                         r.histogram("diff.delta_wire_bytes")};
    return m;
  }
};

// CDC-codec telemetry (docs/OBSERVABILITY.md, docs/DELTAS.md). The
// invariant suite checks two identities over this family:
//   cdc.computes == cdc.deltas + cdc.fallbacks
//   cdc.wire_bytes == cdc.copy_wire_bytes + cdc.literal_bytes
//                     + cdc.framing_bytes
struct CdcMetrics {
  telemetry::Counter& computes;
  telemetry::Counter& deltas;          // CDC deltas actually shipped
  telemetry::Counter& fallbacks;       // fell back to full content
  telemetry::Counter& chunks_matched;  // copy ops emitted
  telemetry::Counter& chunks_missed;   // literal ops emitted
  telemetry::Counter& copied_content_bytes;  // bytes NOT resent
  telemetry::Counter& literal_bytes;         // literal payload on the wire
  telemetry::Counter& copy_wire_bytes;       // encoded copy-op bodies
  telemetry::Counter& framing_bytes;         // headers, tags, prefixes
  telemetry::Counter& wire_bytes;            // encoded CDC delta bytes
  telemetry::Counter& applies;
  telemetry::Counter& apply_failures;

  static CdcMetrics& get() {
    auto& r = telemetry::Registry::global();
    static CdcMetrics m{r.counter("cdc.computes"),
                        r.counter("cdc.deltas"),
                        r.counter("cdc.fallbacks"),
                        r.counter("cdc.chunks_matched"),
                        r.counter("cdc.chunks_missed"),
                        r.counter("cdc.copied_content_bytes"),
                        r.counter("cdc.literal_bytes"),
                        r.counter("cdc.copy_wire_bytes"),
                        r.counter("cdc.framing_bytes"),
                        r.counter("cdc.wire_bytes"),
                        r.counter("cdc.applies"),
                        r.counter("cdc.apply_failures")};
    return m;
  }
};
}  // namespace

const char* algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::kHuntMcIlroy: return "hunt-mcilroy";
    case Algorithm::kMyers: return "myers";
    case Algorithm::kBlockMove: return "block-move";
  }
  return "?";
}

Result<Algorithm> algorithm_from_name(const std::string& name) {
  if (name == "hunt-mcilroy" || name == "hm") return Algorithm::kHuntMcIlroy;
  if (name == "myers") return Algorithm::kMyers;
  if (name == "block-move" || name == "tichy") return Algorithm::kBlockMove;
  return Error{ErrorCode::kInvalidArgument,
               "unknown diff algorithm: " + name};
}

Delta Delta::make_full(std::string content) {
  Delta d;
  d.format = Format::kFull;
  d.full_crc = crc32(reinterpret_cast<const u8*>(content.data()),
                     content.size());
  d.full = std::move(content);
  return d;
}

Delta Delta::compute(std::string_view base, std::string_view target,
                     Algorithm algo) {
  DiffMetrics& metrics = DiffMetrics::get();
  metrics.computes.add();
  metrics.full_file_bytes.add(target.size());
  Delta d;
  switch (algo) {
    case Algorithm::kHuntMcIlroy:
    case Algorithm::kMyers: {
      // One LineTable per diff: the same tokenization feeds the LCS pass
      // and the ed-script builder (no re-splitting).
      LineTable table(base, target);
      metrics.lines_compared.add(table.old_lines().size() +
                                 table.new_lines().size());
      const MatchList matches = (algo == Algorithm::kHuntMcIlroy)
                                    ? hunt_mcilroy_lcs(table)
                                    : myers_lcs(table);
      d.format = Format::kEdScript;
      d.ed = build_ed_script(table, base, target, matches);
      break;
    }
    case Algorithm::kBlockMove: {
      d.format = Format::kBlockMove;
      d.blocks = compute_block_move(base, target);
      break;
    }
  }
  // Never ship a delta bigger than the content itself.
  const std::size_t wire = d.wire_size();
  if (wire >= target.size() + sizeof(u32)) {
    metrics.full_fallbacks.add();
    Delta full = make_full(std::string(target));
    const std::size_t full_wire = full.wire_size();
    metrics.delta_bytes.add(full_wire);
    metrics.delta_wire_bytes.observe(full_wire);
    return full;
  }
  (d.format == Format::kEdScript ? metrics.ed_deltas : metrics.block_deltas)
      .add();
  metrics.delta_bytes.add(wire);
  metrics.delta_wire_bytes.observe(wire);
  return d;
}

Delta Delta::compute_adaptive(std::string_view base,
                              std::string_view target) {
  Delta ed = compute(base, target, Algorithm::kHuntMcIlroy);
  Delta blocks = compute(base, target, Algorithm::kBlockMove);
  return blocks.wire_size() < ed.wire_size() ? blocks : ed;
}

Delta Delta::compute_cdc(const cdc::Signature& base_sig,
                         std::string_view target) {
  CdcMetrics& metrics = CdcMetrics::get();
  metrics.computes.add();
  Delta d;
  d.format = Format::kCdc;
  d.cdc = cdc::CdcDelta::compute(base_sig, target);
  // Never lose badly: a CDC delta may cost a hair more than the raw
  // content (an all-literal first transfer is the target plus ~5 bytes of
  // framing per chunk — worth it, because it seeds the server's digest
  // entry), but anything past ~6% overhead means the chunker degenerated
  // and full content is the honest choice.
  const std::size_t wire = d.wire_size();
  if (wire > target.size() + target.size() / 16 + 64) {
    metrics.fallbacks.add();
    return make_full(std::string(target));
  }
  metrics.deltas.add();
  std::size_t copies = 0;
  std::size_t literals = 0;
  std::size_t copy_wire = 0;
  u64 copied_content = 0;
  u64 literal_payload = 0;
  for (const cdc::CdcOp& op : d.cdc.ops) {
    if (op.kind == cdc::CdcOp::Kind::kCopy) {
      ++copies;
      copied_content += op.digest.length;
      // Encoded copy-op body: varint(length) + crc32 + fnv64.
      BufWriter body;
      body.put_varint(op.digest.length);
      copy_wire += body.size() + sizeof(u32) + sizeof(u64);
    } else {
      ++literals;
      literal_payload += op.literal.size();
    }
  }
  metrics.chunks_matched.add(copies);
  metrics.chunks_missed.add(literals);
  metrics.copied_content_bytes.add(copied_content);
  metrics.literal_bytes.add(literal_payload);
  metrics.copy_wire_bytes.add(copy_wire);
  metrics.framing_bytes.add(wire - copy_wire - literal_payload);
  metrics.wire_bytes.add(wire);
  return d;
}

Result<std::string> Delta::apply(const std::string& base) const {
  DiffMetrics& metrics = DiffMetrics::get();
  metrics.applies.add();
  auto applied = [&]() -> Result<std::string> {
    switch (format) {
      case Format::kFull: {
        // full_crc is set by make_full/decode; a default-constructed Delta
        // (crc 0 over empty content) also passes.
        const u32 actual = crc32(
            reinterpret_cast<const u8*>(full.data()), full.size());
        if (actual != full_crc) {
          return Error{ErrorCode::kVersionMismatch,
                       "full-content delta fails its CRC"};
        }
        return full;
      }
      case Format::kEdScript:
        return apply_ed_script(base, ed);
      case Format::kBlockMove:
        return apply_block_move(base, blocks);
      case Format::kCdc: {
        CdcMetrics& cdc_metrics = CdcMetrics::get();
        cdc_metrics.applies.add();
        auto result = cdc.apply(base);
        if (!result.ok()) cdc_metrics.apply_failures.add();
        return result;
      }
    }
    return Error{ErrorCode::kInternal, "corrupt delta format tag"};
  }();
  if (!applied.ok()) metrics.apply_failures.add();
  return applied;
}

std::size_t Delta::wire_size() const {
  BufWriter w;
  encode(w);
  return w.size();
}

void Delta::encode(BufWriter& out) const {
  out.put_u8(static_cast<u8>(format));
  switch (format) {
    case Format::kFull:
      out.put_u32(full_crc);
      out.put_string(full);
      break;
    case Format::kEdScript:
      encode_ed_script(ed, out);
      break;
    case Format::kBlockMove:
      encode_block_move(blocks, out);
      break;
    case Format::kCdc:
      cdc.encode(out);
      break;
  }
}

Result<Delta> Delta::decode(BufReader& in) {
  Delta d;
  SHADOW_ASSIGN_OR_RETURN(tag, in.get_u8());
  if (tag > 3) {
    return Error{ErrorCode::kProtocolError, "bad delta format tag"};
  }
  d.format = static_cast<Format>(tag);
  switch (d.format) {
    case Format::kFull: {
      SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
      SHADOW_ASSIGN_OR_RETURN(content, in.get_string());
      d.full_crc = crc;
      d.full = std::move(content);
      break;
    }
    case Format::kEdScript: {
      SHADOW_ASSIGN_OR_RETURN(script, decode_ed_script(in));
      d.ed = std::move(script);
      break;
    }
    case Format::kBlockMove: {
      SHADOW_ASSIGN_OR_RETURN(blocks, decode_block_move(in));
      d.blocks = std::move(blocks);
      break;
    }
    case Format::kCdc: {
      SHADOW_ASSIGN_OR_RETURN(chunks, cdc::CdcDelta::decode(in));
      d.cdc = std::move(chunks);
      break;
    }
  }
  return d;
}

}  // namespace shadow::diff
