#include "diff/delta.hpp"

#include "diff/hunt_mcilroy.hpp"
#include "diff/myers.hpp"
#include "util/crc32.hpp"

namespace shadow::diff {

const char* algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::kHuntMcIlroy: return "hunt-mcilroy";
    case Algorithm::kMyers: return "myers";
    case Algorithm::kBlockMove: return "block-move";
  }
  return "?";
}

Result<Algorithm> algorithm_from_name(const std::string& name) {
  if (name == "hunt-mcilroy" || name == "hm") return Algorithm::kHuntMcIlroy;
  if (name == "myers") return Algorithm::kMyers;
  if (name == "block-move" || name == "tichy") return Algorithm::kBlockMove;
  return Error{ErrorCode::kInvalidArgument,
               "unknown diff algorithm: " + name};
}

Delta Delta::make_full(std::string content) {
  Delta d;
  d.format = Format::kFull;
  d.full_crc = crc32(reinterpret_cast<const u8*>(content.data()),
                     content.size());
  d.full = std::move(content);
  return d;
}

Delta Delta::compute(std::string_view base, std::string_view target,
                     Algorithm algo) {
  Delta d;
  switch (algo) {
    case Algorithm::kHuntMcIlroy:
    case Algorithm::kMyers: {
      // One LineTable per diff: the same tokenization feeds the LCS pass
      // and the ed-script builder (no re-splitting).
      LineTable table(base, target);
      const MatchList matches = (algo == Algorithm::kHuntMcIlroy)
                                    ? hunt_mcilroy_lcs(table)
                                    : myers_lcs(table);
      d.format = Format::kEdScript;
      d.ed = build_ed_script(table, base, target, matches);
      break;
    }
    case Algorithm::kBlockMove: {
      d.format = Format::kBlockMove;
      d.blocks = compute_block_move(base, target);
      break;
    }
  }
  // Never ship a delta bigger than the content itself.
  if (d.wire_size() >= target.size() + sizeof(u32)) {
    return make_full(std::string(target));
  }
  return d;
}

Delta Delta::compute_adaptive(std::string_view base,
                              std::string_view target) {
  Delta ed = compute(base, target, Algorithm::kHuntMcIlroy);
  Delta blocks = compute(base, target, Algorithm::kBlockMove);
  return blocks.wire_size() < ed.wire_size() ? blocks : ed;
}

Result<std::string> Delta::apply(const std::string& base) const {
  switch (format) {
    case Format::kFull: {
      // full_crc is set by make_full/decode; a default-constructed Delta
      // (crc 0 over empty content) also passes.
      const u32 actual = crc32(
          reinterpret_cast<const u8*>(full.data()), full.size());
      if (actual != full_crc) {
        return Error{ErrorCode::kVersionMismatch,
                     "full-content delta fails its CRC"};
      }
      return full;
    }
    case Format::kEdScript:
      return apply_ed_script(base, ed);
    case Format::kBlockMove:
      return apply_block_move(base, blocks);
  }
  return Error{ErrorCode::kInternal, "corrupt delta format tag"};
}

std::size_t Delta::wire_size() const {
  BufWriter w;
  encode(w);
  return w.size();
}

void Delta::encode(BufWriter& out) const {
  out.put_u8(static_cast<u8>(format));
  switch (format) {
    case Format::kFull:
      out.put_u32(full_crc);
      out.put_string(full);
      break;
    case Format::kEdScript:
      encode_ed_script(ed, out);
      break;
    case Format::kBlockMove:
      encode_block_move(blocks, out);
      break;
  }
}

Result<Delta> Delta::decode(BufReader& in) {
  Delta d;
  SHADOW_ASSIGN_OR_RETURN(tag, in.get_u8());
  if (tag > 2) {
    return Error{ErrorCode::kProtocolError, "bad delta format tag"};
  }
  d.format = static_cast<Format>(tag);
  switch (d.format) {
    case Format::kFull: {
      SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
      SHADOW_ASSIGN_OR_RETURN(content, in.get_string());
      d.full_crc = crc;
      d.full = std::move(content);
      break;
    }
    case Format::kEdScript: {
      SHADOW_ASSIGN_OR_RETURN(script, decode_ed_script(in));
      d.ed = std::move(script);
      break;
    }
    case Format::kBlockMove: {
      SHADOW_ASSIGN_OR_RETURN(blocks, decode_block_move(in));
      d.blocks = std::move(blocks);
      break;
    }
  }
  return d;
}

}  // namespace shadow::diff
