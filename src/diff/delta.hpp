// Unified delta representation carried by the wire protocol.
//
// A Delta is what the client ships when the server pulls an update: either
// an ed script (the paper's format), a Tichy block-move delta, or a full
// copy of the content (first submission, or fallback after the server's
// cached base was evicted — the "best effort" path of §5.1).
#pragma once

#include <string>
#include <string_view>

#include "cdc/cdc_delta.hpp"
#include "diff/block_move.hpp"
#include "diff/edit_script.hpp"
#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::diff {

/// Which diff algorithm produces the delta payload.
enum class Algorithm : u8 {
  kHuntMcIlroy = 0,  // HM75, the prototype's algorithm
  kMyers = 1,        // Miller–Myers future-work alternative
  kBlockMove = 2,    // Tichy future-work alternative
};

const char* algorithm_name(Algorithm algo);
Result<Algorithm> algorithm_from_name(const std::string& name);

struct Delta {
  enum class Format : u8 {
    kFull = 0,
    kEdScript = 1,
    kBlockMove = 2,
    kCdc = 3,  // content-defined-chunking delta (docs/DELTAS.md)
  };

  Format format = Format::kFull;
  std::string full;          // kFull: complete target content
  u32 full_crc = 0;          // kFull: fingerprint of `full` (fail closed)
  EditScript ed;             // kEdScript
  BlockMoveDelta blocks;     // kBlockMove
  cdc::CdcDelta cdc;         // kCdc

  /// Construct a full-content delta (no base needed to apply).
  static Delta make_full(std::string content);

  /// Compute a delta of `target` against `base` with the given algorithm.
  /// Falls back to kFull when the delta would be larger than the content
  /// itself (shadow must never lose badly — DESIGN.md invariant 5).
  /// Zero-copy on the compute path: both buffers are only read through
  /// views until hunk text / full content is materialized for the result.
  static Delta compute(std::string_view base, std::string_view target,
                       Algorithm algo);

  /// Adaptive selection (the paper's §3 adaptability objective, §8.3
  /// algorithm study): compute both the line-oriented ed script and the
  /// byte-oriented block-move delta and ship whichever encodes smaller.
  /// Costs roughly the CPU of both algorithms; wins on restructured files
  /// and binary-ish content, ties on ordinary edits.
  static Delta compute_adaptive(std::string_view base,
                                std::string_view target);

  /// Compute a CDC delta of `target` against the base's chunk-digest
  /// signature — the base CONTENT is not needed, so the sender can
  /// reconcile against a digest-only peer. Falls back to kFull when the
  /// chunk delta would not beat shipping the content (same never-lose
  /// invariant as compute()).
  static Delta compute_cdc(const cdc::Signature& base_sig,
                           std::string_view target);

  /// Reconstruct the target. `base` is ignored for kFull.
  Result<std::string> apply(const std::string& base) const;

  /// True when applying requires the base content. An all-literal CDC
  /// delta (first transfer) applies against anything, including no base.
  bool needs_base() const {
    return format == Format::kCdc ? cdc.has_copies()
                                  : format != Format::kFull;
  }

  /// Encoded size in bytes — the transfer cost the figures measure.
  std::size_t wire_size() const;

  void encode(BufWriter& out) const;
  static Result<Delta> decode(BufReader& in);

  bool operator==(const Delta&) const = default;
};

}  // namespace shadow::diff
