#include "diff/diff.hpp"

namespace shadow::diff {

EditScript compute_ed_script(std::string_view old_text,
                             std::string_view new_text, Algorithm algo) {
  LineTable table(old_text, new_text);
  const MatchList matches = (algo == Algorithm::kMyers)
                                ? myers_lcs(table)
                                : hunt_mcilroy_lcs(table);
  return build_ed_script(table, old_text, new_text, matches);
}

}  // namespace shadow::diff
