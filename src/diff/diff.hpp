// Public facade of the diff module.
//
// Most callers only need:
//   auto delta = shadow::diff::Delta::compute(old_text, new_text,
//                                             Algorithm::kHuntMcIlroy);
//   auto restored = delta.apply(old_text);
#pragma once

#include "diff/block_move.hpp"   // IWYU pragma: export
#include "diff/delta.hpp"        // IWYU pragma: export
#include "diff/edit_script.hpp"  // IWYU pragma: export
#include "diff/hunt_mcilroy.hpp" // IWYU pragma: export
#include "diff/lcs.hpp"          // IWYU pragma: export
#include "diff/line_table.hpp"   // IWYU pragma: export
#include "diff/myers.hpp"        // IWYU pragma: export

namespace shadow::diff {

/// Convenience: compute an ed script between two texts using the given
/// line-matching algorithm (HM75 by default, as in the prototype). Both
/// files are tokenized exactly once (zero-copy) and the same LineTable
/// feeds the LCS pass and the ed-script builder.
EditScript compute_ed_script(std::string_view old_text,
                             std::string_view new_text,
                             Algorithm algo = Algorithm::kHuntMcIlroy);

}  // namespace shadow::diff
