#include "diff/edit_script.hpp"

#include <algorithm>
#include <iterator>
#include <span>

#include "util/crc32.hpp"
#include "util/text.hpp"

namespace shadow::diff {

std::size_t EditScript::inserted_bytes() const {
  std::size_t total = 0;
  for (const auto& cmd : commands) {
    for (const auto& line : cmd.text) total += line.size();
  }
  return total;
}

namespace {

// Shared hunk-emission core: consumes line VIEWS (into the caller's
// old/new buffers) and materializes owning strings only for the inserted
// text each hunk actually carries.
EditScript build_ed_script_views(std::span<const std::string_view> old_lines,
                                 std::span<const std::string_view> new_lines,
                                 std::string_view old_text,
                                 std::string_view new_text,
                                 const MatchList& matches) {
  EditScript script;
  script.old_line_count = old_lines.size();
  script.new_line_count = new_lines.size();
  script.old_crc = crc32(reinterpret_cast<const u8*>(old_text.data()),
                         old_text.size());
  script.new_crc = crc32(reinterpret_cast<const u8*>(new_text.data()),
                         new_text.size());

  // Walk the gaps between consecutive matches; each gap is one hunk:
  // old[oi..match.old) replaced by new[nj..match.new).
  std::vector<EdCommand> ascending;
  std::size_t oi = 0;  // next unconsumed old line
  std::size_t nj = 0;  // next unconsumed new line
  auto emit_hunk = [&](std::size_t old_end, std::size_t new_end) {
    const bool has_del = old_end > oi;
    const bool has_ins = new_end > nj;
    if (!has_del && !has_ins) return;
    EdCommand cmd;
    if (has_del && has_ins) {
      cmd.kind = EdCommand::Kind::kChange;
      cmd.line1 = oi + 1;
      cmd.line2 = old_end;
    } else if (has_del) {
      cmd.kind = EdCommand::Kind::kDelete;
      cmd.line1 = oi + 1;
      cmd.line2 = old_end;
    } else {
      cmd.kind = EdCommand::Kind::kAppend;
      cmd.line1 = oi;  // insert after the line before the gap (0 = front)
      cmd.line2 = oi;
    }
    cmd.text.reserve(new_end - nj);
    for (std::size_t j = nj; j < new_end; ++j) {
      cmd.text.emplace_back(new_lines[j]);
    }
    ascending.push_back(std::move(cmd));
  };

  for (const auto& match : matches) {
    emit_hunk(match.old_index, match.new_index);
    oi = match.old_index + 1;
    nj = match.new_index + 1;
  }
  emit_hunk(old_lines.size(), new_lines.size());

  // Ed order: descending so earlier applications don't renumber later ones.
  script.commands.assign(std::make_move_iterator(ascending.rbegin()),
                         std::make_move_iterator(ascending.rend()));
  return script;
}

}  // namespace

EditScript build_ed_script(const LineTable& table, std::string_view old_text,
                           std::string_view new_text,
                           const MatchList& matches) {
  return build_ed_script_views(table.old_lines(), table.new_lines(),
                               old_text, new_text, matches);
}

EditScript build_ed_script(std::string_view old_text,
                           std::string_view new_text,
                           const MatchList& matches) {
  const auto old_lines = split_line_views(old_text);
  const auto new_lines = split_line_views(new_text);
  return build_ed_script_views(old_lines, new_lines, old_text, new_text,
                               matches);
}

namespace {
// Core command replay, shared by apply_ed_script and the text parser.
Status apply_commands(std::vector<std::string>& lines,
                      const std::vector<EdCommand>& commands);
}  // namespace

Result<std::string> apply_ed_script(const std::string& base,
                                    const EditScript& script) {
  const u32 base_crc =
      crc32(reinterpret_cast<const u8*>(base.data()), base.size());
  if (base_crc != script.old_crc) {
    return Error{ErrorCode::kVersionMismatch,
                 "base content does not match script's old CRC"};
  }

  auto lines = split_lines(base);
  if (lines.size() != script.old_line_count) {
    return Error{ErrorCode::kVersionMismatch,
                 "base line count does not match script"};
  }
  SHADOW_TRY(apply_commands(lines, script.commands));

  std::string result = join_lines(lines);
  const u32 result_crc =
      crc32(reinterpret_cast<const u8*>(result.data()), result.size());
  if (result_crc != script.new_crc) {
    return Error{ErrorCode::kInternal,
                 "reconstructed content fails target CRC check"};
  }
  return result;
}

namespace {
Status apply_commands(std::vector<std::string>& lines,
                      const std::vector<EdCommand>& commands) {
  u64 prev_line1 = static_cast<u64>(lines.size()) + 2;
  for (const auto& cmd : commands) {
    // Commands must be strictly descending and within bounds.
    if (cmd.line1 >= prev_line1) {
      return Error{ErrorCode::kInvalidArgument,
                   "ed commands not in descending order"};
    }
    prev_line1 = cmd.line1 == 0 ? 1 : cmd.line1;
    switch (cmd.kind) {
      case EdCommand::Kind::kAppend: {
        if (cmd.line1 > lines.size()) {
          return Error{ErrorCode::kInvalidArgument,
                       "append position out of range"};
        }
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(cmd.line1),
                     cmd.text.begin(), cmd.text.end());
        break;
      }
      case EdCommand::Kind::kChange:
      case EdCommand::Kind::kDelete: {
        if (cmd.line1 < 1 || cmd.line2 < cmd.line1 ||
            cmd.line2 > lines.size()) {
          return Error{ErrorCode::kInvalidArgument,
                       "command range out of bounds"};
        }
        const auto first =
            lines.begin() + static_cast<std::ptrdiff_t>(cmd.line1 - 1);
        const auto last =
            lines.begin() + static_cast<std::ptrdiff_t>(cmd.line2);
        if (cmd.kind == EdCommand::Kind::kDelete) {
          lines.erase(first, last);
        } else {
          // Replace the range. erase+insert keeps it simple and correct.
          auto pos = lines.erase(first, last);
          lines.insert(pos, cmd.text.begin(), cmd.text.end());
        }
        break;
      }
    }
  }
  return Status();
}
}  // namespace

void encode_ed_script(const EditScript& script, BufWriter& out) {
  out.put_u32(script.old_crc);
  out.put_u32(script.new_crc);
  out.put_varint(script.old_line_count);
  out.put_varint(script.new_line_count);
  out.put_varint(script.commands.size());
  // Line numbers are delta-encoded against the previous command's line1
  // (descending), so long scripts of small hunks stay compact.
  u64 prev = 0;
  for (const auto& cmd : script.commands) {
    out.put_u8(static_cast<u8>(cmd.kind));
    if (prev == 0) {
      out.put_varint(cmd.line1);
    } else {
      out.put_varint(prev - cmd.line1);  // descending => non-negative
    }
    prev = cmd.line1;
    out.put_varint(cmd.line2 >= cmd.line1 ? cmd.line2 - cmd.line1 : 0);
    out.put_varint(cmd.text.size());
    for (const auto& line : cmd.text) out.put_string(line);
  }
}

Result<EditScript> decode_ed_script(BufReader& in) {
  EditScript script;
  SHADOW_ASSIGN_OR_RETURN(old_crc, in.get_u32());
  SHADOW_ASSIGN_OR_RETURN(new_crc, in.get_u32());
  SHADOW_ASSIGN_OR_RETURN(old_count, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(new_count, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(num_commands, in.get_varint());
  script.old_crc = old_crc;
  script.new_crc = new_crc;
  script.old_line_count = old_count;
  script.new_line_count = new_count;
  u64 prev = 0;
  for (u64 i = 0; i < num_commands; ++i) {
    EdCommand cmd;
    SHADOW_ASSIGN_OR_RETURN(kind_byte, in.get_u8());
    if (kind_byte > 2) {
      return Error{ErrorCode::kProtocolError, "bad ed command kind"};
    }
    cmd.kind = static_cast<EdCommand::Kind>(kind_byte);
    SHADOW_ASSIGN_OR_RETURN(l1, in.get_varint());
    cmd.line1 = (prev == 0) ? l1 : prev - l1;
    if (prev != 0 && l1 > prev) {
      return Error{ErrorCode::kProtocolError, "ed line delta underflow"};
    }
    prev = cmd.line1;
    SHADOW_ASSIGN_OR_RETURN(span, in.get_varint());
    cmd.line2 = cmd.line1 + span;
    SHADOW_ASSIGN_OR_RETURN(num_lines, in.get_varint());
    if (num_lines > in.remaining()) {
      return Error{ErrorCode::kProtocolError, "ed text count exceeds buffer"};
    }
    cmd.text.reserve(static_cast<std::size_t>(num_lines));
    for (u64 j = 0; j < num_lines; ++j) {
      SHADOW_ASSIGN_OR_RETURN(line, in.get_string());
      cmd.text.push_back(std::move(line));
    }
    script.commands.push_back(std::move(cmd));
  }
  return script;
}

std::string ed_script_to_text(const EditScript& script) {
  std::string out;
  for (const auto& cmd : script.commands) {
    switch (cmd.kind) {
      case EdCommand::Kind::kAppend:
        out += std::to_string(cmd.line1) + "a\n";
        break;
      case EdCommand::Kind::kChange:
        out += std::to_string(cmd.line1);
        if (cmd.line2 != cmd.line1) out += "," + std::to_string(cmd.line2);
        out += "c\n";
        break;
      case EdCommand::Kind::kDelete:
        out += std::to_string(cmd.line1);
        if (cmd.line2 != cmd.line1) out += "," + std::to_string(cmd.line2);
        out += "d\n";
        continue;  // no text block for delete
    }
    for (const auto& line : cmd.text) {
      const bool had_newline = !line.empty() && line.back() == '\n';
      const std::string body =
          had_newline ? line.substr(0, line.size() - 1) : line;
      // Escape: any content line beginning with '.' gets one extra dot,
      // so the block terminator stays unambiguous (see header comment).
      if (!body.empty() && body.front() == '.') out += '.';
      out += body;
      out += '\n';
    }
    out += ".\n";
  }
  return out;
}

Result<EditScript> parse_ed_script_text(const std::string& script_text,
                                        const std::string& base) {
  EditScript script;
  script.old_line_count = count_lines(base);
  script.old_crc =
      crc32(reinterpret_cast<const u8*>(base.data()), base.size());

  const auto raw_lines = split_lines(script_text);
  std::size_t i = 0;
  auto strip_newline = [](const std::string& line) {
    return (!line.empty() && line.back() == '\n')
               ? line.substr(0, line.size() - 1)
               : line;
  };

  while (i < raw_lines.size()) {
    const std::string header = strip_newline(raw_lines[i]);
    ++i;
    if (header.empty()) continue;

    const char kind_char = header.back();
    if (kind_char != 'a' && kind_char != 'c' && kind_char != 'd') {
      return Error{ErrorCode::kInvalidArgument,
                   "not an ed command: " + header};
    }
    const std::string addr = header.substr(0, header.size() - 1);
    const std::size_t comma = addr.find(',');
    EdCommand cmd;
    auto parse_number = [](const std::string& s) -> Result<u64> {
      if (s.empty()) {
        return Error{ErrorCode::kInvalidArgument, "empty ed address"};
      }
      u64 value = 0;
      for (char c : s) {
        if (c < '0' || c > '9') {
          return Error{ErrorCode::kInvalidArgument, "bad ed address: " + s};
        }
        value = value * 10 + static_cast<u64>(c - '0');
      }
      return value;
    };
    SHADOW_ASSIGN_OR_RETURN(
        line1, parse_number(comma == std::string::npos
                                ? addr
                                : addr.substr(0, comma)));
    cmd.line1 = line1;
    if (comma == std::string::npos) {
      cmd.line2 = cmd.line1;
    } else {
      SHADOW_ASSIGN_OR_RETURN(line2, parse_number(addr.substr(comma + 1)));
      cmd.line2 = line2;
    }
    switch (kind_char) {
      case 'a': cmd.kind = EdCommand::Kind::kAppend; break;
      case 'c': cmd.kind = EdCommand::Kind::kChange; break;
      default: cmd.kind = EdCommand::Kind::kDelete; break;
    }

    if (kind_char != 'd') {
      bool terminated = false;
      while (i < raw_lines.size()) {
        std::string body = strip_newline(raw_lines[i]);
        ++i;
        if (body == ".") {
          terminated = true;
          break;
        }
        // Unescape the serializer's leading-dot convention.
        if (body.size() >= 2 && body[0] == '.' && body[1] == '.') {
          body.erase(body.begin());
        }
        cmd.text.push_back(body + "\n");
      }
      if (!terminated) {
        return Error{ErrorCode::kInvalidArgument,
                     "unterminated ed text block"};
      }
    }
    script.commands.push_back(std::move(cmd));
  }

  // Derive the target fingerprint by replaying onto the base.
  auto lines = split_lines(base);
  SHADOW_TRY(apply_commands(lines, script.commands));
  const std::string result = join_lines(lines);
  script.new_line_count = lines.size();
  script.new_crc =
      crc32(reinterpret_cast<const u8*>(result.data()), result.size());
  return script;
}

std::size_t ed_script_wire_size(const EditScript& script) {
  BufWriter w;
  encode_ed_script(script, w);
  return w.size();
}

}  // namespace shadow::diff
