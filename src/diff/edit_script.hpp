// Ed-script edit model — the delta format of the paper's prototype.
//
// The prototype ran `diff -e old new` and shipped the resulting ed script
// to the server, which replayed it with ed(1) against the cached version.
// We model exactly that: a list of append/change/delete commands addressed
// by 1-based line numbers of the OLD file, ordered DESCENDING so that
// applying one command never shifts the line numbers of the next.
//
// The script carries CRC fingerprints of the base and target contents so a
// receiver can refuse to patch a stale cached copy (ErrorCode::
// kVersionMismatch) and verify the reconstruction byte-for-byte.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "diff/lcs.hpp"
#include "diff/line_table.hpp"
#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::diff {

/// One ed command. Line numbers are 1-based positions in the old file.
struct EdCommand {
  enum class Kind : u8 { kAppend = 0, kChange = 1, kDelete = 2 };

  Kind kind = Kind::kAppend;
  /// First old line affected. For kAppend: the line AFTER which text is
  /// inserted (0 = insert at beginning of file).
  u64 line1 = 0;
  /// Last old line affected (== line1 for single-line commands; unused for
  /// kAppend).
  u64 line2 = 0;
  /// Replacement / appended lines, each retaining its trailing '\n' except
  /// possibly a final line at end-of-file.
  std::vector<std::string> text;

  bool operator==(const EdCommand&) const = default;
};

/// A complete ed script plus integrity metadata.
struct EditScript {
  std::vector<EdCommand> commands;  // descending by line1
  u64 old_line_count = 0;
  u64 new_line_count = 0;
  u32 old_crc = 0;  // CRC32 of the base content bytes
  u32 new_crc = 0;  // CRC32 of the target content bytes

  bool operator==(const EditScript&) const = default;

  /// Total bytes of inserted text (a cheap size proxy).
  std::size_t inserted_bytes() const;
};

/// Build an ed script from an LCS match list over an already-tokenized
/// LineTable. `old_text`/`new_text` must be the exact buffers `table` was
/// constructed over (they feed the CRC fingerprints); the table's line
/// views are reused so neither file is re-split. Owning strings are
/// materialized only for the inserted-text payload of each hunk.
EditScript build_ed_script(const LineTable& table, std::string_view old_text,
                           std::string_view new_text,
                           const MatchList& matches);

/// Convenience overload that tokenizes (zero-copy) internally. Prefer the
/// LineTable overload when the caller already tokenized for the LCS pass.
EditScript build_ed_script(std::string_view old_text,
                           std::string_view new_text,
                           const MatchList& matches);

/// Apply a script to base content; verifies both CRCs. Returns the
/// reconstructed target content.
Result<std::string> apply_ed_script(const std::string& base,
                                    const EditScript& script);

/// Compact binary form (what goes on the wire inside a DeltaPayload).
void encode_ed_script(const EditScript& script, BufWriter& out);
Result<EditScript> decode_ed_script(BufReader& in);

/// Human-readable ed(1)-style text rendering, e.g.
///   12,15c
///   <new text>
///   .
/// Content lines that consist of a single "." are escaped as ".." (a
/// divergence from real ed, documented here; the binary form is canonical).
std::string ed_script_to_text(const EditScript& script);

/// Parse an ed-style script (as produced by ed_script_to_text or by real
/// `diff -e old new`) against the base content it applies to. Line counts
/// and CRCs are derived from `base` and from applying the commands, so the
/// result round-trips through apply_ed_script. Commands must be in ed's
/// descending order. ".." unescaping matches ed_script_to_text; real
/// diff -e output containing literal lone-"." content lines is ambiguous
/// in the ed language itself and is parsed as a terminator.
Result<EditScript> parse_ed_script_text(const std::string& script_text,
                                        const std::string& base);

/// Size in bytes of the binary encoding (what the figures measure as the
/// shadow transfer payload).
std::size_t ed_script_wire_size(const EditScript& script);

}  // namespace shadow::diff
