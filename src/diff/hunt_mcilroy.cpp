#include "diff/hunt_mcilroy.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

namespace shadow::diff {

namespace {
// A k-candidate: a match that ends an LCS prefix of length k, chained to
// its predecessor candidate (length k-1).
struct Candidate {
  std::size_t old_index;
  std::size_t new_index;
  const Candidate* prev;
};
}  // namespace

MatchList hunt_mcilroy_lcs(const LineTable& table) {
  const auto& old_ids = table.old_ids();
  const auto& new_ids = table.new_ids();
  if (old_ids.empty() || new_ids.empty()) return {};

  // Occurrence lists: for each symbol, the positions in the NEW file in
  // ascending order (we iterate them descending below).
  std::unordered_map<u32, std::vector<std::size_t>> occurrences;
  occurrences.reserve(new_ids.size());
  for (std::size_t j = 0; j < new_ids.size(); ++j) {
    occurrences[new_ids[j]].push_back(j);
  }

  // thresholds[k] = smallest new-file index that ends a common subsequence
  // of length k+1 found so far; strictly increasing.
  std::vector<std::size_t> thresholds;
  std::vector<const Candidate*> chain_tail;  // parallel to thresholds
  std::vector<std::unique_ptr<Candidate>> arena;
  arena.reserve(old_ids.size());

  for (std::size_t i = 0; i < old_ids.size(); ++i) {
    auto it = occurrences.find(old_ids[i]);
    if (it == occurrences.end()) continue;
    const auto& positions = it->second;
    // Descending order so that updates within one old line cannot chain to
    // each other (each old line may contribute at most one match).
    for (auto pos = positions.rbegin(); pos != positions.rend(); ++pos) {
      const std::size_t j = *pos;
      // Find k: first threshold >= j (replace), i.e. LIS update.
      const auto lo =
          std::lower_bound(thresholds.begin(), thresholds.end(), j);
      const std::size_t k = static_cast<std::size_t>(lo - thresholds.begin());
      if (lo != thresholds.end() && *lo == j) continue;  // no improvement
      const Candidate* prev = (k == 0) ? nullptr : chain_tail[k - 1];
      arena.push_back(std::make_unique<Candidate>(Candidate{i, j, prev}));
      const Candidate* cand = arena.back().get();
      if (lo == thresholds.end()) {
        thresholds.push_back(j);
        chain_tail.push_back(cand);
      } else {
        *lo = j;
        chain_tail[k] = cand;
      }
    }
  }

  if (chain_tail.empty()) return {};
  MatchList matches;
  matches.reserve(thresholds.size());
  for (const Candidate* c = chain_tail.back(); c != nullptr; c = c->prev) {
    matches.push_back(Match{c->old_index, c->new_index});
  }
  std::reverse(matches.begin(), matches.end());
  return matches;
}

}  // namespace shadow::diff
