#include "diff/hunt_mcilroy.hpp"

#include <algorithm>
#include <deque>

namespace shadow::diff {

namespace {
// A k-candidate: a match that ends an LCS prefix of length k, chained to
// its predecessor candidate (length k-1).
struct Candidate {
  std::size_t old_index;
  std::size_t new_index;
  const Candidate* prev;
};
}  // namespace

MatchList hunt_mcilroy_lcs_untrimmed(std::span<const u32> old_ids,
                                     std::span<const u32> new_ids) {
  if (old_ids.empty() || new_ids.empty()) return {};

  // Occurrence lists: for each symbol, the positions in the NEW file in
  // ascending order (we iterate them descending below). Built with a
  // counting sort over the dense symbol ids — flat arrays, no hashing.
  u32 max_id = 0;
  for (u32 id : new_ids) max_id = std::max(max_id, id);
  std::vector<std::size_t> bucket_end(static_cast<std::size_t>(max_id) + 2,
                                      0);
  for (u32 id : new_ids) ++bucket_end[id + 1];
  for (std::size_t s = 1; s < bucket_end.size(); ++s) {
    bucket_end[s] += bucket_end[s - 1];
  }
  const std::vector<std::size_t> bucket_begin(bucket_end.begin(),
                                              bucket_end.end() - 1);
  std::vector<std::size_t> positions(new_ids.size());
  {
    std::vector<std::size_t> fill(bucket_begin);
    for (std::size_t j = 0; j < new_ids.size(); ++j) {
      positions[fill[new_ids[j]]++] = j;
    }
  }

  // thresholds[k] = smallest new-file index that ends a common subsequence
  // of length k+1 found so far; strictly increasing.
  std::vector<std::size_t> thresholds;
  std::vector<const Candidate*> chain_tail;  // parallel to thresholds
  // Chunked arena: deque never moves existing elements, so Candidate
  // pointers stay stable while costing one allocation per block instead of
  // one per candidate.
  std::deque<Candidate> arena;

  for (std::size_t i = 0; i < old_ids.size(); ++i) {
    const u32 id = old_ids[i];
    if (id > max_id) continue;  // symbol absent from the new file
    // Descending order so that updates within one old line cannot chain to
    // each other (each old line may contribute at most one match).
    std::size_t p = bucket_end[id + 1];
    const std::size_t first = bucket_begin[id];
    while (p > first) {
      const std::size_t j = positions[--p];
      // Find k: first threshold >= j (replace), i.e. LIS update.
      const auto lo =
          std::lower_bound(thresholds.begin(), thresholds.end(), j);
      const std::size_t k = static_cast<std::size_t>(lo - thresholds.begin());
      if (lo != thresholds.end() && *lo == j) continue;  // no improvement
      const Candidate* prev = (k == 0) ? nullptr : chain_tail[k - 1];
      const Candidate* cand = &arena.emplace_back(Candidate{i, j, prev});
      if (lo == thresholds.end()) {
        thresholds.push_back(j);
        chain_tail.push_back(cand);
      } else {
        *lo = j;
        chain_tail[k] = cand;
      }
    }
  }

  if (chain_tail.empty()) return {};
  MatchList matches;
  matches.reserve(thresholds.size());
  for (const Candidate* c = chain_tail.back(); c != nullptr; c = c->prev) {
    matches.push_back(Match{c->old_index, c->new_index});
  }
  std::reverse(matches.begin(), matches.end());
  return matches;
}

MatchList hunt_mcilroy_lcs(const LineTable& table) {
  const std::span<const u32> old_ids{table.old_ids()};
  const std::span<const u32> new_ids{table.new_ids()};
  const CommonAffix affix = trim_common_affixes(old_ids, new_ids);
  if (affix.prefix == 0 && affix.suffix == 0) {
    return hunt_mcilroy_lcs_untrimmed(old_ids, new_ids);
  }
  MatchList middle = hunt_mcilroy_lcs_untrimmed(
      old_ids.subspan(affix.prefix,
                      old_ids.size() - affix.prefix - affix.suffix),
      new_ids.subspan(affix.prefix,
                      new_ids.size() - affix.prefix - affix.suffix));
  return expand_trimmed_matches(affix, std::move(middle), old_ids.size(),
                                new_ids.size());
}

}  // namespace shadow::diff
