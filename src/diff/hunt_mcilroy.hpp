// Hunt–McIlroy differential file comparison [HM75] — the algorithm the
// paper's prototype uses (it is what UNIX diff(1) implemented in 1987).
//
// This is the candidate-list formulation (a.k.a. Hunt–Szymanski): for each
// line of the old file we enumerate the positions of equal lines in the new
// file in DESCENDING order and maintain k-candidate chains; the longest
// chain is the LCS. Complexity O((R + N) log N) where R is the number of
// matching line pairs — fast in practice because source files have many
// unique lines.
//
// Before the candidate core runs, identical leading/trailing line runs are
// trimmed in O(n) (lcs.hpp) so the quadratic-ish work is confined to the
// edited region — the dominant win for the paper's small-scattered-edits
// workload.
#pragma once

#include <span>

#include "diff/lcs.hpp"
#include "diff/line_table.hpp"

namespace shadow::diff {

/// Longest common subsequence of the two tokenized files (with affix
/// trimming).
MatchList hunt_mcilroy_lcs(const LineTable& table);

/// The candidate-list core over raw symbol ranges, WITHOUT affix trimming.
/// Exposed so tests can assert the trimmed path emits identical scripts.
MatchList hunt_mcilroy_lcs_untrimmed(std::span<const u32> old_ids,
                                     std::span<const u32> new_ids);

}  // namespace shadow::diff
