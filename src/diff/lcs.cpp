#include "diff/lcs.hpp"

#include <algorithm>

#include "telemetry/registry.hpp"

namespace shadow::diff {

bool is_valid_match_list(const MatchList& matches, std::size_t old_size,
                         std::size_t new_size) {
  for (std::size_t i = 0; i < matches.size(); ++i) {
    if (matches[i].old_index >= old_size) return false;
    if (matches[i].new_index >= new_size) return false;
    if (i > 0) {
      if (matches[i].old_index <= matches[i - 1].old_index) return false;
      if (matches[i].new_index <= matches[i - 1].new_index) return false;
    }
  }
  return true;
}

CommonAffix trim_common_affixes(std::span<const u32> old_ids,
                                std::span<const u32> new_ids) {
  CommonAffix affix;
  const std::size_t limit = std::min(old_ids.size(), new_ids.size());
  while (affix.prefix < limit &&
         old_ids[affix.prefix] == new_ids[affix.prefix]) {
    ++affix.prefix;
  }
  while (affix.suffix < limit - affix.prefix &&
         old_ids[old_ids.size() - 1 - affix.suffix] ==
             new_ids[new_ids.size() - 1 - affix.suffix]) {
    ++affix.suffix;
  }
  // Lines the trim spared the quadratic-ish LCS cores — the measured form
  // of PR 1's affix optimization (docs/OBSERVABILITY.md).
  static auto& c_trimmed =
      telemetry::Registry::global().counter("diff.affix_trimmed_lines");
  static auto& c_trims =
      telemetry::Registry::global().counter("diff.affix_trims");
  c_trimmed.add(affix.prefix + affix.suffix);
  c_trims.add();
  return affix;
}

MatchList expand_trimmed_matches(const CommonAffix& affix, MatchList middle,
                                 std::size_t old_size, std::size_t new_size) {
  MatchList out;
  out.reserve(affix.prefix + middle.size() + affix.suffix);
  for (std::size_t i = 0; i < affix.prefix; ++i) {
    out.push_back(Match{i, i});
  }
  for (const Match& m : middle) {
    out.push_back(
        Match{m.old_index + affix.prefix, m.new_index + affix.prefix});
  }
  for (std::size_t i = 0; i < affix.suffix; ++i) {
    out.push_back(Match{old_size - affix.suffix + i,
                        new_size - affix.suffix + i});
  }
  return out;
}

}  // namespace shadow::diff
