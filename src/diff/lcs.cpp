#include "diff/lcs.hpp"

namespace shadow::diff {

bool is_valid_match_list(const MatchList& matches, std::size_t old_size,
                         std::size_t new_size) {
  for (std::size_t i = 0; i < matches.size(); ++i) {
    if (matches[i].old_index >= old_size) return false;
    if (matches[i].new_index >= new_size) return false;
    if (i > 0) {
      if (matches[i].old_index <= matches[i - 1].old_index) return false;
      if (matches[i].new_index <= matches[i - 1].new_index) return false;
    }
  }
  return true;
}

}  // namespace shadow::diff
