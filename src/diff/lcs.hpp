// Common output type for the line-matching (LCS) algorithms.
#pragma once

#include <cstddef>
#include <vector>

namespace shadow::diff {

/// One matched line: old_lines[old_index] == new_lines[new_index].
struct Match {
  std::size_t old_index;
  std::size_t new_index;
  bool operator==(const Match&) const = default;
};

/// A common subsequence: matches strictly increasing in both indices.
using MatchList = std::vector<Match>;

/// Validates the strict-monotonicity invariant (used by tests and debug
/// assertions on algorithm outputs).
bool is_valid_match_list(const MatchList& matches, std::size_t old_size,
                         std::size_t new_size);

}  // namespace shadow::diff
