// Common output type for the line-matching (LCS) algorithms, plus the
// shared prefix/suffix trimming both algorithms apply before the LCS core.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace shadow::diff {

/// One matched line: old_lines[old_index] == new_lines[new_index].
struct Match {
  std::size_t old_index;
  std::size_t new_index;
  bool operator==(const Match&) const = default;
};

/// A common subsequence: matches strictly increasing in both indices.
using MatchList = std::vector<Match>;

/// Validates the strict-monotonicity invariant (used by tests and debug
/// assertions on algorithm outputs).
bool is_valid_match_list(const MatchList& matches, std::size_t old_size,
                         std::size_t new_size);

/// Identical leading/trailing line runs shared by both files. For the
/// "small scattered edits" workload these runs dominate the file, so
/// stripping them in O(n) before the LCS core shrinks the problem to the
/// edited region. `suffix` never overlaps `prefix` (it is clamped to the
/// shorter file's remainder), so e.g. "a\na\n" vs "a\n" trims prefix 1,
/// suffix 0.
struct CommonAffix {
  std::size_t prefix = 0;
  std::size_t suffix = 0;
};

/// O(n) scan for the common affix of the two symbol sequences.
CommonAffix trim_common_affixes(std::span<const u32> old_ids,
                                std::span<const u32> new_ids);

/// Re-assemble a full-file match list from a `middle` list computed on the
/// trimmed ranges: prefix matches (i, i), then `middle` shifted by
/// `affix.prefix` in both coordinates, then the suffix matches aligned to
/// the file ends.
MatchList expand_trimmed_matches(const CommonAffix& affix, MatchList middle,
                                 std::size_t old_size, std::size_t new_size);

}  // namespace shadow::diff
