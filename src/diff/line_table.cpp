#include "diff/line_table.hpp"

#include "util/text.hpp"

namespace shadow::diff {

LineTable::LineTable(const std::string& old_text,
                     const std::string& new_text)
    : old_lines_(split_lines(old_text)), new_lines_(split_lines(new_text)) {
  old_ids_.reserve(old_lines_.size());
  for (const auto& line : old_lines_) old_ids_.push_back(intern(line));
  new_ids_.reserve(new_lines_.size());
  for (const auto& line : new_lines_) new_ids_.push_back(intern(line));
}

u32 LineTable::intern(const std::string& line) {
  auto [it, inserted] = ids_.emplace(line, next_id_);
  if (inserted) ++next_id_;
  return it->second;
}

}  // namespace shadow::diff
