#include "diff/line_table.hpp"

#include "util/text.hpp"

namespace shadow::diff {

namespace {

// FNV-1a over the line bytes. Full comparison confirms every probe hit, so
// collision quality only affects speed, not correctness.
u64 line_hash(std::string_view line) {
  u64 h = 0xcbf29ce484222325ULL;
  for (char c : line) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Smallest power of two >= n (and >= 16) — keeps the probe mask cheap.
std::size_t table_capacity(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

LineTable::LineTable(std::string_view old_text, std::string_view new_text)
    : old_lines_(split_line_views(old_text)),
      new_lines_(split_line_views(new_text)) {
  // Worst case every line is distinct; doubling keeps the load factor
  // at most 0.5 so linear probes stay short and no rehash is ever needed.
  slots_.resize(
      table_capacity((old_lines_.size() + new_lines_.size()) * 2));
  intern_all(old_lines_, old_ids_);
  intern_all(new_lines_, new_ids_);
}

void LineTable::intern_all(const std::vector<std::string_view>& lines,
                           std::vector<u32>& ids) {
  ids.reserve(lines.size());
  for (std::string_view line : lines) ids.push_back(intern(line));
}

u32 LineTable::intern(std::string_view line) {
  const u64 h = line_hash(line);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.id_plus1 == 0) {
      slot.hash = h;
      slot.line = line;
      slot.id_plus1 = ++next_id_;
      return slot.id_plus1 - 1;
    }
    if (slot.hash == h && slot.line == line) return slot.id_plus1 - 1;
    i = (i + 1) & mask;
  }
}

}  // namespace shadow::diff
