// Line interning for the line-based diff algorithms.
//
// Both files are tokenized into lines (util/text.hpp conventions) and each
// distinct line string is assigned a dense integer id, so the LCS
// algorithms compare ints instead of strings.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace shadow::diff {

/// Two files tokenized against one shared symbol table.
class LineTable {
 public:
  LineTable(const std::string& old_text, const std::string& new_text);

  const std::vector<std::string>& old_lines() const { return old_lines_; }
  const std::vector<std::string>& new_lines() const { return new_lines_; }

  /// Symbol ids, parallel to old_lines()/new_lines().
  const std::vector<u32>& old_ids() const { return old_ids_; }
  const std::vector<u32>& new_ids() const { return new_ids_; }

  std::size_t symbol_count() const { return next_id_; }

 private:
  u32 intern(const std::string& line);

  std::unordered_map<std::string, u32> ids_;
  u32 next_id_ = 0;
  std::vector<std::string> old_lines_;
  std::vector<std::string> new_lines_;
  std::vector<u32> old_ids_;
  std::vector<u32> new_ids_;
};

}  // namespace shadow::diff
