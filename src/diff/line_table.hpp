// Line interning for the line-based diff algorithms.
//
// Both files are tokenized into lines (util/text.hpp conventions) and each
// distinct line is assigned a dense integer id, so the LCS algorithms
// compare ints instead of strings.
//
// Zero-copy: tokenization produces string_views into the caller's buffers
// and interning hashes those views directly — file content is never copied.
// LIFETIME CONTRACT: the old/new text buffers passed to the constructor
// must outlive the LineTable and any string_view obtained from old_lines()
// / new_lines(). Ed-script construction materializes owning strings only at
// hunk-emission time (see build_ed_script).
#pragma once

#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace shadow::diff {

/// Two files tokenized against one shared symbol table.
class LineTable {
 public:
  LineTable(std::string_view old_text, std::string_view new_text);

  /// Views into the constructor's buffers (see lifetime contract above).
  const std::vector<std::string_view>& old_lines() const {
    return old_lines_;
  }
  const std::vector<std::string_view>& new_lines() const {
    return new_lines_;
  }

  /// Symbol ids, parallel to old_lines()/new_lines().
  const std::vector<u32>& old_ids() const { return old_ids_; }
  const std::vector<u32>& new_ids() const { return new_ids_; }

  std::size_t symbol_count() const { return next_id_; }

 private:
  // Open-addressing interner slot: linear probing over a power-of-two
  // table, sized once in the constructor for the worst case (every line
  // distinct), so interning never rehashes. `id_plus1 == 0` marks empty;
  // the precomputed hash short-circuits most probe comparisons.
  struct Slot {
    u64 hash = 0;
    u32 id_plus1 = 0;
    std::string_view line;
  };

  u32 intern(std::string_view line);
  void intern_all(const std::vector<std::string_view>& lines,
                  std::vector<u32>& ids);

  std::vector<Slot> slots_;  // size is a power of two
  u32 next_id_ = 0;
  std::vector<std::string_view> old_lines_;
  std::vector<std::string_view> new_lines_;
  std::vector<u32> old_ids_;
  std::vector<u32> new_ids_;
};

}  // namespace shadow::diff
