#include "diff/myers.hpp"

#include <algorithm>
#include <vector>

namespace shadow::diff {

namespace {
// Default bound on the explored edit distance. Beyond this the files are so
// different that a whole-file replacement is cheaper than a minimal script;
// O(D^2) trace memory also stays modest (~130 MB worst case at 4096).
constexpr std::size_t kDefaultMaxD = 4096;

// Chunked arena for the backtracking trace. Step d's window (2d+1 values of
// the v array) is appended as one contiguous run inside a fixed-size chunk;
// a new chunk opens only when the window would not fit. Compared with one
// vector per step this costs ~one allocation per kChunkElems values, and
// compared with a single growing buffer it never realloc-copies the O(D^2)
// trace (window pointers stay stable because a chunk, once reserved, never
// exceeds its capacity).
class TraceArena {
 public:
  void push_window(const std::size_t* first, const std::size_t* last) {
    const std::size_t len = static_cast<std::size_t>(last - first);
    if (chunks_.empty() ||
        chunks_.back().capacity() - chunks_.back().size() < len) {
      chunks_.emplace_back();
      chunks_.back().reserve(std::max(kChunkElems, len));
    }
    auto& chunk = chunks_.back();
    const std::size_t offset = chunk.size();
    chunk.insert(chunk.end(), first, last);
    windows_.push_back(chunk.data() + offset);
  }

  /// Window for step d, indexed by k + d.
  const std::size_t* window(std::size_t d) const { return windows_[d]; }

 private:
  static constexpr std::size_t kChunkElems = std::size_t{1} << 18;  // 2 MB

  std::vector<std::vector<std::size_t>> chunks_;
  std::vector<const std::size_t*> windows_;
};
}  // namespace

MatchList myers_lcs_untrimmed(std::span<const u32> old_ids,
                              std::span<const u32> new_ids,
                              std::size_t max_d) {
  const std::span<const u32> a = old_ids;
  const std::span<const u32> b = new_ids;
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return {};

  const std::size_t dmax_full = n + m;
  const std::size_t dmax =
      std::min(dmax_full, (max_d == 0) ? kDefaultMaxD : max_d);

  // v[k + offset] = furthest x on diagonal k.
  const std::size_t offset = dmax;
  std::vector<std::size_t> v(2 * dmax + 1, 0);
  // Compact trace: step d's window v[offset-d .. offset+d] (the state
  // backtracking needs at step d) goes into the chunked arena.
  TraceArena trace;

  std::size_t found_d = dmax_full + 1;
  for (std::size_t d = 0; d <= dmax && found_d > dmax; ++d) {
    trace.push_window(v.data() + (offset - d), v.data() + (offset + d + 1));
    for (std::size_t ki = 0; ki <= 2 * d; ki += 2) {
      // k runs over -d, -d+2, ..., +d.
      const std::ptrdiff_t k =
          static_cast<std::ptrdiff_t>(ki) - static_cast<std::ptrdiff_t>(d);
      const std::size_t idx =
          static_cast<std::size_t>(k + static_cast<std::ptrdiff_t>(offset));
      std::size_t x;
      if (k == -static_cast<std::ptrdiff_t>(d) ||
          (k != static_cast<std::ptrdiff_t>(d) && v[idx - 1] < v[idx + 1])) {
        x = v[idx + 1];  // step down: insert b's line
      } else {
        x = v[idx - 1] + 1;  // step right: delete a's line
      }
      std::size_t y =
          static_cast<std::size_t>(static_cast<std::ptrdiff_t>(x) - k);
      while (x < n && y < m && a[x] == b[y]) {
        ++x;
        ++y;
      }
      v[idx] = x;
      if (x >= n && y >= m) {
        found_d = d;
        break;
      }
    }
  }

  if (found_d > dmax) {
    // Distance bound exceeded: no matches reported; callers emit a
    // whole-file replacement instead of a minimal script.
    return {};
  }

  // Backtrack from (n, m) through the per-d trace windows, collecting
  // snakes.
  MatchList matches;
  std::size_t x = n;
  std::size_t y = m;
  for (std::size_t d = found_d; d > 0; --d) {
    const std::size_t* vd = trace.window(d);  // indexed by k + d
    const std::ptrdiff_t k =
        static_cast<std::ptrdiff_t>(x) - static_cast<std::ptrdiff_t>(y);
    const std::size_t idx =
        static_cast<std::size_t>(k + static_cast<std::ptrdiff_t>(d));
    std::ptrdiff_t prev_k;
    if (k == -static_cast<std::ptrdiff_t>(d) ||
        (k != static_cast<std::ptrdiff_t>(d) && vd[idx - 1] < vd[idx + 1])) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    const std::size_t prev_x =
        vd[static_cast<std::size_t>(prev_k + static_cast<std::ptrdiff_t>(d))];
    const std::size_t prev_y = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(prev_x) - prev_k);
    // The snake ran from (mid_x, mid_y) to (x, y): those are matches.
    const std::size_t mid_x = (prev_k == k + 1) ? prev_x : prev_x + 1;
    const std::size_t mid_y =
        static_cast<std::size_t>(static_cast<std::ptrdiff_t>(mid_x) - k);
    while (x > mid_x && y > mid_y) {
      --x;
      --y;
      matches.push_back(Match{x, y});
    }
    x = prev_x;
    y = prev_y;
  }
  // Leading snake at d == 0.
  while (x > 0 && y > 0) {
    --x;
    --y;
    matches.push_back(Match{x, y});
  }
  std::reverse(matches.begin(), matches.end());
  return matches;
}

MatchList myers_lcs(const LineTable& table, std::size_t max_d) {
  const std::span<const u32> old_ids{table.old_ids()};
  const std::span<const u32> new_ids{table.new_ids()};
  const CommonAffix affix = trim_common_affixes(old_ids, new_ids);
  if (affix.prefix == 0 && affix.suffix == 0) {
    return myers_lcs_untrimmed(old_ids, new_ids, max_d);
  }
  MatchList middle = myers_lcs_untrimmed(
      old_ids.subspan(affix.prefix,
                      old_ids.size() - affix.prefix - affix.suffix),
      new_ids.subspan(affix.prefix,
                      new_ids.size() - affix.prefix - affix.suffix),
      max_d);
  return expand_trimmed_matches(affix, std::move(middle), old_ids.size(),
                                new_ids.size());
}

}  // namespace shadow::diff
