#include "diff/myers.hpp"

#include <algorithm>
#include <vector>

namespace shadow::diff {

namespace {
// Default bound on the explored edit distance. Beyond this the files are so
// different that a whole-file replacement is cheaper than a minimal script;
// O(D^2) trace memory also stays modest (~130 MB worst case at 4096).
constexpr std::size_t kDefaultMaxD = 4096;
}  // namespace

MatchList myers_lcs(const LineTable& table, std::size_t max_d) {
  const auto& a = table.old_ids();
  const auto& b = table.new_ids();
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return {};

  const std::size_t dmax_full = n + m;
  const std::size_t dmax =
      std::min(dmax_full, (max_d == 0) ? kDefaultMaxD : max_d);

  // v[k + offset] = furthest x on diagonal k.
  const std::size_t offset = dmax;
  std::vector<std::size_t> v(2 * dmax + 1, 0);
  // Compact trace: trace[d] holds v[offset-d .. offset+d] BEFORE step d's
  // updates, i.e. the state backtracking needs at step d.
  std::vector<std::vector<std::size_t>> trace;
  trace.reserve(dmax + 1);

  std::size_t found_d = dmax_full + 1;
  for (std::size_t d = 0; d <= dmax && found_d > dmax; ++d) {
    trace.emplace_back(v.begin() + static_cast<std::ptrdiff_t>(offset - d),
                       v.begin() + static_cast<std::ptrdiff_t>(offset + d + 1));
    for (std::size_t ki = 0; ki <= 2 * d; ki += 2) {
      // k runs over -d, -d+2, ..., +d.
      const std::ptrdiff_t k =
          static_cast<std::ptrdiff_t>(ki) - static_cast<std::ptrdiff_t>(d);
      const std::size_t idx =
          static_cast<std::size_t>(k + static_cast<std::ptrdiff_t>(offset));
      std::size_t x;
      if (k == -static_cast<std::ptrdiff_t>(d) ||
          (k != static_cast<std::ptrdiff_t>(d) && v[idx - 1] < v[idx + 1])) {
        x = v[idx + 1];  // step down: insert b's line
      } else {
        x = v[idx - 1] + 1;  // step right: delete a's line
      }
      std::size_t y =
          static_cast<std::size_t>(static_cast<std::ptrdiff_t>(x) - k);
      while (x < n && y < m && a[x] == b[y]) {
        ++x;
        ++y;
      }
      v[idx] = x;
      if (x >= n && y >= m) {
        found_d = d;
        break;
      }
    }
  }

  if (found_d > dmax) {
    // Distance bound exceeded: no matches reported; callers emit a
    // whole-file replacement instead of a minimal script.
    return {};
  }

  // Backtrack from (n, m) through the per-d traces, collecting snakes.
  MatchList matches;
  std::size_t x = n;
  std::size_t y = m;
  for (std::size_t d = found_d; d > 0; --d) {
    const auto& vd = trace[d];  // indexed by k + d
    const std::ptrdiff_t k =
        static_cast<std::ptrdiff_t>(x) - static_cast<std::ptrdiff_t>(y);
    const std::size_t idx =
        static_cast<std::size_t>(k + static_cast<std::ptrdiff_t>(d));
    std::ptrdiff_t prev_k;
    if (k == -static_cast<std::ptrdiff_t>(d) ||
        (k != static_cast<std::ptrdiff_t>(d) && vd[idx - 1] < vd[idx + 1])) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    const std::size_t prev_x =
        vd[static_cast<std::size_t>(prev_k + static_cast<std::ptrdiff_t>(d))];
    const std::size_t prev_y = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(prev_x) - prev_k);
    // The snake ran from (mid_x, mid_y) to (x, y): those are matches.
    const std::size_t mid_x = (prev_k == k + 1) ? prev_x : prev_x + 1;
    const std::size_t mid_y =
        static_cast<std::size_t>(static_cast<std::ptrdiff_t>(mid_x) - k);
    while (x > mid_x && y > mid_y) {
      --x;
      --y;
      matches.push_back(Match{x, y});
    }
    x = prev_x;
    y = prev_y;
  }
  // Leading snake at d == 0.
  while (x > 0 && y > 0) {
    --x;
    --y;
    matches.push_back(Match{x, y});
  }
  std::reverse(matches.begin(), matches.end());
  return matches;
}

}  // namespace shadow::diff
