// Myers O(ND) greedy LCS [Myers 1986 / Miller–Myers 1985, cited by the
// paper as a future-work alternative to Hunt–McIlroy].
//
// Produces a minimal edit script (fewest inserted+deleted lines). For
// pathological inputs (two files with nothing in common) the D loop is
// bounded by `max_d`; beyond it we fall back to a trivial
// delete-all/insert-all result, which the caller turns into a full-file
// replacement — same behaviour production diff tools use.
//
// Identical leading/trailing runs are trimmed before the O(ND) core runs
// (lcs.hpp), which both speeds up the common case and lets small edits in
// huge files stay under the explored-distance bound.
#pragma once

#include <span>

#include "diff/lcs.hpp"
#include "diff/line_table.hpp"

namespace shadow::diff {

/// LCS via the Myers greedy algorithm (with affix trimming). `max_d`
/// bounds the edit distance explored; 0 means the default bound.
MatchList myers_lcs(const LineTable& table, std::size_t max_d = 0);

/// The O(ND) core over raw symbol ranges, WITHOUT affix trimming. Exposed
/// so tests can assert the trimmed path emits identical scripts.
MatchList myers_lcs_untrimmed(std::span<const u32> old_ids,
                              std::span<const u32> new_ids,
                              std::size_t max_d = 0);

}  // namespace shadow::diff
