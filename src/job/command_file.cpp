#include "job/command_file.hpp"

#include "util/strings.hpp"
#include "util/text.hpp"

namespace shadow::job {

Result<std::vector<Command>> parse_command_file(const std::string& text) {
  std::vector<Command> commands;
  for (const auto& raw_line : split_lines(text)) {
    std::string line = raw_line;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    auto tokens = split_nonempty(line, ' ');
    // Tabs also separate tokens.
    std::vector<std::string> flat;
    for (const auto& t : tokens) {
      for (auto& part : split_nonempty(t, '\t')) {
        flat.push_back(std::move(part));
      }
    }
    if (flat.empty()) continue;

    Command cmd;
    cmd.program = flat.front();
    std::size_t end = flat.size();
    // Trailing "> file" redirect.
    if (end >= 2 && flat[end - 2] == ">") {
      cmd.redirect = flat[end - 1];
      end -= 2;
    } else if (end >= 1 && flat[end - 1].size() > 1 &&
               flat[end - 1].front() == '>') {
      cmd.redirect = flat[end - 1].substr(1);
      end -= 1;
    }
    for (std::size_t i = 1; i < end; ++i) cmd.args.push_back(flat[i]);
    if (cmd.program == ">") {
      return Error{ErrorCode::kInvalidArgument,
                   "redirect without a command: " + raw_line};
    }
    commands.push_back(std::move(cmd));
  }
  if (commands.empty()) {
    return Error{ErrorCode::kInvalidArgument, "command file has no commands"};
  }
  return commands;
}

std::string to_text(const std::vector<Command>& commands) {
  std::string out;
  for (const auto& cmd : commands) {
    out += cmd.program;
    for (const auto& arg : cmd.args) out += " " + arg;
    if (!cmd.redirect.empty()) out += " > " + cmd.redirect;
    out += "\n";
  }
  return out;
}

}  // namespace shadow::job
