// Job command file parser (paper §6.2: "The job command file contains one
// or more lines where each line specifies a command (along with its
// arguments) to be executed at the remote host").
//
// Syntax: one command per line, whitespace-separated tokens, '#' comments,
// optional trailing "> file" redirect sending that command's output to a
// named file in the job sandbox instead of the job's stdout.
#pragma once

#include <string>
#include <vector>

#include "util/result.hpp"

namespace shadow::job {

struct Command {
  std::string program;
  std::vector<std::string> args;
  std::string redirect;  // empty = job stdout

  bool operator==(const Command&) const = default;
};

Result<std::vector<Command>> parse_command_file(const std::string& text);

/// Render back to text (used when forwarding jobs between hosts).
std::string to_text(const std::vector<Command>& commands);

}  // namespace shadow::job
