#include "job/executor.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/text.hpp"

namespace shadow::job {

namespace {

struct JobAbort {
  std::string message;
};

class Sandbox {
 public:
  explicit Sandbox(std::map<std::string, std::string> files)
      : files_(std::move(files)) {}

  const std::string& read(const std::string& name) {
    auto it = files_.find(name);
    if (it == files_.end()) {
      throw JobAbort{"no such file in job sandbox: " + name};
    }
    return it->second;
  }

  void write(const std::string& name, std::string content) {
    files_[name] = std::move(content);
  }

  std::map<std::string, std::string> take() { return std::move(files_); }

 private:
  std::map<std::string, std::string> files_;
};

u64 parse_u64(const std::string& s, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw JobAbort{std::string("bad ") + what + ": " + s};
  }
  return v;
}

double parse_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw JobAbort{std::string("bad ") + what + ": " + s};
  }
  return v;
}

void require_args(const Command& cmd, std::size_t min_count) {
  if (cmd.args.size() < min_count) {
    throw JobAbort{cmd.program + ": expected at least " +
                   std::to_string(min_count) + " argument(s)"};
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Executes one command, returns its stdout, accumulates cpu cost.
std::string run_one(const Command& cmd, Sandbox& sandbox, u64& cpu_cost) {
  const auto& p = cmd.program;

  if (p == "cat") {
    require_args(cmd, 1);
    std::string out;
    for (const auto& name : cmd.args) {
      const auto& content = sandbox.read(name);
      cpu_cost += content.size();
      out += content;
    }
    return out;
  }
  if (p == "echo") {
    std::string out = join(cmd.args, " ");
    out += "\n";
    cpu_cost += out.size();
    return out;
  }
  if (p == "gen") {
    require_args(cmd, 2);
    const u64 lines = parse_u64(cmd.args[0], "line count");
    const u64 seed = parse_u64(cmd.args[1], "seed");
    Rng rng(seed);
    std::string out;
    for (u64 i = 0; i < lines; ++i) {
      out += std::to_string(rng.below(1000000)) + " " + rng.ascii_line(32) +
             "\n";
    }
    cpu_cost += out.size();
    return out;
  }
  if (p == "sort") {
    require_args(cmd, 1);
    auto lines = split_lines(sandbox.read(cmd.args[0]));
    cpu_cost += lines.size() * 16 + sandbox.read(cmd.args[0]).size();
    std::sort(lines.begin(), lines.end());
    return join_lines(lines);
  }
  if (p == "uniq") {
    require_args(cmd, 1);
    const auto lines = split_lines(sandbox.read(cmd.args[0]));
    cpu_cost += sandbox.read(cmd.args[0]).size();
    std::vector<std::string> out;
    for (const auto& line : lines) {
      if (out.empty() || out.back() != line) out.push_back(line);
    }
    return join_lines(out);
  }
  if (p == "grep") {
    require_args(cmd, 2);
    const auto& pattern = cmd.args[0];
    const auto lines = split_lines(sandbox.read(cmd.args[1]));
    cpu_cost += sandbox.read(cmd.args[1]).size();
    std::string out;
    for (const auto& line : lines) {
      if (line.find(pattern) != std::string::npos) out += line;
    }
    return out;
  }
  if (p == "head" || p == "tail") {
    require_args(cmd, 2);
    const u64 n = parse_u64(cmd.args[0], "line count");
    auto lines = split_lines(sandbox.read(cmd.args[1]));
    cpu_cost += sandbox.read(cmd.args[1]).size();
    std::vector<std::string> keep;
    if (p == "head") {
      for (std::size_t i = 0; i < lines.size() && i < n; ++i) {
        keep.push_back(lines[i]);
      }
    } else {
      const std::size_t start =
          lines.size() > n ? lines.size() - static_cast<std::size_t>(n) : 0;
      for (std::size_t i = start; i < lines.size(); ++i) {
        keep.push_back(lines[i]);
      }
    }
    return join_lines(keep);
  }
  if (p == "rev") {
    require_args(cmd, 1);
    auto lines = split_lines(sandbox.read(cmd.args[0]));
    cpu_cost += sandbox.read(cmd.args[0]).size();
    std::reverse(lines.begin(), lines.end());
    return join_lines(lines);
  }
  if (p == "wc") {
    require_args(cmd, 1);
    const auto& content = sandbox.read(cmd.args[0]);
    cpu_cost += content.size();
    const auto lines = split_lines(content);
    std::size_t words = 0;
    for (const auto& line : lines) words += split_nonempty(line, ' ').size();
    return std::to_string(lines.size()) + " " + std::to_string(words) + " " +
           std::to_string(content.size()) + "\n";
  }
  if (p == "sum") {
    require_args(cmd, 1);
    const auto lines = split_lines(sandbox.read(cmd.args[0]));
    cpu_cost += sandbox.read(cmd.args[0]).size();
    double total = 0;
    for (const auto& line : lines) {
      const auto fields = split_nonempty(trim(line), ' ');
      if (!fields.empty()) {
        char* end = nullptr;
        const double v = std::strtod(fields[0].c_str(), &end);
        if (end != fields[0].c_str()) total += v;
      }
    }
    return format_double(total) + "\n";
  }
  if (p == "scale") {
    require_args(cmd, 2);
    const double factor = parse_double(cmd.args[0], "factor");
    const auto lines = split_lines(sandbox.read(cmd.args[1]));
    cpu_cost += 2 * sandbox.read(cmd.args[1]).size();
    std::string out;
    for (const auto& line : lines) {
      const bool had_newline = !line.empty() && line.back() == '\n';
      const std::string body =
          had_newline ? line.substr(0, line.size() - 1) : line;
      std::vector<std::string> tokens;
      for (const auto& tok : split(body, ' ')) {
        char* end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (!tok.empty() && end == tok.c_str() + tok.size()) {
          tokens.push_back(format_double(v * factor));
        } else {
          tokens.push_back(tok);
        }
      }
      out += join(tokens, " ");
      if (had_newline) out += "\n";
    }
    return out;
  }
  if (p == "matmul") {
    require_args(cmd, 2);
    const u64 n = parse_u64(cmd.args[0], "matrix size");
    const u64 seed = parse_u64(cmd.args[1], "seed");
    if (n == 0 || n > 512) {
      throw JobAbort{"matmul: size must be in [1, 512]"};
    }
    Rng rng(seed);
    const std::size_t dim = static_cast<std::size_t>(n);
    std::vector<double> a(dim * dim);
    std::vector<double> b(dim * dim);
    for (auto& x : a) x = rng.uniform();
    for (auto& x : b) x = rng.uniform();
    double checksum = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        double acc = 0;
        for (std::size_t k = 0; k < dim; ++k) {
          acc += a[i * dim + k] * b[k * dim + j];
        }
        checksum += acc;
      }
    }
    cpu_cost += n * n * n;
    return "matmul " + std::to_string(n) + " checksum " +
           format_double(checksum) + "\n";
  }
  if (p == "burn") {
    // Charge abstract CPU without computing anything: load/scheduling
    // experiments use this to shape job durations precisely.
    require_args(cmd, 1);
    cpu_cost += parse_u64(cmd.args[0], "op count");
    return "";
  }
  if (p == "fail") {
    throw JobAbort{cmd.args.empty() ? "job aborted" : join(cmd.args, " ")};
  }
  throw JobAbort{"unknown command: " + p};
}

}  // namespace

ExecutionResult Executor::run(const std::vector<Command>& commands,
                              std::map<std::string, std::string> inputs) const {
  ExecutionResult result;
  Sandbox sandbox(std::move(inputs));
  try {
    for (const auto& cmd : commands) {
      std::string out = run_one(cmd, sandbox, result.cpu_cost);
      if (cmd.redirect.empty()) {
        result.output += out;
      } else {
        sandbox.write(cmd.redirect, std::move(out));
      }
    }
  } catch (const JobAbort& abort) {
    result.exit_code = 1;
    result.error += abort.message + "\n";
  }
  result.sandbox = sandbox.take();
  return result;
}

Result<ExecutionResult> Executor::run_command_file(
    const std::string& command_file,
    std::map<std::string, std::string> inputs) const {
  SHADOW_ASSIGN_OR_RETURN(commands, parse_command_file(command_file));
  return run(commands, std::move(inputs));
}

}  // namespace shadow::job
