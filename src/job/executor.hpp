// Batch job executor — the "supercomputer" of this reproduction.
//
// The paper's evaluation never measures computation (only transfer time);
// what matters is that submitted jobs really consume the cached input
// files and produce output that flows back. The executor interprets job
// command files over an in-memory sandbox with a small built-in command
// set (sort/grep/wc/scale/matmul/...) and reports an abstract CPU cost
// that the simulator converts into run time.
//
// Built-in commands (FILE args name sandbox files):
//   cat FILE...            concatenate files
//   echo WORD...           print words
//   gen LINES SEED         generate LINES lines of synthetic data
//   sort FILE              sort lines
//   uniq FILE              drop consecutive duplicate lines
//   grep PATTERN FILE      lines containing PATTERN
//   head N FILE            first N lines
//   tail N FILE            last N lines
//   rev FILE               reverse line order
//   wc FILE                "<lines> <words> <bytes>"
//   sum FILE               sum of the first numeric field of each line
//   scale FACTOR FILE      multiply every numeric token by FACTOR
//   matmul N SEED          dense N x N matrix multiply; prints checksum
//   burn OPS               charge OPS abstract CPU ops (for load tests)
//   fail MESSAGE           abort the job with exit code 1
// Any command may end with "> file" to write into the sandbox instead of
// the job's stdout.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "job/command_file.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::job {

struct ExecutionResult {
  std::map<std::string, std::string> sandbox;  // files after execution
  std::string output;   // job stdout
  std::string error;    // job stderr
  int exit_code = 0;
  u64 cpu_cost = 0;     // abstract ops; simulator maps to seconds
};

class Executor {
 public:
  /// Run `commands` over `inputs` (name -> content). Never returns an
  /// Error for job-level failures — those land in exit_code/error, like a
  /// real batch system. Errors are only for executor misuse.
  ExecutionResult run(const std::vector<Command>& commands,
                      std::map<std::string, std::string> inputs) const;

  /// Convenience: parse + run.
  Result<ExecutionResult> run_command_file(
      const std::string& command_file,
      std::map<std::string, std::string> inputs) const;
};

}  // namespace shadow::job
