#include "job/queue.hpp"

#include "telemetry/registry.hpp"

namespace shadow::job {

namespace {
// Job-queue telemetry summed over every JobQueue instance. Terminal-state
// counters (completions/failures/deliveries) fire on the transition INTO
// the state, so job.transitions >= completions + failures + deliveries.
struct JobMetrics {
  telemetry::Counter& submits;
  telemetry::Counter& transitions;
  telemetry::Counter& invalid_transitions;
  telemetry::Counter& completions;
  telemetry::Counter& failures;
  telemetry::Counter& deliveries;
  telemetry::Counter& requeues;
  telemetry::Counter& restored;

  static JobMetrics& get() {
    auto& r = telemetry::Registry::global();
    static JobMetrics m{r.counter("job.submits"),
                        r.counter("job.transitions"),
                        r.counter("job.invalid_transitions"),
                        r.counter("job.completions"),
                        r.counter("job.failures"),
                        r.counter("job.deliveries"),
                        r.counter("job.requeues"),
                        r.counter("job.restored")};
    return m;
  }
};
}  // namespace

void encode_job_record(const JobRecord& job, BufWriter& out) {
  out.put_varint(job.job_id);
  out.put_string(job.client_name);
  out.put_varint(job.client_job_token);
  out.put_string(job.command_file);
  out.put_varint(job.files.size());
  for (const auto& ref : job.files) {
    ref.file.encode(out);
    out.put_string(ref.local_name);
    out.put_varint(ref.version);
    out.put_u32(ref.crc);
  }
  out.put_string(job.output_name);
  out.put_string(job.error_name);
  out.put_string(job.output_route);
  out.put_u8(static_cast<u8>(job.state));
  out.put_string(job.detail);
  out.put_varint_signed(job.exit_code);
  out.put_string(job.output_content);
  out.put_string(job.error_content);
  out.put_varint(job.cpu_cost);
  out.put_varint(job.retries);
}

Result<JobRecord> decode_job_record(BufReader& in) {
  JobRecord job;
  SHADOW_ASSIGN_OR_RETURN(job_id, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(client_name, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(token, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(command_file, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(file_count, in.get_varint());
  if (file_count > in.remaining()) {
    return Error{ErrorCode::kProtocolError, "job file count exceeds data"};
  }
  job.job_id = job_id;
  job.client_name = std::move(client_name);
  job.client_job_token = token;
  job.command_file = std::move(command_file);
  for (u64 i = 0; i < file_count; ++i) {
    proto::JobFileRef ref;
    SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(in));
    SHADOW_ASSIGN_OR_RETURN(local_name, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(version, in.get_varint());
    SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
    ref.file = std::move(file);
    ref.local_name = std::move(local_name);
    ref.version = version;
    ref.crc = crc;
    job.files.push_back(std::move(ref));
  }
  SHADOW_ASSIGN_OR_RETURN(output_name, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(error_name, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(output_route, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(state_raw, in.get_u8());
  if (state_raw > static_cast<u8>(proto::JobState::kDelivered)) {
    return Error{ErrorCode::kProtocolError,
                 "bad job state: " + std::to_string(state_raw)};
  }
  SHADOW_ASSIGN_OR_RETURN(detail, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(exit_code, in.get_varint_signed());
  SHADOW_ASSIGN_OR_RETURN(output_content, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(error_content, in.get_string());
  SHADOW_ASSIGN_OR_RETURN(cpu_cost, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(retries, in.get_varint());
  job.output_name = std::move(output_name);
  job.error_name = std::move(error_name);
  job.output_route = std::move(output_route);
  job.state = static_cast<proto::JobState>(state_raw);
  job.detail = std::move(detail);
  job.exit_code = static_cast<int>(exit_code);
  job.output_content = std::move(output_content);
  job.error_content = std::move(error_content);
  job.cpu_cost = cpu_cost;
  job.retries = retries;
  return job;
}

u64 JobQueue::add(JobRecord record) {
  record.job_id = next_id_++;
  record.state = proto::JobState::kQueued;
  const u64 id = record.job_id;
  jobs_.emplace(id, std::move(record));
  JobMetrics::get().submits.add();
  return id;
}

Result<JobRecord*> JobQueue::find(u64 job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Error{ErrorCode::kNotFound,
                 "no such job: " + std::to_string(job_id)};
  }
  return &it->second;
}

Result<const JobRecord*> JobQueue::find(u64 job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Error{ErrorCode::kNotFound,
                 "no such job: " + std::to_string(job_id)};
  }
  return static_cast<const JobRecord*>(&it->second);
}

std::vector<proto::JobStatusInfo> JobQueue::status_for_client(
    const std::string& client_name) const {
  std::vector<proto::JobStatusInfo> out;
  for (const auto& [id, job] : jobs_) {
    if (job.client_name != client_name) continue;
    proto::JobStatusInfo info;
    info.job_id = id;
    info.client_job_token = job.client_job_token;
    info.state = job.state;
    info.detail = job.detail;
    out.push_back(std::move(info));
  }
  return out;
}

bool JobQueue::valid_transition(proto::JobState from, proto::JobState to) {
  using S = proto::JobState;
  switch (from) {
    case S::kQueued:
      return to == S::kWaitingFiles || to == S::kRunning || to == S::kFailed;
    case S::kWaitingFiles:
      return to == S::kRunning || to == S::kFailed || to == S::kWaitingFiles;
    case S::kRunning:
      return to == S::kCompleted || to == S::kFailed;
    case S::kCompleted:
      return to == S::kDelivered || to == S::kFailed;
    case S::kFailed:
      return to == S::kDelivered;  // failure reports are delivered too
    case S::kDelivered:
      return false;
  }
  return false;
}

Status JobQueue::transition(u64 job_id, proto::JobState next,
                            const std::string& detail) {
  SHADOW_ASSIGN_OR_RETURN(record, find(job_id));
  JobMetrics& metrics = JobMetrics::get();
  if (!valid_transition(record->state, next)) {
    metrics.invalid_transitions.add();
    return Error{ErrorCode::kInternal,
                 std::string("invalid job transition ") +
                     proto::job_state_name(record->state) + " -> " +
                     proto::job_state_name(next)};
  }
  record->state = next;
  metrics.transitions.add();
  if (next == proto::JobState::kCompleted) metrics.completions.add();
  if (next == proto::JobState::kFailed) metrics.failures.add();
  if (next == proto::JobState::kDelivered) metrics.deliveries.add();
  if (!detail.empty()) record->detail = detail;
  return Status();
}

JobRecord* JobQueue::next_schedulable() {
  for (auto& [id, job] : jobs_) {
    if (job.state == proto::JobState::kQueued ||
        job.state == proto::JobState::kWaitingFiles) {
      return &job;
    }
  }
  return nullptr;
}

Status JobQueue::requeue(u64 job_id, const std::string& detail) {
  SHADOW_ASSIGN_OR_RETURN(record, find(job_id));
  // kRunning -> kQueued is deliberately absent from valid_transition —
  // in live operation it IS a bug. Crash recovery is the one legal path.
  if (record->state != proto::JobState::kRunning) {
    return Error{ErrorCode::kInternal,
                 std::string("requeue of job in state ") +
                     proto::job_state_name(record->state)};
  }
  record->state = proto::JobState::kQueued;
  record->retries += 1;
  JobMetrics::get().requeues.add();
  if (!detail.empty()) record->detail = detail;
  return Status();
}

void JobQueue::encode(BufWriter& out) const {
  out.put_varint(next_id_);
  out.put_varint(jobs_.size());
  for (const auto& [id, job] : jobs_) encode_job_record(job, out);
}

Result<JobQueue> JobQueue::restore(BufReader& in) {
  JobQueue queue;
  SHADOW_ASSIGN_OR_RETURN(next_id, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  if (count > in.remaining()) {
    return Error{ErrorCode::kProtocolError, "job count exceeds data"};
  }
  queue.next_id_ = next_id == 0 ? 1 : next_id;
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(job, decode_job_record(in));
    const u64 id = job.job_id;
    queue.jobs_.emplace(id, std::move(job));
    if (id >= queue.next_id_) queue.next_id_ = id + 1;
  }
  return queue;
}

void JobQueue::restore_record(JobRecord job) {
  const u64 id = job.job_id;
  if (id == 0 || jobs_.count(id) != 0) return;  // already in snapshot
  jobs_.emplace(id, std::move(job));
  JobMetrics::get().restored.add();
  if (id >= next_id_) next_id_ = id + 1;
}

std::size_t JobQueue::active_count() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == proto::JobState::kQueued ||
        job.state == proto::JobState::kWaitingFiles ||
        job.state == proto::JobState::kRunning) {
      ++n;
    }
  }
  return n;
}

}  // namespace shadow::job
