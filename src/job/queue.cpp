#include "job/queue.hpp"

namespace shadow::job {

u64 JobQueue::add(JobRecord record) {
  record.job_id = next_id_++;
  record.state = proto::JobState::kQueued;
  const u64 id = record.job_id;
  jobs_.emplace(id, std::move(record));
  return id;
}

Result<JobRecord*> JobQueue::find(u64 job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Error{ErrorCode::kNotFound,
                 "no such job: " + std::to_string(job_id)};
  }
  return &it->second;
}

Result<const JobRecord*> JobQueue::find(u64 job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Error{ErrorCode::kNotFound,
                 "no such job: " + std::to_string(job_id)};
  }
  return static_cast<const JobRecord*>(&it->second);
}

std::vector<proto::JobStatusInfo> JobQueue::status_for_client(
    const std::string& client_name) const {
  std::vector<proto::JobStatusInfo> out;
  for (const auto& [id, job] : jobs_) {
    if (job.client_name != client_name) continue;
    proto::JobStatusInfo info;
    info.job_id = id;
    info.state = job.state;
    info.detail = job.detail;
    out.push_back(std::move(info));
  }
  return out;
}

bool JobQueue::valid_transition(proto::JobState from, proto::JobState to) {
  using S = proto::JobState;
  switch (from) {
    case S::kQueued:
      return to == S::kWaitingFiles || to == S::kRunning || to == S::kFailed;
    case S::kWaitingFiles:
      return to == S::kRunning || to == S::kFailed || to == S::kWaitingFiles;
    case S::kRunning:
      return to == S::kCompleted || to == S::kFailed;
    case S::kCompleted:
      return to == S::kDelivered || to == S::kFailed;
    case S::kFailed:
      return to == S::kDelivered;  // failure reports are delivered too
    case S::kDelivered:
      return false;
  }
  return false;
}

Status JobQueue::transition(u64 job_id, proto::JobState next,
                            const std::string& detail) {
  SHADOW_ASSIGN_OR_RETURN(record, find(job_id));
  if (!valid_transition(record->state, next)) {
    return Error{ErrorCode::kInternal,
                 std::string("invalid job transition ") +
                     proto::job_state_name(record->state) + " -> " +
                     proto::job_state_name(next)};
  }
  record->state = next;
  if (!detail.empty()) record->detail = detail;
  return Status();
}

JobRecord* JobQueue::next_schedulable() {
  for (auto& [id, job] : jobs_) {
    if (job.state == proto::JobState::kQueued ||
        job.state == proto::JobState::kWaitingFiles) {
      return &job;
    }
  }
  return nullptr;
}

std::size_t JobQueue::active_count() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == proto::JobState::kQueued ||
        job.state == proto::JobState::kWaitingFiles ||
        job.state == proto::JobState::kRunning) {
      ++n;
    }
  }
  return n;
}

}  // namespace shadow::job
