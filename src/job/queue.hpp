// Server-side job bookkeeping: records every submitted job, its state
// machine, and the FIFO of jobs awaiting scheduling. The demand-driven
// scheduler in server/ decides WHEN to run; the queue only tracks WHAT.
//
// State machine (proto::JobState):
//   kQueued -> kWaitingFiles -> kRunning -> kCompleted -> kDelivered
//                   |                          |
//                   +-----------> kFailed <----+
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "proto/messages.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::job {

struct JobRecord {
  u64 job_id = 0;
  std::string client_name;       // submitting client
  u64 client_job_token = 0;
  std::string command_file;
  std::vector<proto::JobFileRef> files;
  std::string output_name;
  std::string error_name;
  std::string output_route;      // client to deliver output to ("" = owner)
  // Identity of the connection that submitted this job (opaque, never
  // dereferenced, not persisted). Duplicate-submit detection is scoped to
  // it: a resync resend arrives on the same connection, while a restarted
  // client — whose token counter starts over — arrives on a new one and
  // must get a fresh job.
  const void* submitted_via = nullptr;

  proto::JobState state = proto::JobState::kQueued;
  std::string detail;            // human-readable status line

  // Populated on completion:
  int exit_code = 0;
  std::string output_content;
  std::string error_content;
  u64 cpu_cost = 0;

  /// How many times this job was re-queued after a crash interrupted it
  /// mid-run. Persisted, so a job that keeps dying eventually fails for
  /// good instead of looping forever.
  u64 retries = 0;
};

/// Wire/journal codec for a full job record (everything except
/// submitted_via, which is connection-scoped and meaningless after a
/// restart).
void encode_job_record(const JobRecord& job, BufWriter& out);
Result<JobRecord> decode_job_record(BufReader& in);

class JobQueue {
 public:
  /// Register a new job in kQueued state; returns its id.
  u64 add(JobRecord record);

  Result<JobRecord*> find(u64 job_id);
  Result<const JobRecord*> find(u64 job_id) const;

  /// Status of every job submitted by `client_name` (paper §6.2: status
  /// with no id returns all pending jobs).
  std::vector<proto::JobStatusInfo> status_for_client(
      const std::string& client_name) const;

  /// Transition with validation; invalid transitions are internal errors
  /// (they indicate a server bug, not bad input).
  Status transition(u64 job_id, proto::JobState next,
                    const std::string& detail = "");

  /// Oldest job in kQueued or kWaitingFiles state, if any (FIFO order).
  JobRecord* next_schedulable();

  std::size_t size() const { return jobs_.size(); }
  std::size_t active_count() const;  // queued/waiting/running

  /// Iterate all jobs (used by benches for reporting and by the server's
  /// scheduler).
  const std::map<u64, JobRecord>& all() const { return jobs_; }
  std::map<u64, JobRecord>& all_mutable() { return jobs_; }

  /// Put an interrupted job back on the queue (crash recovery): a job
  /// found kRunning after a restart never actually finished, so it runs
  /// again. Bumps the retry counter.
  Status requeue(u64 job_id, const std::string& detail);

  /// Snapshot codec: every record plus the id counter.
  void encode(BufWriter& out) const;
  static Result<JobQueue> restore(BufReader& in);

  /// Journal replay: re-insert a job if (and only if) it is not already
  /// present — records older than the snapshot replay as no-ops.
  void restore_record(JobRecord job);

 private:
  static bool valid_transition(proto::JobState from, proto::JobState to);

  std::map<u64, JobRecord> jobs_;
  u64 next_id_ = 1;
};

}  // namespace shadow::job
