#include "naming/domain_map.hpp"

namespace shadow::naming {

ShadowId DomainDirectory::intern(const GlobalFileId& id) {
  auto it = forward_.find(id.key());
  if (it != forward_.end()) return it->second;
  const ShadowId sid = next_++;
  forward_.emplace(id.key(), sid);
  display_.emplace(sid, id.display());
  return sid;
}

void DomainDirectory::bind(const GlobalFileId& id, ShadowId sid) {
  forward_[id.key()] = sid;
  display_[sid] = id.display();
  if (sid >= next_) next_ = sid + 1;
}

std::optional<ShadowId> DomainDirectory::lookup(
    const GlobalFileId& id) const {
  auto it = forward_.find(id.key());
  if (it == forward_.end()) return std::nullopt;
  return it->second;
}

std::string DomainDirectory::to_mapping_file() const {
  std::string out;
  for (const auto& [key, sid] : forward_) {
    out += std::to_string(sid) + " " + key;
    auto d = display_.find(sid);
    if (d != display_.end()) out += " " + d->second;
    out += "\n";
  }
  return out;
}

void DomainDirectory::encode(BufWriter& out) const {
  out.put_varint(next_);
  out.put_varint(forward_.size());
  for (const auto& [key, sid] : forward_) {
    out.put_string(key);
    out.put_varint(sid);
    auto d = display_.find(sid);
    out.put_string(d == display_.end() ? "" : d->second);
  }
}

Result<DomainDirectory> DomainDirectory::decode(BufReader& in) {
  DomainDirectory dir;
  SHADOW_ASSIGN_OR_RETURN(next, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  if (count > in.remaining()) {
    return Error{ErrorCode::kProtocolError, "mapping count exceeds data"};
  }
  dir.next_ = next;
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(key, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(sid, in.get_varint());
    SHADOW_ASSIGN_OR_RETURN(display, in.get_string());
    dir.forward_.emplace(std::move(key), sid);
    if (!display.empty()) dir.display_.emplace(sid, std::move(display));
  }
  return dir;
}

void DomainMap::encode(BufWriter& out) const {
  out.put_varint(domains_.size());
  for (const auto& [id, dir] : domains_) {
    out.put_string(id);
    dir.encode(out);
  }
}

Result<DomainMap> DomainMap::decode(BufReader& in) {
  DomainMap map;
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  if (count > in.remaining()) {
    return Error{ErrorCode::kProtocolError, "domain count exceeds data"};
  }
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(id, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(dir, DomainDirectory::decode(in));
    map.domains_.emplace(std::move(id), std::move(dir));
  }
  return map;
}

DomainDirectory& DomainMap::domain(const std::string& domain_id) {
  return domains_[domain_id];
}

const DomainDirectory* DomainMap::find(const std::string& domain_id) const {
  auto it = domains_.find(domain_id);
  return it == domains_.end() ? nullptr : &it->second;
}

std::string DomainMap::cache_key(const GlobalFileId& id) {
  return id.domain + "/" + std::to_string(domain(id.domain).intern(id));
}

void DomainMap::bind(const GlobalFileId& id, ShadowId sid) {
  domain(id.domain).bind(id, sid);
}

}  // namespace shadow::naming
