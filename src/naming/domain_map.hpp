// Server-side name mapping (paper §5.3/§6.5): the shadow server divides
// its name space into domains and keeps, per domain, a directory that maps
// each file identifier within the domain to the local name (shadow id) of
// the cached copy.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "naming/file_id.hpp"
#include "util/types.hpp"

namespace shadow::naming {

/// Identifier of a cached shadow file at the server site.
using ShadowId = u64;

/// Per-domain mapping directory.
class DomainDirectory {
 public:
  /// Shadow id for a file id, assigning a fresh one on first sight.
  ShadowId intern(const GlobalFileId& id);

  /// Existing mapping, if any.
  std::optional<ShadowId> lookup(const GlobalFileId& id) const;

  /// Restore a known (file id, shadow id) pair, e.g. when replaying a
  /// journal record that captured the assignment. Keeps next_ ahead of
  /// every bound id so later intern() calls never collide.
  void bind(const GlobalFileId& id, ShadowId sid);

  std::size_t size() const { return forward_.size(); }

  /// Serialize as the "mapping file" the paper describes (one line per
  /// entry: "<shadow-id> <file-key> <display-path>").
  std::string to_mapping_file() const;

  void encode(BufWriter& out) const;
  static Result<DomainDirectory> decode(BufReader& in);

 private:
  std::map<std::string, ShadowId> forward_;  // file key -> shadow id
  std::map<ShadowId, std::string> display_;  // shadow id -> display name
  ShadowId next_ = 1;
};

/// All domains known to one server.
class DomainMap {
 public:
  /// Directory for a domain, creating it on first use.
  DomainDirectory& domain(const std::string& domain_id);
  const DomainDirectory* find(const std::string& domain_id) const;

  /// Globally usable cache key: "<domain>/<shadow-id>".
  std::string cache_key(const GlobalFileId& id);

  /// Restore a mapping in the file's domain (journal replay).
  void bind(const GlobalFileId& id, ShadowId sid);

  std::size_t domain_count() const { return domains_.size(); }

  void encode(BufWriter& out) const;
  static Result<DomainMap> decode(BufReader& in);

 private:
  std::map<std::string, DomainDirectory> domains_;
};

}  // namespace shadow::naming
