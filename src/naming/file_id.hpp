// Globally unique file identity (paper §5.3).
//
// The client's name space is a (domain id, unique file id within domain)
// pair. Within a UNIX/NFS domain the unique file id is the fully resolved
// (storage host, canonical path) pair plus the inode number. The inode
// disambiguates hard links — two directory entries for one file resolve to
// different canonical paths but the SAME inode, and must map to one cached
// copy (§5.3's alias problem).
#pragma once

#include <functional>
#include <string>

#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::naming {

struct GlobalFileId {
  std::string domain;  // globally unique domain id (e.g. network number)
  std::string host;    // storage host within the domain
  std::string path;    // canonical path on that host
  u64 inode = 0;       // inode on that host (hard-link identity)

  bool operator==(const GlobalFileId&) const = default;
  bool operator<(const GlobalFileId& other) const {
    if (domain != other.domain) return domain < other.domain;
    if (host != other.host) return host < other.host;
    return inode < other.inode;
  }

  /// Stable string key. Identity is (domain, host, inode): hard-link
  /// aliases share it even though their canonical paths differ.
  std::string key() const {
    return domain + "!" + host + "#" + std::to_string(inode);
  }

  /// Human-readable display form including the path.
  std::string display() const {
    return domain + ":" + host + ":" + path;
  }

  void encode(BufWriter& out) const {
    out.put_string(domain);
    out.put_string(host);
    out.put_string(path);
    out.put_varint(inode);
  }

  static Result<GlobalFileId> decode(BufReader& in) {
    GlobalFileId id;
    SHADOW_ASSIGN_OR_RETURN(domain, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(host, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(path, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(inode, in.get_varint());
    id.domain = std::move(domain);
    id.host = std::move(host);
    id.path = std::move(path);
    id.inode = inode;
    return id;
  }
};

}  // namespace shadow::naming

template <>
struct std::hash<shadow::naming::GlobalFileId> {
  std::size_t operator()(const shadow::naming::GlobalFileId& id) const {
    return std::hash<std::string>()(id.key());
  }
};
