#include "naming/resolver.hpp"

namespace shadow::naming {

Result<GlobalFileId> NameResolver::resolve(
    const std::string& host, const std::string& local_path) const {
  SHADOW_ASSIGN_OR_RETURN(loc, cluster_->resolve(host, local_path));
  GlobalFileId id;
  id.domain = domain_id_;
  id.host = loc.host;
  id.path = loc.path;
  id.inode = loc.inode;
  return id;
}

}  // namespace shadow::naming
