// Client-side name resolution (paper §6.5): local file name ->
// (domain id, unique file id), localizing the naming scheme of the domain.
#pragma once

#include <string>

#include "naming/file_id.hpp"
#include "util/result.hpp"
#include "vfs/cluster.hpp"

namespace shadow::naming {

/// Resolves names within one NFS domain (a vfs::Cluster of hosts).
class NameResolver {
 public:
  /// `domain_id` must be globally unique (the paper suggests an internet
  /// network number); the cluster is the set of hosts it spans.
  NameResolver(std::string domain_id, const vfs::Cluster* cluster)
      : domain_id_(std::move(domain_id)), cluster_(cluster) {}

  const std::string& domain_id() const { return domain_id_; }

  /// Resolve a local name on `host` to its global id. The file must exist
  /// (its inode is part of the identity).
  Result<GlobalFileId> resolve(const std::string& host,
                               const std::string& local_path) const;

 private:
  std::string domain_id_;
  const vfs::Cluster* cluster_;
};

}  // namespace shadow::naming
