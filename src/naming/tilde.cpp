#include "naming/tilde.hpp"

#include "vfs/path.hpp"

namespace shadow::naming {

Status TildeForest::create_tree(const std::string& absolute_name,
                                const std::string& host,
                                const std::string& root_path) {
  if (absolute_name.empty() || absolute_name.find('/') != std::string::npos) {
    return Error{ErrorCode::kInvalidArgument,
                 "tree names must be non-empty and '/'-free"};
  }
  if (trees_.count(absolute_name) != 0) {
    return Error{ErrorCode::kAlreadyExists,
                 "tree already exists: " + absolute_name};
  }
  SHADOW_ASSIGN_OR_RETURN(fs, cluster_->host(host));
  SHADOW_TRY(fs->mkdir_p(root_path));
  trees_.emplace(absolute_name,
                 TildeTree{absolute_name, host, vfs::normalize(root_path)});
  return Status();
}

Status TildeForest::bind(const std::string& user, const std::string& alias,
                         const std::string& absolute_name) {
  if (trees_.count(absolute_name) == 0) {
    return Error{ErrorCode::kNotFound, "no such tree: " + absolute_name};
  }
  views_[user][alias] = absolute_name;
  return Status();
}

Status TildeForest::unbind(const std::string& user,
                           const std::string& alias) {
  auto view = views_.find(user);
  if (view == views_.end() || view->second.erase(alias) == 0) {
    return Error{ErrorCode::kNotFound,
                 "user " + user + " has no binding ~" + alias};
  }
  return Status();
}

Result<std::pair<std::string, std::string>> TildeForest::parse(
    const std::string& tilde_path) {
  if (!is_tilde_path(tilde_path)) {
    return Error{ErrorCode::kInvalidArgument,
                 "not a tilde path: " + tilde_path};
  }
  const std::size_t slash = tilde_path.find('/');
  const std::string alias = tilde_path.substr(1, slash == std::string::npos
                                                     ? std::string::npos
                                                     : slash - 1);
  if (alias.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "empty tilde alias in: " + tilde_path};
  }
  const std::string rel =
      slash == std::string::npos ? "" : tilde_path.substr(slash + 1);
  return std::make_pair(alias, rel);
}

Result<std::pair<std::string, std::string>> TildeForest::locate(
    const std::string& user, const std::string& tilde_path) const {
  SHADOW_ASSIGN_OR_RETURN(parsed, parse(tilde_path));
  const auto& [alias, rel] = parsed;
  auto view = views_.find(user);
  if (view == views_.end()) {
    return Error{ErrorCode::kNotFound, "user has no tilde view: " + user};
  }
  auto binding = view->second.find(alias);
  if (binding == view->second.end()) {
    return Error{ErrorCode::kNotFound,
                 "user " + user + " has no binding ~" + alias};
  }
  const auto tree_it = trees_.find(binding->second);
  if (tree_it == trees_.end()) {
    return Error{ErrorCode::kInternal, "binding to vanished tree"};
  }
  const TildeTree& t = tree_it->second;
  const std::string full =
      rel.empty() ? t.root_path : vfs::join_path(t.root_path, rel);
  // A tilde name must stay INSIDE its tree ("logically independent
  // directory trees") — reject ".." escapes.
  if (!vfs::has_prefix(full, t.root_path)) {
    return Error{ErrorCode::kPermissionDenied,
                 "path escapes tree ~" + alias + ": " + tilde_path};
  }
  return std::make_pair(t.host, full);
}

Result<vfs::ResolvedFile> TildeForest::resolve(
    const std::string& user, const std::string& tilde_path) const {
  SHADOW_ASSIGN_OR_RETURN(loc, locate(user, tilde_path));
  return cluster_->resolve(loc.first, loc.second);
}

namespace {
// Recursive subtree copy over the public FileSystem API. Symlinks are
// copied verbatim (targets are not rewritten — relative links inside the
// tree keep working; absolute links keep pointing wherever they pointed).
Status copy_tree(vfs::Cluster& cluster, const std::string& src_host,
                 const std::string& src_path, const std::string& dst_host,
                 const std::string& dst_path) {
  SHADOW_ASSIGN_OR_RETURN(src, cluster.host(src_host));
  SHADOW_ASSIGN_OR_RETURN(dst, cluster.host(dst_host));
  SHADOW_ASSIGN_OR_RETURN(kind, src->type_of(src_path));
  switch (kind) {
    case vfs::FileType::kFile: {
      SHADOW_ASSIGN_OR_RETURN(content, src->read_file(src_path));
      return dst->write_file(dst_path, content);
    }
    case vfs::FileType::kSymlink:
      // type_of follows symlinks, so this branch is unreachable from the
      // directory walk below (which checks lstat-style via list).
      return Status();
    case vfs::FileType::kDirectory: {
      SHADOW_TRY(dst->mkdir_p(dst_path));
      SHADOW_ASSIGN_OR_RETURN(names, src->list_dir(src_path));
      for (const auto& name : names) {
        SHADOW_TRY(copy_tree(cluster, src_host, src_path + "/" + name,
                             dst_host, dst_path + "/" + name));
      }
      return Status();
    }
  }
  return Error{ErrorCode::kInternal, "unknown file type"};
}
}  // namespace

Status TildeForest::migrate_tree(const std::string& absolute_name,
                                 const std::string& new_host,
                                 const std::string& new_root) {
  auto it = trees_.find(absolute_name);
  if (it == trees_.end()) {
    return Error{ErrorCode::kNotFound, "no such tree: " + absolute_name};
  }
  TildeTree& t = it->second;
  SHADOW_ASSIGN_OR_RETURN(dst_fs, cluster_->host(new_host));
  (void)dst_fs;
  SHADOW_TRY(copy_tree(*cluster_, t.host, t.root_path, new_host,
                       vfs::normalize(new_root)));
  t.host = new_host;
  t.root_path = vfs::normalize(new_root);
  return Status();
}

Result<const TildeTree*> TildeForest::tree(
    const std::string& absolute_name) const {
  auto it = trees_.find(absolute_name);
  if (it == trees_.end()) {
    return Error{ErrorCode::kNotFound, "no such tree: " + absolute_name};
  }
  return &it->second;
}

std::map<std::string, std::string> TildeForest::view_of(
    const std::string& user) const {
  auto it = views_.find(user);
  return it == views_.end() ? std::map<std::string, std::string>{}
                            : it->second;
}

Result<GlobalFileId> TildeResolver::resolve(
    const std::string& user, const std::string& tilde_path) const {
  SHADOW_ASSIGN_OR_RETURN(loc, forest_->locate(user, tilde_path));
  return plain_.resolve(loc.first, loc.second);
}

}  // namespace shadow::naming
