// The Tilde naming scheme [CM86], which §5.3 examines as an alternative
// organization of the client name space.
//
// The directory system is organized into logically independent trees
// ("tilde trees"). Files are named "~tree/path/in/tree". Each USER binds
// their own set of tilde aliases to trees — different users may refer to
// the same file by different tilde names. Every tree has an ABSOLUTE name
// that is unique across all machines, but (as the paper stresses) an
// absolute name alone is not sufficient to uniquely identify a file:
// resolution must continue down to physical identity. Trees may migrate
// between machines without altering any user's view.
//
// TildeResolver plugs this scheme in front of the §6.5 resolver: a tilde
// name resolves to (tree root host, root path + intra-tree path) and from
// there through symlinks/mounts to the physical (domain, file id).
#pragma once

#include <map>
#include <string>

#include "naming/file_id.hpp"
#include "naming/resolver.hpp"
#include "util/result.hpp"
#include "vfs/cluster.hpp"

namespace shadow::naming {

/// Location of one tilde tree's root.
struct TildeTree {
  std::string absolute_name;  // globally unique, machine-independent
  std::string host;           // current physical location...
  std::string root_path;      // ...which may change via migrate()
};

class TildeForest {
 public:
  explicit TildeForest(vfs::Cluster* cluster) : cluster_(cluster) {}

  /// Register a tree rooted at (host, root_path); creates the root
  /// directory if missing. `absolute_name` must be globally unique.
  Status create_tree(const std::string& absolute_name,
                     const std::string& host, const std::string& root_path);

  /// Bind `~alias` in `user`'s view to a tree's absolute name.
  Status bind(const std::string& user, const std::string& alias,
              const std::string& absolute_name);
  Status unbind(const std::string& user, const std::string& alias);

  /// Split "~alias/rel/path" into (alias, "rel/path"). "~alias" alone
  /// yields an empty relative path.
  static Result<std::pair<std::string, std::string>> parse(
      const std::string& tilde_path);

  /// True when the path uses tilde syntax.
  static bool is_tilde_path(const std::string& path) {
    return !path.empty() && path.front() == '~';
  }

  /// Resolve a user's tilde name to its physical location (follows
  /// symlinks and NFS mounts below the tree root).
  Result<vfs::ResolvedFile> resolve(const std::string& user,
                                    const std::string& tilde_path) const;

  /// The (host, absolute path) a tilde name currently denotes, before
  /// symlink/mount resolution — what a write should target.
  Result<std::pair<std::string, std::string>> locate(
      const std::string& user, const std::string& tilde_path) const;

  /// Move a tree to another machine, copying its contents; every user's
  /// view is unchanged ("the actual location of the files is of no
  /// consequence to the user", §5.3).
  Status migrate_tree(const std::string& absolute_name,
                      const std::string& new_host,
                      const std::string& new_root);

  Result<const TildeTree*> tree(const std::string& absolute_name) const;
  /// A user's bindings: alias -> absolute tree name.
  std::map<std::string, std::string> view_of(const std::string& user) const;

 private:
  vfs::Cluster* cluster_;
  std::map<std::string, TildeTree> trees_;  // absolute name -> tree
  // user -> (alias -> absolute name)
  std::map<std::string, std::map<std::string, std::string>> views_;
};

/// Drop-in resolver for tilde names: "~alias/path" (for `user`) -> the
/// same GlobalFileId the plain resolver would produce for the physical
/// file. Hard links, symlinks and NFS mounts dedupe exactly as in §6.5.
class TildeResolver {
 public:
  TildeResolver(std::string domain_id, const vfs::Cluster* cluster,
                const TildeForest* forest)
      : plain_(std::move(domain_id), cluster), forest_(forest) {}

  Result<GlobalFileId> resolve(const std::string& user,
                               const std::string& tilde_path) const;

 private:
  NameResolver plain_;
  const TildeForest* forest_;
};

}  // namespace shadow::naming
