#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace shadow::net {

EventLoop::EventLoop() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_read_fd_ = fds[0];
    wake_write_fd_ = fds[1];
    // Non-blocking on both ends: a full pipe just coalesces wakeups, and
    // the drain loop must never block the round.
    for (int fd : fds) {
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
  }
}

EventLoop::~EventLoop() {
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void EventLoop::wake() {
  if (wake_write_fd_ < 0) return;
  const u8 byte = 1;
  ssize_t n;
  do {
    n = ::write(wake_write_fd_, &byte, 1);
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the pipe already holds a pending wakeup — good enough.
}

void EventLoop::drain_wake_pipe() {
  if (wake_read_fd_ < 0) return;
  u8 chunk[64];
  while (::read(wake_read_fd_, chunk, sizeof(chunk)) > 0) {
  }
}

void EventLoop::adopt(std::unique_ptr<TcpTransport> transport,
                      AttachFn on_attach) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(Adoption{std::move(transport), std::move(on_attach)});
  }
  adopted_total_.fetch_add(1, std::memory_order_relaxed);
  wake();
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

std::size_t EventLoop::run_once(int timeout_ms) {
  rounds_.fetch_add(1, std::memory_order_relaxed);

  // Take this round's handoffs and tasks in one critical section; run
  // them outside it (a task may post again).
  std::vector<Adoption> adoptions;
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    adoptions.swap(pending_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
  for (auto& adoption : adoptions) {
    TcpTransport* raw = adoption.transport.get();
    owned_.push_back(std::move(adoption.transport));
    if (adoption.on_attach) adoption.on_attach(raw);
  }
  connections_gauge_.store(owned_.size(), std::memory_order_relaxed);

  // Wait for traffic on any connection or a wakeup. Freshly adopted
  // connections may already hold buffered frames (the lobby's unread
  // replay), so skip the wait when there is anything to do right away.
  bool immediate = !adoptions.empty();
  for (const auto& t : owned_) {
    if (t->closed()) immediate = true;
  }
  std::vector<struct pollfd> fds;
  fds.reserve(owned_.size() + 1);
  if (wake_read_fd_ >= 0) {
    fds.push_back({wake_read_fd_, POLLIN, 0});
  }
  for (const auto& t : owned_) {
    // POLLOUT only while a bounded sender has parked bytes, so a slow
    // consumer's drain resumes as soon as its socket turns writable
    // instead of waiting out the poll timeout.
    const short events =
        t->queued_bytes() > 0 ? (POLLIN | POLLOUT) : POLLIN;
    fds.push_back({t->fd(), events, 0});
  }
  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), immediate ? 0 : timeout_ms);
  } while (rc < 0 && errno == EINTR);
  drain_wake_pipe();

  // Dispatch every connection's buffered frames. TcpTransport::poll() is
  // cheap when nothing is pending, and dispatching everything (not only
  // POLLIN-flagged fds) also picks up bytes buffered by a send()'s
  // write-stall drain.
  std::size_t dispatched = 0;
  for (auto& t : owned_) {
    dispatched += t->poll();
  }

  // Reap closed connections after dispatch so the final frames of a
  // closing peer are still delivered.
  for (auto it = owned_.begin(); it != owned_.end();) {
    if ((*it)->closed()) {
      if (on_detach_) on_detach_(it->get());
      it = owned_.erase(it);
      closed_total_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  connections_gauge_.store(owned_.size(), std::memory_order_relaxed);

  poll_timeout_hint_ms_ = kDefaultPollMs;
  if (on_idle_) on_idle_();
  return dispatched;
}

void EventLoop::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    run_once(/*timeout_ms=*/poll_timeout_hint_ms_);
  }
  // Final round so tasks/adoptions posted just before stop() still run.
  run_once(/*timeout_ms=*/0);
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

}  // namespace shadow::net
