// One poll()-driven event loop: the run driver behind each shard of the
// thread-per-core server (docs/CONCURRENCY.md).
//
// Everything that touches a connection — attach, message dispatch, reap —
// happens on the loop's own thread. The only cross-thread surfaces are
// adopt() and post(), which enqueue under a small mutex and wake the loop
// through a self-pipe; the loop drains both queues at the top of each
// round. That keeps the message hot path completely lock-free: once a
// connection is adopted, its frames flow from ::poll() to the receiver
// callback without ever taking a lock.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/tcp_transport.hpp"
#include "util/types.hpp"

namespace shadow::net {

class EventLoop {
 public:
  /// Runs on the loop thread when an adopted connection is installed.
  using AttachFn = std::function<void(TcpTransport*)>;
  /// Runs on the loop thread just before a closed connection is destroyed.
  using DetachFn = std::function<void(TcpTransport*)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Hand a connection to this loop (thread-safe). `on_attach` runs on the
  /// loop thread before the connection's first poll — typically
  /// ShadowServer::attach plus any unread_message() replays.
  void adopt(std::unique_ptr<TcpTransport> transport, AttachFn on_attach);

  /// Run `task` on the loop thread at the top of the next round
  /// (thread-safe). Tasks posted from the loop thread itself run next
  /// round too — there is no re-entrancy.
  void post(std::function<void()> task);

  /// Called on the loop thread before a closed connection is destroyed
  /// (e.g. ShadowServer::detach). Set before run().
  void set_on_detach(DetachFn fn) { on_detach_ = std::move(fn); }

  /// Called once per round after I/O (retransmit ticks etc.). Set before
  /// run().
  void set_on_idle(std::function<void()> fn) { on_idle_ = std::move(fn); }

  /// Cap the NEXT round's poll timeout (loop thread only, typically from
  /// the idle hook). The cap lasts one round — run() resets it to the
  /// 50 ms default before each idle call — so a hook with a deadline
  /// (an open commit window waiting to flush) must re-assert it every
  /// round it still applies. Clamped to [1, 50] ms.
  void set_poll_timeout_hint(int ms) {
    poll_timeout_hint_ms_ = ms < 1 ? 1 : (ms > kDefaultPollMs ? kDefaultPollMs : ms);
  }

  /// Process until stop(): poll all connections plus the wake pipe, drain
  /// queues, dispatch frames, reap closed connections.
  void run();

  /// One bounded round of the above; returns frames dispatched. The run()
  /// driver calls this in a loop; tests call it directly.
  std::size_t run_once(int timeout_ms);

  /// Ask the loop to exit run() (thread-safe, idempotent).
  void stop();

  /// Live connections currently owned by the loop (approximate from other
  /// threads; exact from the loop thread).
  std::size_t connections() const {
    return connections_gauge_.load(std::memory_order_relaxed);
  }
  /// Total connections ever adopted / reaped after close.
  u64 adopted_total() const {
    return adopted_total_.load(std::memory_order_relaxed);
  }
  u64 closed_total() const {
    return closed_total_.load(std::memory_order_relaxed);
  }
  u64 rounds() const { return rounds_.load(std::memory_order_relaxed); }

 private:
  struct Adoption {
    std::unique_ptr<TcpTransport> transport;
    AttachFn on_attach;
  };

  void wake();
  void drain_wake_pipe();

  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_{false};

  std::mutex mu_;  // guards pending_ and tasks_ only — never held during I/O
  std::vector<Adoption> pending_;
  std::vector<std::function<void()>> tasks_;

  // Loop-thread-only state.
  static constexpr int kDefaultPollMs = 50;
  std::vector<std::unique_ptr<TcpTransport>> owned_;
  DetachFn on_detach_;
  std::function<void()> on_idle_;
  int poll_timeout_hint_ms_ = kDefaultPollMs;

  std::atomic<std::size_t> connections_gauge_{0};
  std::atomic<u64> adopted_total_{0};
  std::atomic<u64> closed_total_{0};
  std::atomic<u64> rounds_{0};
};

}  // namespace shadow::net
