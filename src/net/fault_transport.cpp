#include "net/fault_transport.hpp"

#include <algorithm>

namespace shadow::net {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "?";
}

FaultKind FaultTransport::pick_fault(u64 index) {
  for (const auto& scripted : plan_.script) {
    if (scripted.message_index == index) return scripted.kind;
  }
  // The probabilistic draws happen unconditionally so the random sequence
  // — and therefore the whole fault schedule — does not depend on which
  // branch an earlier message took.
  const double draw_drop = rng_.uniform();
  const double draw_dup = rng_.uniform();
  const double draw_reorder = rng_.uniform();
  const double draw_corrupt = rng_.uniform();
  const double draw_truncate = rng_.uniform();
  const double draw_delay = rng_.uniform();
  if (draw_drop < plan_.drop_p) return FaultKind::kDrop;
  if (draw_dup < plan_.duplicate_p) return FaultKind::kDuplicate;
  if (draw_reorder < plan_.reorder_p) return FaultKind::kReorder;
  if (draw_corrupt < plan_.corrupt_p) return FaultKind::kCorrupt;
  if (draw_truncate < plan_.truncate_p) return FaultKind::kTruncate;
  if (draw_delay < plan_.delay_p) return FaultKind::kDelay;
  return FaultKind::kNone;
}

Status FaultTransport::send(Bytes message) {
  const u64 index = send_index_++;
  if (plan_.disconnect_at != 0 && index + 1 >= plan_.disconnect_at) {
    disconnected_ = true;
  }
  if (disconnected_) {
    // A dead link loses data silently — the sender finds out (or not)
    // from missing acks, exactly like an unplugged serial line.
    ++stats_.disconnect_drops;
    return Status();
  }

  const FaultKind fault = pick_fault(index);
  Status result;
  switch (fault) {
    case FaultKind::kNone:
      ++stats_.passed;
      result = inner_->send(std::move(message));
      break;
    case FaultKind::kDrop:
      ++stats_.dropped;
      break;
    case FaultKind::kDuplicate: {
      ++stats_.duplicated;
      Bytes copy = message;
      result = inner_->send(std::move(message));
      if (result.ok()) result = inner_->send(std::move(copy));
      break;
    }
    case FaultKind::kReorder:
      // Released once the NEXT message has gone out (send_index_ is
      // already index+1 here, so index+2 means "after one later send").
      ++stats_.reordered;
      held_.push_back(Held{std::move(message), index + 2});
      break;
    case FaultKind::kCorrupt: {
      ++stats_.corrupted;
      if (!message.empty()) {
        const std::size_t lo =
            plan_.corrupt_payload_only ? (message.size() * 2) / 3 : 0;
        const u64 flips = rng_.between(1, 3);
        for (u64 f = 0; f < flips; ++f) {
          const std::size_t at =
              lo + static_cast<std::size_t>(rng_.below(message.size() - lo));
          message[at] ^= static_cast<u8>(1u << rng_.below(8));
        }
      }
      result = inner_->send(std::move(message));
      break;
    }
    case FaultKind::kTruncate:
      ++stats_.truncated;
      message.resize(static_cast<std::size_t>(
          rng_.below(std::max<std::size_t>(message.size(), 1))));
      result = inner_->send(std::move(message));
      break;
    case FaultKind::kDelay:
      ++stats_.delayed;
      if (sim_ != nullptr) {
        sim_->schedule(plan_.delay_micros,
                       [this, m = std::move(message)]() mutable {
                         if (!disconnected_) (void)inner_->send(std::move(m));
                       });
      } else {
        held_.push_back(
            Held{std::move(message), index + 1 + plan_.delay_messages});
      }
      break;
    case FaultKind::kDisconnect:
      disconnected_ = true;
      ++stats_.disconnect_drops;
      break;
  }
  release_due();
  return result;
}

void FaultTransport::release_due() {
  // Held messages re-enter the stream once enough later sends have passed.
  // Release preserves hold order among themselves (deterministic).
  std::deque<Held> keep;
  for (auto& held : held_) {
    if (held.release_at_send <= send_index_ || disconnected_) {
      if (disconnected_) {
        ++stats_.disconnect_drops;
        continue;
      }
      (void)inner_->send(std::move(held.message));
    } else {
      keep.push_back(std::move(held));
    }
  }
  held_ = std::move(keep);
}

void FaultTransport::flush() {
  for (auto& held : held_) {
    if (!disconnected_) (void)inner_->send(std::move(held.message));
  }
  held_.clear();
}

std::size_t FaultTransport::poll() {
  const std::size_t dispatched = inner_->poll();
  release_due();
  return dispatched;
}

}  // namespace shadow::net
