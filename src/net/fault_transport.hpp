// Fault injection for transports (chaos harness). The paper's protocol is
// best effort end to end (§5.1): cache eviction, lost notifications and
// flaky long-haul links must degrade to a full-file transfer, never to
// corruption. FaultTransport is a decorator over any Transport whose send
// path is perturbed by a seeded, scriptable FaultPlan, so the degraded
// paths are exercised deterministically: same plan, same seed, same
// message sequence → bit-identical fault schedule.
//
// Faults apply to outbound messages only; wrap each endpoint of a pair to
// cover both directions. With an empty plan the decorator is
// byte-transparent.
#pragma once

#include <deque>
#include <vector>

#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace shadow::net {

enum class FaultKind : u8 {
  kNone = 0,
  kDrop = 1,        // message silently discarded
  kDuplicate = 2,   // message delivered twice
  kReorder = 3,     // message held back, released after later sends
  kCorrupt = 4,     // 1..3 byte flips
  kTruncate = 5,    // random proper prefix (possibly empty)
  kDelay = 6,       // held back; released by later sends / flush / sim timer
  kDisconnect = 7,  // link dies: this and all later sends vanish
};

const char* fault_kind_name(FaultKind kind);

/// Pin a specific fault to the Nth outbound message (0-based). Scripted
/// entries take precedence over the probabilistic knobs, which makes
/// regression tests exact ("corrupt message 3, drop message 7").
struct ScriptedFault {
  u64 message_index = 0;
  FaultKind kind = FaultKind::kNone;
};

struct FaultPlan {
  u64 seed = 1;
  // Independent per-message probabilities, sampled in this order; the
  // first hit wins. All zero = transparent.
  double drop_p = 0;
  double duplicate_p = 0;
  double reorder_p = 0;
  double corrupt_p = 0;
  double truncate_p = 0;
  double delay_p = 0;
  /// Held (reorder/delay) messages are released after this many subsequent
  /// sends (reorder uses 1 regardless; delay uses this).
  u64 delay_messages = 2;
  /// With a simulator attached, delayed messages are instead re-injected
  /// at now + delay_micros (deterministic sim-time fault scheduling).
  sim::SimTime delay_micros = 250'000;
  /// Drop everything from this outbound message index on (0 = never).
  u64 disconnect_at = 0;
  /// Restrict corruption flips to the final third of the message — keeps
  /// the message envelope decodable so the fault surfaces in the payload
  /// decoder rather than the framer (targeted desync tests).
  bool corrupt_payload_only = false;
  std::vector<ScriptedFault> script;

  bool transparent() const {
    return drop_p == 0 && duplicate_p == 0 && reorder_p == 0 &&
           corrupt_p == 0 && truncate_p == 0 && delay_p == 0 &&
           disconnect_at == 0 && script.empty();
  }
};

struct FaultStats {
  u64 passed = 0;  // delivered unmodified (excluding releases of held)
  u64 dropped = 0;
  u64 duplicated = 0;
  u64 reordered = 0;
  u64 corrupted = 0;
  u64 truncated = 0;
  u64 delayed = 0;
  u64 disconnect_drops = 0;
  u64 injected() const {
    return dropped + duplicated + reordered + corrupted + truncated +
           delayed + disconnect_drops;
  }
};

class FaultTransport final : public Transport {
 public:
  FaultTransport(Transport* inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)), rng_(plan_.seed) {}

  /// Delay faults become sim-time re-injections instead of send-count
  /// holds. Must outlive the transport.
  void set_simulator(sim::Simulator* simulator) { sim_ = simulator; }

  Status send(Bytes message) override;
  void set_receiver(ReceiveFn fn) override { inner_->set_receiver(std::move(fn)); }
  /// Polls the carrier, then releases held messages that have come due.
  std::size_t poll() override;
  u64 bytes_sent() const override { return inner_->bytes_sent(); }
  u64 messages_sent() const override { return inner_->messages_sent(); }
  std::string peer_name() const override { return inner_->peer_name(); }

  // Queue accounting passes straight through to the carrier: fault
  // injection perturbs messages, not the overload-control budget.
  std::size_t queued_bytes() const override { return inner_->queued_bytes(); }
  void set_queue_limit(std::size_t limit) override {
    inner_->set_queue_limit(limit);
  }
  std::size_t queue_limit() const override { return inner_->queue_limit(); }
  void request_close() override { inner_->request_close(); }

  /// Release every held message immediately (quiesce helper: a reordered
  /// or delayed message at end-of-stream must not be stranded).
  void flush();

  /// Direct link control for targeted tests: kill the link mid-run
  /// (everything sent meanwhile vanishes silently) and repair it later.
  void disconnect() { disconnected_ = true; }
  void reconnect() { disconnected_ = false; }

  const FaultStats& fault_stats() const { return stats_; }
  bool disconnected() const { return disconnected_; }
  u64 sends_seen() const { return send_index_; }

 private:
  FaultKind pick_fault(u64 index);
  void release_due();

  struct Held {
    Bytes message;
    u64 release_at_send = 0;  // send index at which it comes due
  };

  Transport* inner_;
  FaultPlan plan_;
  Rng rng_;
  sim::Simulator* sim_ = nullptr;
  FaultStats stats_;
  std::deque<Held> held_;
  u64 send_index_ = 0;
  bool disconnected_ = false;
};

}  // namespace shadow::net
