#include "net/loopback.hpp"

namespace shadow::net {

Status LoopbackTransport::send(Bytes message) {
  if (peer_ == nullptr) {
    return Error{ErrorCode::kIoError, "loopback has no peer wired"};
  }
  if (queue_limit_ > 0 &&
      peer_->inbox_bytes_ + message.size() > queue_limit_) {
    return Error{ErrorCode::kResourceExhausted,
                 "peer inbox full: " + std::to_string(peer_->inbox_bytes_) +
                     " + " + std::to_string(message.size()) +
                     " bytes over the " + std::to_string(queue_limit_) +
                     "-byte cap"};
  }
  bytes_sent_ += message.size();
  ++messages_sent_;
  peer_->inbox_bytes_ += message.size();
  peer_->inbox_.push_back(std::move(message));
  return Status();
}

std::size_t LoopbackTransport::poll() {
  std::size_t dispatched = 0;
  // Dispatch only what is present now; messages enqueued by the receiver's
  // own handlers wait for the next poll (prevents unbounded recursion).
  std::size_t batch = inbox_.size();
  while (batch-- > 0 && !inbox_.empty()) {
    Bytes message = std::move(inbox_.front());
    inbox_.pop_front();
    inbox_bytes_ -= message.size();
    if (receiver_) receiver_(std::move(message));
    ++dispatched;
  }
  return dispatched;
}

LoopbackPair make_loopback_pair(const std::string& name_a,
                                const std::string& name_b) {
  LoopbackPair pair;
  pair.a = std::make_unique<LoopbackTransport>(name_b);
  pair.b = std::make_unique<LoopbackTransport>(name_a);
  pair.a->set_peer(pair.b.get());
  pair.b->set_peer(pair.a.get());
  return pair;
}

void pump(LoopbackPair& pair, std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const std::size_t moved = pair.a->poll() + pair.b->poll();
    if (moved == 0) return;
  }
}

}  // namespace shadow::net
