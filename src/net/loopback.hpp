// In-process transport pair with no timing model: send() enqueues on the
// peer, poll() drains. Used by unit tests that exercise protocol logic
// without caring about transfer times.
#pragma once

#include <deque>
#include <memory>

#include "net/transport.hpp"

namespace shadow::net {

class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(std::string peer_name)
      : peer_name_(std::move(peer_name)) {}

  void set_peer(LoopbackTransport* peer) { peer_ = peer; }

  Status send(Bytes message) override;
  void set_receiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  std::size_t poll() override;
  u64 bytes_sent() const override { return bytes_sent_; }
  u64 messages_sent() const override { return messages_sent_; }
  std::string peer_name() const override { return peer_name_; }

  /// Bytes sitting in the PEER's inbox, i.e. sent here but not yet
  /// drained by the peer's poll() — the loopback model of a consumer
  /// that stopped reading.
  std::size_t queued_bytes() const override {
    return peer_ ? peer_->inbox_bytes_ : 0;
  }
  void set_queue_limit(std::size_t limit) override { queue_limit_ = limit; }
  std::size_t queue_limit() const override { return queue_limit_; }

  std::size_t inbox_size() const { return inbox_.size(); }

 private:
  std::string peer_name_;
  LoopbackTransport* peer_ = nullptr;
  ReceiveFn receiver_;
  std::deque<Bytes> inbox_;
  std::size_t inbox_bytes_ = 0;
  std::size_t queue_limit_ = 0;  // 0 = unlimited
  u64 bytes_sent_ = 0;
  u64 messages_sent_ = 0;
};

struct LoopbackPair {
  std::unique_ptr<LoopbackTransport> a;
  std::unique_ptr<LoopbackTransport> b;
};

LoopbackPair make_loopback_pair(const std::string& name_a,
                                const std::string& name_b);

/// Poll both ends until neither has pending messages (a quiesce helper for
/// tests: protocol exchanges often take several round trips).
void pump(LoopbackPair& pair, std::size_t max_rounds = 1000);

}  // namespace shadow::net
