#include "net/mux.hpp"

#include "util/logging.hpp"

namespace shadow::net {

Status MuxTransport::send(Bytes message) {
  if (queue_limit_ > 0 &&
      mux_->carrier_->queued_bytes() + message.size() > queue_limit_) {
    return Error{ErrorCode::kResourceExhausted,
                 "carrier queue full: " +
                     std::to_string(mux_->carrier_->queued_bytes()) + " + " +
                     std::to_string(message.size()) + " bytes over the " +
                     std::to_string(queue_limit_) + "-byte cap"};
  }
  bytes_sent_ += message.size();
  ++messages_sent_;
  return mux_->send_on(channel_, message);
}

std::size_t MuxTransport::queued_bytes() const {
  return mux_->carrier_->queued_bytes();
}

void MuxTransport::deliver(Bytes message) {
  if (!receiver_) {
    SHADOW_WARN() << "mux channel dropped a message: no receiver";
    return;
  }
  receiver_(std::move(message));
}

Mux::Mux(Transport* carrier) : carrier_(carrier) {
  carrier_->set_receiver(
      [this](Bytes wire) { on_carrier_message(std::move(wire)); });
}

MuxTransport* Mux::channel(u64 id, const std::string& peer_name) {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    it = channels_
             .emplace(id, std::make_unique<MuxTransport>(this, id,
                                                         peer_name))
             .first;
  }
  return it->second.get();
}

Status Mux::send_on(u64 channel, const Bytes& message) {
  BufWriter w;
  w.put_varint(channel);
  w.put_raw(message);
  return carrier_->send(w.take());
}

void Mux::on_carrier_message(Bytes wire) {
  // A channel receiver that polls the carrier from inside its handler
  // re-enters here with the previous dispatch still on the stack. Queue
  // the frame instead: nested dispatch would run a receiver inside
  // another receiver's critical section and, transitively, recurse
  // without bound if each delivery triggers another poll.
  if (dispatching_) {
    ++reentrant_deferred_;
    pending_.push_back(std::move(wire));
    return;
  }
  dispatching_ = true;
  dispatch(wire);
  while (!pending_.empty()) {
    Bytes next = std::move(pending_.front());
    pending_.pop_front();
    dispatch(next);
  }
  dispatching_ = false;
}

void Mux::dispatch(const Bytes& wire) {
  BufReader r(wire);
  auto channel = r.get_varint();
  if (!channel.ok()) {
    ++undeliverable_;
    return;
  }
  auto it = channels_.find(channel.value());
  if (it == channels_.end()) {
    ++undeliverable_;
    SHADOW_WARN() << "mux frame for unopened channel " << channel.value();
    return;
  }
  auto payload = r.get_raw(r.remaining());
  it->second->deliver(std::move(payload).take());
}

}  // namespace shadow::net
