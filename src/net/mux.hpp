// Channel multiplexing: several logical message streams over one shared
// carrier transport — the 1987 reality of a department sharing a single
// 9600-baud leased line into the long-haul network (§2.1's "swamped"
// supercomputer access line, §8.1's congested ARPANET).
//
// Framing: varint channel id + payload. Each side constructs a Mux over
// its carrier endpoint and opens numbered channels; channel i on one side
// talks to channel i on the other. All channels share the carrier's
// bandwidth and queueing — that contention is the point.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "net/transport.hpp"
#include "util/byte_io.hpp"

namespace shadow::net {

class Mux;

/// One logical channel endpoint; a drop-in net::Transport.
class MuxTransport final : public Transport {
 public:
  MuxTransport(Mux* mux, u64 channel, std::string peer_name)
      : mux_(mux), channel_(channel), peer_name_(std::move(peer_name)) {}

  Status send(Bytes message) override;
  void set_receiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  std::size_t poll() override { return 0; }  // the carrier's poll drives us
  u64 bytes_sent() const override { return bytes_sent_; }
  u64 messages_sent() const override { return messages_sent_; }
  std::string peer_name() const override { return peer_name_; }

  /// All channels share the carrier's queue, so what a channel reads here
  /// is the shared line's congestion — the 9600-baud reality this layer
  /// models. A per-channel limit therefore sheds this channel's sends
  /// while the SHARED backlog is over its cap.
  std::size_t queued_bytes() const override;
  void set_queue_limit(std::size_t limit) override { queue_limit_ = limit; }
  std::size_t queue_limit() const override { return queue_limit_; }

 private:
  friend class Mux;
  void deliver(Bytes message);

  Mux* mux_;
  u64 channel_;
  std::string peer_name_;
  ReceiveFn receiver_;
  u64 bytes_sent_ = 0;
  u64 messages_sent_ = 0;
  std::size_t queue_limit_ = 0;  // 0 = unlimited
};

/// Demultiplexer over one side's carrier endpoint. The carrier must
/// outlive the Mux; the Mux must outlive its channels.
class Mux {
 public:
  explicit Mux(Transport* carrier);

  /// Open (or fetch) logical channel `id`. The returned endpoint is owned
  /// by the Mux.
  MuxTransport* channel(u64 id, const std::string& peer_name = "peer");

  /// Frames that arrived for channels nobody opened.
  u64 undeliverable() const { return undeliverable_; }

  /// Carrier frames that arrived re-entrantly (a channel receiver polled
  /// the carrier from inside its handler) and were queued to preserve
  /// exactly-once, in-order dispatch.
  u64 reentrant_deferred() const { return reentrant_deferred_; }

 private:
  friend class MuxTransport;
  Status send_on(u64 channel, const Bytes& message);
  void on_carrier_message(Bytes wire);
  void dispatch(const Bytes& wire);

  Transport* carrier_;
  std::map<u64, std::unique_ptr<MuxTransport>> channels_;
  u64 undeliverable_ = 0;
  u64 reentrant_deferred_ = 0;
  /// Re-entrancy flattening: frames arriving while a channel receiver is
  /// still running are queued and drained by the outermost dispatch.
  bool dispatching_ = false;
  std::deque<Bytes> pending_;
};

}  // namespace shadow::net
