#include "net/sim_transport.hpp"

#include "util/logging.hpp"

namespace shadow::net {

Status SimTransport::send(Bytes message) {
  if (peer_ == nullptr) {
    return Error{ErrorCode::kIoError, "SimTransport has no peer wired"};
  }
  const std::size_t size = message.size();
  if (queue_limit_ > 0 && queued_bytes_ + size > queue_limit_) {
    return Error{ErrorCode::kResourceExhausted,
                 "link queue full: " + std::to_string(queued_bytes_) +
                     " + " + std::to_string(size) + " bytes over the " +
                     std::to_string(queue_limit_) + "-byte cap"};
  }
  queued_bytes_ += size;
  SimTransport* self = this;
  SimTransport* peer = peer_;
  tx_->send(std::move(message), [self, peer](Bytes delivered) {
    self->queued_bytes_ -= delivered.size();
    peer->deliver(std::move(delivered));
  });
  return Status();
}

void SimTransport::deliver(Bytes message) {
  if (!receiver_) {
    SHADOW_WARN() << "SimTransport (peer " << peer_name_
                  << ") dropped a message: no receiver installed";
    return;
  }
  receiver_(std::move(message));
}

SimTransportPair make_sim_pair(sim::Link* link, const std::string& name_a,
                               const std::string& name_b) {
  SimTransportPair pair;
  pair.a = std::make_unique<SimTransport>(&link->forward(), name_b);
  pair.b = std::make_unique<SimTransport>(&link->backward(), name_a);
  pair.a->set_peer(pair.b.get());
  pair.b->set_peer(pair.a.get());
  return pair;
}

}  // namespace shadow::net
