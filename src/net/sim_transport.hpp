// Transport over a simulated link. Created in pairs around a sim::Link:
// endpoint A sends on the forward channel and the message is delivered to
// endpoint B after the link's queueing, transmission and latency delays;
// endpoint B sends on the backward channel.
#pragma once

#include <memory>
#include <utility>

#include "net/transport.hpp"
#include "sim/link.hpp"

namespace shadow::net {

class SimTransport final : public Transport {
 public:
  SimTransport(sim::SimplexChannel* tx, std::string peer_name)
      : tx_(tx), peer_name_(std::move(peer_name)) {}

  /// The endpoint that receives what this one sends. Must be set (by
  /// make_sim_pair) before the first send.
  void set_peer(SimTransport* peer) { peer_ = peer; }

  Status send(Bytes message) override;
  void set_receiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  std::size_t poll() override { return 0; }  // simulator dispatches
  u64 bytes_sent() const override { return tx_->bytes_sent(); }
  u64 messages_sent() const override { return tx_->messages_sent(); }
  std::string peer_name() const override { return peer_name_; }

  /// Payload bytes accepted by send() and still in flight on the link
  /// (queued or transmitting; decremented at delivery time). The endpoint
  /// must outlive every in-flight message — make_sim_pair users already
  /// keep both ends alive for the whole run.
  std::size_t queued_bytes() const override { return queued_bytes_; }
  void set_queue_limit(std::size_t limit) override { queue_limit_ = limit; }
  std::size_t queue_limit() const override { return queue_limit_; }

  /// Invoked via the simulator when a message addressed to this endpoint
  /// arrives.
  void deliver(Bytes message);

 private:
  sim::SimplexChannel* tx_;
  std::string peer_name_;
  SimTransport* peer_ = nullptr;
  ReceiveFn receiver_;
  std::size_t queued_bytes_ = 0;
  std::size_t queue_limit_ = 0;  // 0 = unlimited
};

struct SimTransportPair {
  std::unique_ptr<SimTransport> a;  // sends over link.forward()
  std::unique_ptr<SimTransport> b;  // sends over link.backward()
};

/// Wire two endpoints around `link`. The link must outlive the endpoints.
SimTransportPair make_sim_pair(sim::Link* link, const std::string& name_a,
                               const std::string& name_b);

}  // namespace shadow::net
