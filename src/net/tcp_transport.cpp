#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace shadow::net {

namespace {

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Error{ErrorCode::kIoError,
                 std::string("fcntl: ") + std::strerror(errno)};
  }
  return Status();
}

constexpr std::size_t kMaxFrame = 64 * 1024 * 1024;  // sanity bound

}  // namespace

TcpTransport::TcpTransport(int fd, std::string peer_name)
    : fd_(fd), peer_name_(std::move(peer_name)) {
  (void)set_nonblocking(fd_);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::close() {
  if (fd_ >= 0) {
    // Best-effort, non-blocking: hand parked tx bytes to the kernel (it
    // delivers what its buffer holds after close). Never waits — close()
    // runs on shard loops disconnecting stalled consumers.
    flush_writes();
    ::close(fd_);
    fd_ = -1;
  }
}

std::size_t TcpTransport::flush_writes() {
  while (fd_ >= 0 && tx_offset_ < tx_buffer_.size()) {
    // MSG_NOSIGNAL: a drain notice to an already-departed client must
    // surface as EPIPE (-> peer_closed_), not kill the daemon via SIGPIPE.
    const ssize_t n = ::send(fd_, tx_buffer_.data() + tx_offset_,
                             tx_buffer_.size() - tx_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      tx_offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    peer_closed_ = true;
    break;
  }
  if (tx_offset_ >= tx_buffer_.size()) {
    tx_buffer_.clear();
    tx_offset_ = 0;
  } else if (tx_offset_ > tx_buffer_.size() / 2) {
    tx_buffer_.erase(tx_buffer_.begin(),
                     tx_buffer_.begin() + static_cast<long>(tx_offset_));
    tx_offset_ = 0;
  }
  return queued_bytes();
}

Status TcpTransport::send(Bytes message) {
  if (fd_ < 0) {
    return Error{ErrorCode::kIoError, "socket closed"};
  }
  if (message.size() > kMaxFrame) {
    return Error{ErrorCode::kInvalidArgument, "frame too large"};
  }
  u8 header[4];
  const u32 len = static_cast<u32>(message.size());
  header[0] = static_cast<u8>(len);
  header[1] = static_cast<u8>(len >> 8);
  header[2] = static_cast<u8>(len >> 16);
  header[3] = static_cast<u8>(len >> 24);

  if (queue_limit_ > 0) {
    // Bounded non-blocking discipline: park the frame (cap enforced on
    // the FRAMED size), then push as much as the kernel takes right now.
    // The event loop flushes the rest when the socket turns writable.
    const std::size_t framed = sizeof(header) + message.size();
    if (queued_bytes() + framed > queue_limit_) {
      return Error{ErrorCode::kResourceExhausted,
                   "send queue full: " + std::to_string(queued_bytes()) +
                       " + " + std::to_string(framed) + " bytes over the " +
                       std::to_string(queue_limit_) + "-byte cap"};
    }
    tx_buffer_.insert(tx_buffer_.end(), header, header + sizeof(header));
    tx_buffer_.insert(tx_buffer_.end(), message.begin(), message.end());
    flush_writes();
    if (peer_closed_) {
      return Error{ErrorCode::kIoError, "peer closed during write"};
    }
    bytes_sent_ += message.size();
    ++messages_sent_;
    return Status();
  }

  // Header and payload go out through one gathered write loop: a short
  // write (tiny socket buffers, signal interruptions) resumes mid-frame
  // wherever it stopped, and small frames cost a single syscall instead
  // of two — with TCP_NODELAY set, two write()s would otherwise emit two
  // packets per message.
  struct iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  iov[1].iov_base = const_cast<u8*>(message.data());
  iov[1].iov_len = message.size();
  int iov_index = 0;
  int stalled_rounds = 0;
  while (iov_index < 2) {
    if (iov[iov_index].iov_len == 0) {
      ++iov_index;
      continue;
    }
    struct msghdr msg {};
    msg.msg_iov = &iov[iov_index];
    msg.msg_iovlen = static_cast<std::size_t>(2 - iov_index);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      std::size_t advanced = static_cast<std::size_t>(n);
      while (iov_index < 2 && advanced >= iov[iov_index].iov_len) {
        advanced -= iov[iov_index].iov_len;
        iov[iov_index].iov_len = 0;
        ++iov_index;
      }
      if (iov_index < 2 && advanced > 0) {
        iov[iov_index].iov_base =
            static_cast<u8*>(iov[iov_index].iov_base) + advanced;
        iov[iov_index].iov_len -= advanced;
      }
      stalled_rounds = 0;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full. Classic single-threaded deadlock: if the
      // peer is also blocked writing to us, neither side's buffer ever
      // drains. Keep reading inbound bytes (buffered, not dispatched)
      // while we wait so the peer's writes can complete, and give up
      // after a bounded stall instead of spinning forever.
      read_available();
      if (peer_closed_) {
        return Error{ErrorCode::kIoError, "peer closed during write"};
      }
      if (++stalled_rounds > 200) {  // ~10s at 50ms per round
        return Error{ErrorCode::kIoError, "write stalled: peer not reading"};
      }
      struct pollfd pfd {fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, 50) < 0 && errno != EINTR) {
        return Error{ErrorCode::kIoError,
                     std::string("poll: ") + std::strerror(errno)};
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Error{ErrorCode::kIoError,
                 std::string("write: ") + std::strerror(errno)};
  }
  bytes_sent_ += message.size();
  ++messages_sent_;
  return Status();
}

void TcpTransport::unread_message(const Bytes& message) {
  // in_poll_ would mean an outer poll() is mid-iteration with a byte
  // offset into rx_buffer_; prepending would shift frames under it.
  if (in_poll_) return;
  u8 header[4];
  const u32 len = static_cast<u32>(message.size());
  header[0] = static_cast<u8>(len);
  header[1] = static_cast<u8>(len >> 8);
  header[2] = static_cast<u8>(len >> 16);
  header[3] = static_cast<u8>(len >> 24);
  Bytes framed;
  framed.reserve(sizeof(header) + message.size() + rx_buffer_.size());
  framed.insert(framed.end(), header, header + sizeof(header));
  framed.insert(framed.end(), message.begin(), message.end());
  framed.insert(framed.end(), rx_buffer_.begin(), rx_buffer_.end());
  rx_buffer_ = std::move(framed);
}

void TcpTransport::read_available() {
  if (fd_ < 0) return;
  u8 chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      rx_buffer_.insert(rx_buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      peer_closed_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed_ = true;
    break;
  }
}

std::size_t TcpTransport::poll() {
  if (fd_ < 0) return 0;
  flush_writes();
  read_available();
  // A receiver callback may call poll() again (e.g. while waiting for a
  // reply it just solicited). The outer invocation is mid-iteration over
  // rx_buffer_ with a byte offset; letting the inner call dispatch and
  // erase would double-deliver frames and shift the outer offset into
  // garbage. The inner call only reads; the outer loop picks the new
  // bytes up because it re-checks rx_buffer_.size() every iteration.
  if (in_poll_) return 0;
  in_poll_ = true;
  // Extract complete frames.
  std::size_t dispatched = 0;
  std::size_t offset = 0;
  while (rx_buffer_.size() - offset >= 4) {
    const u32 len = static_cast<u32>(rx_buffer_[offset]) |
                    (static_cast<u32>(rx_buffer_[offset + 1]) << 8) |
                    (static_cast<u32>(rx_buffer_[offset + 2]) << 16) |
                    (static_cast<u32>(rx_buffer_[offset + 3]) << 24);
    if (len > kMaxFrame) {
      peer_closed_ = true;  // protocol violation: poison the connection
      break;
    }
    if (rx_buffer_.size() - offset - 4 < len) break;  // incomplete
    Bytes message(rx_buffer_.begin() + static_cast<long>(offset + 4),
                  rx_buffer_.begin() + static_cast<long>(offset + 4 + len));
    offset += 4 + len;
    if (receiver_) receiver_(std::move(message));
    ++dispatched;
  }
  if (offset > 0) {
    rx_buffer_.erase(rx_buffer_.begin(),
                     rx_buffer_.begin() + static_cast<long>(offset));
  }
  in_poll_ = false;
  return dispatched;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpListener::listen(u16 port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Error{ErrorCode::kIoError,
                 std::string("socket: ") + std::strerror(errno)};
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Error{ErrorCode::kIoError,
                 std::string("bind: ") + std::strerror(errno)};
  }
  if (::listen(fd_, 16) < 0) {
    return Error{ErrorCode::kIoError,
                 std::string("listen: ") + std::strerror(errno)};
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Error{ErrorCode::kIoError,
                 std::string("getsockname: ") + std::strerror(errno)};
  }
  port_ = ntohs(addr.sin_port);
  SHADOW_TRY(set_nonblocking(fd_));
  return Status();
}

Result<std::unique_ptr<TcpTransport>> TcpListener::accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Error{ErrorCode::kNotFound, "no pending connection"};
    }
    return Error{ErrorCode::kIoError,
                 std::string("accept: ") + std::strerror(errno)};
  }
  return std::make_unique<TcpTransport>(client, "client");
}

Result<std::unique_ptr<TcpTransport>> TcpListener::accept_blocking(
    int timeout_ms) {
  struct pollfd pfd {fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) {
    return Error{ErrorCode::kIoError, "accept timed out"};
  }
  return accept();
}

Result<std::unique_ptr<TcpTransport>> tcp_connect(u16 port,
                                                  const std::string& peer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error{ErrorCode::kIoError,
                 std::string("socket: ") + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Error{ErrorCode::kIoError,
                 std::string("connect: ") + std::strerror(errno)};
  }
  return std::make_unique<TcpTransport>(fd, peer);
}

Result<TcpPair> make_tcp_pair() {
  TcpListener listener;
  SHADOW_TRY(listener.listen(0));
  SHADOW_ASSIGN_OR_RETURN(client, tcp_connect(listener.port(), "server"));
  SHADOW_ASSIGN_OR_RETURN(server_side, listener.accept_blocking(2000));
  TcpPair pair;
  pair.a = std::move(client);
  pair.b = std::move(server_side);
  return pair;
}

}  // namespace shadow::net
