// Real TCP transport (POSIX sockets) with 4-byte little-endian length
// framing — the prototype's actual substrate ("a reliable transport
// protocol (TCP/IP) for interprocess communication", §7).
//
// Poll-driven and non-blocking on the receive side: poll() reads whatever
// the kernel has, reassembles frames and dispatches complete messages.
//
// Two send disciplines, selected by the queue limit:
//   - limit == 0 (default; client tools, tests): a blocking write loop —
//     the frame is on the wire (or the peer declared dead) when send()
//     returns.
//   - limit > 0 (overload-aware servers): fully non-blocking — whatever
//     the kernel refuses is parked in a byte-capped tx buffer, flushed by
//     poll() / the event loop when the socket turns writable; a frame
//     that would overflow the cap fails with kResourceExhausted so a
//     stalled consumer can never block the shard loop or grow server
//     memory without bound (docs/OPERATIONS.md).
#pragma once

#include <memory>
#include <string>

#include "net/transport.hpp"

namespace shadow::net {

class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  TcpTransport(int fd, std::string peer_name);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status send(Bytes message) override;
  void set_receiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  std::size_t poll() override;
  u64 bytes_sent() const override { return bytes_sent_; }
  u64 messages_sent() const override { return messages_sent_; }
  std::string peer_name() const override { return peer_name_; }

  std::size_t queued_bytes() const override {
    return tx_buffer_.size() - tx_offset_;
  }
  void set_queue_limit(std::size_t limit) override { queue_limit_ = limit; }
  std::size_t queue_limit() const override { return queue_limit_; }
  void request_close() override { close(); }

  /// Push parked tx bytes to the kernel (non-blocking); returns the bytes
  /// still queued afterwards. poll() and the event loop call this.
  std::size_t flush_writes();

  bool closed() const { return fd_ < 0 || peer_closed_; }
  void close();

  /// Underlying socket (for poll sets and socket-option tests); -1 once
  /// closed.
  int fd() const { return fd_; }

  /// Push an already-dispatched message back to the FRONT of the receive
  /// buffer so the next poll() delivers it first, before anything that
  /// arrived later. Used by the accept→shard handoff: the lobby consumes
  /// the Hello to pick a shard, then unreads it (and anything buffered
  /// behind it) for the shard's ShadowServer to handle. Must not be
  /// called from inside a receiver callback.
  void unread_message(const Bytes& message);

 private:
  /// Drain the socket into rx_buffer_ without dispatching. Safe to call
  /// from anywhere (including inside send()'s write-stall loop).
  void read_available();

  int fd_;
  std::string peer_name_;
  ReceiveFn receiver_;
  Bytes rx_buffer_;
  /// Framed bytes the kernel refused, awaiting a writable socket. Flushed
  /// from tx_offset_ (compacted once drained past the halfway mark) so
  /// repeated partial writes stay linear.
  Bytes tx_buffer_;
  std::size_t tx_offset_ = 0;
  std::size_t queue_limit_ = 0;  // 0 = unlimited, blocking send discipline
  u64 bytes_sent_ = 0;
  u64 messages_sent_ = 0;
  bool peer_closed_ = false;
  /// Re-entrancy guard: a receiver callback that calls poll() again must
  /// not re-dispatch frames the outer poll() is still iterating over.
  bool in_poll_ = false;
};

/// Listening socket for the server side ("a server process listens at a
/// well-known port for connections from clients", §7).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind and listen on 127.0.0.1:`port` (0 picks an ephemeral port).
  Status listen(u16 port);
  u16 port() const { return port_; }

  /// Accept one connection if pending (non-blocking); nullptr if none.
  Result<std::unique_ptr<TcpTransport>> accept();
  /// Accept, blocking up to `timeout_ms`.
  Result<std::unique_ptr<TcpTransport>> accept_blocking(int timeout_ms);

 private:
  int fd_ = -1;
  u16 port_ = 0;
};

/// Connect to 127.0.0.1:`port`.
Result<std::unique_ptr<TcpTransport>> tcp_connect(u16 port,
                                                  const std::string& peer);

struct TcpPair {
  std::unique_ptr<TcpTransport> a;
  std::unique_ptr<TcpTransport> b;
};

/// Connected localhost socket pair (for integration tests).
Result<TcpPair> make_tcp_pair();

}  // namespace shadow::net
