// Real TCP transport (POSIX sockets) with 4-byte little-endian length
// framing — the prototype's actual substrate ("a reliable transport
// protocol (TCP/IP) for interprocess communication", §7).
//
// Poll-driven and non-blocking on the receive side: poll() reads whatever
// the kernel has, reassembles frames and dispatches complete messages.
// send() performs a blocking write loop (messages are small relative to
// socket buffers; the figure benches use SimTransport, not this).
#pragma once

#include <memory>
#include <string>

#include "net/transport.hpp"

namespace shadow::net {

class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  TcpTransport(int fd, std::string peer_name);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status send(Bytes message) override;
  void set_receiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  std::size_t poll() override;
  u64 bytes_sent() const override { return bytes_sent_; }
  u64 messages_sent() const override { return messages_sent_; }
  std::string peer_name() const override { return peer_name_; }

  bool closed() const { return fd_ < 0 || peer_closed_; }
  void close();

  /// Underlying socket (for poll sets and socket-option tests); -1 once
  /// closed.
  int fd() const { return fd_; }

  /// Push an already-dispatched message back to the FRONT of the receive
  /// buffer so the next poll() delivers it first, before anything that
  /// arrived later. Used by the accept→shard handoff: the lobby consumes
  /// the Hello to pick a shard, then unreads it (and anything buffered
  /// behind it) for the shard's ShadowServer to handle. Must not be
  /// called from inside a receiver callback.
  void unread_message(const Bytes& message);

 private:
  /// Drain the socket into rx_buffer_ without dispatching. Safe to call
  /// from anywhere (including inside send()'s write-stall loop).
  void read_available();

  int fd_;
  std::string peer_name_;
  ReceiveFn receiver_;
  Bytes rx_buffer_;
  u64 bytes_sent_ = 0;
  u64 messages_sent_ = 0;
  bool peer_closed_ = false;
  /// Re-entrancy guard: a receiver callback that calls poll() again must
  /// not re-dispatch frames the outer poll() is still iterating over.
  bool in_poll_ = false;
};

/// Listening socket for the server side ("a server process listens at a
/// well-known port for connections from clients", §7).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind and listen on 127.0.0.1:`port` (0 picks an ephemeral port).
  Status listen(u16 port);
  u16 port() const { return port_; }

  /// Accept one connection if pending (non-blocking); nullptr if none.
  Result<std::unique_ptr<TcpTransport>> accept();
  /// Accept, blocking up to `timeout_ms`.
  Result<std::unique_ptr<TcpTransport>> accept_blocking(int timeout_ms);

 private:
  int fd_ = -1;
  u16 port_ = 0;
};

/// Connect to 127.0.0.1:`port`.
Result<std::unique_ptr<TcpTransport>> tcp_connect(u16 port,
                                                  const std::string& peer);

struct TcpPair {
  std::unique_ptr<TcpTransport> a;
  std::unique_ptr<TcpTransport> b;
};

/// Connected localhost socket pair (for integration tests).
Result<TcpPair> make_tcp_pair();

}  // namespace shadow::net
