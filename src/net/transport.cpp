#include "net/transport.hpp"

// Interface-only translation unit (keeps the vtable anchored here).

namespace shadow::net {}  // namespace shadow::net
