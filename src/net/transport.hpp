// Message transport abstraction.
//
// The shadow protocol is transport-agnostic: client and server exchange
// discrete, reliable, ordered messages. Three implementations:
//   - SimTransport: runs over sim::Link inside the discrete-event
//     simulator (deterministic; used by every figure bench),
//   - LoopbackTransport: immediate in-process queues (unit tests),
//   - TcpTransport: real POSIX sockets with length framing (examples and
//     integration tests — the prototype used TCP/IP, §7).
//
// All transports are poll-driven and single-OWNER: received messages are
// dispatched to the receiver callback from poll() (or, for SimTransport,
// from inside the simulator's event loop), and exactly one thread may
// touch a given transport at a time. The thread-per-core server keeps
// that contract by pinning each connection to one shard's event loop at
// Hello time (net/event_loop.hpp); ownership moves between threads only
// through EventLoop::adopt()'s synchronized handoff.
#pragma once

#include <functional>
#include <string>

#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::net {

class Transport {
 public:
  using ReceiveFn = std::function<void(Bytes)>;

  virtual ~Transport() = default;

  /// Queue a message for reliable, ordered delivery to the peer.
  virtual Status send(Bytes message) = 0;

  /// Install the callback invoked once per received message.
  virtual void set_receiver(ReceiveFn fn) = 0;

  /// Drain pending received messages, dispatching each to the receiver.
  /// Returns the number dispatched. SimTransport dispatches from the
  /// simulator instead and returns 0 here.
  virtual std::size_t poll() = 0;

  virtual u64 bytes_sent() const = 0;
  virtual u64 messages_sent() const = 0;

  /// Diagnostic name of the other end.
  virtual std::string peer_name() const = 0;

  // ---- output-queue accounting (overload control, docs/OPERATIONS.md) --

  /// Bytes accepted by send() but not yet handed to the peer (kernel
  /// buffer, simulated link, or the peer's inbox). Transports without an
  /// internal queue report 0.
  virtual std::size_t queued_bytes() const { return 0; }

  /// Byte cap on queued_bytes(). A send() that would exceed the cap fails
  /// with kResourceExhausted and the message is NOT queued — the caller
  /// decides whether to degrade or disconnect. 0 = unlimited (default).
  virtual void set_queue_limit(std::size_t limit) { (void)limit; }
  virtual std::size_t queue_limit() const { return 0; }

  /// Ask the transport to shut the connection down (server-initiated
  /// disconnect of an expired or overflowing client). Poll-driven owners
  /// observe the closure and reap; transports with no close notion (sim,
  /// loopback) ignore it — the caller must also forget the peer itself.
  virtual void request_close() {}
};

}  // namespace shadow::net
