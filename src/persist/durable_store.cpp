#include "persist/durable_store.hpp"

#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace shadow::persist {

namespace {
// Durability telemetry summed over every DurableStore (per-store numbers
// stay in DurableStoreStats). persist.fsyncs counts successful sync()
// returns; persist.append_failures counts append() calls that returned an
// error at any stage (the record is NOT durable and must not be acked).
struct PersistMetrics {
  telemetry::Counter& appends;
  telemetry::Counter& append_bytes;
  telemetry::Counter& append_failures;
  telemetry::Counter& fsyncs;
  telemetry::Counter& compactions;
  telemetry::Counter& recoveries;
  telemetry::Counter& replayed_records;
  telemetry::Counter& torn_tails;
  telemetry::Counter& corrupt_snapshots;
  telemetry::Histogram& record_bytes;

  static PersistMetrics& get() {
    auto& r = telemetry::Registry::global();
    static PersistMetrics m{r.counter("persist.appends"),
                            r.counter("persist.append_bytes"),
                            r.counter("persist.append_failures"),
                            r.counter("persist.fsyncs"),
                            r.counter("persist.compactions"),
                            r.counter("persist.recoveries"),
                            r.counter("persist.replayed_records"),
                            r.counter("persist.torn_tails"),
                            r.counter("persist.corrupt_snapshots"),
                            r.histogram("persist.record_bytes")};
    return m;
  }
};
}  // namespace

DurableStore::DurableStore(StorageDir* dir, u64 compact_every)
    : dir_(dir), compact_every_(compact_every == 0 ? 1 : compact_every) {}

Status DurableStore::append(RecordType type, const Bytes& body) {
  PersistMetrics& metrics = PersistMetrics::get();
  Status st = [&]() -> Status {
    if (journal_ == nullptr) {
      SHADOW_ASSIGN_OR_RETURN(file, dir_->open_append(kJournalName));
      journal_ = std::move(file);
    }
    BufWriter w;
    // A fresh (or just-truncated-to-nothing) journal gets its header in
    // the same append as the first record: one write point, no headerless
    // file.
    if (journal_->size() == 0) w.put_raw(journal_header());
    w.put_raw(frame_record(type, body));
    const Bytes framed = w.take();
    SHADOW_TRY(journal_->append(framed));
    SHADOW_TRY(journal_->sync());
    metrics.fsyncs.add();
    ++stats_.appends;
    stats_.append_bytes += framed.size();
    metrics.appends.add();
    metrics.append_bytes.add(framed.size());
    metrics.record_bytes.observe(framed.size());
    ++appends_since_compact_;
    return Status();
  }();
  if (!st.ok()) metrics.append_failures.add();
  return st;
}

Result<RecoveredState> DurableStore::recover() {
  RecoveredState out;
  ++stats_.recoveries;
  PersistMetrics& metrics = PersistMetrics::get();
  metrics.recoveries.add();

  if (dir_->exists(kSnapshotName)) {
    out.snapshot_present = true;
    SHADOW_ASSIGN_OR_RETURN(raw, dir_->read(kSnapshotName));
    auto unwrapped = unwrap_snapshot(raw);
    if (unwrapped.ok()) {
      out.snapshot = std::move(unwrapped).take();
    } else {
      // Atomic replacement means this "cannot happen" — but disks flip
      // bits, so a damaged snapshot degrades to journal-only recovery
      // instead of refusing to start.
      out.snapshot_corrupt = true;
      metrics.corrupt_snapshots.add();
      out.detail = "snapshot discarded: " + unwrapped.error().to_string();
      SHADOW_WARN() << "persist: " << out.detail;
    }
  }

  if (dir_->exists(kJournalName)) {
    SHADOW_ASSIGN_OR_RETURN(raw, dir_->read(kJournalName));
    JournalScan scan = scan_journal(raw);
    out.records = std::move(scan.records);
    out.journal_torn = scan.torn;
    out.discarded_bytes = scan.total_bytes - scan.valid_bytes;
    metrics.replayed_records.add(out.records.size());
    if (scan.torn) {
      metrics.torn_tails.add();
      if (!out.detail.empty()) out.detail += "; ";
      out.detail += "journal tail discarded (" +
                    std::to_string(out.discarded_bytes) +
                    " bytes): " + scan.tail_detail;
      SHADOW_WARN() << "persist: " << out.detail;
    }
  }
  return out;
}

Status DurableStore::compact(const Bytes& state) {
  // Order is the whole game: make the snapshot durable FIRST. A crash
  // after the snapshot but before the truncate leaves old journal records
  // alongside the new snapshot; replaying them is idempotent. The reverse
  // order would have a crash window that loses every journaled mutation.
  SHADOW_TRY(dir_->write_atomic(kSnapshotName, wrap_snapshot(state)));
  journal_.reset();  // the handle is stale once the file is replaced
  SHADOW_TRY(dir_->write_atomic(kJournalName, journal_header()));
  appends_since_compact_ = 0;
  ++stats_.compactions;
  PersistMetrics::get().compactions.add();
  return Status();
}

}  // namespace shadow::persist
