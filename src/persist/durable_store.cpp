#include "persist/durable_store.hpp"

#include <chrono>

#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace shadow::persist {

namespace {
// Durability telemetry summed over every DurableStore (per-store numbers
// stay in DurableStoreStats). persist.fsyncs counts successful sync()
// returns; persist.append_failures counts append()/append_deferred()
// calls that returned an error at any stage (the record is NOT durable
// and must not be acked).
//
// Group-commit accounting keeps one identity the telemetry suite asserts:
//   group_records == group_flushed_records + group_failed_records
//                    + pending_records()     (at any quiesce point)
// and group_flushes <= group_records (a flush covers at least one record).
struct PersistMetrics {
  telemetry::Counter& appends;
  telemetry::Counter& append_bytes;
  telemetry::Counter& append_failures;
  telemetry::Counter& fsyncs;
  telemetry::Counter& compactions;
  telemetry::Counter& recoveries;
  telemetry::Counter& replayed_records;
  telemetry::Counter& torn_tails;
  telemetry::Counter& corrupt_snapshots;
  telemetry::Counter& group_records;
  telemetry::Counter& group_flushed_records;
  telemetry::Counter& group_failed_records;
  telemetry::Counter& group_flushes;
  telemetry::Counter& group_flush_failures;
  telemetry::Counter& group_parked;
  telemetry::Histogram& record_bytes;
  telemetry::Histogram& group_batch_records;
  telemetry::Histogram& group_batch_bytes;
  telemetry::Histogram& group_flush_micros;

  static PersistMetrics& get() {
    auto& r = telemetry::Registry::global();
    static PersistMetrics m{r.counter("persist.appends"),
                            r.counter("persist.append_bytes"),
                            r.counter("persist.append_failures"),
                            r.counter("persist.fsyncs"),
                            r.counter("persist.compactions"),
                            r.counter("persist.recoveries"),
                            r.counter("persist.replayed_records"),
                            r.counter("persist.torn_tails"),
                            r.counter("persist.corrupt_snapshots"),
                            r.counter("persist.group_records"),
                            r.counter("persist.group_flushed_records"),
                            r.counter("persist.group_failed_records"),
                            r.counter("persist.group_flushes"),
                            r.counter("persist.group_flush_failures"),
                            r.counter("persist.group_parked"),
                            r.histogram("persist.record_bytes"),
                            r.histogram("persist.group_batch_records"),
                            r.histogram("persist.group_batch_bytes"),
                            r.histogram("persist.group_flush_micros")};
    return m;
  }
};

u64 steady_micros() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

DurableStore::DurableStore(StorageDir* dir, u64 compact_every)
    : dir_(dir), compact_every_(compact_every == 0 ? 1 : compact_every) {}

DurableStore::~DurableStore() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      worker_stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void DurableStore::set_group_commit(GroupCommitConfig config) {
  if (config.max_batch_records == 0) config.max_batch_records = 1;
  if (config.max_batch_bytes == 0) config.max_batch_bytes = 1;
  group_ = config;
  if (group_.enabled() && group_.pipeline && !worker_.joinable()) {
    worker_ = std::thread([this] { worker_main(); });
  }
}

Status DurableStore::write_framed(const Bytes& framed) {
  PersistMetrics& metrics = PersistMetrics::get();
  if (journal_ == nullptr) {
    SHADOW_ASSIGN_OR_RETURN(file, dir_->open_append(kJournalName));
    journal_ = std::move(file);
  }
  // A fresh (or just-truncated-to-nothing) journal gets its header in the
  // same append as the first record: one write point, no headerless file.
  std::size_t written = framed.size();
  if (journal_->size() == 0) {
    BufWriter w;
    w.put_raw(journal_header());
    w.put_raw(framed);
    const Bytes with_header = w.take();
    written = with_header.size();
    SHADOW_TRY(journal_->append(with_header));
  } else {
    SHADOW_TRY(journal_->append(framed));
  }
  ++stats_.appends;
  stats_.append_bytes += written;
  metrics.appends.add();
  metrics.append_bytes.add(written);
  metrics.record_bytes.observe(written);
  ++appends_since_compact_;
  return Status();
}

Status DurableStore::append(RecordType type, const Bytes& body) {
  PersistMetrics& metrics = PersistMetrics::get();
  Status st = [&]() -> Status {
    SHADOW_TRY(write_framed(frame_record(type, body)));
    SHADOW_TRY(journal_->sync());
    metrics.fsyncs.add();
    return Status();
  }();
  if (!st.ok()) metrics.append_failures.add();
  return st;
}

Status DurableStore::append_deferred(RecordType type, const Bytes& body,
                                     CommitFn on_durable) {
  if (!group_.enabled()) {
    // window == 0: byte-for-byte the classic path — same write sequence,
    // same fsync-per-record, callback resolved before we return.
    Status st = append(type, body);
    if (on_durable) on_durable(st);
    return st;
  }
  PersistMetrics& metrics = PersistMetrics::get();
  if (group_.pipeline) (void)drain();
  if (!group_error_.ok()) {
    // The storage already lost a batch; fail fast instead of queueing
    // records behind a broken disk.
    metrics.append_failures.add();
    Status st = group_error_;
    if (on_durable) on_durable(st);
    return st;
  }
  if (group_.pipeline && sync_in_flight()) {
    // The append pipeline: frame + CRC now, while the previous batch's
    // fsync runs on the worker; the bytes land in the journal when
    // drain() collects that sync. The owner never touches the storage
    // while the worker might be syncing it.
    Parked p;
    p.framed = frame_record(type, body);
    p.ack = std::move(on_durable);
    parked_bytes_ += p.framed.size();
    parked_.push_back(std::move(p));
    ++stats_.group_records;
    metrics.group_records.add();
    metrics.group_parked.add();
    return Status();
  }
  return stage_record(type, body, std::move(on_durable));
}

Status DurableStore::stage_record(RecordType type, const Bytes& body,
                                  CommitFn ack) {
  PersistMetrics& metrics = PersistMetrics::get();
  const Bytes framed = frame_record(type, body);
  Status st = write_framed(framed);
  if (!st.ok()) {
    // The write itself was refused: this record never joined the batch,
    // and the batch behind it is now doomed too — fail everything.
    metrics.append_failures.add();
    group_error_ = st;
    if (ack) ack(st);
    fail_all_pending(st);
    return st;
  }
  ++stats_.group_records;
  metrics.group_records.add();
  staged_bytes_ += framed.size();
  staged_acks_.push_back(std::move(ack));
  if (staged_acks_.size() >= group_.max_batch_records ||
      staged_bytes_ >= group_.max_batch_bytes) {
    return flush();
  }
  return Status();
}

void DurableStore::release_batch(std::vector<CommitFn>& acks,
                                 const Status& st, u64 batch_bytes,
                                 u64 sync_micros) {
  PersistMetrics& metrics = PersistMetrics::get();
  ++stats_.group_flushes;
  metrics.group_flushes.add();
  metrics.group_batch_records.observe(acks.size());
  metrics.group_batch_bytes.observe(batch_bytes);
  metrics.group_flush_micros.observe(sync_micros);
  if (st.ok()) {
    metrics.fsyncs.add();
    metrics.group_flushed_records.add(acks.size());
  } else {
    // The fsync failed: NONE of the batch is durable. Every callback
    // gets the error — releasing any subset as OK would ack mutations a
    // recovering server may not have.
    ++stats_.group_flush_failures;
    metrics.group_flush_failures.add();
    metrics.group_failed_records.add(acks.size());
    group_error_ = st;
    SHADOW_WARN() << "persist: group flush failed, " << acks.size()
                  << " pending acks refused: " << st.to_string();
  }
  for (auto& ack : acks) {
    if (ack) ack(st);
  }
  acks.clear();
}

void DurableStore::fail_all_pending(const Status& st) {
  auto staged = std::move(staged_acks_);
  staged_acks_.clear();
  staged_bytes_ = 0;
  auto parked = std::move(parked_);
  parked_.clear();
  parked_bytes_ = 0;
  if (staged.empty() && parked.empty()) return;
  PersistMetrics::get().group_failed_records.add(staged.size() +
                                                 parked.size());
  for (auto& ack : staged) {
    if (ack) ack(st);
  }
  for (auto& p : parked) {
    if (p.ack) p.ack(st);
  }
}

Status DurableStore::flush() {
  if (!group_.enabled()) return Status();
  if (group_.pipeline) {
    (void)drain();
    if (sync_in_flight()) return Status();  // parked records ride the next one
    promote_parked();
    if (staged_acks_.empty()) return Status();
    {
      std::lock_guard<std::mutex> lk(mu_);
      inflight_acks_ = std::move(staged_acks_);
      staged_acks_.clear();
      inflight_bytes_ = staged_bytes_;
      staged_bytes_ = 0;
      inflight_start_us_ = steady_micros();
      sync_in_flight_ = true;
      sync_requested_ = true;
    }
    cv_.notify_all();
    return Status();
  }
  if (staged_acks_.empty()) return Status();
  const u64 t0 = steady_micros();
  Status st = journal_->sync();
  auto acks = std::move(staged_acks_);
  staged_acks_.clear();
  const u64 bytes = staged_bytes_;
  staged_bytes_ = 0;
  release_batch(acks, st, bytes, steady_micros() - t0);
  return st;
}

std::size_t DurableStore::drain() {
  if (!group_.pipeline) return 0;
  std::vector<CommitFn> acks;
  Status st;
  u64 bytes = 0;
  u64 micros = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!completion_ready_) return 0;
    completion_ready_ = false;
    sync_in_flight_ = false;
    st = completed_status_;
    acks = std::move(inflight_acks_);
    inflight_acks_.clear();
    bytes = inflight_bytes_;
    inflight_bytes_ = 0;
    micros = steady_micros() - inflight_start_us_;
  }
  const std::size_t released = acks.size();
  release_batch(acks, st, bytes, micros);
  if (!st.ok()) {
    fail_all_pending(st);
    return released;
  }
  promote_parked();
  return released;
}

void DurableStore::promote_parked() {
  if (parked_.empty()) return;
  auto parked = std::move(parked_);
  parked_.clear();
  parked_bytes_ = 0;
  PersistMetrics& metrics = PersistMetrics::get();
  for (std::size_t i = 0; i < parked.size(); ++i) {
    if (!group_error_.ok()) {
      // A promote already failed: the rest of the parked run fails too.
      metrics.group_failed_records.add(1);
      if (parked[i].ack) parked[i].ack(group_error_);
      continue;
    }
    Status st = write_framed(parked[i].framed);
    if (!st.ok()) {
      metrics.append_failures.add();
      group_error_ = st;
      metrics.group_failed_records.add(1);
      if (parked[i].ack) parked[i].ack(st);
      fail_all_pending(st);
      continue;
    }
    staged_bytes_ += parked[i].framed.size();
    staged_acks_.push_back(std::move(parked[i].ack));
  }
  if (group_error_.ok() &&
      (staged_acks_.size() >= group_.max_batch_records ||
       staged_bytes_ >= group_.max_batch_bytes)) {
    (void)flush();
  }
}

void DurableStore::wait_idle() {
  if (!group_.enabled()) return;
  if (!group_.pipeline) {
    (void)flush();
    return;
  }
  for (;;) {
    (void)drain();
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (sync_in_flight_ && !completion_ready_) {
        cv_.wait(lk, [&] { return completion_ready_ || !sync_in_flight_; });
        continue;  // drain the completion on the next pass
      }
      if (sync_in_flight_) continue;  // completion ready: drain it
    }
    if (!staged_acks_.empty() || !parked_.empty()) {
      (void)flush();
      if (!group_error_.ok()) return;  // fail_all_pending emptied the queues
      continue;
    }
    return;
  }
}

void DurableStore::drop_pending() {
  if (!group_.enabled()) return;
  if (group_.pipeline) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !sync_in_flight_ || completion_ready_; });
    sync_in_flight_ = false;
    completion_ready_ = false;
    inflight_acks_.clear();
    inflight_bytes_ = 0;
  }
  staged_acks_.clear();
  staged_bytes_ = 0;
  parked_.clear();
  parked_bytes_ = 0;
}

u64 DurableStore::pending_records() const {
  u64 n = staged_acks_.size() + parked_.size();
  if (group_.pipeline) {
    std::lock_guard<std::mutex> lk(mu_);
    n += inflight_acks_.size();
  }
  return n;
}

u64 DurableStore::pending_bytes() const {
  u64 n = staged_bytes_ + parked_bytes_;
  if (group_.pipeline) {
    std::lock_guard<std::mutex> lk(mu_);
    n += inflight_bytes_;
  }
  return n;
}

bool DurableStore::sync_in_flight() const {
  if (!group_.pipeline) return false;
  std::lock_guard<std::mutex> lk(mu_);
  return sync_in_flight_;
}

void DurableStore::worker_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return worker_stop_ || sync_requested_; });
    if (worker_stop_) return;
    sync_requested_ = false;
    StorageFile* journal = journal_.get();  // stable while a sync is in flight
    lk.unlock();
    Status st = journal != nullptr
                    ? journal->sync()
                    : Status(Error{ErrorCode::kIoError, "journal closed"});
    lk.lock();
    completed_status_ = st;
    completion_ready_ = true;
    cv_.notify_all();
  }
}

Result<RecoveredState> DurableStore::recover() {
  RecoveredState out;
  ++stats_.recoveries;
  PersistMetrics& metrics = PersistMetrics::get();
  metrics.recoveries.add();

  if (dir_->exists(kSnapshotName)) {
    out.snapshot_present = true;
    SHADOW_ASSIGN_OR_RETURN(raw, dir_->read(kSnapshotName));
    auto unwrapped = unwrap_snapshot(raw);
    if (unwrapped.ok()) {
      out.snapshot = std::move(unwrapped).take();
    } else {
      // Atomic replacement means this "cannot happen" — but disks flip
      // bits, so a damaged snapshot degrades to journal-only recovery
      // instead of refusing to start.
      out.snapshot_corrupt = true;
      metrics.corrupt_snapshots.add();
      out.detail = "snapshot discarded: " + unwrapped.error().to_string();
      SHADOW_WARN() << "persist: " << out.detail;
    }
  }

  if (dir_->exists(kJournalName)) {
    SHADOW_ASSIGN_OR_RETURN(raw, dir_->read(kJournalName));
    JournalScan scan = scan_journal(raw);
    out.records = std::move(scan.records);
    out.journal_torn = scan.torn;
    out.discarded_bytes = scan.total_bytes - scan.valid_bytes;
    metrics.replayed_records.add(out.records.size());
    if (scan.torn) {
      metrics.torn_tails.add();
      if (!out.detail.empty()) out.detail += "; ";
      out.detail += "journal tail discarded (" +
                    std::to_string(out.discarded_bytes) +
                    " bytes): " + scan.tail_detail;
      SHADOW_WARN() << "persist: " << out.detail;
    }
  }
  return out;
}

Status DurableStore::compact(const Bytes& state) {
  if (group_.enabled()) {
    // No callback may straddle the truncation, and the worker must not
    // be syncing a handle we are about to replace.
    Status st = flush();
    if (!st.ok()) return st;
    wait_idle();
    if (!group_error_.ok()) return group_error_;
  }
  // Order is the whole game: make the snapshot durable FIRST. A crash
  // after the snapshot but before the truncate leaves old journal records
  // alongside the new snapshot; replaying them is idempotent. The reverse
  // order would have a crash window that loses every journaled mutation.
  SHADOW_TRY(dir_->write_atomic(kSnapshotName, wrap_snapshot(state)));
  journal_.reset();  // the handle is stale once the file is replaced
  SHADOW_TRY(dir_->write_atomic(kJournalName, journal_header()));
  appends_since_compact_ = 0;
  ++stats_.compactions;
  PersistMetrics::get().compactions.add();
  return Status();
}

}  // namespace shadow::persist
