// The server's durability engine: an append-only CRC-framed journal plus
// an atomically replaced snapshot, over any StorageDir. The contract the
// crash matrix enforces:
//
//   * append() returns OK only after the record is framed, written and
//     fsynced — the caller may then acknowledge the mutation to a client;
//   * append_deferred() writes the record immediately but defers the
//     durability promise: the commit callback fires (with OK) only after
//     a later flush() has fsynced the whole batch, or (with the error)
//     when that fsync fails — in which case EVERY callback in the batch
//     fails together, never a partial release;
//   * compact() writes the snapshot atomically BEFORE truncating the
//     journal, so a crash between the two leaves snapshot + stale journal,
//     which replays idempotently;
//   * recover() reads whatever the crash left: a missing or corrupt
//     snapshot degrades to empty state, and a torn or bit-flipped journal
//     tail is truncated, never trusted — damage is recovered from, not
//     reported as an error.
//
// Group commit (docs/DURABILITY.md): set_group_commit() with window_us > 0
// switches the deferred path into batching mode — records from many
// connections accumulate in one open batch, one fsync covers all of them,
// and their callbacks release together in append order. window_us == 0
// keeps append_deferred() byte-for-byte identical to append(): same write
// sequence, same fsync-per-record, callback invoked before it returns.
// With pipeline == true a worker thread runs the fsync while the owner
// keeps framing and CRC-ing new records into a parked buffer (promoted
// into the journal when the in-flight sync lands), so append CPU work
// overlaps the previous batch's disk wait.
//
// Threading: every public method is owner-thread-only. The pipeline
// worker touches ONLY the journal handle's sync() — never the StorageDir —
// and only between flush() sealing a batch and drain() collecting it, a
// window in which the owner parks instead of writing. Completion hand-off
// goes through a mutex+condvar, so no additional locking is required of
// the storage backend beyond surviving one concurrent sync().
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "persist/storage.hpp"
#include "persist/wal.hpp"

namespace shadow::persist {

struct RecoveredState {
  /// Unwrapped snapshot payload; empty when no usable snapshot exists.
  Bytes snapshot;
  /// Intact journal records appended after that snapshot, in order.
  std::vector<JournalRecord> records;
  bool snapshot_present = false;  // a snapshot file existed
  bool snapshot_corrupt = false;  // ...but failed its CRC (state dropped)
  bool journal_torn = false;      // trailing journal damage was discarded
  u64 discarded_bytes = 0;        // journal bytes beyond the valid prefix
  std::string detail;             // human-readable damage description
};

struct DurableStoreStats {
  u64 appends = 0;
  u64 append_bytes = 0;
  u64 compactions = 0;
  u64 recoveries = 0;
  u64 group_records = 0;         // records accepted into the deferred path
  u64 group_flushes = 0;         // batches released (one fsync each)
  u64 group_flush_failures = 0;  // batches whose fsync failed (all acks fail)
};

/// How the deferred-append path batches. window_us is the commit window
/// the SERVER enforces (the store itself never sleeps — it flushes when
/// told to, or when a batch hits one of the two seal caps below).
struct GroupCommitConfig {
  /// 0 = classic sync-per-record (append_deferred == append + callback).
  u64 window_us = 0;
  /// Seal the open batch once it holds this many records...
  u64 max_batch_records = 128;
  /// ...or this many framed bytes, whichever comes first.
  u64 max_batch_bytes = 1u << 20;
  /// Run the batch fsync on a worker thread; appends arriving while it
  /// runs are framed into a parked buffer instead of blocking.
  bool pipeline = false;

  bool enabled() const { return window_us > 0; }
};

class DurableStore {
 public:
  /// Runs when a deferred record's batch is resolved: OK after the fsync
  /// covering it returned, the sync error if the batch was lost.
  using CommitFn = std::function<void(const Status&)>;

  /// `dir` must outlive the store. `compact_every` is the number of
  /// journal appends after which compaction_due() turns true.
  explicit DurableStore(StorageDir* dir, u64 compact_every = 64);
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Frame, append and fsync one record. On any failure the record must
  /// be considered NOT durable (do not acknowledge).
  Status append(RecordType type, const Bytes& body);

  /// Configure group commit. Call before the first append_deferred();
  /// window_us == 0 (the default) keeps the classic path.
  void set_group_commit(GroupCommitConfig config);
  const GroupCommitConfig& group_commit() const { return group_; }

  /// Group-commit append: frame + CRC + write the record now, fsync
  /// later. `on_durable` fires exactly once — from a later flush()/
  /// drain() (or inline when window_us == 0, or inline with the error
  /// when the store has already failed). The returned Status reports
  /// only the WRITE; durability itself is the callback's verdict.
  Status append_deferred(RecordType type, const Bytes& body,
                         CommitFn on_durable);

  /// Seal and sync the open batch, releasing every callback in append
  /// order with the fsync's status. Pipelined mode hands the sealed
  /// batch to the worker and returns immediately (callbacks fire from a
  /// later drain()/wait_idle()). No-op when nothing is staged.
  Status flush();

  /// Pipelined mode: collect a completed batch (run its callbacks on the
  /// caller's thread) and promote parked records into the journal.
  /// Returns the number of callbacks released. No-op otherwise.
  std::size_t drain();

  /// Block until no batch is staged, parked or in flight, releasing
  /// every callback on the way (owner thread only).
  void wait_idle();

  /// Discard pending callbacks WITHOUT invoking them, after waiting out
  /// any in-flight sync. For owner teardown when the callback targets
  /// (connections, the server) are already gone; the records themselves
  /// stay written and replay on recovery if their fsync happened.
  void drop_pending();

  /// Records written but not yet resolved (staged + parked + in flight).
  u64 pending_records() const;
  u64 pending_bytes() const;
  /// True while a pipelined fsync is running on the worker.
  bool sync_in_flight() const;
  /// First flush/append failure in group mode; every later deferred
  /// append fails fast with it. OK while healthy.
  Status group_error() const { return group_error_; }

  /// Read snapshot + journal as left by the last run (or crash). Errors
  /// are reserved for the storage itself failing to read; damaged
  /// contents come back as a degraded-but-clean RecoveredState.
  Result<RecoveredState> recover();

  /// Snapshot-then-truncate. `state` is the application snapshot blob.
  /// In group mode this first flushes and waits out the open batch, so
  /// no callback can straddle the journal truncation.
  Status compact(const Bytes& state);

  bool compaction_due() const {
    return appends_since_compact_ >= compact_every_;
  }
  u64 compact_every() const { return compact_every_; }
  const DurableStoreStats& stats() const { return stats_; }

  static constexpr const char* kJournalName = "journal.wal";
  static constexpr const char* kSnapshotName = "snapshot.bin";

 private:
  /// A framed record waiting out an in-flight sync (pipelined mode).
  struct Parked {
    Bytes framed;
    CommitFn ack;
  };

  /// Open/extend the journal with one already-framed record (writing the
  /// header first when the file is empty) and do the per-append
  /// bookkeeping. Does NOT sync.
  Status write_framed(const Bytes& framed);
  /// write_framed + stage the callback; seals the batch at the caps.
  Status stage_record(RecordType type, const Bytes& body, CommitFn ack);
  /// Run one batch's callbacks with the sync status + batch metrics.
  void release_batch(std::vector<CommitFn>& acks, const Status& st,
                     u64 batch_bytes, u64 sync_micros);
  /// Storage failed: release every staged AND parked callback with `st`
  /// (the no-partial-release rule extends to records behind the batch).
  void fail_all_pending(const Status& st);
  /// Append parked records into the journal (owner thread, no sync in
  /// flight) and stage their callbacks.
  void promote_parked();
  void worker_main();

  StorageDir* dir_;
  u64 compact_every_;
  u64 appends_since_compact_ = 0;
  std::unique_ptr<StorageFile> journal_;
  DurableStoreStats stats_;

  // ---- group commit ----
  GroupCommitConfig group_;
  Status group_error_;
  std::vector<CommitFn> staged_acks_;  // open batch, append order
  u64 staged_bytes_ = 0;
  std::vector<Parked> parked_;  // framed while a sync is in flight
  u64 parked_bytes_ = 0;

  // ---- pipelined sync worker (all guarded by mu_ unless noted) ----
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
  bool worker_stop_ = false;
  bool sync_requested_ = false;
  bool sync_in_flight_ = false;   // sealed batch not yet drained
  bool completion_ready_ = false; // worker finished; drain() pending
  Status completed_status_;
  std::vector<CommitFn> inflight_acks_;
  u64 inflight_bytes_ = 0;
  u64 inflight_start_us_ = 0;  // steady-clock stamp at seal
};

}  // namespace shadow::persist
