// The server's durability engine: an append-only CRC-framed journal plus
// an atomically replaced snapshot, over any StorageDir. The contract the
// crash matrix enforces:
//
//   * append() returns OK only after the record is framed, written and
//     fsynced — the caller may then acknowledge the mutation to a client;
//   * compact() writes the snapshot atomically BEFORE truncating the
//     journal, so a crash between the two leaves snapshot + stale journal,
//     which replays idempotently;
//   * recover() reads whatever the crash left: a missing or corrupt
//     snapshot degrades to empty state, and a torn or bit-flipped journal
//     tail is truncated, never trusted — damage is recovered from, not
//     reported as an error.
#pragma once

#include <memory>
#include <string>

#include "persist/storage.hpp"
#include "persist/wal.hpp"

namespace shadow::persist {

struct RecoveredState {
  /// Unwrapped snapshot payload; empty when no usable snapshot exists.
  Bytes snapshot;
  /// Intact journal records appended after that snapshot, in order.
  std::vector<JournalRecord> records;
  bool snapshot_present = false;  // a snapshot file existed
  bool snapshot_corrupt = false;  // ...but failed its CRC (state dropped)
  bool journal_torn = false;      // trailing journal damage was discarded
  u64 discarded_bytes = 0;        // journal bytes beyond the valid prefix
  std::string detail;             // human-readable damage description
};

struct DurableStoreStats {
  u64 appends = 0;
  u64 append_bytes = 0;
  u64 compactions = 0;
  u64 recoveries = 0;
};

class DurableStore {
 public:
  /// `dir` must outlive the store. `compact_every` is the number of
  /// journal appends after which compaction_due() turns true.
  explicit DurableStore(StorageDir* dir, u64 compact_every = 64);

  /// Frame, append and fsync one record. On any failure the record must
  /// be considered NOT durable (do not acknowledge).
  Status append(RecordType type, const Bytes& body);

  /// Read snapshot + journal as left by the last run (or crash). Errors
  /// are reserved for the storage itself failing to read; damaged
  /// contents come back as a degraded-but-clean RecoveredState.
  Result<RecoveredState> recover();

  /// Snapshot-then-truncate. `state` is the application snapshot blob.
  Status compact(const Bytes& state);

  bool compaction_due() const {
    return appends_since_compact_ >= compact_every_;
  }
  u64 compact_every() const { return compact_every_; }
  const DurableStoreStats& stats() const { return stats_; }

  static constexpr const char* kJournalName = "journal.wal";
  static constexpr const char* kSnapshotName = "snapshot.bin";

 private:
  StorageDir* dir_;
  u64 compact_every_;
  u64 appends_since_compact_ = 0;
  std::unique_ptr<StorageFile> journal_;
  DurableStoreStats stats_;
};

}  // namespace shadow::persist
