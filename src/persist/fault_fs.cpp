#include "persist/fault_fs.hpp"

#include <algorithm>

namespace shadow::persist {

namespace {

class FaultStorageFile final : public StorageFile {
 public:
  FaultStorageFile(FaultFs* fs, std::unique_ptr<StorageFile> inner)
      : fs_(fs), inner_(std::move(inner)) {}

  Status append(const Bytes& data) override {
    return fs_->guarded_append(inner_.get(), data);
  }
  Status sync() override { return fs_->guarded_sync(inner_.get()); }
  u64 size() const override { return inner_->size(); }

 private:
  FaultFs* fs_;
  std::unique_ptr<StorageFile> inner_;
};

}  // namespace

Status FaultFs::dead_error() const {
  return Error{ErrorCode::kIoError, "storage crashed (fault injection)"};
}

bool FaultFs::count_write() {
  ++stats_.writes_seen;
  return plan_.crash_at_write != 0 &&
         stats_.writes_seen == plan_.crash_at_write;
}

Result<std::unique_ptr<StorageFile>> FaultFs::open_append(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) {
      ++stats_.refused_ops;
      return dead_error().error();
    }
  }
  SHADOW_ASSIGN_OR_RETURN(inner, inner_->open_append(name));
  return std::unique_ptr<StorageFile>(
      new FaultStorageFile(this, std::move(inner)));
}

Status FaultFs::guarded_append(StorageFile* file, const Bytes& data) {
  // mu_ is held across the inner call too: a pipelined store's owner
  // append and worker sync serialize here, so write-point numbering stays
  // a total order even with two threads in flight.
  std::lock_guard<std::mutex> lk(mu_);
  if (dead_) {
    ++stats_.refused_ops;
    return dead_error();
  }
  if (count_write()) {
    // The process dies mid-write: only a prefix of this append reaches
    // the disk, and nothing after it ever will.
    dead_ = true;
    const std::size_t keep = std::min(plan_.torn_keep, data.size());
    if (keep > 0) {
      (void)file->append(Bytes(data.begin(),
                               data.begin() + static_cast<long>(keep)));
      stats_.torn_bytes += keep;
    }
    return dead_error();
  }
  return file->append(data);
}

Status FaultFs::guarded_sync(StorageFile* file) {
  std::lock_guard<std::mutex> lk(mu_);
  if (dead_) {
    ++stats_.refused_ops;
    return dead_error();
  }
  if (plan_.syncs_are_write_points && count_write()) {
    // Dying at the fsync: every byte appended since the last successful
    // sync stays in the page cache — the batch the caller was about to
    // acknowledge never became durable.
    dead_ = true;
    return dead_error();
  }
  if (plan_.lie_about_sync_after != 0 &&
      stats_.writes_seen >= plan_.lie_about_sync_after) {
    ++stats_.lied_syncs;
    return Status();  // "durable", says the disk
  }
  return file->sync();
}

Result<Bytes> FaultFs::read(const std::string& name) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) {
      ++stats_.refused_ops;
      return dead_error().error();
    }
  }
  return inner_->read(name);
}

bool FaultFs::exists(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return false;
  }
  return inner_->exists(name);
}

Status FaultFs::write_atomic(const std::string& name, const Bytes& data) {
  std::lock_guard<std::mutex> lk(mu_);
  if (dead_) {
    ++stats_.refused_ops;
    return dead_error();
  }
  if (count_write()) {
    // Dying inside write_atomic: the temp file may be torn but the rename
    // never happened, so the visible file keeps its old content.
    dead_ = true;
    return dead_error();
  }
  return inner_->write_atomic(name, data);
}

Status FaultFs::remove(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (dead_) {
    ++stats_.refused_ops;
    return dead_error();
  }
  if (count_write()) {
    dead_ = true;
    return dead_error();
  }
  return inner_->remove(name);
}

std::vector<std::string> FaultFs::list() const {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return {};
  }
  return inner_->list();
}

}  // namespace shadow::persist
