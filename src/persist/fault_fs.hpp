// Fault injection for storage (the disk-side sibling of
// net::FaultTransport). FaultFs decorates any StorageDir and perturbs its
// MUTATING operations according to a plan: the process can "die" at
// exactly the Nth write (optionally leaving a torn prefix of that write on
// the disk), and fsync can silently lie from a chosen point on. Reads pass
// through untouched while the storage is alive — the crash-matrix harness
// recovers through the UNDECORATED inner directory, the way a restarted
// process reads the real disk.
//
// Write-point numbering is 1-based and counts append(), write_atomic()
// and remove() calls in order, which makes schedules exact: "crash at
// write 7" is the same operation in every run of a deterministic workload.
// With syncs_are_write_points, sync() calls join the same numbering, so a
// group-commit matrix can kill the process BETWEEN a batch's appends and
// its fsync, or at the fsync itself — a dying sync leaves every
// appended-but-unsynced byte in the page cache for MemDir::crash() to
// adjudicate.
//
// Thread safety: all state is guarded by one mutex, so a pipelined
// DurableStore (owner appending, worker syncing) can share a FaultFs; the
// crash-trial determinism argument lives in core/crash.cpp.
#pragma once

#include <memory>
#include <mutex>

#include "persist/storage.hpp"

namespace shadow::persist {

struct StorageFaultPlan {
  /// Die at this mutating operation (1-based). 0 = never. The dying
  /// append applies only `torn_keep` bytes; a dying write_atomic or
  /// remove applies nothing (the rename never happened); a dying sync
  /// (syncs_are_write_points) syncs nothing. Every later operation fails
  /// with kIoError.
  u64 crash_at_write = 0;
  /// Bytes of the dying append that still reach the inner directory.
  std::size_t torn_keep = 0;
  /// From this mutating-op index on (1-based), sync() returns OK without
  /// syncing — the lost-fsync lie. 0 = never lie.
  u64 lie_about_sync_after = 0;
  /// Count sync() calls as write points too (default false keeps every
  /// pre-group-commit schedule numbering intact).
  bool syncs_are_write_points = false;
};

struct StorageFaultStats {
  u64 writes_seen = 0;   // mutating ops observed (incl. the dying one)
  u64 torn_bytes = 0;    // bytes of the dying write that reached the disk
  u64 lied_syncs = 0;    // syncs swallowed by the lie window
  u64 refused_ops = 0;   // operations failed because the storage is dead
};

class FaultFs final : public StorageDir {
 public:
  FaultFs(StorageDir* inner, StorageFaultPlan plan)
      : inner_(inner), plan_(plan) {}

  Result<std::unique_ptr<StorageFile>> open_append(
      const std::string& name) override;
  Result<Bytes> read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Status write_atomic(const std::string& name, const Bytes& data) override;
  Status remove(const std::string& name) override;
  std::vector<std::string> list() const override;

  bool dead() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dead_;
  }
  u64 writes_seen() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_.writes_seen;
  }
  StorageFaultStats fault_stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  // Used by the append handles (public to avoid friendship).
  Status guarded_append(StorageFile* file, const Bytes& data);
  Status guarded_sync(StorageFile* file);

 private:
  /// Count one mutating op; returns true when this op is the dying one.
  /// Caller holds mu_.
  bool count_write();
  Status dead_error() const;

  StorageDir* inner_;
  StorageFaultPlan plan_;
  mutable std::mutex mu_;  // guards stats_ and dead_
  StorageFaultStats stats_;
  bool dead_ = false;
};

}  // namespace shadow::persist
