#include "persist/storage.hpp"

#include <mutex>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SHADOW_HAVE_FSYNC 1
#endif

namespace shadow::persist {

bool valid_storage_name(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

namespace {

Error bad_name(const std::string& name) {
  return Error{ErrorCode::kInvalidArgument, "bad storage name: " + name};
}

}  // namespace

// ---- MemDir ----

namespace {

/// Append handle over a MemDir entry. Stateless by design: every call goes
/// through the directory, so the handle stays valid across write_atomic
/// replacements of the same name (mirroring a real fd... closely enough
/// for the journal, which reopens after compaction anyway).
class MemStorageFile final : public StorageFile {
 public:
  MemStorageFile(MemDir* dir, std::string name)
      : dir_(dir), name_(std::move(name)) {}

  Status append(const Bytes& data) override {
    return dir_->append_to(name_, data);
  }
  Status sync() override { return dir_->sync_file(name_); }
  u64 size() const override { return dir_->size_of(name_); }

 private:
  MemDir* dir_;
  std::string name_;
};

}  // namespace

Result<std::unique_ptr<StorageFile>> MemDir::open_append(
    const std::string& name) {
  if (!valid_storage_name(name)) return bad_name(name);
  {
    std::lock_guard<std::mutex> lk(mu_);
    files_[name];  // create if absent
  }
  return std::unique_ptr<StorageFile>(new MemStorageFile(this, name));
}

Result<Bytes> MemDir::read(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{ErrorCode::kNotFound, "no such file: " + name};
  }
  Bytes out = it->second.synced;
  out.insert(out.end(), it->second.pending.begin(), it->second.pending.end());
  return out;
}

bool MemDir::exists(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.count(name) != 0;
}

Status MemDir::write_atomic(const std::string& name, const Bytes& data) {
  if (!valid_storage_name(name)) return bad_name(name);
  std::lock_guard<std::mutex> lk(mu_);
  MemFile& f = files_[name];
  f.synced = data;
  f.pending.clear();
  return Status();
}

Status MemDir::remove(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (files_.erase(name) == 0) {
    return Error{ErrorCode::kNotFound, "no such file: " + name};
  }
  return Status();
}

std::vector<std::string> MemDir::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& [name, f] : files_) out.push_back(name);
  return out;
}

Status MemDir::append_to(const std::string& name, const Bytes& data) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{ErrorCode::kNotFound, "no such file: " + name};
  }
  it->second.pending.insert(it->second.pending.end(), data.begin(),
                            data.end());
  return Status();
}

Status MemDir::sync_file(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{ErrorCode::kNotFound, "no such file: " + name};
  }
  MemFile& f = it->second;
  f.synced.insert(f.synced.end(), f.pending.begin(), f.pending.end());
  f.pending.clear();
  return Status();
}

u64 MemDir::size_of(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return 0;
  return it->second.synced.size() + it->second.pending.size();
}

u64 MemDir::pending_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  u64 total = 0;
  for (const auto& [name, f] : files_) total += f.pending.size();
  return total;
}

void MemDir::crash(double keep_unsynced_fraction, bool flip_bit_in_kept_tail,
                   u64 seed) {
  if (keep_unsynced_fraction < 0) keep_unsynced_fraction = 0;
  if (keep_unsynced_fraction > 1) keep_unsynced_fraction = 1;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, f] : files_) {
    const std::size_t keep = static_cast<std::size_t>(
        keep_unsynced_fraction * static_cast<double>(f.pending.size()));
    const std::size_t tail_start = f.synced.size();
    f.synced.insert(f.synced.end(), f.pending.begin(),
                    f.pending.begin() + static_cast<long>(keep));
    f.pending.clear();
    if (flip_bit_in_kept_tail && keep > 0) {
      const std::size_t at = tail_start + rng.below(keep);
      f.synced[at] ^= static_cast<u8>(1u << rng.below(8));
    }
  }
}

// ---- FsDir ----

namespace {

void fsync_path_best_effort(const std::string& path) {
#ifdef SHADOW_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
#else
  (void)path;
#endif
}

class FsStorageFile final : public StorageFile {
 public:
  FsStorageFile(std::FILE* fp, u64 size) : fp_(fp), size_(size) {}
  ~FsStorageFile() override {
    if (fp_ != nullptr) (void)std::fclose(fp_);
  }

  Status append(const Bytes& data) override {
    if (data.empty()) return Status();
    if (std::fwrite(data.data(), 1, data.size(), fp_) != data.size()) {
      return Error{ErrorCode::kIoError,
                   std::string("append failed: ") + std::strerror(errno)};
    }
    size_ += data.size();
    return Status();
  }

  Status sync() override {
    if (std::fflush(fp_) != 0) {
      return Error{ErrorCode::kIoError,
                   std::string("flush failed: ") + std::strerror(errno)};
    }
#ifdef SHADOW_HAVE_FSYNC
    if (::fsync(::fileno(fp_)) != 0) {
      return Error{ErrorCode::kIoError,
                   std::string("fsync failed: ") + std::strerror(errno)};
    }
#endif
    return Status();
  }

  u64 size() const override { return size_; }

 private:
  std::FILE* fp_;
  u64 size_;
};

}  // namespace

FsDir::FsDir(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
}

std::string FsDir::path_of(const std::string& name) const {
  return root_ + "/" + name;
}

Result<std::unique_ptr<StorageFile>> FsDir::open_append(
    const std::string& name) {
  if (!valid_storage_name(name)) return bad_name(name);
  const std::string path = path_of(name);
  std::error_code ec;
  const u64 size = std::filesystem::exists(path, ec)
                       ? std::filesystem::file_size(path, ec)
                       : 0;
  std::FILE* fp = std::fopen(path.c_str(), "ab");
  if (fp == nullptr) {
    return Error{ErrorCode::kIoError,
                 "open append " + path + ": " + std::strerror(errno)};
  }
  return std::unique_ptr<StorageFile>(new FsStorageFile(fp, size));
}

Result<Bytes> FsDir::read(const std::string& name) {
  if (!valid_storage_name(name)) return bad_name(name);
  const std::string path = path_of(name);
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    return Error{ErrorCode::kNotFound, "no such file: " + path};
  }
  Bytes out;
  u8 buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  const bool failed = std::ferror(fp) != 0;
  (void)std::fclose(fp);
  if (failed) {
    return Error{ErrorCode::kIoError, "read failed: " + path};
  }
  return out;
}

bool FsDir::exists(const std::string& name) const {
  std::error_code ec;
  return std::filesystem::exists(path_of(name), ec);
}

Status FsDir::write_atomic(const std::string& name, const Bytes& data) {
  if (!valid_storage_name(name)) return bad_name(name);
  const std::string tmp = path_of(name) + ".tmp";
  {
    std::FILE* fp = std::fopen(tmp.c_str(), "wb");
    if (fp == nullptr) {
      return Error{ErrorCode::kIoError,
                   "open " + tmp + ": " + std::strerror(errno)};
    }
    FsStorageFile file(fp, 0);  // owns and closes fp
    SHADOW_TRY(file.append(data));
    SHADOW_TRY(file.sync());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_of(name), ec);
  if (ec) {
    return Error{ErrorCode::kIoError,
                 "rename " + tmp + ": " + ec.message()};
  }
  // Make the rename itself durable before reporting success.
  fsync_path_best_effort(root_);
  return Status();
}

Status FsDir::remove(const std::string& name) {
  if (!valid_storage_name(name)) return bad_name(name);
  std::error_code ec;
  if (!std::filesystem::remove(path_of(name), ec) || ec) {
    return Error{ErrorCode::kNotFound, "no such file: " + path_of(name)};
  }
  fsync_path_best_effort(root_);
  return Status();
}

std::vector<std::string> FsDir::list() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) out.push_back(entry.path().filename());
  }
  return out;
}

}  // namespace shadow::persist
