// Storage abstraction for the durability subsystem: a small append/read/
// fsync/atomic-rename surface over a flat directory of files — just enough
// for a write-ahead journal and an atomically replaced snapshot, and small
// enough that a fault-injecting decorator (fault_fs.hpp) can model every
// way a disk lies: a crash mid-write, a torn tail, an fsync that never
// reached the platter.
//
// Two backends: MemDir keeps the synced/unsynced distinction explicitly so
// tests can "crash" the disk and see exactly what a real kernel would have
// kept, and FsDir talks to the real filesystem for the daemon and tools.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::persist {

/// An open append-mode file handle. Appended bytes are durable only after
/// a successful sync() — exactly the contract a POSIX fd gives you.
class StorageFile {
 public:
  virtual ~StorageFile() = default;
  virtual Status append(const Bytes& data) = 0;
  virtual Status sync() = 0;
  /// Logical size: every byte appended so far (synced or not).
  virtual u64 size() const = 0;
};

/// A flat directory of named files. Names must not contain '/'.
class StorageDir {
 public:
  virtual ~StorageDir() = default;
  virtual Result<std::unique_ptr<StorageFile>> open_append(
      const std::string& name) = 0;
  /// Whole-file read; kNotFound when absent.
  virtual Result<Bytes> read(const std::string& name) = 0;
  virtual bool exists(const std::string& name) const = 0;
  /// Replace `name` with `data` atomically (temp write + fsync + rename):
  /// after a crash the file holds either the old or the new content in
  /// full, never a mixture.
  virtual Status write_atomic(const std::string& name, const Bytes& data) = 0;
  virtual Status remove(const std::string& name) = 0;
  virtual std::vector<std::string> list() const = 0;
};

/// In-memory backend with explicit durability semantics. Appends land in a
/// per-file `pending` buffer; sync() moves pending into `synced`;
/// write_atomic() is durable on return (the rename is a metadata op the
/// journal's crash model treats as atomic). crash() is the power cut:
/// synced bytes always survive, and the caller chooses how kindly the
/// page cache treated the unsynced tail.
///
/// Every operation takes an internal mutex, so a pipelined DurableStore
/// (owner thread appending, worker thread syncing) can run over a MemDir
/// in tests the same way it runs over a real disk.
class MemDir final : public StorageDir {
 public:
  MemDir() = default;

  Result<std::unique_ptr<StorageFile>> open_append(
      const std::string& name) override;
  Result<Bytes> read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Status write_atomic(const std::string& name, const Bytes& data) override;
  Status remove(const std::string& name) override;
  std::vector<std::string> list() const override;

  /// Power cut. Each file keeps its synced bytes plus the first
  /// `keep_unsynced_fraction` of its pending bytes (0 = strict disk: only
  /// fsynced data survives; 1 = lenient: everything written survives).
  /// With `flip_bit_in_kept_tail`, one seeded bit among the surviving
  /// UNSYNCED bytes is flipped — the classic damaged-tail scenario a
  /// journal replay must truncate, never trust.
  void crash(double keep_unsynced_fraction = 0.0,
             bool flip_bit_in_kept_tail = false, u64 seed = 1);

  /// Unsynced bytes across all files (diagnostics).
  u64 pending_bytes() const;

  // Internal surface used by the append handles (public so the handle
  // class does not need friendship).
  Status append_to(const std::string& name, const Bytes& data);
  Status sync_file(const std::string& name);
  u64 size_of(const std::string& name) const;

 private:
  struct MemFile {
    Bytes synced;
    Bytes pending;
  };
  mutable std::mutex mu_;
  std::map<std::string, MemFile> files_;
};

/// Real-filesystem backend rooted at a directory (created if absent).
class FsDir final : public StorageDir {
 public:
  explicit FsDir(std::string root);

  Result<std::unique_ptr<StorageFile>> open_append(
      const std::string& name) override;
  Result<Bytes> read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Status write_atomic(const std::string& name, const Bytes& data) override;
  Status remove(const std::string& name) override;
  std::vector<std::string> list() const override;

  const std::string& root() const { return root_; }

 private:
  std::string path_of(const std::string& name) const;
  std::string root_;
};

/// True when `name` is usable as a storage file name (non-empty, no path
/// separators, no traversal).
bool valid_storage_name(const std::string& name);

}  // namespace shadow::persist
