#include "persist/wal.hpp"

#include "util/crc32.hpp"

namespace shadow::persist {

const char* record_type_name(RecordType type) {
  switch (type) {
    case RecordType::kShadowCached: return "shadow-cached";
    case RecordType::kShadowEvicted: return "shadow-evicted";
    case RecordType::kJobSubmitted: return "job-submitted";
    case RecordType::kJobStarted: return "job-started";
    case RecordType::kJobFinished: return "job-finished";
    case RecordType::kJobDelivered: return "job-delivered";
    case RecordType::kOutputStored: return "output-stored";
    case RecordType::kShadowDigest: return "shadow-digest";
  }
  return "?";
}

Bytes journal_header() {
  BufWriter w;
  w.put_u32(kJournalMagic);
  w.put_u8(kJournalVersion);
  w.put_u8(0);
  w.put_u8(0);
  w.put_u8(0);
  return w.take();
}

Bytes frame_record(RecordType type, const Bytes& body) {
  BufWriter payload;
  payload.put_u8(static_cast<u8>(type));
  payload.put_raw(body);
  const Bytes& p = payload.data();
  BufWriter w;
  w.put_u32(static_cast<u32>(p.size()));
  w.put_u32(crc32(p));
  w.put_raw(p);
  return w.take();
}

JournalScan scan_journal(const Bytes& raw) {
  JournalScan scan;
  scan.total_bytes = raw.size();
  if (raw.empty()) return scan;  // a journal never written: empty, not torn

  BufReader r(raw);
  {
    auto magic = r.get_u32();
    auto version = r.get_u8();
    if (!magic.ok() || !version.ok() || magic.value() != kJournalMagic ||
        version.value() != kJournalVersion || r.get_raw(3).code() != ErrorCode::kOk) {
      scan.torn = true;
      scan.tail_detail = "bad or truncated journal header";
      return scan;
    }
  }
  scan.header_ok = true;
  scan.valid_bytes = kJournalHeaderSize;

  while (!r.at_end()) {
    const u64 offset = r.position();
    if (r.remaining() < kRecordFrameSize) {
      scan.torn = true;
      scan.tail_detail = "torn frame header at offset " +
                         std::to_string(offset);
      return scan;
    }
    const u32 len = r.get_u32().value();
    const u32 crc = r.get_u32().value();
    if (len == 0 || len > kMaxRecordSize || len > r.remaining()) {
      scan.torn = true;
      scan.tail_detail = "torn record of claimed length " +
                         std::to_string(len) + " at offset " +
                         std::to_string(offset);
      return scan;
    }
    Bytes payload = std::move(r.get_raw(len)).take();
    if (crc32(payload) != crc) {
      scan.torn = true;
      scan.tail_detail = "crc mismatch at offset " + std::to_string(offset);
      return scan;
    }
    JournalRecord record;
    record.type = static_cast<RecordType>(payload[0]);
    record.body.assign(payload.begin() + 1, payload.end());
    record.offset = offset;
    scan.records.push_back(std::move(record));
    scan.valid_bytes = r.position();
  }
  return scan;
}

namespace {
constexpr u32 kSnapshotFileMagic = 0x4E534853;  // "SHSN"
constexpr u8 kSnapshotFileVersion = 1;
}  // namespace

Bytes wrap_snapshot(const Bytes& state) {
  BufWriter w;
  w.put_u32(kSnapshotFileMagic);
  w.put_u8(kSnapshotFileVersion);
  w.put_u32(crc32(state));
  w.put_varint(state.size());
  w.put_raw(state);
  return w.take();
}

Result<Bytes> unwrap_snapshot(const Bytes& raw) {
  BufReader r(raw);
  SHADOW_ASSIGN_OR_RETURN(magic, r.get_u32());
  SHADOW_ASSIGN_OR_RETURN(version, r.get_u8());
  if (magic != kSnapshotFileMagic || version != kSnapshotFileVersion) {
    return Error{ErrorCode::kInvalidArgument, "not a snapshot file"};
  }
  SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
  SHADOW_ASSIGN_OR_RETURN(len, r.get_varint());
  if (len != r.remaining()) {
    return Error{ErrorCode::kProtocolError, "snapshot length mismatch"};
  }
  SHADOW_ASSIGN_OR_RETURN(state, r.get_raw(len));
  if (crc32(state) != crc) {
    return Error{ErrorCode::kProtocolError, "snapshot crc mismatch"};
  }
  return state;
}

}  // namespace shadow::persist
