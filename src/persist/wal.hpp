// Write-ahead journal record framing. Every record crossing into storage
// is wrapped the way proto/frame wraps wire messages: length-prefixed and
// CRC32-guarded, so that a torn or bit-flipped tail is DETECTED and
// discarded rather than trusted. A journal scan never fails — damage
// simply ends the valid prefix, because a damaged tail is something a
// crashed process recovers FROM, not an error it reports.
//
// File layout:
//   u32 magic 'SHWL' | u8 version | u8[3] reserved        (8-byte header)
//   then zero or more records:
//   u32 len | u32 crc32(payload) | payload                 (8-byte frame)
//   where payload = u8 record type | type-specific body
#pragma once

#include <string>
#include <vector>

#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::persist {

/// Durable server mutations. Values are wire-stable: never renumber.
enum class RecordType : u8 {
  kShadowCached = 1,   // a shadow file version entered the cache
  kShadowEvicted = 2,  // a cached shadow was dropped
  kJobSubmitted = 3,   // a job was accepted (before SubmitReply)
  kJobStarted = 4,     // a job began executing
  kJobFinished = 5,    // a job completed or failed (before JobOutput)
  kJobDelivered = 6,   // the client acknowledged the job's output
  kOutputStored = 7,   // reverse-shadow output cache updated
  kShadowDigest = 8,   // a CDC-tracked shadow's digest signature advanced
};

const char* record_type_name(RecordType type);

constexpr u32 kJournalMagic = 0x4C574853;  // "SHWL" little-endian
constexpr u8 kJournalVersion = 1;
constexpr std::size_t kJournalHeaderSize = 8;
constexpr std::size_t kRecordFrameSize = 8;  // len + crc
/// Frames longer than this are treated as tail damage — a torn length
/// field must never trigger a runaway allocation.
constexpr u32 kMaxRecordSize = 256u << 20;

/// The 8-byte file header.
Bytes journal_header();

/// One record, framed and ready to append.
Bytes frame_record(RecordType type, const Bytes& body);

struct JournalRecord {
  RecordType type = RecordType::kShadowCached;
  Bytes body;
  u64 offset = 0;  // frame start within the journal file
};

struct JournalScan {
  std::vector<JournalRecord> records;
  bool header_ok = false;  // false for an empty or foreign file
  /// Bytes up to and including the last intact record (the safe
  /// truncation point).
  u64 valid_bytes = 0;
  u64 total_bytes = 0;
  /// True when trailing bytes after valid_bytes were discarded.
  bool torn = false;
  std::string tail_detail;  // why the scan stopped, when torn
};

/// Parse as much intact prefix as the bytes contain. Total: never fails,
/// never reads past the end, never trusts a record whose CRC disagrees.
JournalScan scan_journal(const Bytes& raw);

/// Snapshot file wrapper: u32 magic 'SHSN' | u8 version | u32 crc32(state)
/// | varint len | state. The whole-file CRC turns "the snapshot rename
/// raced the crash" and "a cosmic ray visited" into the same clean
/// answer: not a snapshot.
Bytes wrap_snapshot(const Bytes& state);
Result<Bytes> unwrap_snapshot(const Bytes& raw);

}  // namespace shadow::persist
