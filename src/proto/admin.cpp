#include "proto/admin.hpp"

namespace shadow::proto {

AdminReply build_admin_reply(const AdminQuery& query,
                             const telemetry::Registry& registry,
                             const std::string& server_name) {
  AdminReply reply;
  reply.protocol_version = kAdminProtocolVersion;
  if (query.protocol_version != kAdminProtocolVersion) {
    reply.ok = false;
    reply.error = "unsupported admin protocol version " +
                  std::to_string(query.protocol_version) + " (speaking " +
                  std::to_string(kAdminProtocolVersion) + ")";
    return reply;
  }
  reply.ok = true;
  if ((query.sections & kAdminServerInfo) != 0) {
    reply.server_name = server_name;
  }
  const std::size_t max_events =
      (query.sections & kAdminEvents) != 0
          ? static_cast<std::size_t>(query.max_events)
          : 0;
  telemetry::Snapshot snap = registry.snapshot(query.prefix, max_events);
  if ((query.sections & kAdminCounters) != 0) {
    reply.snapshot.counters = std::move(snap.counters);
  }
  if ((query.sections & kAdminGauges) != 0) {
    reply.snapshot.gauges = std::move(snap.gauges);
  }
  if ((query.sections & kAdminHistograms) != 0) {
    reply.snapshot.histograms = std::move(snap.histograms);
  }
  if ((query.sections & kAdminEvents) != 0) {
    reply.snapshot.events = std::move(snap.events);
    reply.events_total = registry.events().total_recorded();
  }
  return reply;
}

}  // namespace shadow::proto
