// Server-side builder for the admin (telemetry) exchange: turn an
// AdminQuery into an AdminReply from a live Registry, honouring the
// section mask, prefix filter, event cap and protocol version. Read-only
// by construction — building a reply never mutates the registry.
#pragma once

#include <string>

#include "proto/messages.hpp"
#include "telemetry/registry.hpp"

namespace shadow::proto {

/// Answer `query` from `registry`. A protocol version the server does not
/// speak yields ok=false with the version echoed back (never a guess at a
/// foreign layout). Section bits absent from the mask leave their reply
/// sections empty.
AdminReply build_admin_reply(const AdminQuery& query,
                             const telemetry::Registry& registry,
                             const std::string& server_name);

}  // namespace shadow::proto
