#include "proto/frame.hpp"

#include "util/byte_io.hpp"
#include "util/crc32.hpp"

namespace shadow::proto {

namespace {
constexpr u8 kFrameMagic = 0xF5;
}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kData: return "data";
    case FrameType::kAck: return "ack";
    case FrameType::kNack: return "nack";
    case FrameType::kReset: return "reset";
  }
  return "?";
}

Bytes encode_frame(FrameType type, u64 seq, const Bytes& payload) {
  BufWriter w;
  w.put_u8(kFrameMagic);
  w.put_u8(static_cast<u8>(type));
  w.put_varint(seq);
  w.put_bytes(payload);
  const u32 crc = crc32(w.data());
  w.put_u32(crc);
  return w.take();
}

Result<Frame> decode_frame(const Bytes& wire) {
  BufReader r(wire);
  SHADOW_ASSIGN_OR_RETURN(magic, r.get_u8());
  if (magic != kFrameMagic) {
    return Error{ErrorCode::kProtocolError, "bad frame magic"};
  }
  SHADOW_ASSIGN_OR_RETURN(type_raw, r.get_u8());
  if (type_raw < static_cast<u8>(FrameType::kData) ||
      type_raw > static_cast<u8>(FrameType::kReset)) {
    return Error{ErrorCode::kProtocolError, "bad frame type"};
  }
  SHADOW_ASSIGN_OR_RETURN(seq, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(payload, r.get_bytes());
  const std::size_t crc_pos = r.position();
  SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
  if (!r.at_end()) {
    return Error{ErrorCode::kProtocolError, "trailing bytes after frame"};
  }
  if (crc != crc32(wire.data(), crc_pos)) {
    return Error{ErrorCode::kProtocolError, "frame crc mismatch"};
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type_raw);
  frame.seq = seq;
  frame.payload = std::move(payload);
  return frame;
}

}  // namespace shadow::proto
