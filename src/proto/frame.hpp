// Session-layer framing: every message crossing a fallible link is wrapped
// in a frame carrying a sequence number and a CRC32 over the whole frame.
// The underlying Transport contract promises reliable ordered delivery;
// real long-haul links (and FaultTransport) break that promise, and a
// delta applied to the wrong base silently corrupts the shadow copy — so
// the session layer must detect loss, duplication, reordering and
// corruption before any payload reaches the protocol handlers.
//
// Wire layout (all little-endian / LEB128):
//   u8 magic (0xF5) | u8 type | varint seq | varint len | payload bytes |
//   u32 crc32 over everything preceding the crc field
#pragma once

#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::proto {

enum class FrameType : u8 {
  kData = 1,  // seq = message sequence number; payload = encoded message
  kAck = 2,   // seq = highest contiguously received sequence (cumulative)
  kNack = 3,  // seq = next sequence the receiver expects (retransmit hint)
  kReset = 4, // seq = sender's next outgoing sequence; receive state resets
};

const char* frame_type_name(FrameType type);

struct Frame {
  FrameType type = FrameType::kData;
  u64 seq = 0;
  Bytes payload;
};

Bytes encode_frame(FrameType type, u64 seq, const Bytes& payload);

/// Parse and verify a frame. Any malformed, truncated or CRC-failing
/// input yields an error — never a partial frame.
Result<Frame> decode_frame(const Bytes& wire);

}  // namespace shadow::proto
