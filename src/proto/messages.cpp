#include "proto/messages.hpp"

#include <bit>

namespace shadow::proto {

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "Hello";
    case MessageType::kHelloReply: return "HelloReply";
    case MessageType::kNotifyNewVersion: return "NotifyNewVersion";
    case MessageType::kPullRequest: return "PullRequest";
    case MessageType::kUpdate: return "Update";
    case MessageType::kUpdateAck: return "UpdateAck";
    case MessageType::kSubmitJob: return "SubmitJob";
    case MessageType::kSubmitReply: return "SubmitReply";
    case MessageType::kStatusQuery: return "StatusQuery";
    case MessageType::kStatusReply: return "StatusReply";
    case MessageType::kJobOutput: return "JobOutput";
    case MessageType::kJobOutputAck: return "JobOutputAck";
    case MessageType::kAdminQuery: return "AdminQuery";
    case MessageType::kAdminReply: return "AdminReply";
    case MessageType::kServerBusy: return "ServerBusy";
    case MessageType::kHeartbeat: return "Heartbeat";
  }
  return "?";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kWaitingFiles: return "waiting-for-files";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kDelivered: return "delivered";
  }
  return "?";
}

MessageType type_of(const Message& message) {
  return std::visit(
      [](const auto& m) -> MessageType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) return MessageType::kHello;
        else if constexpr (std::is_same_v<T, HelloReply>)
          return MessageType::kHelloReply;
        else if constexpr (std::is_same_v<T, NotifyNewVersion>)
          return MessageType::kNotifyNewVersion;
        else if constexpr (std::is_same_v<T, PullRequest>)
          return MessageType::kPullRequest;
        else if constexpr (std::is_same_v<T, Update>)
          return MessageType::kUpdate;
        else if constexpr (std::is_same_v<T, UpdateAck>)
          return MessageType::kUpdateAck;
        else if constexpr (std::is_same_v<T, SubmitJob>)
          return MessageType::kSubmitJob;
        else if constexpr (std::is_same_v<T, SubmitReply>)
          return MessageType::kSubmitReply;
        else if constexpr (std::is_same_v<T, StatusQuery>)
          return MessageType::kStatusQuery;
        else if constexpr (std::is_same_v<T, StatusReply>)
          return MessageType::kStatusReply;
        else if constexpr (std::is_same_v<T, JobOutput>)
          return MessageType::kJobOutput;
        else if constexpr (std::is_same_v<T, JobOutputAck>)
          return MessageType::kJobOutputAck;
        else if constexpr (std::is_same_v<T, AdminQuery>)
          return MessageType::kAdminQuery;
        else if constexpr (std::is_same_v<T, AdminReply>)
          return MessageType::kAdminReply;
        else if constexpr (std::is_same_v<T, ServerBusy>)
          return MessageType::kServerBusy;
        else
          return MessageType::kHeartbeat;
      },
      message);
}

namespace {

// ---- per-message body encoders ----

void encode_body(const Hello& m, BufWriter& w) {
  w.put_string(m.client_name);
  w.put_string(m.domain);
  // Trailing, optional on decode: a legacy frame simply ends here.
  w.put_varint(m.protocol_version);
  w.put_varint(m.codecs);
}

void encode_body(const HelloReply& m, BufWriter& w) {
  w.put_string(m.server_name);
  w.put_varint(m.protocol_version);
  w.put_varint(m.codecs);
}

void encode_body(const Heartbeat& m, BufWriter& w) {
  w.put_varint(m.client_time_us);
}

void encode_body(const ServerBusy& m, BufWriter& w) {
  w.put_varint(m.retry_after_usec);
  w.put_varint(m.client_job_token);
  w.put_u8(m.draining ? 1 : 0);
  w.put_string(m.reason);
}

void encode_body(const NotifyNewVersion& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.version);
  w.put_varint(m.size);
  w.put_u32(m.crc);
}

void encode_body(const PullRequest& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.have_version);
  w.put_varint(m.want_version);
  // Optional trailing codec hint: omitted when zero so a hint-free pull
  // stays byte-identical to the legacy encoding.
  if (m.codec_hint != 0) w.put_varint(m.codec_hint);
}

void encode_body(const Update& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.base_version);
  w.put_varint(m.new_version);
  w.put_bytes(m.payload);
}

void encode_body(const UpdateAck& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.version);
  w.put_u8(m.ok ? 1 : 0);
  w.put_string(m.error);
}

void encode_body(const JobFileRef& m, BufWriter& w) {
  m.file.encode(w);
  w.put_string(m.local_name);
  w.put_varint(m.version);
  w.put_u32(m.crc);
}

void encode_body(const SubmitJob& m, BufWriter& w) {
  w.put_varint(m.client_job_token);
  w.put_string(m.command_file);
  w.put_varint(m.files.size());
  for (const auto& f : m.files) encode_body(f, w);
  w.put_string(m.output_name);
  w.put_string(m.error_name);
  w.put_string(m.output_route);
}

void encode_body(const SubmitReply& m, BufWriter& w) {
  w.put_varint(m.client_job_token);
  w.put_varint(m.job_id);
  w.put_u8(m.accepted ? 1 : 0);
  w.put_string(m.reason);
}

void encode_body(const StatusQuery& m, BufWriter& w) {
  w.put_varint(m.job_id);
}

void encode_body(const JobStatusInfo& m, BufWriter& w) {
  w.put_varint(m.job_id);
  w.put_varint(m.client_job_token);
  w.put_u8(static_cast<u8>(m.state));
  w.put_string(m.detail);
}

void encode_body(const StatusReply& m, BufWriter& w) {
  w.put_varint(m.jobs.size());
  for (const auto& j : m.jobs) encode_body(j, w);
}

void encode_body(const JobOutput& m, BufWriter& w) {
  w.put_varint(m.job_id);
  w.put_varint(m.client_job_token);
  w.put_varint_signed(m.exit_code);
  w.put_string(m.output_name);
  w.put_string(m.error_name);
  w.put_bytes(m.output_payload);
  w.put_bytes(m.error_payload);
  w.put_varint(m.output_base_generation);
  w.put_varint(m.output_generation);
}

void encode_body(const JobOutputAck& m, BufWriter& w) {
  w.put_varint(m.job_id);
  w.put_u8(m.ok ? 1 : 0);
  w.put_string(m.error);
}

void encode_body(const AdminQuery& m, BufWriter& w) {
  w.put_u32(m.protocol_version);
  w.put_u32(m.sections);
  w.put_string(m.prefix);
  w.put_varint(m.max_events);
}

void encode_body(const AdminReply& m, BufWriter& w) {
  w.put_u32(m.protocol_version);
  w.put_u8(m.ok ? 1 : 0);
  w.put_string(m.error);
  w.put_string(m.server_name);
  w.put_varint(m.events_total);
  w.put_varint(m.snapshot.counters.size());
  for (const auto& c : m.snapshot.counters) {
    w.put_string(c.name);
    w.put_varint(c.value);
  }
  w.put_varint(m.snapshot.gauges.size());
  for (const auto& g : m.snapshot.gauges) {
    w.put_string(g.name);
    // IEEE-754 bit pattern, fixed width: doubles round-trip exactly.
    w.put_u64(std::bit_cast<u64>(g.value));
  }
  w.put_varint(m.snapshot.histograms.size());
  for (const auto& h : m.snapshot.histograms) {
    w.put_string(h.name);
    w.put_varint(h.count);
    w.put_varint(h.sum);
    w.put_varint(h.buckets.size());
    for (const auto& [index, count] : h.buckets) {
      w.put_u8(index);
      w.put_varint(count);
    }
  }
  w.put_varint(m.snapshot.events.size());
  for (const auto& e : m.snapshot.events) {
    w.put_varint(e.seq);
    w.put_u16(static_cast<u16>(e.kind));
    w.put_string(e.detail);
  }
}

// ---- per-message body decoders ----

Result<Hello> decode_hello(BufReader& r) {
  Hello m;
  SHADOW_ASSIGN_OR_RETURN(client_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(domain, r.get_string());
  m.client_name = std::move(client_name);
  m.domain = std::move(domain);
  // Version negotiation: frames from a pre-v1 peer end here.
  m.protocol_version = 0;
  m.codecs = kLegacyCodecs;
  if (!r.at_end()) {
    SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
    m.protocol_version = static_cast<u32>(version);
  }
  // Codec capabilities: frames from a pre-CDC peer end here, which
  // implies the legacy ed-script + block-move pair.
  if (!r.at_end()) {
    SHADOW_ASSIGN_OR_RETURN(codecs, r.get_varint());
    m.codecs = static_cast<u32>(codecs);
  }
  return m;
}

Result<HelloReply> decode_hello_reply(BufReader& r) {
  HelloReply m;
  SHADOW_ASSIGN_OR_RETURN(server_name, r.get_string());
  m.server_name = std::move(server_name);
  m.protocol_version = 0;
  m.codecs = kLegacyCodecs;
  if (!r.at_end()) {
    SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
    m.protocol_version = static_cast<u32>(version);
  }
  if (!r.at_end()) {
    SHADOW_ASSIGN_OR_RETURN(codecs, r.get_varint());
    m.codecs = static_cast<u32>(codecs);
  }
  return m;
}

Result<Heartbeat> decode_heartbeat(BufReader& r) {
  Heartbeat m;
  SHADOW_ASSIGN_OR_RETURN(client_time_us, r.get_varint());
  m.client_time_us = client_time_us;
  return m;
}

Result<ServerBusy> decode_server_busy(BufReader& r) {
  ServerBusy m;
  SHADOW_ASSIGN_OR_RETURN(retry_after, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(draining, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(reason, r.get_string());
  m.retry_after_usec = retry_after;
  m.client_job_token = token;
  m.draining = draining != 0;
  m.reason = std::move(reason);
  return m;
}

Result<NotifyNewVersion> decode_notify(BufReader& r) {
  NotifyNewVersion m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(size, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
  m.file = std::move(file);
  m.version = version;
  m.size = size;
  m.crc = crc;
  return m;
}

Result<PullRequest> decode_pull(BufReader& r) {
  PullRequest m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(have, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(want, r.get_varint());
  m.file = std::move(file);
  m.have_version = have;
  m.want_version = want;
  m.codec_hint = 0;
  if (!r.at_end()) {
    SHADOW_ASSIGN_OR_RETURN(hint, r.get_varint());
    m.codec_hint = static_cast<u32>(hint);
  }
  return m;
}

Result<Update> decode_update(BufReader& r) {
  Update m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(base, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(payload, r.get_bytes());
  m.file = std::move(file);
  m.base_version = base;
  m.new_version = version;
  m.payload = std::move(payload);
  return m;
}

Result<UpdateAck> decode_update_ack(BufReader& r) {
  UpdateAck m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(ok, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(error, r.get_string());
  m.file = std::move(file);
  m.version = version;
  m.ok = ok != 0;
  m.error = std::move(error);
  return m;
}

Result<JobFileRef> decode_file_ref(BufReader& r) {
  JobFileRef m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(local_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
  m.file = std::move(file);
  m.local_name = std::move(local_name);
  m.version = version;
  m.crc = crc;
  return m;
}

Result<SubmitJob> decode_submit(BufReader& r) {
  SubmitJob m;
  SHADOW_ASSIGN_OR_RETURN(token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(command_file, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(count, r.get_varint());
  m.client_job_token = token;
  m.command_file = std::move(command_file);
  if (count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "file count exceeds buffer"};
  }
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(ref, decode_file_ref(r));
    m.files.push_back(std::move(ref));
  }
  SHADOW_ASSIGN_OR_RETURN(output_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(error_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(output_route, r.get_string());
  m.output_name = std::move(output_name);
  m.error_name = std::move(error_name);
  m.output_route = std::move(output_route);
  return m;
}

Result<SubmitReply> decode_submit_reply(BufReader& r) {
  SubmitReply m;
  SHADOW_ASSIGN_OR_RETURN(token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(accepted, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(reason, r.get_string());
  m.client_job_token = token;
  m.job_id = job_id;
  m.accepted = accepted != 0;
  m.reason = std::move(reason);
  return m;
}

Result<StatusQuery> decode_status_query(BufReader& r) {
  StatusQuery m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  m.job_id = job_id;
  return m;
}

Result<JobStatusInfo> decode_status_info(BufReader& r) {
  JobStatusInfo m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(client_job_token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(state, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(detail, r.get_string());
  if (state > static_cast<u8>(JobState::kDelivered)) {
    return Error{ErrorCode::kProtocolError, "bad job state"};
  }
  m.job_id = job_id;
  m.client_job_token = client_job_token;
  m.state = static_cast<JobState>(state);
  m.detail = std::move(detail);
  return m;
}

Result<StatusReply> decode_status_reply(BufReader& r) {
  StatusReply m;
  SHADOW_ASSIGN_OR_RETURN(count, r.get_varint());
  if (count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "job count exceeds buffer"};
  }
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(info, decode_status_info(r));
    m.jobs.push_back(std::move(info));
  }
  return m;
}

Result<JobOutput> decode_job_output(BufReader& r) {
  JobOutput m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(exit_code, r.get_varint_signed());
  SHADOW_ASSIGN_OR_RETURN(output_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(error_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(output_payload, r.get_bytes());
  SHADOW_ASSIGN_OR_RETURN(error_payload, r.get_bytes());
  SHADOW_ASSIGN_OR_RETURN(base_gen, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(gen, r.get_varint());
  m.job_id = job_id;
  m.client_job_token = token;
  m.exit_code = static_cast<int>(exit_code);
  m.output_name = std::move(output_name);
  m.error_name = std::move(error_name);
  m.output_payload = std::move(output_payload);
  m.error_payload = std::move(error_payload);
  m.output_base_generation = base_gen;
  m.output_generation = gen;
  return m;
}

Result<JobOutputAck> decode_job_output_ack(BufReader& r) {
  JobOutputAck m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(ok, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(error, r.get_string());
  m.job_id = job_id;
  m.ok = ok != 0;
  m.error = std::move(error);
  return m;
}

Result<AdminQuery> decode_admin_query(BufReader& r) {
  AdminQuery m;
  SHADOW_ASSIGN_OR_RETURN(version, r.get_u32());
  SHADOW_ASSIGN_OR_RETURN(sections, r.get_u32());
  SHADOW_ASSIGN_OR_RETURN(prefix, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(max_events, r.get_varint());
  m.protocol_version = version;
  m.sections = sections;
  m.prefix = std::move(prefix);
  m.max_events = max_events;
  return m;
}

Result<AdminReply> decode_admin_reply(BufReader& r) {
  AdminReply m;
  SHADOW_ASSIGN_OR_RETURN(version, r.get_u32());
  SHADOW_ASSIGN_OR_RETURN(ok, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(error, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(server_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(events_total, r.get_varint());
  m.protocol_version = version;
  m.ok = ok != 0;
  m.error = std::move(error);
  m.server_name = std::move(server_name);
  m.events_total = events_total;

  SHADOW_ASSIGN_OR_RETURN(counter_count, r.get_varint());
  if (counter_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "counter count exceeds buffer"};
  }
  for (u64 i = 0; i < counter_count; ++i) {
    telemetry::CounterSnapshot c;
    SHADOW_ASSIGN_OR_RETURN(name, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(value, r.get_varint());
    c.name = std::move(name);
    c.value = value;
    m.snapshot.counters.push_back(std::move(c));
  }

  SHADOW_ASSIGN_OR_RETURN(gauge_count, r.get_varint());
  if (gauge_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "gauge count exceeds buffer"};
  }
  for (u64 i = 0; i < gauge_count; ++i) {
    telemetry::GaugeSnapshot g;
    SHADOW_ASSIGN_OR_RETURN(name, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(bits, r.get_u64());
    g.name = std::move(name);
    g.value = std::bit_cast<double>(bits);
    m.snapshot.gauges.push_back(std::move(g));
  }

  SHADOW_ASSIGN_OR_RETURN(histogram_count, r.get_varint());
  if (histogram_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "histogram count exceeds buffer"};
  }
  for (u64 i = 0; i < histogram_count; ++i) {
    telemetry::HistogramSnapshot h;
    SHADOW_ASSIGN_OR_RETURN(name, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(count, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(sum, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(bucket_count, r.get_varint());
    if (bucket_count > telemetry::Histogram::kBuckets) {
      return Error{ErrorCode::kProtocolError, "too many histogram buckets"};
    }
    h.name = std::move(name);
    h.count = count;
    h.sum = sum;
    for (u64 j = 0; j < bucket_count; ++j) {
      SHADOW_ASSIGN_OR_RETURN(index, r.get_u8());
      SHADOW_ASSIGN_OR_RETURN(bucket_value, r.get_varint());
      if (index >= telemetry::Histogram::kBuckets) {
        return Error{ErrorCode::kProtocolError, "bad histogram bucket index"};
      }
      h.buckets.emplace_back(index, bucket_value);
    }
    m.snapshot.histograms.push_back(std::move(h));
  }

  SHADOW_ASSIGN_OR_RETURN(event_count, r.get_varint());
  if (event_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "event count exceeds buffer"};
  }
  for (u64 i = 0; i < event_count; ++i) {
    telemetry::Event e;
    SHADOW_ASSIGN_OR_RETURN(seq, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(kind, r.get_u16());
    SHADOW_ASSIGN_OR_RETURN(detail, r.get_string());
    e.seq = seq;
    e.kind = static_cast<telemetry::EventKind>(kind);
    e.detail = std::move(detail);
    m.snapshot.events.push_back(std::move(e));
  }
  return m;
}

}  // namespace

Bytes encode_message(const Message& message) {
  BufWriter w;
  w.put_u8(static_cast<u8>(type_of(message)));
  std::visit([&w](const auto& m) { encode_body(m, w); }, message);
  return w.take();
}

Result<Message> decode_message(const Bytes& wire) {
  BufReader r(wire);
  SHADOW_ASSIGN_OR_RETURN(tag, r.get_u8());
  Result<Message> out = [&]() -> Result<Message> {
    switch (static_cast<MessageType>(tag)) {
      case MessageType::kHello: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_hello(r));
        return Message(std::move(m));
      }
      case MessageType::kHelloReply: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_hello_reply(r));
        return Message(std::move(m));
      }
      case MessageType::kNotifyNewVersion: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_notify(r));
        return Message(std::move(m));
      }
      case MessageType::kPullRequest: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_pull(r));
        return Message(std::move(m));
      }
      case MessageType::kUpdate: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_update(r));
        return Message(std::move(m));
      }
      case MessageType::kUpdateAck: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_update_ack(r));
        return Message(std::move(m));
      }
      case MessageType::kSubmitJob: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_submit(r));
        return Message(std::move(m));
      }
      case MessageType::kSubmitReply: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_submit_reply(r));
        return Message(std::move(m));
      }
      case MessageType::kStatusQuery: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_status_query(r));
        return Message(std::move(m));
      }
      case MessageType::kStatusReply: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_status_reply(r));
        return Message(std::move(m));
      }
      case MessageType::kJobOutput: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_job_output(r));
        return Message(std::move(m));
      }
      case MessageType::kJobOutputAck: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_job_output_ack(r));
        return Message(std::move(m));
      }
      case MessageType::kAdminQuery: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_admin_query(r));
        return Message(std::move(m));
      }
      case MessageType::kAdminReply: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_admin_reply(r));
        return Message(std::move(m));
      }
      case MessageType::kServerBusy: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_server_busy(r));
        return Message(std::move(m));
      }
      case MessageType::kHeartbeat: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_heartbeat(r));
        return Message(std::move(m));
      }
    }
    return Error{ErrorCode::kProtocolError,
                 "unknown message type " + std::to_string(tag)};
  }();
  if (out.ok() && !r.at_end()) {
    return Error{ErrorCode::kProtocolError, "trailing bytes after message"};
  }
  return out;
}

}  // namespace shadow::proto
