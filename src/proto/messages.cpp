#include "proto/messages.hpp"

namespace shadow::proto {

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "Hello";
    case MessageType::kHelloReply: return "HelloReply";
    case MessageType::kNotifyNewVersion: return "NotifyNewVersion";
    case MessageType::kPullRequest: return "PullRequest";
    case MessageType::kUpdate: return "Update";
    case MessageType::kUpdateAck: return "UpdateAck";
    case MessageType::kSubmitJob: return "SubmitJob";
    case MessageType::kSubmitReply: return "SubmitReply";
    case MessageType::kStatusQuery: return "StatusQuery";
    case MessageType::kStatusReply: return "StatusReply";
    case MessageType::kJobOutput: return "JobOutput";
    case MessageType::kJobOutputAck: return "JobOutputAck";
  }
  return "?";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kWaitingFiles: return "waiting-for-files";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kDelivered: return "delivered";
  }
  return "?";
}

MessageType type_of(const Message& message) {
  return std::visit(
      [](const auto& m) -> MessageType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) return MessageType::kHello;
        else if constexpr (std::is_same_v<T, HelloReply>)
          return MessageType::kHelloReply;
        else if constexpr (std::is_same_v<T, NotifyNewVersion>)
          return MessageType::kNotifyNewVersion;
        else if constexpr (std::is_same_v<T, PullRequest>)
          return MessageType::kPullRequest;
        else if constexpr (std::is_same_v<T, Update>)
          return MessageType::kUpdate;
        else if constexpr (std::is_same_v<T, UpdateAck>)
          return MessageType::kUpdateAck;
        else if constexpr (std::is_same_v<T, SubmitJob>)
          return MessageType::kSubmitJob;
        else if constexpr (std::is_same_v<T, SubmitReply>)
          return MessageType::kSubmitReply;
        else if constexpr (std::is_same_v<T, StatusQuery>)
          return MessageType::kStatusQuery;
        else if constexpr (std::is_same_v<T, StatusReply>)
          return MessageType::kStatusReply;
        else if constexpr (std::is_same_v<T, JobOutput>)
          return MessageType::kJobOutput;
        else
          return MessageType::kJobOutputAck;
      },
      message);
}

namespace {

// ---- per-message body encoders ----

void encode_body(const Hello& m, BufWriter& w) {
  w.put_string(m.client_name);
  w.put_string(m.domain);
}

void encode_body(const HelloReply& m, BufWriter& w) {
  w.put_string(m.server_name);
}

void encode_body(const NotifyNewVersion& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.version);
  w.put_varint(m.size);
  w.put_u32(m.crc);
}

void encode_body(const PullRequest& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.have_version);
  w.put_varint(m.want_version);
}

void encode_body(const Update& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.base_version);
  w.put_varint(m.new_version);
  w.put_bytes(m.payload);
}

void encode_body(const UpdateAck& m, BufWriter& w) {
  m.file.encode(w);
  w.put_varint(m.version);
  w.put_u8(m.ok ? 1 : 0);
  w.put_string(m.error);
}

void encode_body(const JobFileRef& m, BufWriter& w) {
  m.file.encode(w);
  w.put_string(m.local_name);
  w.put_varint(m.version);
  w.put_u32(m.crc);
}

void encode_body(const SubmitJob& m, BufWriter& w) {
  w.put_varint(m.client_job_token);
  w.put_string(m.command_file);
  w.put_varint(m.files.size());
  for (const auto& f : m.files) encode_body(f, w);
  w.put_string(m.output_name);
  w.put_string(m.error_name);
  w.put_string(m.output_route);
}

void encode_body(const SubmitReply& m, BufWriter& w) {
  w.put_varint(m.client_job_token);
  w.put_varint(m.job_id);
  w.put_u8(m.accepted ? 1 : 0);
  w.put_string(m.reason);
}

void encode_body(const StatusQuery& m, BufWriter& w) {
  w.put_varint(m.job_id);
}

void encode_body(const JobStatusInfo& m, BufWriter& w) {
  w.put_varint(m.job_id);
  w.put_varint(m.client_job_token);
  w.put_u8(static_cast<u8>(m.state));
  w.put_string(m.detail);
}

void encode_body(const StatusReply& m, BufWriter& w) {
  w.put_varint(m.jobs.size());
  for (const auto& j : m.jobs) encode_body(j, w);
}

void encode_body(const JobOutput& m, BufWriter& w) {
  w.put_varint(m.job_id);
  w.put_varint(m.client_job_token);
  w.put_varint_signed(m.exit_code);
  w.put_string(m.output_name);
  w.put_string(m.error_name);
  w.put_bytes(m.output_payload);
  w.put_bytes(m.error_payload);
  w.put_varint(m.output_base_generation);
  w.put_varint(m.output_generation);
}

void encode_body(const JobOutputAck& m, BufWriter& w) {
  w.put_varint(m.job_id);
  w.put_u8(m.ok ? 1 : 0);
  w.put_string(m.error);
}

// ---- per-message body decoders ----

Result<Hello> decode_hello(BufReader& r) {
  Hello m;
  SHADOW_ASSIGN_OR_RETURN(client_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(domain, r.get_string());
  m.client_name = std::move(client_name);
  m.domain = std::move(domain);
  return m;
}

Result<HelloReply> decode_hello_reply(BufReader& r) {
  HelloReply m;
  SHADOW_ASSIGN_OR_RETURN(server_name, r.get_string());
  m.server_name = std::move(server_name);
  return m;
}

Result<NotifyNewVersion> decode_notify(BufReader& r) {
  NotifyNewVersion m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(size, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
  m.file = std::move(file);
  m.version = version;
  m.size = size;
  m.crc = crc;
  return m;
}

Result<PullRequest> decode_pull(BufReader& r) {
  PullRequest m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(have, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(want, r.get_varint());
  m.file = std::move(file);
  m.have_version = have;
  m.want_version = want;
  return m;
}

Result<Update> decode_update(BufReader& r) {
  Update m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(base, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(payload, r.get_bytes());
  m.file = std::move(file);
  m.base_version = base;
  m.new_version = version;
  m.payload = std::move(payload);
  return m;
}

Result<UpdateAck> decode_update_ack(BufReader& r) {
  UpdateAck m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(ok, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(error, r.get_string());
  m.file = std::move(file);
  m.version = version;
  m.ok = ok != 0;
  m.error = std::move(error);
  return m;
}

Result<JobFileRef> decode_file_ref(BufReader& r) {
  JobFileRef m;
  SHADOW_ASSIGN_OR_RETURN(file, naming::GlobalFileId::decode(r));
  SHADOW_ASSIGN_OR_RETURN(local_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
  m.file = std::move(file);
  m.local_name = std::move(local_name);
  m.version = version;
  m.crc = crc;
  return m;
}

Result<SubmitJob> decode_submit(BufReader& r) {
  SubmitJob m;
  SHADOW_ASSIGN_OR_RETURN(token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(command_file, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(count, r.get_varint());
  m.client_job_token = token;
  m.command_file = std::move(command_file);
  if (count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "file count exceeds buffer"};
  }
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(ref, decode_file_ref(r));
    m.files.push_back(std::move(ref));
  }
  SHADOW_ASSIGN_OR_RETURN(output_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(error_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(output_route, r.get_string());
  m.output_name = std::move(output_name);
  m.error_name = std::move(error_name);
  m.output_route = std::move(output_route);
  return m;
}

Result<SubmitReply> decode_submit_reply(BufReader& r) {
  SubmitReply m;
  SHADOW_ASSIGN_OR_RETURN(token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(accepted, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(reason, r.get_string());
  m.client_job_token = token;
  m.job_id = job_id;
  m.accepted = accepted != 0;
  m.reason = std::move(reason);
  return m;
}

Result<StatusQuery> decode_status_query(BufReader& r) {
  StatusQuery m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  m.job_id = job_id;
  return m;
}

Result<JobStatusInfo> decode_status_info(BufReader& r) {
  JobStatusInfo m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(client_job_token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(state, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(detail, r.get_string());
  if (state > static_cast<u8>(JobState::kDelivered)) {
    return Error{ErrorCode::kProtocolError, "bad job state"};
  }
  m.job_id = job_id;
  m.client_job_token = client_job_token;
  m.state = static_cast<JobState>(state);
  m.detail = std::move(detail);
  return m;
}

Result<StatusReply> decode_status_reply(BufReader& r) {
  StatusReply m;
  SHADOW_ASSIGN_OR_RETURN(count, r.get_varint());
  if (count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "job count exceeds buffer"};
  }
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(info, decode_status_info(r));
    m.jobs.push_back(std::move(info));
  }
  return m;
}

Result<JobOutput> decode_job_output(BufReader& r) {
  JobOutput m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(token, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(exit_code, r.get_varint_signed());
  SHADOW_ASSIGN_OR_RETURN(output_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(error_name, r.get_string());
  SHADOW_ASSIGN_OR_RETURN(output_payload, r.get_bytes());
  SHADOW_ASSIGN_OR_RETURN(error_payload, r.get_bytes());
  SHADOW_ASSIGN_OR_RETURN(base_gen, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(gen, r.get_varint());
  m.job_id = job_id;
  m.client_job_token = token;
  m.exit_code = static_cast<int>(exit_code);
  m.output_name = std::move(output_name);
  m.error_name = std::move(error_name);
  m.output_payload = std::move(output_payload);
  m.error_payload = std::move(error_payload);
  m.output_base_generation = base_gen;
  m.output_generation = gen;
  return m;
}

Result<JobOutputAck> decode_job_output_ack(BufReader& r) {
  JobOutputAck m;
  SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
  SHADOW_ASSIGN_OR_RETURN(ok, r.get_u8());
  SHADOW_ASSIGN_OR_RETURN(error, r.get_string());
  m.job_id = job_id;
  m.ok = ok != 0;
  m.error = std::move(error);
  return m;
}

}  // namespace

Bytes encode_message(const Message& message) {
  BufWriter w;
  w.put_u8(static_cast<u8>(type_of(message)));
  std::visit([&w](const auto& m) { encode_body(m, w); }, message);
  return w.take();
}

Result<Message> decode_message(const Bytes& wire) {
  BufReader r(wire);
  SHADOW_ASSIGN_OR_RETURN(tag, r.get_u8());
  Result<Message> out = [&]() -> Result<Message> {
    switch (static_cast<MessageType>(tag)) {
      case MessageType::kHello: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_hello(r));
        return Message(std::move(m));
      }
      case MessageType::kHelloReply: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_hello_reply(r));
        return Message(std::move(m));
      }
      case MessageType::kNotifyNewVersion: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_notify(r));
        return Message(std::move(m));
      }
      case MessageType::kPullRequest: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_pull(r));
        return Message(std::move(m));
      }
      case MessageType::kUpdate: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_update(r));
        return Message(std::move(m));
      }
      case MessageType::kUpdateAck: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_update_ack(r));
        return Message(std::move(m));
      }
      case MessageType::kSubmitJob: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_submit(r));
        return Message(std::move(m));
      }
      case MessageType::kSubmitReply: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_submit_reply(r));
        return Message(std::move(m));
      }
      case MessageType::kStatusQuery: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_status_query(r));
        return Message(std::move(m));
      }
      case MessageType::kStatusReply: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_status_reply(r));
        return Message(std::move(m));
      }
      case MessageType::kJobOutput: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_job_output(r));
        return Message(std::move(m));
      }
      case MessageType::kJobOutputAck: {
        SHADOW_ASSIGN_OR_RETURN(m, decode_job_output_ack(r));
        return Message(std::move(m));
      }
    }
    return Error{ErrorCode::kProtocolError,
                 "unknown message type " + std::to_string(tag)};
  }();
  if (out.ok() && !r.at_end()) {
    return Error{ErrorCode::kProtocolError, "trailing bytes after message"};
  }
  return out;
}

}  // namespace shadow::proto
