// Shadow protocol wire messages (paper §6.4).
//
// The exchange is demand driven: the client only ever *notifies* (small,
// fixed-size messages); the server decides when to *pull* file content.
//
//   client                              server
//   ------ NotifyNewVersion ----------->        (end of editing session)
//   <----------------- PullRequest -----        (server's chosen moment)
//   ------ Update (delta|full) -------->
//   <------------------- UpdateAck -----        (client may GC versions)
//   ------ SubmitJob ------------------>        (names + versions only)
//   <----------------- SubmitReply -----
//   <----- PullRequest / UpdateAck ----->       (missing files, if any)
//   ------ StatusQuery ---------------->
//   <----------------- StatusReply -----
//   <------------------- JobOutput -----        (run complete; may be a
//   ------ JobOutputAck --------------->         delta — reverse shadow)
//
// Update and JobOutput payloads are a diff::Delta encoded and then wrapped
// by compress::compress() (self-describing codec tag), so compression is
// negotiated per message at zero protocol cost.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "naming/file_id.hpp"
#include "telemetry/registry.hpp"
#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::proto {

enum class MessageType : u8 {
  kHello = 1,
  kHelloReply = 2,
  kNotifyNewVersion = 3,
  kPullRequest = 4,
  kUpdate = 5,
  kUpdateAck = 6,
  kSubmitJob = 7,
  kSubmitReply = 8,
  kStatusQuery = 9,
  kStatusReply = 10,
  kJobOutput = 11,
  kJobOutputAck = 12,
  kAdminQuery = 13,
  kAdminReply = 14,
  kServerBusy = 15,
  kHeartbeat = 16,
};

const char* message_type_name(MessageType type);

/// Lifecycle of a job at the server (also reported over the wire).
enum class JobState : u8 {
  kQueued = 0,        // accepted, not yet scheduled
  kWaitingFiles = 1,  // scheduled but input files not all cached yet
  kRunning = 2,
  kCompleted = 3,     // ran; output not yet delivered
  kFailed = 4,
  kDelivered = 5,     // output transferred and acknowledged
};

const char* job_state_name(JobState state);

// ---- session ----

/// Shadow protocol revision spoken by this build. Version 0 is the
/// pre-overload-control wire format; version 1 adds ServerBusy, Heartbeat
/// and the trailing version fields on Hello/HelloReply. Both fields are
/// OPTIONAL on the wire (absent = 0), so either end can talk to a legacy
/// peer: a v1 client only sends Heartbeats to a server that announced
/// v1 back, and a v1 server never sends ServerBusy to a v0 client — it
/// falls back to the v0 behaviours (silent close / SubmitReply reject).
inline constexpr u32 kShadowProtocolVersion = 1;

// Delta-codec capability bits exchanged at Hello (docs/DELTAS.md). A
// frame that ends before the codec mask — any pre-CDC peer — implies the
// legacy pair, so negotiation degrades transparently: the intersection of
// both masks never includes CDC unless both ends advertise it.
inline constexpr u32 kCodecEdScript = 1u << 0;
inline constexpr u32 kCodecBlockMove = 1u << 1;
inline constexpr u32 kCodecCdc = 1u << 2;
inline constexpr u32 kLegacyCodecs = kCodecEdScript | kCodecBlockMove;
inline constexpr u32 kAllCodecs = kLegacyCodecs | kCodecCdc;

struct Hello {
  std::string client_name;  // client host identity
  std::string domain;       // client's naming domain id
  u32 protocol_version = kShadowProtocolVersion;  // 0 = legacy peer
  u32 codecs = kAllCodecs;  // delta codecs the client can produce
};

struct HelloReply {
  std::string server_name;
  u32 protocol_version = kShadowProtocolVersion;  // 0 = legacy peer
  u32 codecs = kAllCodecs;  // delta codecs the server accepts
};

/// Client -> server: explicit lease renewal for a connection with no
/// other traffic (an editor sitting idle between saves). Any message
/// renews the lease; this one exists to renew it at zero semantic cost.
struct Heartbeat {
  u64 client_time_us = 0;  // sender's clock, diagnostics only
};

/// Server -> client: request shed by admission control or drain. The
/// client must not retry the refused operation before `retry_after_usec`
/// has elapsed (and should add jitter on top — see sim::Backoff).
struct ServerBusy {
  u64 retry_after_usec = 0;
  /// Refused SubmitJob's client token; 0 = the whole session was refused
  /// (Hello admission or a drain notice) rather than one operation.
  u64 client_job_token = 0;
  /// Server is shutting down: do not retry this server until it
  /// reappears; reconcile with another replica or wait for restart.
  bool draining = false;
  std::string reason;  // which budget tripped, for logs/operators
};

// ---- cache maintenance (§6.4) ----

/// Client -> server: a new version of a shadow file exists. Contains no
/// file content — the server pulls when it wants it.
struct NotifyNewVersion {
  naming::GlobalFileId file;
  u64 version = 0;
  u64 size = 0;  // content size (lets the server plan cache space)
  u32 crc = 0;
};

/// Server -> client: transmit version `want_version` of `file` as a delta
/// against `have_version` (0 = server holds nothing; send the full file).
struct PullRequest {
  naming::GlobalFileId file;
  u64 have_version = 0;
  u64 want_version = 0;
  /// Codec the server needs the delta in (a kCodec* bit), or 0 for the
  /// sender's choice. A digest-only server sets kCodecCdc: it holds the
  /// base as a signature, so only a CDC delta (or a full transfer) can
  /// advance it. Encoded only when nonzero — a hint-free pull is
  /// byte-identical to the legacy wire format.
  u32 codec_hint = 0;
};

/// Client -> server: the requested content. If the client no longer
/// stores `base_version`, it falls back to a full-content delta and sets
/// base_version = 0 (§6.3.2).
struct Update {
  naming::GlobalFileId file;
  u64 base_version = 0;
  u64 new_version = 0;
  Bytes payload;  // compress(encode(diff::Delta))
};

/// Server -> client: cache now holds `version`; older client-side versions
/// may be garbage-collected. ok=false reports an apply failure (e.g. CRC
/// mismatch); the client should renotify so the server can re-pull full.
struct UpdateAck {
  naming::GlobalFileId file;
  u64 version = 0;
  bool ok = true;
  std::string error;
};

// ---- batch subsystem (§6.2) ----

struct JobFileRef {
  naming::GlobalFileId file;
  std::string local_name;  // name the command file uses for this input
  u64 version = 0;
  u32 crc = 0;
};

struct SubmitJob {
  u64 client_job_token = 0;  // client-chosen correlation id
  std::string command_file;  // job command file content (one command/line)
  std::vector<JobFileRef> files;
  std::string output_name;  // where the client wants stdout stored
  std::string error_name;   // where the client wants stderr stored
  /// Client name to deliver output to; empty = the submitting client
  /// (output routing, §8.3 future work).
  std::string output_route;
};

struct SubmitReply {
  u64 client_job_token = 0;
  u64 job_id = 0;
  bool accepted = true;
  std::string reason;
};

struct StatusQuery {
  u64 job_id = 0;  // 0 = all jobs of this client (§6.2 Status)
};

struct JobStatusInfo {
  u64 job_id = 0;
  /// The submitter's own token, echoed back so a client can recognize its
  /// jobs even across a server restart that renumbered job ids.
  u64 client_job_token = 0;
  JobState state = JobState::kQueued;
  std::string detail;
};

struct StatusReply {
  std::vector<JobStatusInfo> jobs;
};

/// Server -> client: results of a completed job. Payloads are
/// compress(encode(diff::Delta)); with reverse shadow processing enabled
/// the delta is against the previous output of the same job signature.
struct JobOutput {
  u64 job_id = 0;
  u64 client_job_token = 0;
  int exit_code = 0;
  std::string output_name;
  std::string error_name;
  Bytes output_payload;
  Bytes error_payload;
  /// Output-cache generation the delta is based on (0 = full content).
  u64 output_base_generation = 0;
  u64 output_generation = 0;
};

struct JobOutputAck {
  u64 job_id = 0;
  bool ok = true;
  std::string error;
};

// ---- observability (docs/OBSERVABILITY.md) ----

/// Wire version of the admin (telemetry) exchange. The reply always echoes
/// the version it speaks; a server that cannot honour the requested
/// version answers ok=false instead of guessing.
inline constexpr u32 kAdminProtocolVersion = 1;

/// AdminQuery.sections bitmask: which parts of the registry to ship.
inline constexpr u32 kAdminCounters = 1;
inline constexpr u32 kAdminGauges = 2;
inline constexpr u32 kAdminHistograms = 4;
inline constexpr u32 kAdminEvents = 8;
inline constexpr u32 kAdminServerInfo = 16;
inline constexpr u32 kAdminAllSections =
    kAdminCounters | kAdminGauges | kAdminHistograms | kAdminEvents |
    kAdminServerInfo;

/// Client (shadowtop) -> server: read-only request for a telemetry
/// snapshot. Safe to send over a chaotic link — it mutates nothing and is
/// idempotent.
struct AdminQuery {
  u32 protocol_version = kAdminProtocolVersion;
  u32 sections = kAdminAllSections;
  std::string prefix;  // metric-name prefix filter ("" = everything)
  u64 max_events = 0;  // cap on event entries (0 = none even if requested)
};

/// Server -> client: the snapshot. Counters/gauges/histograms arrive
/// sorted by name; events oldest-first. events_total is the ring's
/// all-time count, so a poller can tell how many events it missed between
/// queries.
struct AdminReply {
  u32 protocol_version = kAdminProtocolVersion;
  bool ok = true;
  std::string error;        // set when ok=false (e.g. version mismatch)
  std::string server_name;  // kAdminServerInfo
  u64 events_total = 0;     // kAdminEvents: EventRing::total_recorded()
  telemetry::Snapshot snapshot;
};

using Message =
    std::variant<Hello, HelloReply, NotifyNewVersion, PullRequest, Update,
                 UpdateAck, SubmitJob, SubmitReply, StatusQuery, StatusReply,
                 JobOutput, JobOutputAck, AdminQuery, AdminReply, ServerBusy,
                 Heartbeat>;

MessageType type_of(const Message& message);

/// Serialize a message (1-byte type tag + body).
Bytes encode_message(const Message& message);

/// Parse a message; rejects malformed or truncated input.
Result<Message> decode_message(const Bytes& wire);

}  // namespace shadow::proto
