#include "proto/session.hpp"

#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace shadow::proto {

namespace {
// Session-layer telemetry summed over every ReliableChannel (per-channel
// numbers stay in ReliableChannel::Stats). Wire accounting holds by
// construction: session.wire_bytes_sent ==
// session.payload_bytes_sent + session.frame_overhead_bytes, measured at
// frame-encode time; retransmitted bytes are tallied separately so the
// identity is exact.
struct SessionMetrics {
  telemetry::Counter& data_sent;
  telemetry::Counter& delivered;
  telemetry::Counter& retransmits;
  telemetry::Counter& retransmit_bytes;
  telemetry::Counter& acks_sent;
  telemetry::Counter& nacks_sent;
  telemetry::Counter& duplicates_dropped;
  telemetry::Counter& corrupt_dropped;
  telemetry::Counter& out_of_order_held;
  telemetry::Counter& overflow_dropped;
  telemetry::Counter& resets_sent;
  telemetry::Counter& resets_received;
  telemetry::Counter& desyncs;
  telemetry::Counter& wire_bytes_sent;
  telemetry::Counter& payload_bytes_sent;
  telemetry::Counter& frame_overhead_bytes;

  static SessionMetrics& get() {
    auto& r = telemetry::Registry::global();
    static SessionMetrics m{r.counter("session.data_sent"),
                            r.counter("session.delivered"),
                            r.counter("session.retransmits"),
                            r.counter("session.retransmit_bytes"),
                            r.counter("session.acks_sent"),
                            r.counter("session.nacks_sent"),
                            r.counter("session.duplicates_dropped"),
                            r.counter("session.corrupt_dropped"),
                            r.counter("session.out_of_order_held"),
                            r.counter("session.overflow_dropped"),
                            r.counter("session.resets_sent"),
                            r.counter("session.resets_received"),
                            r.counter("session.desyncs"),
                            r.counter("session.wire_bytes_sent"),
                            r.counter("session.payload_bytes_sent"),
                            r.counter("session.frame_overhead_bytes")};
    return m;
  }
};

void count_first_transmission(SessionMetrics& m, std::size_t wire_size,
                              std::size_t payload_size) {
  m.wire_bytes_sent.add(wire_size);
  m.payload_bytes_sent.add(payload_size);
  m.frame_overhead_bytes.add(wire_size - payload_size);
}
}  // namespace

ReliableChannel::ReliableChannel(net::Transport* transport, Config config)
    : transport_(transport),
      config_(config),
      backoff_(config.retransmit_initial, config.retransmit_cap) {
  if (config_.retransmit_jitter > 0) {
    backoff_.set_jitter(config_.retransmit_jitter, config_.jitter_seed);
  }
  transport_->set_receiver([this](Bytes wire) { on_wire(std::move(wire)); });
}

Status ReliableChannel::send(Bytes payload) {
  const u64 seq = next_send_seq_++;
  Bytes wire = encode_frame(FrameType::kData, seq, payload);
  SessionMetrics& metrics = SessionMetrics::get();
  count_first_transmission(metrics, wire.size(), payload.size());
  auto [it, inserted] = unacked_.emplace(seq, std::move(wire));
  ++stats_.data_sent;
  metrics.data_sent.add();
  Status st = transport_->send(it->second);
  arm_timer();
  return st;
}

void ReliableChannel::send_control(FrameType type, u64 seq) {
  SessionMetrics& metrics = SessionMetrics::get();
  if (type == FrameType::kAck) {
    ++stats_.acks_sent;
    metrics.acks_sent.add();
  }
  if (type == FrameType::kNack) {
    ++stats_.nacks_sent;
    metrics.nacks_sent.add();
  }
  if (type == FrameType::kReset) {
    ++stats_.resets_sent;
    metrics.resets_sent.add();
  }
  Bytes wire = encode_frame(type, seq, Bytes{});
  count_first_transmission(metrics, wire.size(), 0);
  (void)transport_->send(wire);
}

void ReliableChannel::deliver(Bytes payload) {
  ++stats_.delivered;
  SessionMetrics::get().delivered.add();
  if (receiver_) receiver_(std::move(payload));
}

void ReliableChannel::on_wire(Bytes wire) {
  auto decoded = decode_frame(wire);
  if (!decoded.ok()) {
    // Corruption or truncation below us. We cannot know what the frame
    // was; the nack re-synchronizes the sender on our expected sequence
    // (and, if it was data, triggers its retransmission).
    ++stats_.corrupt_dropped;
    SessionMetrics::get().corrupt_dropped.add();
    send_control(FrameType::kNack, expected_);
    return;
  }
  Frame frame = std::move(decoded).take();
  switch (frame.type) {
    case FrameType::kData:
      handle_data(std::move(frame));
      return;
    case FrameType::kAck: {
      // Cumulative: everything <= seq is delivered; forget it.
      const auto end = unacked_.upper_bound(frame.seq);
      const bool progress = end != unacked_.begin();
      unacked_.erase(unacked_.begin(), end);
      if (progress) {
        fruitless_ticks_ = 0;
        backoff_.reset();
      }
      return;
    }
    case FrameType::kNack: {
      if (frame.seq > next_send_seq_) {
        // The peer expects a sequence we never sent: our send state is
        // behind its receive state (we restarted). Resynchronize.
        declare_desync();
        return;
      }
      // The peer expects frame.seq next — an implicit cumulative ack of
      // everything below it.
      if (frame.seq > 0) {
        unacked_.erase(unacked_.begin(), unacked_.lower_bound(frame.seq));
      }
      if (frame.seq == next_send_seq_) return;  // peer already up to date
      auto it = unacked_.lower_bound(frame.seq);
      if (reset_seq_ != 0 && frame.seq < reset_seq_ &&
          (it == unacked_.end() || it->first > frame.seq)) {
        // The peer still expects a frame we cleared at a desync: our
        // kReset died with the rest of the link. Re-align it to the
        // oldest frame we still hold; retransmission does the rest.
        send_control(FrameType::kReset, unacked_.empty()
                                            ? next_send_seq_
                                            : unacked_.begin()->first);
        return;
      }
      if (it == unacked_.end()) {
        // The peer is missing a frame we believe it acknowledged: its
        // receive state regressed (process restart). Unrecoverable at
        // this layer — reset and let the application resend content.
        declare_desync();
        return;
      }
      // it->first > frame.seq here means a stale (reordered/duplicated)
      // nack whose gap has since been acked; retransmitting what is still
      // outstanding is the harmless answer.
      for (; it != unacked_.end(); ++it) {
        ++stats_.retransmits;
        SessionMetrics& metrics = SessionMetrics::get();
        metrics.retransmits.add();
        metrics.retransmit_bytes.add(it->second.size());
        (void)transport_->send(it->second);
      }
      arm_timer();
      return;
    }
    case FrameType::kReset: {
      ++stats_.resets_received;
      ++stats_.desyncs;
      SessionMetrics& metrics = SessionMetrics::get();
      metrics.resets_received.add();
      metrics.desyncs.add();
      expected_ = frame.seq;
      out_of_order_.clear();
      if (desync_cb_) desync_cb_();
      return;
    }
  }
}

void ReliableChannel::handle_data(Frame frame) {
  SessionMetrics& metrics = SessionMetrics::get();
  if (frame.seq < expected_) {
    // Duplicate (retransmission of something we already delivered). The
    // re-ack lets the sender clear its buffer if our first ack was lost.
    ++stats_.duplicates_dropped;
    metrics.duplicates_dropped.add();
    send_control(FrameType::kAck, expected_ - 1);
    return;
  }
  if (frame.seq > expected_) {
    // Gap: hold the frame for in-order delivery, ask for the missing one.
    if (out_of_order_.size() < config_.max_out_of_order) {
      ++stats_.out_of_order_held;
      metrics.out_of_order_held.add();
      out_of_order_.emplace(frame.seq, std::move(frame.payload));
    } else {
      ++stats_.overflow_dropped;
      metrics.overflow_dropped.add();
    }
    send_control(FrameType::kNack, expected_);
    return;
  }
  deliver(std::move(frame.payload));
  ++expected_;
  // Drain any contiguous run the gap was blocking.
  for (auto it = out_of_order_.begin();
       it != out_of_order_.end() && it->first == expected_;
       it = out_of_order_.erase(it)) {
    deliver(std::move(it->second));
    ++expected_;
  }
  // Anything still held is a later gap; re-ack what is now contiguous.
  send_control(FrameType::kAck, expected_ - 1);
}

std::size_t ReliableChannel::tick() {
  if (unacked_.empty()) {
    fruitless_ticks_ = 0;
    return 0;
  }
  ++fruitless_ticks_;
  if (fruitless_ticks_ > config_.retransmit_limit) {
    declare_desync();
    return 0;
  }
  std::size_t resent = 0;
  SessionMetrics& metrics = SessionMetrics::get();
  for (const auto& [seq, wire] : unacked_) {
    ++stats_.retransmits;
    metrics.retransmits.add();
    metrics.retransmit_bytes.add(wire.size());
    (void)transport_->send(wire);
    ++resent;
  }
  return resent;
}

void ReliableChannel::declare_desync() {
  ++stats_.desyncs;
  SessionMetrics::get().desyncs.add();
  SHADOW_WARN() << "session desync with " << transport_->peer_name()
                << ": " << unacked_.size()
                << " frames unacknowledged after retransmit limit";
  // Align the peer's receive pointer with our next sequence so the
  // conversation can continue once connectivity returns; the lost frames'
  // CONTENT is the application's to resend (full-file fallback).
  reset_seq_ = next_send_seq_;
  send_control(FrameType::kReset, next_send_seq_);
  unacked_.clear();
  fruitless_ticks_ = 0;
  backoff_.reset();
  if (desync_cb_) desync_cb_();
}

void ReliableChannel::arm_timer() {
  if (sim_ == nullptr || timer_pending_ || unacked_.empty()) return;
  timer_pending_ = true;
  sim_->schedule(backoff_.next(), [this] {
    timer_pending_ = false;
    if (unacked_.empty()) return;
    tick();
    arm_timer();
  });
}

}  // namespace shadow::proto
