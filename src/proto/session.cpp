#include "proto/session.hpp"

#include "util/logging.hpp"

namespace shadow::proto {

ReliableChannel::ReliableChannel(net::Transport* transport, Config config)
    : transport_(transport),
      config_(config),
      backoff_(config.retransmit_initial, config.retransmit_cap) {
  transport_->set_receiver([this](Bytes wire) { on_wire(std::move(wire)); });
}

Status ReliableChannel::send(Bytes payload) {
  const u64 seq = next_send_seq_++;
  Bytes wire = encode_frame(FrameType::kData, seq, payload);
  auto [it, inserted] = unacked_.emplace(seq, std::move(wire));
  ++stats_.data_sent;
  Status st = transport_->send(it->second);
  arm_timer();
  return st;
}

void ReliableChannel::send_control(FrameType type, u64 seq) {
  if (type == FrameType::kAck) ++stats_.acks_sent;
  if (type == FrameType::kNack) ++stats_.nacks_sent;
  if (type == FrameType::kReset) ++stats_.resets_sent;
  (void)transport_->send(encode_frame(type, seq, Bytes{}));
}

void ReliableChannel::deliver(Bytes payload) {
  ++stats_.delivered;
  if (receiver_) receiver_(std::move(payload));
}

void ReliableChannel::on_wire(Bytes wire) {
  auto decoded = decode_frame(wire);
  if (!decoded.ok()) {
    // Corruption or truncation below us. We cannot know what the frame
    // was; the nack re-synchronizes the sender on our expected sequence
    // (and, if it was data, triggers its retransmission).
    ++stats_.corrupt_dropped;
    send_control(FrameType::kNack, expected_);
    return;
  }
  Frame frame = std::move(decoded).take();
  switch (frame.type) {
    case FrameType::kData:
      handle_data(std::move(frame));
      return;
    case FrameType::kAck: {
      // Cumulative: everything <= seq is delivered; forget it.
      const auto end = unacked_.upper_bound(frame.seq);
      const bool progress = end != unacked_.begin();
      unacked_.erase(unacked_.begin(), end);
      if (progress) {
        fruitless_ticks_ = 0;
        backoff_.reset();
      }
      return;
    }
    case FrameType::kNack: {
      if (frame.seq > next_send_seq_) {
        // The peer expects a sequence we never sent: our send state is
        // behind its receive state (we restarted). Resynchronize.
        declare_desync();
        return;
      }
      // The peer expects frame.seq next — an implicit cumulative ack of
      // everything below it.
      if (frame.seq > 0) {
        unacked_.erase(unacked_.begin(), unacked_.lower_bound(frame.seq));
      }
      if (frame.seq == next_send_seq_) return;  // peer already up to date
      auto it = unacked_.lower_bound(frame.seq);
      if (reset_seq_ != 0 && frame.seq < reset_seq_ &&
          (it == unacked_.end() || it->first > frame.seq)) {
        // The peer still expects a frame we cleared at a desync: our
        // kReset died with the rest of the link. Re-align it to the
        // oldest frame we still hold; retransmission does the rest.
        send_control(FrameType::kReset, unacked_.empty()
                                            ? next_send_seq_
                                            : unacked_.begin()->first);
        return;
      }
      if (it == unacked_.end()) {
        // The peer is missing a frame we believe it acknowledged: its
        // receive state regressed (process restart). Unrecoverable at
        // this layer — reset and let the application resend content.
        declare_desync();
        return;
      }
      // it->first > frame.seq here means a stale (reordered/duplicated)
      // nack whose gap has since been acked; retransmitting what is still
      // outstanding is the harmless answer.
      for (; it != unacked_.end(); ++it) {
        ++stats_.retransmits;
        (void)transport_->send(it->second);
      }
      arm_timer();
      return;
    }
    case FrameType::kReset:
      ++stats_.resets_received;
      ++stats_.desyncs;
      expected_ = frame.seq;
      out_of_order_.clear();
      if (desync_cb_) desync_cb_();
      return;
  }
}

void ReliableChannel::handle_data(Frame frame) {
  if (frame.seq < expected_) {
    // Duplicate (retransmission of something we already delivered). The
    // re-ack lets the sender clear its buffer if our first ack was lost.
    ++stats_.duplicates_dropped;
    send_control(FrameType::kAck, expected_ - 1);
    return;
  }
  if (frame.seq > expected_) {
    // Gap: hold the frame for in-order delivery, ask for the missing one.
    if (out_of_order_.size() < config_.max_out_of_order) {
      ++stats_.out_of_order_held;
      out_of_order_.emplace(frame.seq, std::move(frame.payload));
    } else {
      ++stats_.overflow_dropped;
    }
    send_control(FrameType::kNack, expected_);
    return;
  }
  deliver(std::move(frame.payload));
  ++expected_;
  // Drain any contiguous run the gap was blocking.
  for (auto it = out_of_order_.begin();
       it != out_of_order_.end() && it->first == expected_;
       it = out_of_order_.erase(it)) {
    deliver(std::move(it->second));
    ++expected_;
  }
  // Anything still held is a later gap; re-ack what is now contiguous.
  send_control(FrameType::kAck, expected_ - 1);
}

std::size_t ReliableChannel::tick() {
  if (unacked_.empty()) {
    fruitless_ticks_ = 0;
    return 0;
  }
  ++fruitless_ticks_;
  if (fruitless_ticks_ > config_.retransmit_limit) {
    declare_desync();
    return 0;
  }
  std::size_t resent = 0;
  for (const auto& [seq, wire] : unacked_) {
    ++stats_.retransmits;
    (void)transport_->send(wire);
    ++resent;
  }
  return resent;
}

void ReliableChannel::declare_desync() {
  ++stats_.desyncs;
  SHADOW_WARN() << "session desync with " << transport_->peer_name()
                << ": " << unacked_.size()
                << " frames unacknowledged after retransmit limit";
  // Align the peer's receive pointer with our next sequence so the
  // conversation can continue once connectivity returns; the lost frames'
  // CONTENT is the application's to resend (full-file fallback).
  reset_seq_ = next_send_seq_;
  send_control(FrameType::kReset, next_send_seq_);
  unacked_.clear();
  fruitless_ticks_ = 0;
  backoff_.reset();
  if (desync_cb_) desync_cb_();
}

void ReliableChannel::arm_timer() {
  if (sim_ == nullptr || timer_pending_ || unacked_.empty()) return;
  timer_pending_ = true;
  sim_->schedule(backoff_.next(), [this] {
    timer_pending_ = false;
    if (unacked_.empty()) return;
    tick();
    arm_timer();
  });
}

}  // namespace shadow::proto
