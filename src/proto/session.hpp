// Reliable session channel: ack/retransmit/resync machinery layered over a
// fallible Transport using the sequence-numbered, CRC-checked frames of
// proto/frame.hpp. This is what lets the shadow protocol keep its
// "degrade to full-file transfer, never corrupt" promise (§5.1) when the
// link below drops, duplicates, reorders, corrupts or truncates messages.
//
//   - every payload is a kData frame with a monotone sequence number and
//     is retained until cumulatively acknowledged;
//   - the receiver acks the highest contiguous sequence, buffers a bounded
//     window of out-of-order frames, and nacks on gaps or corrupt frames
//     (a nack for seq n implicitly acknowledges everything below n);
//   - tick() retransmits everything unacknowledged; with a simulator
//     attached, ticks self-schedule on an exponential backoff, so
//     recovery happens at deterministic sim times;
//   - after retransmit_limit fruitless ticks the channel declares DESYNC:
//     it emits a kReset frame, clears its send state and fires the desync
//     callback — the application's cue to fall back to full-file transfer
//     (the paper's escape hatch).
//
// Single-threaded and poll-driven like everything else in the stack; the
// receiver callback may itself call send() re-entrantly.
#pragma once

#include <functional>
#include <map>

#include "net/transport.hpp"
#include "proto/frame.hpp"
#include "sim/backoff.hpp"
#include "sim/simulator.hpp"

namespace shadow::proto {

class ReliableChannel {
 public:
  struct Config {
    /// Future (gap-following) data frames buffered for in-order delivery.
    std::size_t max_out_of_order = 64;
    /// Fruitless retransmit rounds tolerated before declaring desync.
    u64 retransmit_limit = 8;
    /// First sim-scheduled retransmit delay; doubles per round up to cap.
    sim::SimTime retransmit_initial = 200'000;
    sim::SimTime retransmit_cap = 1'600'000;
    /// Fractional jitter on each sim-scheduled retransmit delay (0 = the
    /// historical deterministic schedule). Decorrelates the retry bursts
    /// of many clients recovering from the same server outage; seed it
    /// per endpoint (e.g. a hash of the client name) so each schedule
    /// stays reproducible.
    double retransmit_jitter = 0.0;
    u64 jitter_seed = 0;
  };

  struct Stats {
    u64 data_sent = 0;
    u64 delivered = 0;
    u64 retransmits = 0;       // frames resent (nack- or tick-driven)
    u64 acks_sent = 0;
    u64 nacks_sent = 0;
    u64 duplicates_dropped = 0;
    u64 corrupt_dropped = 0;   // CRC/decode failures on inbound frames
    u64 out_of_order_held = 0;
    u64 overflow_dropped = 0;  // future frames beyond the reorder window
    u64 resets_sent = 0;
    u64 resets_received = 0;
    u64 desyncs = 0;           // local declarations + received resets
  };

  explicit ReliableChannel(net::Transport* transport)
      : ReliableChannel(transport, Config{}) {}
  ReliableChannel(net::Transport* transport, Config config);

  /// Frame, sequence and transmit `payload`; retained until acked.
  Status send(Bytes payload);

  /// Callback receiving clean, in-order, exactly-once payloads.
  void set_receiver(net::Transport::ReceiveFn fn) { receiver_ = std::move(fn); }

  /// Fired on desync: local retransmit-limit exhaustion or a peer reset.
  /// The application should discard its assumptions about peer state
  /// (e.g. which file versions the peer holds).
  void on_desync(std::function<void()> fn) { desync_cb_ = std::move(fn); }

  /// Self-schedule retransmit ticks on `simulator`'s clock with
  /// exponential backoff. The simulator must outlive the channel.
  void attach_simulator(sim::Simulator* simulator) { sim_ = simulator; }

  /// One retransmit round: resend every unacknowledged frame. Returns the
  /// number resent. Counts toward the desync limit; acked progress resets
  /// the count. Tests and pollers without a simulator call this manually.
  std::size_t tick();

  std::size_t unacked() const { return unacked_.size(); }
  u64 next_send_seq() const { return next_send_seq_; }
  u64 next_expected_seq() const { return expected_; }
  const Stats& stats() const { return stats_; }

 private:
  void on_wire(Bytes wire);
  void handle_data(Frame frame);
  void deliver(Bytes payload);
  void send_control(FrameType type, u64 seq);
  void declare_desync();
  void arm_timer();

  net::Transport* transport_;
  Config config_;
  net::Transport::ReceiveFn receiver_;
  std::function<void()> desync_cb_;

  std::map<u64, Bytes> unacked_;        // seq -> framed wire bytes
  u64 next_send_seq_ = 0;
  u64 fruitless_ticks_ = 0;
  u64 reset_seq_ = 0;  // sequence announced by our last kReset (0 = none)

  u64 expected_ = 0;                    // next in-order receive sequence
  std::map<u64, Bytes> out_of_order_;   // seq -> payload

  sim::Simulator* sim_ = nullptr;
  sim::Backoff backoff_;
  bool timer_pending_ = false;

  Stats stats_;
};

}  // namespace shadow::proto
