#include "scenario/cli.hpp"

#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace shadow::scenario {

namespace {

constexpr char kUsage[] =
    "usage: shadowsim SPEC [--json] [--seed N]\n"
    "       shadowsim --check SPEC\n"
    "       shadowsim --selftest [SPEC]\n"
    "\n"
    "Run a declarative population-scale scenario (docs/SCENARIOS.md) as\n"
    "one deterministic simulation and print the harvested report.\n"
    "\n"
    "  --json      machine-readable report (byte-identical for the same\n"
    "              spec and seed)\n"
    "  --seed N    override the spec's seed\n"
    "  --check     parse and canonically round-trip the spec without\n"
    "              running it (CI lint for the examples/ library)\n"
    "  --selftest  run the built-in (or given) scenario twice and verify\n"
    "              the two reports are byte-identical\n";

/// Small mixed population exercised by --selftest and CI: two shards, a
/// lossy link, every workload kind — broad coverage, seconds to run.
constexpr char kSelftestSpec[] =
    "general:\n"
    "  name: selftest\n"
    "  duration: 20s\n"
    "  seed: 7\n"
    "server:\n"
    "  shards: 2\n"
    "  commit_window: 2ms\n"
    "  max_active_jobs: 16\n"
    "links:\n"
    "  flaky:\n"
    "    base: modem-56k\n"
    "    loss: 0.002\n"
    "hosts:\n"
    "  crowd:\n"
    "    quantity: 12\n"
    "    link: modem-56k\n"
    "    workload: flash_crowd\n"
    "    file_size: 8KB\n"
    "  editors:\n"
    "    quantity: 6\n"
    "    link: flaky\n"
    "    workload: heavy_editor\n"
    "    think: 4s\n"
    "    file_size: 12KB\n"
    "  lurkers:\n"
    "    quantity: 6\n"
    "    link: modern-wan\n"
    "    workload: casual\n"
    "    think: 8s\n"
    "    submit_p: 0.5\n";

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int run_once(const Scenario& scenario, bool json, std::FILE* out,
             std::FILE* err, std::string* json_copy) {
  ScenarioRunner runner(scenario);
  auto report = runner.run();
  if (!report.ok()) {
    std::fprintf(err, "shadowsim: %s\n", report.error().message.c_str());
    return 1;
  }
  const std::string rendered =
      json ? to_json(report.value()) : to_text(report.value());
  if (json_copy != nullptr) {
    *json_copy = to_json(report.value());
  } else {
    std::fputs(rendered.c_str(), out);
  }
  return 0;
}

int selftest(const Scenario& scenario, std::FILE* out, std::FILE* err) {
  // Round-trip the spec through its canonical text first.
  const std::string canonical = to_text(scenario);
  auto reparsed = parse_scenario(canonical);
  if (!reparsed.ok() || to_text(reparsed.value()) != canonical) {
    std::fprintf(err, "shadowsim: selftest FAILED: spec round-trip\n");
    return 1;
  }

  std::string first, second;
  if (run_once(scenario, true, out, err, &first) != 0) return 1;
  if (run_once(scenario, true, out, err, &second) != 0) return 1;
  if (first != second) {
    std::fprintf(err,
                 "shadowsim: selftest FAILED: two runs of the same spec "
                 "and seed differ\n");
    return 1;
  }
  std::fprintf(out,
               "shadowsim: selftest OK: %" PRIu64
               " clients, byte-identical reports\n",
               scenario.population());
  return 0;
}

}  // namespace

int run_shadowsim(int argc, char** argv, std::FILE* out, std::FILE* err) {
  std::string spec_path;
  bool json = false;
  bool self = false;
  bool check = false;
  bool have_seed = false;
  u64 seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, out);
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--selftest") {
      self = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        std::fprintf(err, "shadowsim: --seed needs a value\n");
        return 2;
      }
      char* end = nullptr;
      seed = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(err, "shadowsim: bad seed '%s'\n", argv[i]);
        return 2;
      }
      have_seed = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(err, "shadowsim: unknown option '%s'\n", arg.c_str());
      return 2;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fprintf(err, "shadowsim: more than one SPEC given\n");
      return 2;
    }
  }

  std::string text;
  if (!spec_path.empty()) {
    if (!read_file(spec_path, &text)) {
      std::fprintf(err, "shadowsim: cannot read '%s'\n", spec_path.c_str());
      return 2;
    }
  } else if (self) {
    text = kSelftestSpec;
  } else {
    std::fputs(kUsage, err);
    return 2;
  }

  auto parsed = parse_scenario(text);
  if (!parsed.ok()) {
    std::fprintf(err, "shadowsim: %s%s%s\n",
                 spec_path.empty() ? "" : spec_path.c_str(),
                 spec_path.empty() ? "" : ": ",
                 parsed.error().message.c_str());
    return 2;
  }
  Scenario scenario = std::move(parsed).take();
  if (have_seed) scenario.seed = seed;

  if (check) {
    const std::string canonical = to_text(scenario);
    auto reparsed = parse_scenario(canonical);
    if (!reparsed.ok() || to_text(reparsed.value()) != canonical) {
      std::fprintf(err, "shadowsim: %s: canonical round-trip failed\n",
                   spec_path.empty() ? "<builtin>" : spec_path.c_str());
      return 1;
    }
    std::fprintf(out, "shadowsim: %s: OK (%" PRIu64 " clients, %zu classes)\n",
                 spec_path.empty() ? "<builtin>" : spec_path.c_str(),
                 scenario.population(), scenario.hosts.size());
    return 0;
  }
  if (self) return selftest(scenario, out, err);
  return run_once(scenario, json, out, err, nullptr);
}

}  // namespace shadow::scenario
