// The shadowsim command-line front end, as a library function so
// scenario_test can drive it and assert on exit codes directly
// (tools/shadowsim_main.cpp is a thin wrapper).
//
//   shadowsim SPEC [--json] [--seed N]
//   shadowsim --selftest [SPEC]
//
// Exit codes: 0 success, 1 runtime failure (selftest mismatch), 2 usage
// or spec parse error (one line on stderr, with the line number).
#pragma once

#include <cstdio>

namespace shadow::scenario {

int run_shadowsim(int argc, char** argv, std::FILE* out, std::FILE* err);

}  // namespace shadow::scenario
