#include "scenario/runner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <memory>

#include "core/system.hpp"
#include "core/workload.hpp"
#include "persist/durable_store.hpp"
#include "persist/storage.hpp"
#include "server/shard_router.hpp"
#include "telemetry/percentile.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"

namespace shadow::scenario {

namespace {

/// SplitMix64-style mix for per-client seeds: decorrelates classes and
/// clients while staying a pure function of (scenario seed, class, index).
u64 mix_seed(u64 seed, u64 class_index, u64 client_index) {
  u64 z = seed + 0x9E3779B97F4A7C15ULL * (class_index + 1) +
          0xBF58476D1CE4E5B9ULL * (client_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr char kDataPath[] = "/home/user/data";

/// Mutable per-client state shared between the scheduled workload events
/// and the output callback. Lives in a deque so pointers stay stable.
struct ClientCtx {
  std::string name;
  std::size_t class_index = 0;
  u64 content_len = 0;  // current data-file size (baseline accounting)
  std::map<u64, sim::SimTime> submit_at;  // token -> submit time
};

struct ClassTotals {
  u64 edits = 0;
  u64 submitted = 0;
  u64 completed = 0;
};

}  // namespace

ScenarioRunner::ScenarioRunner(Scenario scenario)
    : scenario_(std::move(scenario)) {}

Result<ScenarioReport> ScenarioRunner::run() {
  const Scenario& sc = scenario_;
  const ServerShape& shape = sc.server;

  // Zero the process-global registry so back-to-back runs (selftest,
  // abl_scale sweeps) each measure only themselves.
  auto& registry = telemetry::Registry::global();
  registry.reset_values();
  auto& latency_hist = registry.histogram("scenario.submit_latency_usec");

  // Resolve every class's link profile up front; a lossy profile anywhere
  // forces the reliable session layer on (both ends must agree).
  std::vector<LinkProfile> class_links(sc.hosts.size());
  bool any_faulty = false;
  for (std::size_t ci = 0; ci < sc.hosts.size(); ++ci) {
    if (!resolve_link(sc, sc.hosts[ci].link, &class_links[ci])) {
      return Error{ErrorCode::kInvalidArgument,
                   "host class '" + sc.hosts[ci].name +
                       "' names unknown link '" + sc.hosts[ci].link + "'"};
    }
    any_faulty = any_faulty || class_links[ci].faulty();
  }

  // Reliable-session retransmit timers sized for THIS population, not the
  // channel's LAN-class defaults: a full transfer on a 56k modem takes
  // seconds to deliver, and a 200ms timer would resend the whole unacked
  // window several times before the first ack could possibly arrive —
  // amplifying offered load by orders of magnitude exactly when the link
  // is slowest. Floor the timer at the worst-case frame transmission time
  // plus a round trip across all classes.
  u64 rto_initial = 0;
  if (any_faulty) {
    for (std::size_t ci = 0; ci < sc.hosts.size(); ++ci) {
      const HostClass& cls = sc.hosts[ci];
      const sim::LinkConfig& link = class_links[ci].link;
      const double frame_bytes =
          static_cast<double>(cls.file_size) * (1.0 + cls.file_spread) +
          static_cast<double>(link.per_message_overhead);
      const double transmit_us = frame_bytes * 8.0 * link.congestion_factor /
                                 link.bits_per_second * 1e6;
      const u64 ack_us = static_cast<u64>(transmit_us) +
                         2 * link.latency + class_links[ci].jitter;
      rto_initial = std::max(rto_initial, ack_us + ack_us / 4);
    }
    rto_initial = std::max<u64>(rto_initial, 200'000);
  }

  // Declared before the system: the servers it owns hold raw pointers to
  // these stores and touch them from their destructors, so the stores
  // must be destroyed last.
  std::vector<std::unique_ptr<persist::MemDir>> shard_dirs;
  std::vector<std::unique_ptr<persist::DurableStore>> shard_stores;

  core::ShadowSystem system;

  // Shards: N independent ShadowServers in ONE simulator (no threads —
  // the thread-per-core layout without the threads, keeping the run
  // deterministic), clients pinned by the same ShardRouter hash the real
  // sharded server uses.
  server::ShardRouter router(shape.shards);
  std::vector<std::string> shard_names;
  std::vector<server::ShadowServer*> shard_servers;
  for (std::size_t i = 0; i < shape.shards; ++i) {
    server::ServerConfig config;
    config.name = shape.shards == 1 ? shape.name
                                    : shape.name + "-s" + std::to_string(i);
    config.cache_budget = shape.cache_budget;
    config.eviction = shape.eviction;
    config.pull_policy = shape.pull;
    config.max_outstanding_pulls = shape.max_pulls;
    config.cpu_ops_per_second = shape.cpu_ops_per_second;
    config.max_concurrent_jobs = shape.executor_slots;
    config.overload.max_active_jobs = shape.max_active_jobs;
    config.overload.retry_after_usec = shape.retry_after;
    config.reverse_shadow = shape.reverse_shadow;
    config.reliable_session = any_faulty;
    config.retransmit_initial_usec = rto_initial;
    config.retransmit_cap_usec = 4 * rto_initial;
    config.shard_id = i;
    config.shard_count = shape.shards;
    if (shape.shards > 1) {
      config.telemetry_prefix = "shard" + std::to_string(i) + ".";
    }

    persist::DurableStore* store = nullptr;
    if (shape.commit_window > 0) {
      shard_dirs.push_back(std::make_unique<persist::MemDir>());
      shard_stores.push_back(std::make_unique<persist::DurableStore>(
          shard_dirs.back().get(), /*compact_every=*/4096));
      persist::GroupCommitConfig gc;
      gc.window_us = shape.commit_window;
      // pipeline stays OFF: its worker thread would break determinism.
      shard_stores.back()->set_group_commit(gc);
      store = shard_stores.back().get();
    }
    shard_servers.push_back(&system.add_server(config, store));
    shard_names.push_back(config.name);
  }

  // Build the population.
  std::deque<ClientCtx> contexts;
  std::vector<ClassTotals> class_totals(sc.hosts.size());
  std::vector<std::vector<sim::Link*>> class_link_refs(sc.hosts.size());
  std::vector<telemetry::Histogram*> class_hists;
  for (const auto& cls : sc.hosts) {
    class_hists.push_back(
        &registry.histogram("scenario.latency." + cls.name));
  }

  // F-policy baseline: the whole data file crosses the wire at every
  // submit, and every output comes back at full size. Accumulated by the
  // submit lambdas / output callbacks below.
  u64 baseline_bytes = 0;
  u64* baseline = &baseline_bytes;

  for (std::size_t ci = 0; ci < sc.hosts.size(); ++ci) {
    const HostClass& cls = sc.hosts[ci];
    const LinkProfile& profile = class_links[ci];
    for (u64 j = 0; j < cls.quantity; ++j) {
      const std::string name = cls.name + "-" + std::to_string(j);

      client::ShadowEnvironment env;
      env.background_updates = cls.background_updates;
      env.flow = cls.request_driven ? client::FlowMode::kRequestDriven
                                    : client::FlowMode::kDemandDriven;
      env.reliable_session = any_faulty;
      env.retransmit_initial_usec = rto_initial;
      env.retransmit_cap_usec = 4 * rto_initial;
      auto& cl = system.add_client(name, env);

      const std::size_t shard =
          router.shard_of_client(system.domain_id(), name);
      const std::string& server_name = shard_names[shard];
      sim::Link* link = nullptr;
      if (profile.faulty()) {
        net::FaultPlan plan;
        plan.seed = mix_seed(sc.seed ^ 0xFA17ULL, ci, j);
        plan.drop_p = profile.loss;
        plan.delay_p = profile.jitter_p;
        plan.delay_micros = profile.jitter;
        link = &system.connect_faulty(name, server_name, profile.link,
                                      plan);
      } else {
        link = &system.connect(name, server_name, profile.link);
      }
      class_link_refs[ci].push_back(link);

      contexts.push_back(ClientCtx{name, ci, 0, {}});
      ClientCtx* ctx = &contexts.back();
      ClassTotals* totals = &class_totals[ci];
      telemetry::Histogram* cls_hist = class_hists[ci];

      auto* simp = &system.simulator();
      auto* sysp = &system;
      cl.on_job_output([=, &latency_hist](const client::JobView& view) {
        auto it = ctx->submit_at.find(view.token);
        if (it == ctx->submit_at.end()) return;
        const sim::SimTime lat = simp->now() - it->second;
        ctx->submit_at.erase(it);
        latency_hist.observe(lat);
        cls_hist->observe(lat);
        ++totals->completed;
        // The locally written output is always the full reconstruction,
        // even when the wire carried a reverse-shadow delta.
        auto output =
            sysp->cluster().read_file(ctx->name, view.output_path);
        if (output.ok()) *baseline += output.value().size();
      });

      // ---- deterministic open-loop workload schedule ----------------
      Rng rng(mix_seed(sc.seed, ci, j));

      // File size: mean +/- spread, uniform.
      u64 size = cls.file_size;
      if (cls.file_spread > 0) {
        const double factor =
            1.0 + cls.file_spread * (2.0 * rng.uniform() - 1.0);
        size = std::max<u64>(1, static_cast<u64>(
                                    static_cast<double>(size) * factor));
      }
      const u64 file_seed = rng.next();

      const bool binary = cls.binary;
      const sim::SimTime create_at =
          cls.start + rng.below(std::max<u64>(cls.burst, 1));
      simp->schedule_at(create_at, [=] {
        const std::string content =
            binary ? core::make_binary_file(static_cast<std::size_t>(size),
                                            file_seed)
                   : core::make_file(static_cast<std::size_t>(size),
                                     file_seed);
        ctx->content_len = content.size();
        (void)sysp->editor(ctx->name).create(kDataPath, content);
      });

      // Cycle times, precomputed with the client's own rng so the whole
      // schedule is fixed before the simulation starts.
      u64 max_cycles = cls.cycles;
      if (max_cycles == 0) {
        max_cycles = cls.workload == Workload::kFlashCrowd
                         ? 1                       // one storm submit
                         : ~u64{0};                // until the end of time
      }
      sim::SimTime t = 0;
      switch (cls.workload) {
        case Workload::kFlashCrowd:
          // Everyone piles in during [start + burst, start + 2*burst).
          t = cls.start + cls.burst + rng.below(std::max<u64>(cls.burst, 1));
          break;
        case Workload::kHeavyEditor:
        case Workload::kCasual:
          t = create_at + std::max<u64>(
                              1, static_cast<u64>(
                                     static_cast<double>(cls.think) *
                                     (0.75 + 0.5 * rng.uniform())));
          break;
      }
      for (u64 k = 0; k < max_cycles && t < sc.duration; ++k) {
        const u64 edit_seed = rng.next();
        const bool do_submit = rng.chance(cls.submit_p);
        const double edit_percent = cls.edit_percent;
        const u64 job_ops = cls.job_ops;
        simp->schedule_at(t, [=] {
          auto& editor = sysp->editor(ctx->name);
          (void)editor.edit(kDataPath, [=](const std::string& old) {
            std::string next =
                binary ? core::overwrite_percent(old, edit_percent,
                                                 edit_seed)
                       : core::modify_percent(old, edit_percent, edit_seed);
            ctx->content_len = next.size();
            return next;
          });
          ++totals->edits;
          if (!do_submit) return;
          client::ShadowClient::SubmitOptions job;
          job.files = {kDataPath};
          job.command_file = "burn " + std::to_string(job_ops) + "\n";
          auto token = sysp->client(ctx->name).submit(job);
          if (!token.ok()) return;
          ctx->submit_at[token.value()] = simp->now();
          ++totals->submitted;
          *baseline += ctx->content_len;
        });
        // Next cycle: think time with +/-25% spread.
        t += std::max<u64>(1, static_cast<u64>(
                                  static_cast<double>(cls.think) *
                                  (0.75 + 0.5 * rng.uniform())));
      }
    }
  }

  system.simulator().run_until(sc.duration);

  // ---- harvest ---------------------------------------------------------
  ScenarioReport report;
  report.name = sc.name;
  report.seed = sc.seed;
  report.population = sc.population();
  report.duration_s = sim::to_seconds(sc.duration);
  report.shards = shape.shards;

  server::ServerStats server_sum;
  for (auto* server : shard_servers) {
    server->sync_telemetry();
    const auto& st = server->stats();
    server_sum.updates_received += st.updates_received;
    server_sum.jobs_submitted += st.jobs_submitted;
    server_sum.jobs_completed += st.jobs_completed;
    server_sum.outputs_sent += st.outputs_sent;
    server_sum.output_bytes += st.output_bytes;
    server_sum.full_transfers += st.full_transfers;
    server_sum.delta_transfers += st.delta_transfers;
    server_sum.cdc_transfers += st.cdc_transfers;
    server_sum.busy_rejects += st.busy_rejects;
  }

  for (std::size_t ci = 0; ci < sc.hosts.size(); ++ci) {
    const ClassTotals& totals = class_totals[ci];
    ClassReport cr;
    cr.name = sc.hosts[ci].name;
    cr.clients = sc.hosts[ci].quantity;
    cr.edits = totals.edits;
    cr.submitted = totals.submitted;
    cr.completed = totals.completed;
    for (const auto* link : class_link_refs[ci]) {
      cr.payload_bytes += link->total_payload_bytes();
    }
    const auto qs = telemetry::summarize_quantiles(*class_hists[ci]);
    cr.p50_ms = qs.p50 / 1e3;
    cr.p99_ms = qs.p99 / 1e3;
    report.classes.push_back(cr);
    report.edits += totals.edits;
    report.submitted += totals.submitted;
    report.completed += totals.completed;
  }

  for (const auto& ctx : contexts) {
    const auto& cs = system.client(ctx.name).stats();
    report.busy_replies += cs.server_busy;
    report.busy_retries += cs.busy_retries;
  }

  const auto qs = telemetry::summarize_quantiles(latency_hist);
  report.p50_ms = qs.p50 / 1e3;
  report.p90_ms = qs.p90 / 1e3;
  report.p99_ms = qs.p99 / 1e3;

  const double dur = report.duration_s > 0 ? report.duration_s : 1.0;
  report.acks_per_sec =
      static_cast<double>(server_sum.updates_received +
                          server_sum.jobs_submitted +
                          server_sum.outputs_sent) /
      dur;
  report.jobs_per_sec = static_cast<double>(report.completed) / dur;

  report.payload_bytes = system.total_payload_bytes();
  report.wire_bytes = system.total_wire_bytes();
  report.baseline_bytes = baseline_bytes;
  if (report.baseline_bytes > report.payload_bytes) {
    report.saved_bytes = report.baseline_bytes - report.payload_bytes;
    report.saved_ratio = static_cast<double>(report.saved_bytes) /
                         static_cast<double>(report.baseline_bytes);
  }

  report.busy_rejects = server_sum.busy_rejects;
  const u64 offered = server_sum.busy_rejects + server_sum.jobs_submitted;
  if (offered > 0) {
    report.shed_rate =
        static_cast<double>(server_sum.busy_rejects) /
        static_cast<double>(offered);
  }

  report.cache_hits = registry.counter("cache.hits").value();
  report.cache_misses = registry.counter("cache.misses").value();
  report.cache_evictions = registry.counter("cache.evictions").value();
  const u64 lookups = report.cache_hits + report.cache_misses;
  if (lookups > 0) {
    report.cache_hit_rate = static_cast<double>(report.cache_hits) /
                            static_cast<double>(lookups);
  }

  report.full_transfers = server_sum.full_transfers;
  report.delta_transfers = server_sum.delta_transfers;
  report.cdc_transfers = server_sum.cdc_transfers;
  report.updates_received = server_sum.updates_received;
  report.outputs_sent = server_sum.outputs_sent;

  return report;
}

// ---- renderers ---------------------------------------------------------

namespace {
void appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}
}  // namespace

std::string to_json(const ScenarioReport& r) {
  std::string out;
  out += "{\n";
  appendf(&out, "  \"scenario\": \"%s\",\n", r.name.c_str());
  appendf(&out, "  \"seed\": %" PRIu64 ",\n", r.seed);
  appendf(&out, "  \"population\": %" PRIu64 ",\n", r.population);
  appendf(&out, "  \"duration_s\": %.3f,\n", r.duration_s);
  appendf(&out, "  \"shards\": %zu,\n", r.shards);
  appendf(&out,
          "  \"clients\": {\"edits\": %" PRIu64 ", \"submitted\": %" PRIu64
          ", \"completed\": %" PRIu64 ", \"busy_replies\": %" PRIu64
          ", \"busy_retries\": %" PRIu64 "},\n",
          r.edits, r.submitted, r.completed, r.busy_replies,
          r.busy_retries);
  appendf(&out,
          "  \"latency_ms\": {\"p50\": %.3f, \"p90\": %.3f, \"p99\": "
          "%.3f},\n",
          r.p50_ms, r.p90_ms, r.p99_ms);
  appendf(&out,
          "  \"throughput\": {\"acks_per_sec\": %.3f, \"jobs_per_sec\": "
          "%.3f},\n",
          r.acks_per_sec, r.jobs_per_sec);
  appendf(&out,
          "  \"bytes\": {\"payload\": %" PRIu64 ", \"wire\": %" PRIu64
          ", \"baseline\": %" PRIu64 ", \"saved\": %" PRIu64
          ", \"saved_ratio\": %.4f},\n",
          r.payload_bytes, r.wire_bytes, r.baseline_bytes, r.saved_bytes,
          r.saved_ratio);
  appendf(&out,
          "  \"overload\": {\"busy_rejects\": %" PRIu64
          ", \"shed_rate\": %.4f},\n",
          r.busy_rejects, r.shed_rate);
  appendf(&out,
          "  \"cache\": {\"hits\": %" PRIu64 ", \"misses\": %" PRIu64
          ", \"evictions\": %" PRIu64 ", \"hit_rate\": %.4f},\n",
          r.cache_hits, r.cache_misses, r.cache_evictions,
          r.cache_hit_rate);
  appendf(&out,
          "  \"transfers\": {\"full\": %" PRIu64 ", \"delta\": %" PRIu64
          ", \"cdc\": %" PRIu64 ", \"updates_received\": %" PRIu64
          ", \"outputs_sent\": %" PRIu64 "},\n",
          r.full_transfers, r.delta_transfers, r.cdc_transfers,
          r.updates_received, r.outputs_sent);
  out += "  \"classes\": [";
  for (std::size_t i = 0; i < r.classes.size(); ++i) {
    const ClassReport& c = r.classes[i];
    if (i > 0) out += ",";
    out += "\n";
    appendf(&out,
            "    {\"name\": \"%s\", \"clients\": %" PRIu64
            ", \"edits\": %" PRIu64 ", \"submitted\": %" PRIu64
            ", \"completed\": %" PRIu64 ", \"payload_bytes\": %" PRIu64
            ", \"p50_ms\": %.3f, \"p99_ms\": %.3f}",
            c.name.c_str(), c.clients, c.edits, c.submitted, c.completed,
            c.payload_bytes, c.p50_ms, c.p99_ms);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string to_text(const ScenarioReport& r) {
  std::string out;
  appendf(&out, "scenario %s  (seed %" PRIu64 ")\n", r.name.c_str(),
          r.seed);
  appendf(&out,
          "  population %" PRIu64 " clients, %zu shard%s, %.1f simulated "
          "seconds\n",
          r.population, r.shards, r.shards == 1 ? "" : "s", r.duration_s);
  appendf(&out,
          "  activity   %" PRIu64 " edits, %" PRIu64 " submits, %" PRIu64
          " completed\n",
          r.edits, r.submitted, r.completed);
  appendf(&out,
          "  latency    p50 %.1f ms   p90 %.1f ms   p99 %.1f ms\n",
          r.p50_ms, r.p90_ms, r.p99_ms);
  appendf(&out,
          "  throughput %.1f acks/s, %.1f jobs/s\n", r.acks_per_sec,
          r.jobs_per_sec);
  appendf(&out,
          "  bytes      %" PRIu64 " payload (baseline %" PRIu64
          ", saved %" PRIu64 " = %.1f%%)\n",
          r.payload_bytes, r.baseline_bytes, r.saved_bytes,
          r.saved_ratio * 100.0);
  appendf(&out,
          "  overload   %" PRIu64 " shed (%.2f%% of offered)\n",
          r.busy_rejects, r.shed_rate * 100.0);
  appendf(&out,
          "  cache      %" PRIu64 " hits / %" PRIu64 " misses (%.1f%%), "
          "%" PRIu64 " evictions\n",
          r.cache_hits, r.cache_misses, r.cache_hit_rate * 100.0,
          r.cache_evictions);
  appendf(&out,
          "  transfers  %" PRIu64 " full, %" PRIu64 " delta, %" PRIu64
          " cdc\n",
          r.full_transfers, r.delta_transfers, r.cdc_transfers);
  for (const auto& c : r.classes) {
    appendf(&out,
            "  class %-14s %5" PRIu64 " clients  %6" PRIu64
            " submits  %6" PRIu64 " done  %10" PRIu64
            " B  p50 %.1f ms  p99 %.1f ms\n",
            c.name.c_str(), c.clients, c.submitted, c.completed,
            c.payload_bytes, c.p50_ms, c.p99_ms);
  }
  return out;
}

}  // namespace shadow::scenario
