// ScenarioRunner: instantiate a parsed Scenario as one deterministic
// discrete-event simulation — N ShadowServer shards, a population of
// thousands of ShadowClients over per-class sim::Link / FaultTransport
// wiring — drive the declared workloads open-loop, and harvest a curated
// report (latency percentiles, acks/sec, bytes saved, shed rate, cache
// behaviour) from the telemetry registry and the servers' stats.
//
// Determinism contract: the report is a pure function of (spec, seed).
// Same spec + same seed → byte-identical to_json() output, which
// scenario_test pins and `shadowsim --selftest` re-checks at runtime.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "util/result.hpp"

namespace shadow::scenario {

/// Per-host-class slice of the report.
struct ClassReport {
  std::string name;
  u64 clients = 0;
  u64 edits = 0;
  u64 submitted = 0;
  u64 completed = 0;
  u64 payload_bytes = 0;  // summed over this class's links
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Everything shadowsim prints. Curated (not a raw registry dump) so the
/// output is stable across runs and across unrelated metric additions.
struct ScenarioReport {
  std::string name;
  u64 seed = 0;
  u64 population = 0;
  double duration_s = 0.0;
  std::size_t shards = 1;

  // Client-side activity.
  u64 edits = 0;
  u64 submitted = 0;
  u64 completed = 0;
  u64 busy_replies = 0;   // ServerBusy seen by clients
  u64 busy_retries = 0;   // submits/Hellos re-sent after backoff

  // Submit -> output latency over completed jobs, milliseconds.
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;

  // Server-side throughput: acknowledged protocol operations (updates
  // received + submits accepted + outputs delivered) per simulated second.
  double acks_per_sec = 0.0;
  double jobs_per_sec = 0.0;  // completed jobs / duration

  // Wire accounting. baseline_bytes is the conventional F-policy cost:
  // the full data file shipped at every submit plus every output at full
  // size; saved = baseline - payload (0 when shadowing doesn't win).
  u64 payload_bytes = 0;
  u64 wire_bytes = 0;
  u64 baseline_bytes = 0;
  u64 saved_bytes = 0;
  double saved_ratio = 0.0;

  // Overload control.
  u64 busy_rejects = 0;   // shed at the servers
  double shed_rate = 0.0; // rejects / (rejects + accepted submits)

  // Shadow cache (summed over shards).
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 cache_evictions = 0;
  double cache_hit_rate = 0.0;

  // Transfer mix. cdc_transfers counts delta updates in the CDC codec
  // (binary populations; a subset of neither full nor delta — see
  // docs/DELTAS.md).
  u64 full_transfers = 0;
  u64 delta_transfers = 0;
  u64 cdc_transfers = 0;
  u64 updates_received = 0;
  u64 outputs_sent = 0;

  std::vector<ClassReport> classes;  // spec order
};

/// Fixed-format renderers (stable key order, fixed float precision — the
/// byte-identical half of the determinism contract).
std::string to_json(const ScenarioReport& report);
std::string to_text(const ScenarioReport& report);

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario scenario);

  /// Build the population, run the simulation for scenario.duration, and
  /// harvest. Resets the global telemetry registry's values. Errors only
  /// on inconsistent specs the parser cannot see (e.g. unknown link at
  /// runtime — already validated at parse time, so effectively total).
  Result<ScenarioReport> run();

  const Scenario& scenario() const { return scenario_; }

 private:
  Scenario scenario_;
};

}  // namespace shadow::scenario
