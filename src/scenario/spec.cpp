#include "scenario/spec.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/strings.hpp"

namespace shadow::scenario {

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kFlashCrowd: return "flash_crowd";
    case Workload::kHeavyEditor: return "heavy_editor";
    case Workload::kCasual: return "casual";
  }
  return "unknown";
}

namespace {

// ---- scalar value parsers ---------------------------------------------

bool parse_f64(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size()) return false;
  if (!std::isfinite(d)) return false;
  *out = d;
  return true;
}

bool parse_uint(const std::string& v, u64* out) {
  if (v.empty()) return false;
  u64 n = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return false;
    if (n > (~u64{0} - static_cast<u64>(c - '0')) / 10) return false;
    n = n * 10 + static_cast<u64>(c - '0');
  }
  *out = n;
  return true;
}

bool parse_bool(const std::string& v, bool* out) {
  if (v == "on" || v == "true" || v == "yes" || v == "1") {
    *out = true;
    return true;
  }
  if (v == "off" || v == "false" || v == "no" || v == "0") {
    *out = false;
    return true;
  }
  return false;
}

/// Split "<number><suffix>" (suffix may be empty). False when the numeric
/// part is missing or malformed.
bool split_number(const std::string& v, double* num, std::string* suffix) {
  if (v.empty()) return false;
  char* end = nullptr;
  *num = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || !std::isfinite(*num)) return false;
  *suffix = std::string(end);
  return true;
}

/// Durations: bare numbers are SECONDS; suffixes us/ms/s/min scale.
bool parse_duration(const std::string& v, sim::SimTime* out) {
  double num = 0;
  std::string suffix;
  if (!split_number(v, &num, &suffix) || num < 0) return false;
  double micros = 0;
  if (suffix.empty() || suffix == "s") {
    micros = num * 1e6;
  } else if (suffix == "us") {
    micros = num;
  } else if (suffix == "ms") {
    micros = num * 1e3;
  } else if (suffix == "min") {
    micros = num * 60e6;
  } else {
    return false;
  }
  *out = static_cast<sim::SimTime>(micros + 0.5);
  return true;
}

/// Sizes: bare bytes, or decimal KB/MB/GB.
bool parse_size(const std::string& v, u64* out) {
  double num = 0;
  std::string suffix;
  if (!split_number(v, &num, &suffix) || num < 0) return false;
  double bytes = num;
  if (suffix == "KB") {
    bytes = num * 1e3;
  } else if (suffix == "MB") {
    bytes = num * 1e6;
  } else if (suffix == "GB") {
    bytes = num * 1e9;
  } else if (!suffix.empty()) {
    return false;
  }
  *out = static_cast<u64>(bytes + 0.5);
  return true;
}

/// Line rates: bare bits/second, or k/M/G suffix.
bool parse_rate(const std::string& v, double* out) {
  double num = 0;
  std::string suffix;
  if (!split_number(v, &num, &suffix) || num <= 0) return false;
  if (suffix == "k") {
    num *= 1e3;
  } else if (suffix == "M") {
    num *= 1e6;
  } else if (suffix == "G") {
    num *= 1e9;
  } else if (!suffix.empty()) {
    return false;
  }
  *out = num;
  return true;
}

bool parse_workload(const std::string& v, Workload* out) {
  if (v == "flash_crowd") {
    *out = Workload::kFlashCrowd;
  } else if (v == "heavy_editor") {
    *out = Workload::kHeavyEditor;
  } else if (v == "casual") {
    *out = Workload::kCasual;
  } else {
    return false;
  }
  return true;
}

// ---- line scanner ------------------------------------------------------

struct SpecLine {
  std::size_t number = 0;  // 1-based
  int indent = 0;          // 0, 2 or 4 leading spaces
  std::string key;
  std::string value;  // empty for section headers
};

Error at(std::size_t line, const std::string& message) {
  return Error{ErrorCode::kInvalidArgument,
               "line " + std::to_string(line) + ": " + message};
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Lex the document into (indent, key, value) triples, rejecting tabs,
/// odd indents and lines without a ':'.
Result<std::vector<SpecLine>> scan(const std::string& text) {
  std::vector<SpecLine> lines;
  std::size_t number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string raw = text.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    if (trimmed(raw).empty()) continue;
    if (raw.find('\t') != std::string::npos) {
      return at(number, "tabs are not allowed; indent with spaces");
    }
    int indent = 0;
    while (static_cast<std::size_t>(indent) < raw.size() &&
           raw[static_cast<std::size_t>(indent)] == ' ') {
      ++indent;
    }
    if (indent != 0 && indent != 2 && indent != 4) {
      return at(number, "indentation must be 0, 2 or 4 spaces");
    }
    const std::string body = trimmed(raw);
    const std::size_t colon = body.find(':');
    if (colon == std::string::npos) {
      return at(number, "expected 'key: value' or 'section:'");
    }
    SpecLine line;
    line.number = number;
    line.indent = indent;
    line.key = trimmed(body.substr(0, colon));
    line.value = trimmed(body.substr(colon + 1));
    if (line.key.empty()) return at(number, "empty key");
    lines.push_back(std::move(line));
  }
  return lines;
}

// ---- section appliers --------------------------------------------------

Status apply_general(Scenario* s, const SpecLine& l) {
  if (l.key == "duration") {
    if (!parse_duration(l.value, &s->duration) || s->duration == 0) {
      return at(l.number, "bad duration '" + l.value + "' (try '60s')");
    }
  } else if (l.key == "seed") {
    if (!parse_uint(l.value, &s->seed)) {
      return at(l.number, "bad seed '" + l.value + "'");
    }
  } else if (l.key == "name") {
    if (l.value.empty()) return at(l.number, "empty scenario name");
    s->name = l.value;
  } else {
    return at(l.number, "unknown general key '" + l.key + "'");
  }
  return Status::ok_status();
}

Status apply_server(Scenario* s, const SpecLine& l) {
  ServerShape& sv = s->server;
  u64 n = 0;
  if (l.key == "name") {
    if (l.value.empty()) return at(l.number, "empty server name");
    sv.name = l.value;
  } else if (l.key == "shards") {
    if (!parse_uint(l.value, &n) || n == 0 || n > 64) {
      return at(l.number, "shards must be 1..64, got '" + l.value + "'");
    }
    sv.shards = static_cast<std::size_t>(n);
  } else if (l.key == "commit_window") {
    if (!parse_duration(l.value, &sv.commit_window)) {
      return at(l.number, "bad commit_window '" + l.value + "'");
    }
  } else if (l.key == "cache_budget") {
    if (!parse_size(l.value, &sv.cache_budget)) {
      return at(l.number, "bad cache_budget '" + l.value + "'");
    }
  } else if (l.key == "eviction") {
    if (l.value == "lru") {
      sv.eviction = cache::EvictionPolicy::kLru;
    } else if (l.value == "fifo") {
      sv.eviction = cache::EvictionPolicy::kFifo;
    } else if (l.value == "largest") {
      sv.eviction = cache::EvictionPolicy::kLargestFirst;
    } else {
      return at(l.number, "eviction must be lru|fifo|largest");
    }
  } else if (l.key == "pull") {
    if (l.value == "eager") {
      sv.pull = server::PullPolicy::kEager;
    } else if (l.value == "lazy") {
      sv.pull = server::PullPolicy::kLazyOnSubmit;
    } else {
      return at(l.number, "pull must be eager|lazy");
    }
  } else if (l.key == "max_pulls") {
    if (!parse_uint(l.value, &n) || n == 0) {
      return at(l.number, "bad max_pulls '" + l.value + "'");
    }
    sv.max_pulls = static_cast<std::size_t>(n);
  } else if (l.key == "executor_slots") {
    if (!parse_uint(l.value, &n) || n == 0) {
      return at(l.number, "bad executor_slots '" + l.value + "'");
    }
    sv.executor_slots = static_cast<std::size_t>(n);
  } else if (l.key == "cpu_ops_per_second") {
    if (!parse_f64(l.value, &sv.cpu_ops_per_second) ||
        sv.cpu_ops_per_second <= 0) {
      return at(l.number, "bad cpu_ops_per_second '" + l.value + "'");
    }
  } else if (l.key == "max_active_jobs") {
    if (!parse_uint(l.value, &n)) {
      return at(l.number, "bad max_active_jobs '" + l.value + "'");
    }
    sv.max_active_jobs = static_cast<std::size_t>(n);
  } else if (l.key == "retry_after") {
    if (!parse_duration(l.value, &sv.retry_after)) {
      return at(l.number, "bad retry_after '" + l.value + "'");
    }
  } else if (l.key == "reverse_shadow") {
    if (!parse_bool(l.value, &sv.reverse_shadow)) {
      return at(l.number, "bad reverse_shadow '" + l.value + "' (on|off)");
    }
  } else {
    return at(l.number, "unknown server key '" + l.key + "'");
  }
  return Status::ok_status();
}

Status apply_link(LinkProfile* p, const SpecLine& l) {
  if (l.key == "base") {
    sim::LinkConfig base;
    if (!sim::link_preset(l.value, &base)) {
      return at(l.number, "unknown base preset '" + l.value + "'");
    }
    const std::string keep = p->link.name;
    p->link = base;
    p->link.name = keep;
  } else if (l.key == "bandwidth") {
    if (!parse_rate(l.value, &p->link.bits_per_second)) {
      return at(l.number, "bad bandwidth '" + l.value + "' (try '56k')");
    }
  } else if (l.key == "latency") {
    if (!parse_duration(l.value, &p->link.latency)) {
      return at(l.number, "bad latency '" + l.value + "'");
    }
  } else if (l.key == "overhead") {
    if (!parse_uint(l.value, &p->link.per_message_overhead)) {
      return at(l.number, "bad overhead '" + l.value + "'");
    }
  } else if (l.key == "congestion") {
    if (!parse_f64(l.value, &p->link.congestion_factor) ||
        p->link.congestion_factor < 1.0) {
      return at(l.number, "congestion must be >= 1.0");
    }
  } else if (l.key == "loss") {
    if (!parse_f64(l.value, &p->loss) || p->loss < 0 || p->loss >= 1) {
      return at(l.number, "loss must be in [0, 1)");
    }
  } else if (l.key == "jitter") {
    if (!parse_duration(l.value, &p->jitter)) {
      return at(l.number, "bad jitter '" + l.value + "'");
    }
  } else if (l.key == "jitter_p") {
    if (!parse_f64(l.value, &p->jitter_p) || p->jitter_p < 0 ||
        p->jitter_p >= 1) {
      return at(l.number, "jitter_p must be in [0, 1)");
    }
  } else {
    return at(l.number, "unknown link key '" + l.key + "'");
  }
  return Status::ok_status();
}

Status apply_host(HostClass* h, const SpecLine& l) {
  if (l.key == "quantity") {
    if (!parse_uint(l.value, &h->quantity) || h->quantity == 0) {
      return at(l.number, "quantity must be >= 1");
    }
  } else if (l.key == "link") {
    if (l.value.empty()) return at(l.number, "empty link name");
    h->link = l.value;
  } else if (l.key == "workload") {
    if (!parse_workload(l.value, &h->workload)) {
      return at(l.number,
                "workload must be flash_crowd|heavy_editor|casual");
    }
  } else if (l.key == "file_size") {
    if (!parse_size(l.value, &h->file_size) || h->file_size == 0) {
      return at(l.number, "bad file_size '" + l.value + "' (try '20KB')");
    }
  } else if (l.key == "file_spread") {
    if (!parse_f64(l.value, &h->file_spread) || h->file_spread < 0 ||
        h->file_spread >= 1) {
      return at(l.number, "file_spread must be in [0, 1)");
    }
  } else if (l.key == "edit_percent") {
    if (!parse_f64(l.value, &h->edit_percent) || h->edit_percent <= 0 ||
        h->edit_percent > 100) {
      return at(l.number, "edit_percent must be in (0, 100]");
    }
  } else if (l.key == "binary") {
    if (!parse_bool(l.value, &h->binary)) {
      return at(l.number, "bad binary '" + l.value + "' (on|off)");
    }
  } else if (l.key == "start") {
    if (!parse_duration(l.value, &h->start)) {
      return at(l.number, "bad start '" + l.value + "'");
    }
  } else if (l.key == "burst") {
    if (!parse_duration(l.value, &h->burst) || h->burst == 0) {
      return at(l.number, "burst must be a positive duration");
    }
  } else if (l.key == "think") {
    if (!parse_duration(l.value, &h->think) || h->think == 0) {
      return at(l.number, "think must be a positive duration");
    }
  } else if (l.key == "cycles") {
    if (!parse_uint(l.value, &h->cycles)) {
      return at(l.number, "bad cycles '" + l.value + "'");
    }
  } else if (l.key == "submit_p") {
    if (!parse_f64(l.value, &h->submit_p) || h->submit_p < 0 ||
        h->submit_p > 1) {
      return at(l.number, "submit_p must be in [0, 1]");
    }
  } else if (l.key == "job_ops") {
    if (!parse_uint(l.value, &h->job_ops) || h->job_ops == 0) {
      return at(l.number, "job_ops must be >= 1");
    }
  } else if (l.key == "request_driven") {
    if (!parse_bool(l.value, &h->request_driven)) {
      return at(l.number, "bad request_driven '" + l.value + "' (on|off)");
    }
  } else if (l.key == "background_updates") {
    if (!parse_bool(l.value, &h->background_updates)) {
      return at(l.number,
                "bad background_updates '" + l.value + "' (on|off)");
    }
  } else {
    return at(l.number, "unknown host key '" + l.key + "'");
  }
  return Status::ok_status();
}

}  // namespace

Result<Scenario> parse_scenario(const std::string& text) {
  SHADOW_ASSIGN_OR_RETURN(lines, scan(text));

  Scenario scenario;
  enum class Section { kNone, kGeneral, kServer, kLinks, kHosts };
  Section section = Section::kNone;
  LinkProfile* open_link = nullptr;
  HostClass* open_host = nullptr;

  for (const SpecLine& l : lines) {
    if (l.indent == 0) {
      open_link = nullptr;
      open_host = nullptr;
      if (!l.value.empty()) {
        return at(l.number, "section header takes no value");
      }
      if (l.key == "general") {
        section = Section::kGeneral;
      } else if (l.key == "server") {
        section = Section::kServer;
      } else if (l.key == "links") {
        section = Section::kLinks;
      } else if (l.key == "hosts") {
        section = Section::kHosts;
      } else {
        return at(l.number, "unknown section '" + l.key +
                                "' (general|server|links|hosts)");
      }
      continue;
    }

    if (section == Section::kNone) {
      return at(l.number, "key before any section header");
    }

    if (l.indent == 2) {
      switch (section) {
        case Section::kGeneral:
          SHADOW_TRY(apply_general(&scenario, l));
          break;
        case Section::kServer:
          SHADOW_TRY(apply_server(&scenario, l));
          break;
        case Section::kLinks: {
          if (!l.value.empty()) {
            return at(l.number, "link profile '" + l.key +
                                    "' must be a section, not a value");
          }
          if (scenario.links.count(l.key) != 0) {
            return at(l.number, "duplicate link profile '" + l.key + "'");
          }
          LinkProfile profile;
          profile.link.name = l.key;
          open_link = &scenario.links.emplace(l.key, profile).first->second;
          break;
        }
        case Section::kHosts: {
          if (!l.value.empty()) {
            return at(l.number, "host class '" + l.key +
                                    "' must be a section, not a value");
          }
          for (const auto& h : scenario.hosts) {
            if (h.name == l.key) {
              return at(l.number, "duplicate host class '" + l.key + "'");
            }
          }
          HostClass host;
          host.name = l.key;
          scenario.hosts.push_back(host);
          open_host = &scenario.hosts.back();
          break;
        }
        case Section::kNone:
          break;
      }
      continue;
    }

    // indent == 4: a property of the open link profile or host class.
    if (open_link != nullptr) {
      SHADOW_TRY(apply_link(open_link, l));
    } else if (open_host != nullptr) {
      SHADOW_TRY(apply_host(open_host, l));
    } else {
      return at(l.number, "4-space indent outside a links/hosts entry");
    }
  }

  if (scenario.hosts.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "spec defines no host classes (hosts: section)"};
  }
  for (const auto& host : scenario.hosts) {
    if (!resolve_link(scenario, host.link, nullptr)) {
      return Error{ErrorCode::kInvalidArgument,
                   "host class '" + host.name + "' names unknown link '" +
                       host.link + "'"};
    }
  }
  return scenario;
}

bool resolve_link(const Scenario& scenario, const std::string& name,
                  LinkProfile* out) {
  auto it = scenario.links.find(name);
  if (it != scenario.links.end()) {
    if (out != nullptr) *out = it->second;
    return true;
  }
  sim::LinkConfig preset;
  if (sim::link_preset(name, &preset)) {
    if (out != nullptr) {
      *out = LinkProfile{};
      out->link = preset;
    }
    return true;
  }
  return false;
}

namespace {
void append_kv(std::string* out, int indent, const char* key,
               const std::string& value) {
  out->append(static_cast<std::size_t>(indent), ' ');
  out->append(key);
  out->append(": ");
  out->append(value);
  out->push_back('\n');
}

std::string fmt_u64(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string fmt_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_duration(sim::SimTime usec) { return fmt_u64(usec) + "us"; }
}  // namespace

std::string to_text(const Scenario& s) {
  std::string out;
  out += "general:\n";
  append_kv(&out, 2, "name", s.name);
  append_kv(&out, 2, "duration", fmt_duration(s.duration));
  append_kv(&out, 2, "seed", fmt_u64(s.seed));

  out += "server:\n";
  const ServerShape& sv = s.server;
  append_kv(&out, 2, "name", sv.name);
  append_kv(&out, 2, "shards", fmt_u64(sv.shards));
  append_kv(&out, 2, "commit_window", fmt_duration(sv.commit_window));
  append_kv(&out, 2, "cache_budget", fmt_u64(sv.cache_budget));
  append_kv(&out, 2, "eviction",
            sv.eviction == cache::EvictionPolicy::kLru     ? "lru"
            : sv.eviction == cache::EvictionPolicy::kFifo ? "fifo"
                                                          : "largest");
  append_kv(&out, 2, "pull",
            sv.pull == server::PullPolicy::kEager ? "eager" : "lazy");
  append_kv(&out, 2, "max_pulls", fmt_u64(sv.max_pulls));
  append_kv(&out, 2, "executor_slots", fmt_u64(sv.executor_slots));
  append_kv(&out, 2, "cpu_ops_per_second", fmt_f64(sv.cpu_ops_per_second));
  append_kv(&out, 2, "max_active_jobs", fmt_u64(sv.max_active_jobs));
  append_kv(&out, 2, "retry_after", fmt_duration(sv.retry_after));
  append_kv(&out, 2, "reverse_shadow", sv.reverse_shadow ? "on" : "off");

  if (!s.links.empty()) {
    out += "links:\n";
    for (const auto& [name, p] : s.links) {
      out += "  " + name + ":\n";
      append_kv(&out, 4, "bandwidth", fmt_f64(p.link.bits_per_second));
      append_kv(&out, 4, "latency", fmt_duration(p.link.latency));
      append_kv(&out, 4, "overhead", fmt_u64(p.link.per_message_overhead));
      append_kv(&out, 4, "congestion", fmt_f64(p.link.congestion_factor));
      append_kv(&out, 4, "loss", fmt_f64(p.loss));
      append_kv(&out, 4, "jitter", fmt_duration(p.jitter));
      append_kv(&out, 4, "jitter_p", fmt_f64(p.jitter_p));
    }
  }

  out += "hosts:\n";
  for (const auto& h : s.hosts) {
    out += "  " + h.name + ":\n";
    append_kv(&out, 4, "quantity", fmt_u64(h.quantity));
    append_kv(&out, 4, "link", h.link);
    append_kv(&out, 4, "workload", workload_name(h.workload));
    append_kv(&out, 4, "file_size", fmt_u64(h.file_size));
    append_kv(&out, 4, "file_spread", fmt_f64(h.file_spread));
    append_kv(&out, 4, "edit_percent", fmt_f64(h.edit_percent));
    append_kv(&out, 4, "binary", h.binary ? "on" : "off");
    append_kv(&out, 4, "start", fmt_duration(h.start));
    append_kv(&out, 4, "burst", fmt_duration(h.burst));
    append_kv(&out, 4, "think", fmt_duration(h.think));
    append_kv(&out, 4, "cycles", fmt_u64(h.cycles));
    append_kv(&out, 4, "submit_p", fmt_f64(h.submit_p));
    append_kv(&out, 4, "job_ops", fmt_u64(h.job_ops));
    append_kv(&out, 4, "request_driven", h.request_driven ? "on" : "off");
    append_kv(&out, 4, "background_updates",
              h.background_updates ? "on" : "off");
  }
  return out;
}

}  // namespace shadow::scenario
