// Declarative population-scale scenario specs (ROADMAP: "thousands of
// simulated clients"; format modeled on the Shadow simulator's host/
// network YAML config — see SNIPPETS.md and docs/SCENARIOS.md).
//
// A spec is a small indentation-structured text document ("YAML subset":
// two-space-indented `key: value` maps, '#' comments, no external
// dependencies):
//
//   general:
//     duration: 60s
//     seed: 42
//   server:
//     shards: 4
//     commit_window: 2ms
//     max_active_jobs: 256
//   links:
//     flaky-wan:
//       base: modern-wan
//       loss: 0.001
//       jitter: 30ms
//   hosts:
//     crowd:
//       quantity: 2000
//       link: modem-56k
//       workload: flash_crowd
//       file_size: 20KB
//       edit_percent: 5
//
// Parsing is total: any malformed line yields a one-line error with its
// line number (the shadowsim CLI maps it to exit code 2) and never a
// partial scenario.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cache/shadow_cache.hpp"
#include "server/load_monitor.hpp"
#include "server/shadow_server.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"

namespace shadow::scenario {

/// A named line: a sim::Link shape plus the fault knobs (loss/jitter) the
/// FaultTransport decorator injects. Presets (sim::link_presets()) are
/// fault-free; a spec's `links:` section derives profiles from them or
/// from raw bandwidth/latency numbers.
struct LinkProfile {
  sim::LinkConfig link;
  double loss = 0.0;          // per-message drop probability [0, 1)
  double jitter_p = 0.0;      // probability a message is delayed
  sim::SimTime jitter = 0;    // extra delay when jittered, microseconds

  bool faulty() const { return loss > 0.0 || (jitter_p > 0.0 && jitter > 0); }
};

/// What a population of clients does all day.
enum class Workload : u8 {
  kFlashCrowd = 0,   // everyone submits inside one short window
  kHeavyEditor = 1,  // continuous edit-submit cycles, short think time
  kCasual = 2,       // sparse sessions, long think, edits often unsubmitted
};

const char* workload_name(Workload w);

/// One host class: `quantity` identical clients sharing a link profile
/// and a workload shape (Shadow's `hosts.<name>.quantity` idiom).
struct HostClass {
  std::string name;
  u64 quantity = 1;
  std::string link = "cypress-9600";  // preset or `links:` profile name
  Workload workload = Workload::kCasual;
  u64 file_size = 20'000;      // mean data-file bytes
  double file_spread = 0.0;    // uniform +/- fraction of file_size
  double edit_percent = 5.0;   // % of the file touched per session
  /// Binary population: data files are high-entropy bytes and edits are
  /// in-place region overwrites, so sessions exercise the CDC codec
  /// crossover instead of line diffs (examples/big_binaries.scn).
  bool binary = false;
  sim::SimTime start = 0;      // when the class wakes up
  sim::SimTime burst = 5 * sim::kMicrosPerSecond;   // arrival spread window
  sim::SimTime think = 30 * sim::kMicrosPerSecond;  // mean time between cycles
  u64 cycles = 0;              // edit-submit cycles per client; 0 = until end
  double submit_p = 1.0;       // chance an edit session ends in a submit
  u64 job_ops = 20'000;        // abstract executor ops each job burns
  bool request_driven = false; // push updates unprompted (§5.2 ablation)
  bool background_updates = true;  // notify at edit end vs at submit
};

/// Server shape: shards, commit window, overload budget — the knobs the
/// scaling PRs added, exposed to the spec.
struct ServerShape {
  std::string name = "super";
  std::size_t shards = 1;
  u64 commit_window = 0;       // usec; > 0 enables group commit (MemDir WAL)
  u64 cache_budget = 0;        // bytes; 0 = unlimited
  cache::EvictionPolicy eviction = cache::EvictionPolicy::kLru;
  server::PullPolicy pull = server::PullPolicy::kEager;
  /// Concurrent outstanding PullRequests per shard. The library default
  /// (4) suits one modest server; a population-scale shard needs room or
  /// every first-time transfer serializes behind the flow-control cap.
  std::size_t max_pulls = 64;
  std::size_t executor_slots = 4;
  double cpu_ops_per_second = 1e6;
  std::size_t max_active_jobs = 0;   // overload budget; 0 = unlimited
  u64 retry_after = 500'000;         // usec hint sent with ServerBusy
  bool reverse_shadow = false;
};

struct Scenario {
  std::string name = "scenario";
  sim::SimTime duration = 60 * sim::kMicrosPerSecond;
  u64 seed = 1;
  ServerShape server;
  std::map<std::string, LinkProfile> links;  // custom profiles by name
  std::vector<HostClass> hosts;              // in spec order

  /// Total simulated clients.
  u64 population() const {
    u64 n = 0;
    for (const auto& h : hosts) n += h.quantity;
    return n;
  }
};

/// Parse a spec document. Errors are one-line, "line N: message".
Result<Scenario> parse_scenario(const std::string& text);

/// Serialize back to spec text (canonical form; parse(to_text(s)) == s —
/// the round-trip property scenario_test pins).
std::string to_text(const Scenario& scenario);

/// Resolve a host class's link name against the scenario's `links:`
/// profiles first, then the sim presets. False when unknown.
bool resolve_link(const Scenario& scenario, const std::string& name,
                  LinkProfile* out);

}  // namespace shadow::scenario
