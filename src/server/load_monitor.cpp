#include "server/load_monitor.hpp"

#include <cmath>

#include "telemetry/registry.hpp"

namespace shadow::server {

void LoadMonitor::advance() const {
  if (sim_ == nullptr) return;
  const sim::SimTime now = sim_->now();
  if (now <= last_update_) return;
  const double dt = static_cast<double>(now - last_update_);
  const double tau = static_cast<double>(config_.decay);
  // Classic exponential smoothing toward the current demand.
  const double alpha = 1.0 - std::exp(-dt / tau);
  average_ += (demand_ - average_) * alpha;
  last_update_ = now;
}

void LoadMonitor::set_demand(double demand) {
  advance();
  demand_ = demand;
}

double LoadMonitor::load_average() const {
  advance();
  return average_;
}

void LoadMonitor::publish(const std::string& prefix) const {
  auto& r = telemetry::Registry::global();
  r.gauge(prefix + "load.average").set(load_average());
  r.gauge(prefix + "load.demand").set(demand_);
  r.gauge(prefix + "load.high_water").set(config_.high_water);
  r.gauge(prefix + "load.decay_us").set(static_cast<double>(config_.decay));
  r.gauge(prefix + "load.backoff_us").set(static_cast<double>(config_.backoff));
  r.gauge(prefix + "load.overloaded").set(overloaded() ? 1.0 : 0.0);
}

}  // namespace shadow::server
