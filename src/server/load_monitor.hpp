// Load monitoring for the demand-driven server (paper §5.2: "By
// monitoring the load average, cache size to disk space ratio, number of
// incoming jobs, network delays, etc., the remote host can decide when is
// the best time to retrieve the needed files and to schedule and run the
// jobs"; §3 Adaptability: "the system should dynamically tune itself").
//
// The monitor keeps a UNIX-style exponentially-decayed load average over
// the number of running jobs, sampled on the simulated clock. The server
// consults it before issuing pulls and starting jobs; above the high-water
// mark it defers and retries after a backoff interval.
#pragma once

#include <string>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace shadow::server {

struct LoadMonitorConfig {
  /// Load average above which pulls and job starts are deferred.
  /// <= 0 disables load-based deferral entirely.
  double high_water = 0.0;
  /// Decay time constant of the load average, microseconds.
  sim::SimTime decay = 60 * sim::kMicrosPerSecond;
  /// How long to wait before re-checking when deferred.
  sim::SimTime backoff = 5 * sim::kMicrosPerSecond;
};

class LoadMonitor {
 public:
  LoadMonitor(LoadMonitorConfig config, sim::Simulator* simulator)
      : config_(config), sim_(simulator) {}

  /// Current instantaneous demand being averaged (set by the server to
  /// its running-job count whenever it changes).
  void set_demand(double demand);

  /// Exponentially-decayed load average as of now.
  double load_average() const;

  /// True when new work should be deferred.
  bool overloaded() const {
    return config_.high_water > 0 && load_average() > config_.high_water;
  }

  const LoadMonitorConfig& config() const { return config_; }

  /// Instantaneous demand last fed to set_demand().
  double demand() const { return demand_; }

  /// Mirror thresholds and current readings into the global telemetry
  /// registry (load.average, load.demand, load.high_water, ...), with
  /// `prefix` prepended to every name ("shard0." for a sharded server's
  /// shard 0, "" for a standalone server). Cold path; called when an
  /// admin snapshot is taken.
  void publish(const std::string& prefix = std::string()) const;

 private:
  /// Fold the elapsed time into the average.
  void advance() const;

  LoadMonitorConfig config_;
  sim::Simulator* sim_;
  mutable double average_ = 0.0;
  double demand_ = 0.0;
  mutable sim::SimTime last_update_ = 0;
};

}  // namespace shadow::server
