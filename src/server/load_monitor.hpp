// Load monitoring for the demand-driven server (paper §5.2: "By
// monitoring the load average, cache size to disk space ratio, number of
// incoming jobs, network delays, etc., the remote host can decide when is
// the best time to retrieve the needed files and to schedule and run the
// jobs"; §3 Adaptability: "the system should dynamically tune itself").
//
// The monitor keeps a UNIX-style exponentially-decayed load average over
// the number of running jobs, sampled on the simulated clock. The server
// consults it before issuing pulls and starting jobs; above the high-water
// mark it defers and retries after a backoff interval.
#pragma once

#include <string>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace shadow::server {

struct LoadMonitorConfig {
  /// Load average above which pulls and job starts are deferred.
  /// <= 0 disables load-based deferral entirely.
  double high_water = 0.0;
  /// Decay time constant of the load average, microseconds.
  sim::SimTime decay = 60 * sim::kMicrosPerSecond;
  /// How long to wait before re-checking when deferred.
  sim::SimTime backoff = 5 * sim::kMicrosPerSecond;
};

/// Unified admission budget (overload control, docs/OPERATIONS.md). The
/// load monitor above DEFERS work the server has already accepted; these
/// budgets REFUSE work at the door with a ServerBusy carrying
/// retry_after_usec, so clients back off instead of piling up. Every
/// budget is per shard; 0 disables that budget.
struct OverloadConfig {
  /// Registered client sessions per shard; a Hello beyond this is shed.
  std::size_t max_connections = 0;
  /// Byte cap on each connection's outbound send queue (applied to the
  /// transport at attach). A send overflowing it drops the CONNECTION,
  /// never blocks the shard loop; the client reconnects and resyncs.
  std::size_t max_conn_queued_bytes = 0;
  /// Cap on the SUM of all connections' queued output bytes; submits
  /// beyond it are shed (results would only deepen the backlog).
  std::size_t max_total_queued_bytes = 0;
  /// Cap on journal records staged behind the open group-commit window
  /// (each may park a deferred ack); submits beyond it are shed.
  std::size_t max_parked_acks = 0;
  /// Cap on active (queued+waiting+running) jobs; submits beyond it are
  /// SHED with ServerBusy + retry-after — unlike max_queued_jobs, whose
  /// queue-full SubmitReply rejection is final. The client re-submits
  /// from its archive after a jittered backoff, so transient bursts
  /// queue politely at the clients instead of in the server.
  std::size_t max_active_jobs = 0;
  /// Hint returned with every ServerBusy: how long the client should
  /// back off (its own jittered backoff takes this as the floor).
  u64 retry_after_usec = 500'000;
};

class LoadMonitor {
 public:
  LoadMonitor(LoadMonitorConfig config, sim::Simulator* simulator)
      : config_(config), sim_(simulator) {}

  /// Current instantaneous demand being averaged (set by the server to
  /// its running-job count whenever it changes).
  void set_demand(double demand);

  /// Exponentially-decayed load average as of now.
  double load_average() const;

  /// True when new work should be deferred.
  bool overloaded() const {
    return config_.high_water > 0 && load_average() > config_.high_water;
  }

  const LoadMonitorConfig& config() const { return config_; }

  /// Instantaneous demand last fed to set_demand().
  double demand() const { return demand_; }

  /// Mirror thresholds and current readings into the global telemetry
  /// registry (load.average, load.demand, load.high_water, ...), with
  /// `prefix` prepended to every name ("shard0." for a sharded server's
  /// shard 0, "" for a standalone server). Cold path; called when an
  /// admin snapshot is taken.
  void publish(const std::string& prefix = std::string()) const;

 private:
  /// Fold the elapsed time into the average.
  void advance() const;

  LoadMonitorConfig config_;
  sim::Simulator* sim_;
  mutable double average_ = 0.0;
  double demand_ = 0.0;
  mutable sim::SimTime last_update_ = 0;
};

}  // namespace shadow::server
