#include "server/shadow_server.hpp"

#include <algorithm>
#include <chrono>

#include "proto/admin.hpp"
#include "telemetry/registry.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "vfs/path.hpp"

namespace shadow::server {

namespace {
// Flight-recorder entry for the global event ring (shadowtop's "events"
// view). Cold-path only — every call site below is a state change, not a
// per-byte hot loop.
void record_event(telemetry::EventKind kind, std::string detail) {
  telemetry::Registry::global().events().record(kind, std::move(detail));
}

u64 steady_micros() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}
}  // namespace

const char* pull_policy_name(PullPolicy policy) {
  switch (policy) {
    case PullPolicy::kEager: return "eager";
    case PullPolicy::kLazyOnSubmit: return "lazy-on-submit";
  }
  return "?";
}

ShadowServer::ShadowServer(ServerConfig config, sim::Simulator* simulator,
                           persist::DurableStore* store)
    : config_(std::move(config)),
      sim_(simulator),
      store_(store),
      load_monitor_(config_.load, simulator),
      cache_(config_.cache_budget, config_.eviction) {}

ShadowServer::~ShadowServer() {
  // Deferred commit callbacks capture `this`; a batch still in flight at
  // teardown is dropped, not invoked — its records stay in the journal
  // and replay on recovery, its acks were simply never sent (the client
  // re-offers, exactly as after a crash).
  if (store_ != nullptr) store_->drop_pending();
}

bool ShadowServer::persist_append(persist::RecordType type, Bytes body) {
  if (store_ == nullptr) return true;
  if (persist_dead_) return false;
  Status st = store_->append(type, body);
  if (!st.ok()) {
    mark_persist_dead(type, st);
    return false;
  }
  ++stats_.journal_appends;
  if (store_->compaction_due()) {
    Status cs = store_->compact(save_state());
    if (!cs.ok()) {
      // The record itself is already durable (the append fsynced), so the
      // caller may still acknowledge — but no further promises.
      persist_dead_ = true;
      ++stats_.journal_failures;
      SHADOW_WARN() << config_.name
                    << ": compaction failed: " << cs.to_string();
    } else {
      ++stats_.compactions;
      record_event(telemetry::EventKind::kJournal, "journal compacted");
    }
  }
  return true;
}

void ShadowServer::mark_persist_dead(persist::RecordType type,
                                     const Status& st) {
  ++stats_.journal_failures;
  if (persist_dead_) return;
  persist_dead_ = true;
  record_event(telemetry::EventKind::kJournal,
               std::string("append refused (") +
                   persist::record_type_name(type) + "); persistence dead");
  SHADOW_WARN() << config_.name << ": journal append failed ("
                << persist::record_type_name(type) << "): " << st.to_string();
}

void ShadowServer::persist_append_then(persist::RecordType type, Bytes body,
                                       std::function<void()> on_durable) {
  if (store_ == nullptr) {
    if (on_durable) on_durable();
    return;
  }
  if (persist_dead_) return;
  if (!store_->group_commit().enabled()) {
    // Classic sync-per-record: durable (or dead) before we return, the
    // continuation runs inline — ordering identical to the pre-group-
    // commit server.
    if (persist_append(type, std::move(body)) && on_durable) on_durable();
    return;
  }
  if (on_durable) ++stats_.acks_deferred;
  (void)store_->append_deferred(
      type, body, [this, type, cb = std::move(on_durable)](const Status& st) {
        if (st.ok()) {
          ++stats_.journal_appends;
          if (cb) cb();
          return;
        }
        mark_persist_dead(type, st);
      });
  schedule_window_flush();
}

void ShadowServer::schedule_window_flush() {
  const auto& gc = store_->group_commit();
  if (store_->pending_records() == 0) return;  // sealed at a cap already
  if (sim_ != nullptr) {
    // Simulated time: one flush per window, armed by the record that
    // opens it (the same self-scheduling shape as the load monitor).
    if (persist_flush_scheduled_) return;
    persist_flush_scheduled_ = true;
    sim_->schedule(gc.window_us, [this] {
      persist_flush_scheduled_ = false;
      flush_persist();
    });
  } else if (!persist_window_open_) {
    persist_window_open_ = true;
    persist_window_start_us_ = steady_micros();
  }
}

void ShadowServer::flush_persist() {
  if (store_ == nullptr || !store_->group_commit().enabled()) return;
  persist_window_open_ = false;
  if (store_->pending_records() > 0) ++stats_.persist_flushes;
  (void)store_->flush();  // failures surface through per-record callbacks
  (void)store_->drain();
  maybe_compact_persist();
}

void ShadowServer::wait_persist_idle() {
  if (store_ == nullptr || !store_->group_commit().enabled()) return;
  persist_window_open_ = false;
  store_->wait_idle();
  maybe_compact_persist();
}

std::size_t ShadowServer::pump_persist() {
  if (store_ == nullptr || !store_->group_commit().enabled()) return 0;
  std::size_t work = store_->drain();
  if (persist_window_open_ && sim_ == nullptr &&
      steady_micros() - persist_window_start_us_ >=
          store_->group_commit().window_us) {
    flush_persist();
    ++work;
  } else {
    maybe_compact_persist();
  }
  return work;
}

int ShadowServer::persist_poll_hint_ms() const {
  if (store_ == nullptr || !store_->group_commit().enabled() ||
      sim_ != nullptr) {
    return -1;
  }
  if (store_->sync_in_flight()) return 1;
  if (!persist_window_open_) return -1;
  const u64 elapsed = steady_micros() - persist_window_start_us_;
  const u64 window = store_->group_commit().window_us;
  if (elapsed >= window) return 1;
  return static_cast<int>((window - elapsed) / 1000) + 1;
}

void ShadowServer::maybe_compact_persist() {
  if (store_ == nullptr || persist_dead_) return;
  if (!store_->compaction_due()) return;
  // Only between batches: compaction must never sit between a client's
  // update and its ack. pump_persist() retries at the next idle round.
  if (store_->pending_records() > 0 || store_->sync_in_flight()) return;
  Status cs = store_->compact(save_state());
  if (!cs.ok()) {
    persist_dead_ = true;
    ++stats_.journal_failures;
    SHADOW_WARN() << config_.name << ": compaction failed: " << cs.to_string();
  } else {
    ++stats_.compactions;
    record_event(telemetry::EventKind::kJournal, "journal compacted");
  }
}

void ShadowServer::send_if_attached(Connection* conn,
                                    const std::string& client_name,
                                    const proto::Message& m) {
  for (const auto& c : connections_) {
    if (c.get() == conn && c->client_name == client_name) {
      send(conn, m);
      return;
    }
  }
  // The connection went away while its batch was syncing; the client
  // re-offers after reconnecting, so dropping the ack is safe.
}

Bytes ShadowServer::cached_record_body(const FileState& state, u64 version,
                                       u32 crc,
                                       const std::string& content) {
  BufWriter w;
  state.id.encode(w);
  w.put_string(state.cache_key);
  w.put_varint(version);
  w.put_u32(crc);
  w.put_string(content);
  w.put_string(state.owner_client);
  return w.take();
}

Bytes ShadowServer::digest_record_body(const FileState& state, u64 version,
                                       u32 crc,
                                       const cdc::Signature& signature) {
  BufWriter w;
  state.id.encode(w);
  w.put_string(state.cache_key);
  w.put_varint(version);
  w.put_u32(crc);
  signature.encode(w);
  w.put_string(state.owner_client);
  return w.take();
}

Bytes ShadowServer::finished_record_body(const job::JobRecord& record) {
  BufWriter w;
  w.put_varint(record.job_id);
  w.put_u8(static_cast<u8>(record.state));
  w.put_varint_signed(record.exit_code);
  w.put_string(record.output_content);
  w.put_string(record.error_content);
  w.put_varint(record.cpu_cost);
  w.put_string(record.detail);
  return w.take();
}

void ShadowServer::persist_eviction(const std::string& cache_key) {
  BufWriter w;
  w.put_string(cache_key);
  persist_append_then(persist::RecordType::kShadowEvicted, w.take(), nullptr);
}

bool ShadowServer::load_says_wait() {
  if (!load_monitor_.overloaded()) return false;
  ++stats_.deferred_by_load;
  telemetry::Registry::global()
      .counter(config_.telemetry_prefix + "load.deferrals")
      .add();
  record_event(telemetry::EventKind::kLoad, "work deferred by load monitor");
  // Self-schedule one retry per backoff window (§3: the system tunes
  // itself — no user or client intervention).
  if (sim_ != nullptr && !load_retry_scheduled_) {
    load_retry_scheduled_ = true;
    sim_->schedule(load_monitor_.config().backoff, [this] {
      load_retry_scheduled_ = false;
      drain_deferred_pulls();
      schedule_jobs();
    });
  }
  return true;
}

u64 ShadowServer::now_micros() const {
  return sim_ != nullptr ? sim_->now() : steady_micros();
}

void ShadowServer::attach(net::Transport* transport) {
  auto conn = std::make_unique<Connection>();
  conn->transport = transport;
  conn->lease_renewed_us = now_micros();
  if (config_.overload.max_conn_queued_bytes > 0) {
    // Byte-cap this connection's outbound queue; a send that would
    // overflow it dooms the connection instead of blocking the loop.
    transport->set_queue_limit(config_.overload.max_conn_queued_bytes);
  }
  Connection* raw = conn.get();
  if (config_.reliable_session) {
    proto::ReliableChannel::Config channel_config;
    if (config_.retransmit_initial_usec > 0) {
      channel_config.retransmit_initial = config_.retransmit_initial_usec;
    }
    if (config_.retransmit_cap_usec > 0) {
      channel_config.retransmit_cap = config_.retransmit_cap_usec;
    }
    raw->channel =
        std::make_unique<proto::ReliableChannel>(transport, channel_config);
    raw->channel->set_receiver(
        [this, raw](Bytes wire) { on_message(raw, std::move(wire)); });
    raw->channel->on_desync([this, raw] { resync_connection(raw); });
    if (sim_ != nullptr) raw->channel->attach_simulator(sim_);
  } else {
    transport->set_receiver(
        [this, raw](Bytes wire) { on_message(raw, std::move(wire)); });
  }
  connections_.push_back(std::move(conn));
}

void ShadowServer::detach(net::Transport* transport) {
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if ((*it)->transport != transport) continue;
    Connection* raw = it->get();
    if (!raw->client_name.empty()) {
      auto named = clients_.find(raw->client_name);
      if (named != clients_.end() && named->second == raw) {
        clients_.erase(named);
      }
      record_event(telemetry::EventKind::kServer,
                   "client " + raw->client_name + " disconnected");
    }
    // Jobs this connection submitted keep their record; submitted_via is
    // only ever compared against live Connection pointers (duplicate
    // detection), never dereferenced, so the dangling token is harmless.
    connections_.erase(it);
    return;
  }
}

void ShadowServer::doom_connection(Connection* conn, const std::string& why) {
  if (conn->doomed) return;
  conn->doomed = true;
  record_event(telemetry::EventKind::kServer,
               "connection " +
                   (conn->client_name.empty() ? std::string("<pre-hello>")
                                              : conn->client_name) +
                   " doomed: " + why);
  SHADOW_WARN() << config_.name << ": dropping connection "
                << conn->client_name << ": " << why;
  // Ask the transport to close so event loops reap the socket; the
  // Connection itself is reclaimed by reap_doomed() once no handler on
  // the stack can still be holding the pointer.
  conn->transport->request_close();
}

std::size_t ShadowServer::reap_doomed() {
  std::size_t reaped = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection* raw = it->get();
    if (!raw->doomed) {
      ++it;
      continue;
    }
    // Sever the receive path first: the transport may outlive the
    // Connection (event-loop-owned sockets, sim links), and its receiver
    // lambda captures the raw pointer being freed here.
    raw->transport->set_receiver(nullptr);
    if (!raw->client_name.empty()) {
      auto named = clients_.find(raw->client_name);
      if (named != clients_.end() && named->second == raw) {
        clients_.erase(named);
      }
      // Pulls in flight to this client died with its send queue. Re-arm
      // them so a plain (non-reliable-session) reconnect's re-announce
      // pulls again instead of waiting forever on a dead request.
      for (auto& [key, state] : files_) {
        if (state.owner_client != raw->client_name) continue;
        if (state.pull_outstanding == 0) continue;
        state.pull_outstanding = 0;
        if (outstanding_pulls_ > 0) --outstanding_pulls_;
        state.pull_wanted = true;
      }
    }
    it = connections_.erase(it);
    ++reaped;
  }
  return reaped;
}

std::size_t ShadowServer::expire_leases() {
  if (config_.lease_usec == 0) return 0;
  const u64 now = now_micros();
  std::size_t expired = 0;
  for (auto& conn : connections_) {
    if (conn->doomed) continue;
    if (now - conn->lease_renewed_us < config_.lease_usec) continue;
    ++stats_.leases_expired;
    ++expired;
    doom_connection(conn.get(),
                    "lease expired (idle " +
                        std::to_string(now - conn->lease_renewed_us) +
                        " us, lease " + std::to_string(config_.lease_usec) +
                        " us)");
  }
  return expired;
}

std::size_t ShadowServer::total_queued_bytes() const {
  std::size_t total = 0;
  for (const auto& conn : connections_) {
    total += conn->transport->queued_bytes();
  }
  return total;
}

const char* ShadowServer::admission_refusal() const {
  if (draining_) return "server draining";
  if (config_.overload.max_parked_acks != 0 && store_ != nullptr &&
      store_->pending_records() >= config_.overload.max_parked_acks) {
    return "persist backlog (parked acks over budget)";
  }
  if (config_.overload.max_total_queued_bytes != 0 &&
      total_queued_bytes() >= config_.overload.max_total_queued_bytes) {
    return "output backlog (queued bytes over budget)";
  }
  if (config_.overload.max_active_jobs != 0 &&
      queue_.active_count() >= config_.overload.max_active_jobs) {
    return "job backlog (active jobs over budget)";
  }
  return nullptr;
}

void ShadowServer::send_busy(Connection* conn, u64 client_job_token,
                             const std::string& reason) {
  // Legacy peers would log "unexpected message type" and learn nothing;
  // silence preserves their pre-overload-control behaviour exactly.
  if (conn->protocol_version < 1) return;
  proto::ServerBusy busy;
  busy.retry_after_usec = config_.overload.retry_after_usec;
  busy.client_job_token = client_job_token;
  busy.draining = draining_;
  busy.reason = reason;
  send(conn, busy);
}

void ShadowServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  record_event(telemetry::EventKind::kServer,
               config_.name + " draining: refusing new work");
  // One notice per live v1 session: back off and come back elsewhere /
  // later. In-flight acks still flow; only NEW work is refused.
  for (auto& conn : connections_) {
    if (conn->doomed || conn->protocol_version < 1) continue;
    ++stats_.drain_notices;
    send_busy(conn.get(), 0, "server draining");
  }
  // Seal the open group-commit window now: every record a client was
  // promised durability for must fsync — and release its parked ack —
  // before drain_complete() reports true.
  flush_persist();
}

bool ShadowServer::drain_complete() const {
  if (store_ == nullptr || !store_->group_commit().enabled()) return true;
  return store_->pending_records() == 0 && !store_->sync_in_flight();
}

void ShadowServer::handle(Connection* conn, const proto::Heartbeat& m) {
  (void)conn;
  (void)m;  // client_time_us is diagnostic only for now
  ++stats_.heartbeats_received;
  // The lease was renewed by on_message; nothing else to do — heartbeats
  // deliberately have no reply (an overloaded server owes idle clients
  // nothing).
}

void ShadowServer::inject_message(net::Transport* transport, Bytes wire) {
  for (auto& conn : connections_) {
    if (conn->transport == transport) {
      on_message(conn.get(), std::move(wire));
      return;
    }
  }
  SHADOW_WARN() << config_.name
                << ": inject_message for unattached transport";
}

std::size_t ShadowServer::tick() {
  std::size_t resent = 0;
  for (auto& conn : connections_) {
    if (conn->channel != nullptr && !conn->doomed) {
      resent += conn->channel->tick();
    }
  }
  resent += pump_persist();
  expire_leases();
  reap_doomed();
  return resent;
}

void ShadowServer::resync_connection(Connection* conn) {
  ++stats_.session_resyncs;
  record_event(telemetry::EventKind::kSession,
               "session resync with " +
                   (conn->client_name.empty() ? std::string("<pre-hello>")
                                              : conn->client_name));
  // Frames may have been lost in either direction. Re-arm every pull that
  // was in flight (the request or its answer may be gone) and re-deliver
  // outputs the client never acknowledged; duplicates are harmless — the
  // client's handlers are idempotent and nack what it cannot apply.
  for (auto& [key, state] : files_) {
    if (state.pull_outstanding != 0) {
      state.pull_outstanding = 0;
      if (outstanding_pulls_ > 0) --outstanding_pulls_;
      state.pull_wanted = true;
    }
  }
  drain_deferred_pulls();
  if (!conn->client_name.empty()) {
    for (auto& [id, record] : queue_.all_mutable()) {
      if (record.client_name != conn->client_name) continue;
      if (record.state == proto::JobState::kCompleted ||
          record.state == proto::JobState::kFailed) {
        deliver_output(record);
      }
    }
  }
  schedule_jobs();
}

proto::ReliableChannel::Stats ShadowServer::session_stats() const {
  proto::ReliableChannel::Stats total;
  for (const auto& conn : connections_) {
    if (conn->channel == nullptr) continue;
    const auto& s = conn->channel->stats();
    total.data_sent += s.data_sent;
    total.delivered += s.delivered;
    total.retransmits += s.retransmits;
    total.acks_sent += s.acks_sent;
    total.nacks_sent += s.nacks_sent;
    total.duplicates_dropped += s.duplicates_dropped;
    total.corrupt_dropped += s.corrupt_dropped;
    total.out_of_order_held += s.out_of_order_held;
    total.overflow_dropped += s.overflow_dropped;
    total.resets_sent += s.resets_sent;
    total.resets_received += s.resets_received;
    total.desyncs += s.desyncs;
  }
  return total;
}

void ShadowServer::send(Connection* conn, const proto::Message& m) {
  if (conn == nullptr || conn->transport == nullptr || conn->doomed) return;
  Status st = conn->channel != nullptr
                  ? conn->channel->send(proto::encode_message(m))
                  : conn->transport->send(proto::encode_message(m));
  if (!st.ok()) {
    if (st.code() == ErrorCode::kResourceExhausted) {
      // Slow consumer: its outbound queue hit the byte cap. Degrade by
      // dropping the CONNECTION, never by blocking the shard loop or
      // queueing without bound — on reconnect the client resyncs (full
      // transfer fallback), so nothing is corrupted, only re-sent.
      ++stats_.conns_dropped_overflow;
      doom_connection(conn, "send queue overflow (" +
                                std::to_string(conn->transport->queued_bytes()) +
                                " bytes queued)");
      return;
    }
    SHADOW_WARN() << config_.name << ": send to " << conn->client_name
                  << " failed: " << st.to_string();
  }
}

void ShadowServer::send_to(const std::string& client_name,
                           const proto::Message& m) {
  auto it = clients_.find(client_name);
  if (it == clients_.end()) {
    // Not one of ours. In a sharded server the client may be pinned to a
    // sibling shard (a job's output_route to a different workstation —
    // §8.3); offer the message to the facade before giving up.
    if (peer_router_ != nullptr && peer_router_(client_name, m)) return;
    SHADOW_WARN() << config_.name << ": no connection for client "
                  << client_name;
    return;
  }
  send(it->second, m);
}

void ShadowServer::deliver_to_client(const std::string& client_name,
                                     const proto::Message& m) {
  auto it = clients_.find(client_name);
  if (it == clients_.end()) {
    SHADOW_WARN() << config_.name << ": routed message for unknown client "
                  << client_name;
    return;
  }
  send(it->second, m);
}

void ShadowServer::on_message(Connection* conn, Bytes wire) {
  if (conn->doomed) return;  // dead session awaiting reap
  // Any decodable traffic renews the lease (heartbeats exist for
  // connections with nothing else to say).
  conn->lease_renewed_us = now_micros();
  auto decoded = proto::decode_message(wire);
  if (!decoded.ok()) {
    telemetry::Registry::global()
        .counter(config_.telemetry_prefix + "server.malformed_dropped")
        .add();
    record_event(telemetry::EventKind::kMessage,
                 "malformed message dropped: " + decoded.error().to_string());
    SHADOW_WARN() << config_.name
                  << ": dropping malformed message: "
                  << decoded.error().to_string();
    return;
  }
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::Hello> ||
                      std::is_same_v<T, proto::NotifyNewVersion> ||
                      std::is_same_v<T, proto::Update> ||
                      std::is_same_v<T, proto::SubmitJob> ||
                      std::is_same_v<T, proto::StatusQuery> ||
                      std::is_same_v<T, proto::JobOutputAck> ||
                      std::is_same_v<T, proto::AdminQuery> ||
                      std::is_same_v<T, proto::Heartbeat>) {
          handle(conn, m);
        } else {
          SHADOW_WARN() << config_.name << ": unexpected message type "
                        << proto::message_type_name(proto::type_of(
                               proto::Message(std::move(m))));
        }
      },
      decoded.value());
}

ShadowServer::FileState& ShadowServer::file_state(
    const naming::GlobalFileId& id) {
  const std::string key = domains_.cache_key(id);
  auto it = files_.find(key);
  if (it == files_.end()) {
    FileState state;
    state.id = id;
    state.cache_key = key;
    it = files_.emplace(key, std::move(state)).first;
  }
  return it->second;
}

void ShadowServer::handle(Connection* conn, const proto::Hello& m) {
  conn->protocol_version = m.protocol_version;
  // Codec negotiation (docs/DELTAS.md): remember the intersection of what
  // the client can produce and what this server accepts. Legacy frames
  // decoded with kLegacyCodecs, so CDC is never in the intersection
  // unless both ends advertise it.
  const u32 server_codecs =
      config_.cdc_enabled ? proto::kAllCodecs : proto::kLegacyCodecs;
  conn->codecs = m.codecs & server_codecs;
  // Admission control at the door: a draining server takes no new
  // sessions, and a full shard sheds rather than degrading everyone.
  // The transport stays attached — the client backs off (retry_after)
  // and retries its Hello on the same or a fresh connection. Legacy (v0)
  // clients predate ServerBusy; they are never shed, only drained.
  const bool returning = clients_.count(m.client_name) != 0;
  if (draining_) {
    ++stats_.busy_rejects;
    record_event(telemetry::EventKind::kServer,
                 "hello from " + m.client_name + " refused (draining)");
    send_busy(conn, 0, "server draining");
    return;
  }
  if (!returning && m.protocol_version >= 1 &&
      config_.overload.max_connections != 0 &&
      clients_.size() >= config_.overload.max_connections) {
    ++stats_.busy_rejects;
    record_event(telemetry::EventKind::kServer,
                 "hello from " + m.client_name + " shed (connection cap " +
                     std::to_string(config_.overload.max_connections) + ")");
    send_busy(conn, 0, "connection budget exhausted");
    return;
  }
  conn->client_name = m.client_name;
  clients_[m.client_name] = conn;
  record_event(telemetry::EventKind::kServer,
               "hello from " + m.client_name + " (domain " + m.domain + ")");
  // Ensure the domain directory exists (paper §5.3: the server's name
  // space is divided into per-domain directories).
  domains_.domain(m.domain);
  proto::HelloReply reply;
  reply.server_name = config_.name;
  reply.codecs = server_codecs;
  send(conn, reply);
  // Results that finished while the client was away (e.g. the server was
  // restarted from its journal): deliver now that there is a connection.
  // Harmless on a first-ever Hello — the queue has nothing for this name.
  for (auto& [id, record] : queue_.all_mutable()) {
    if (record.client_name != m.client_name) continue;
    if (record.state == proto::JobState::kCompleted ||
        record.state == proto::JobState::kFailed) {
      deliver_output(record);
    }
  }
  schedule_jobs();
}

void ShadowServer::handle(Connection* conn, const proto::NotifyNewVersion& m) {
  ++stats_.notifies_received;
  FileState& state = file_state(m.file);
  // Version numbers are per-client. If a different workstation (same NFS
  // file, different mount path — §6.5) announces content that differs from
  // what we track, restart this file's history under the new owner.
  const bool owner_changed = !state.owner_client.empty() &&
                             state.owner_client != conn->client_name;
  // A version number at or below what we already track, with DIFFERENT
  // content, from the same client means the client restarted and its
  // numbering began anew.
  const bool client_restarted =
      !owner_changed && !state.owner_client.empty() &&
      m.version <= state.latest_known &&
      (m.crc != state.latest_crc || m.size != state.latest_size);
  if ((owner_changed &&
       (m.crc != state.latest_crc || m.size != state.latest_size)) ||
      client_restarted) {
    cache_.erase(state.cache_key);
    persist_eviction(state.cache_key);
    state.latest_known = 0;
    if (state.pull_outstanding != 0 && outstanding_pulls_ > 0) {
      --outstanding_pulls_;
    }
    state.pull_outstanding = 0;
  }
  if (m.version > state.latest_known) {
    state.latest_known = m.version;
    state.latest_size = m.size;
    state.latest_crc = m.crc;
  }
  state.owner_client = conn->client_name;
  if (config_.pull_policy == PullPolicy::kEager) {
    maybe_pull(state);
  }
}

void ShadowServer::maybe_pull(FileState& state, bool need_bytes) {
  if (state.latest_known == 0) return;
  const cache::CacheEntry* entry = cache_.peek(state.cache_key);
  const bool version_current =
      entry != nullptr && entry->version >= state.latest_known;
  // A digest entry satisfies version tracking but cannot feed a job's
  // sandbox: when bytes are needed and only digests (and no pin) are
  // resident, pull full content for the CURRENT version.
  bool materialize = false;
  if (version_current) {
    if (!need_bytes || entry->has_bytes()) return;  // up to date
    auto pinned = pinned_.find(state.cache_key);
    if (pinned != pinned_.end() &&
        pinned->second.version >= state.latest_known) {
      return;  // bytes already pinned for the job
    }
    materialize = true;
  }
  if (state.pull_outstanding >= state.latest_known) return;  // in flight
  if (state.owner_client.empty()) return;
  if (load_says_wait()) {
    state.pull_wanted = true;  // picked up by the load monitor's retry
    return;
  }
  if (outstanding_pulls_ >= config_.max_outstanding_pulls) {
    // Flow control: the server refuses to be overrun (§5.2); retry after
    // the next update drains a slot.
    state.pull_wanted = true;
    ++stats_.pulls_deferred;
    return;
  }
  proto::PullRequest pull;
  pull.file = state.id;
  if (materialize) {
    // have_version 0 = send the whole file; the digest entry stays (the
    // content is pinned for the job, not cached).
    pull.have_version = 0;
  } else if (entry != nullptr && !entry->has_bytes()) {
    // Digest-only base: only a CDC delta (or full content) can advance
    // it, so say so — otherwise the client might ship an ed script the
    // server has no bytes to apply to.
    pull.have_version = entry->version;
    pull.codec_hint = proto::kCodecCdc;
  } else {
    pull.have_version = entry == nullptr ? 0 : entry->version;
  }
  pull.want_version = state.latest_known;
  state.pull_outstanding = state.latest_known;
  state.pull_wanted = false;
  ++outstanding_pulls_;
  ++stats_.pulls_sent;
  send_to(state.owner_client, pull);
}

void ShadowServer::drain_deferred_pulls() {
  for (auto& [key, state] : files_) {
    if (outstanding_pulls_ >= config_.max_outstanding_pulls) return;
    if (state.pull_wanted) maybe_pull(state);
  }
}

void ShadowServer::handle(Connection* conn, const proto::Update& m) {
  ++stats_.updates_received;
  stats_.update_bytes += m.payload.size();
  FileState& state = file_state(m.file);
  state.owner_client = conn->client_name;
  if (state.pull_outstanding != 0) {
    state.pull_outstanding = 0;
    if (outstanding_pulls_ > 0) --outstanding_pulls_;
  } else {
    ++stats_.unsolicited_updates;  // request-driven client pushing
  }

  // Unwrap compression, then the delta.
  auto raw = compress::decompress(m.payload);
  if (!raw.ok()) {
    proto::UpdateAck nack;
    nack.file = m.file;
    nack.version = m.new_version;
    nack.ok = false;
    nack.error = raw.error().to_string();
    send(conn, nack);
    return;
  }
  BufReader reader(raw.value());
  auto delta = diff::Delta::decode(reader);
  if (delta.ok() && !reader.at_end()) {
    delta = Error{ErrorCode::kProtocolError,
                  "trailing bytes after delta payload"};
  }
  if (!delta.ok()) {
    proto::UpdateAck nack;
    nack.file = m.file;
    nack.version = m.new_version;
    nack.ok = false;
    nack.error = delta.error().to_string();
    send(conn, nack);
    return;
  }

  // CDC deltas never materialize content on the server: they advance the
  // file's chunk-digest signature instead (per-user memory O(digests)).
  if (delta.value().format == diff::Delta::Format::kCdc) {
    handle_cdc_update(conn, m, state, delta.value());
    return;
  }

  std::string content;
  if (delta.value().needs_base()) {
    ++stats_.delta_transfers;
    auto base = cache_.get(state.cache_key);
    if (!base.ok() || base.value()->version != m.base_version ||
        !base.value()->has_bytes()) {
      // Best-effort cache lost the base (or holds the wrong one, or holds
      // only its digests — a line delta cannot apply to a signature):
      // fall back to a full transfer (§5.1). No ack — the re-pull
      // supersedes.
      SHADOW_DEBUG() << config_.name << ": base v" << m.base_version
                     << " unavailable for " << m.file.display()
                     << "; re-pulling full";
      proto::PullRequest pull;
      pull.file = m.file;
      pull.have_version = 0;
      pull.want_version = m.new_version;
      state.pull_outstanding = m.new_version;
      ++outstanding_pulls_;
      ++stats_.pulls_sent;
      send(conn, pull);
      return;
    }
    auto applied = delta.value().apply(base.value()->content);
    if (!applied.ok()) {
      proto::PullRequest pull;
      pull.file = m.file;
      pull.have_version = 0;
      pull.want_version = m.new_version;
      state.pull_outstanding = m.new_version;
      ++outstanding_pulls_;
      ++stats_.pulls_sent;
      send(conn, pull);
      return;
    }
    content = std::move(applied).take();
  } else {
    ++stats_.full_transfers;
    // apply() on a full-content delta verifies full_crc — bit flips inside
    // the content survive decode, so skipping this would cache bad bytes.
    auto verified = delta.value().apply(std::string());
    if (!verified.ok()) {
      proto::UpdateAck nack;
      nack.file = m.file;
      nack.version = m.new_version;
      nack.ok = false;
      nack.error = verified.error().to_string();
      send(conn, nack);
      return;
    }
    content = std::move(verified).take();
  }

  const u32 content_crc =
      crc32(reinterpret_cast<const u8*>(content.data()), content.size());
  // The notify for this exact version told us its CRC. A mismatch means
  // the payload was damaged in flight yet still decoded (bit flips inside
  // the delta text): nack so the client resends full — never cache bad
  // bytes.
  if (m.new_version == state.latest_known && state.latest_crc != 0 &&
      content_crc != state.latest_crc) {
    // One shot only: the RECORDED crc may itself be the corrupted half
    // (a damaged notify). The nacked client resends full content, whose
    // own delta CRC vouches for it; accept that resend.
    state.latest_crc = 0;
    proto::UpdateAck nack;
    nack.file = m.file;
    nack.version = m.new_version;
    nack.ok = false;
    nack.error = "content crc mismatch";
    send(conn, nack);
    return;
  }
  if (m.new_version > state.latest_known) {
    state.latest_known = m.new_version;
    state.latest_size = content.size();
    state.latest_crc = content_crc;
  }

  // Pin the content if an active job needs it and the cache may refuse it.
  bool needed_by_job = false;
  for (const auto& [id, record] : queue_.all()) {
    if (record.state != proto::JobState::kQueued &&
        record.state != proto::JobState::kWaitingFiles) {
      continue;
    }
    for (const auto& ref : record.files) {
      if (domains_.cache_key(ref.file) == state.cache_key &&
          m.new_version >= ref.version) {
        needed_by_job = true;
      }
    }
  }
  // A CDC-tracked file stays digest-only even when full content arrives
  // (a materialize pull for a job, or a full-transfer fallback): the
  // server re-digests and keeps O(digests) resident; the bytes go to the
  // job pin, never the cache.
  const cache::CacheEntry* existing = cache_.peek(state.cache_key);
  if (existing != nullptr && !existing->has_bytes()) {
    const cdc::ChunkerParams params = existing->signature.params.valid()
                                          ? existing->signature.params
                                          : cdc::ChunkerParams{};
    cdc::Signature sig = cdc::signature_of(content, params);
    Bytes body = digest_record_body(state, m.new_version, content_crc, sig);
    if (needed_by_job) {
      pinned_[state.cache_key] = PinnedFile{m.new_version, content};
    }
    (void)cache_.put_digest(state.cache_key, m.new_version, std::move(sig),
                            content_crc);
    record_event(telemetry::EventKind::kCache,
                 "re-digested " + state.cache_key + " v" +
                     std::to_string(m.new_version) + " (" +
                     std::to_string(content.size()) + " bytes)");
    persist_append_then(
        persist::RecordType::kShadowDigest, std::move(body),
        [this, conn, client = conn->client_name, file = m.file,
         version = m.new_version] {
          proto::UpdateAck ack;
          ack.file = file;
          ack.version = version;
          ack.ok = true;
          send_if_attached(conn, client, ack);
          drain_deferred_pulls();
          schedule_jobs();
        });
    return;
  }

  Status put =
      cache_.put(state.cache_key, m.new_version, content, content_crc);
  if (!put.ok() && needed_by_job) {
    pinned_[state.cache_key] = PinnedFile{m.new_version, content};
  }
  record_event(telemetry::EventKind::kCache,
               (put.ok() ? "cached " : "cache refused ") + state.cache_key +
                   " v" + std::to_string(m.new_version) + " (" +
                   std::to_string(content.size()) + " bytes)");

  // The write-ahead rule: the ack below is a durability promise, so the
  // record must hit the journal (and survive its fsync) first. A refused
  // append means no ack — the client keeps the version and re-offers it
  // after reconnecting. Under group commit the record is written now and
  // the continuation waits for the batch fsync; classic mode runs it
  // inline.
  persist_append_then(
      persist::RecordType::kShadowCached,
      cached_record_body(state, m.new_version, content_crc, content),
      [this, conn, client = conn->client_name, file = m.file,
       version = m.new_version] {
        proto::UpdateAck ack;
        ack.file = file;
        ack.version = version;
        ack.ok = true;
        send_if_attached(conn, client, ack);
        drain_deferred_pulls();
        schedule_jobs();
      });
}

void ShadowServer::handle_cdc_update(Connection* conn, const proto::Update& m,
                                     FileState& state,
                                     const diff::Delta& delta) {
  ++stats_.delta_transfers;
  ++stats_.cdc_transfers;
  const cdc::CdcDelta& d = delta.cdc;

  // Resolve the base signature the copy ops reference. A digest entry IS
  // the signature; a content entry is chunked on the fly (the transition
  // put: from here on the file is digest-tracked); no copies need no base.
  const cache::CacheEntry* entry = cache_.peek(state.cache_key);
  cdc::Signature base_sig;
  base_sig.params = d.params;
  if (d.has_copies()) {
    if (entry == nullptr || entry->version != m.base_version) {
      // Best-effort cache lost the base (or holds the wrong one): fall
      // back to a full transfer (§5.1). No ack — the re-pull supersedes.
      SHADOW_DEBUG() << config_.name << ": cdc base v" << m.base_version
                     << " unavailable for " << m.file.display()
                     << "; re-pulling full";
      proto::PullRequest pull;
      pull.file = m.file;
      pull.have_version = 0;
      pull.want_version = m.new_version;
      state.pull_outstanding = m.new_version;
      ++outstanding_pulls_;
      ++stats_.pulls_sent;
      send(conn, pull);
      return;
    }
    base_sig = entry->has_bytes()
                   ? cdc::signature_of(entry->content, d.params)
                   : entry->signature;
  }

  // Advance digests only: copies are membership-checked against the base
  // signature, literals are digested, and the composed whole-file CRC
  // must match the sender's target CRC (the digest-mode verified apply).
  auto advanced = d.signature_after(base_sig);
  if (!advanced.ok()) {
    ++stats_.digest_advance_failures;
    proto::PullRequest pull;
    pull.file = m.file;
    pull.have_version = 0;
    pull.want_version = m.new_version;
    state.pull_outstanding = m.new_version;
    ++outstanding_pulls_;
    ++stats_.pulls_sent;
    send(conn, pull);
    return;
  }
  ++stats_.digest_advances;
  const u32 content_crc = d.target_crc;

  // Same notify-CRC cross-check as the content path, one shot only (the
  // recorded crc may itself be the damaged half).
  if (m.new_version == state.latest_known && state.latest_crc != 0 &&
      content_crc != state.latest_crc) {
    state.latest_crc = 0;
    proto::UpdateAck nack;
    nack.file = m.file;
    nack.version = m.new_version;
    nack.ok = false;
    nack.error = "content crc mismatch";
    send(conn, nack);
    return;
  }
  if (m.new_version > state.latest_known) {
    state.latest_known = m.new_version;
    state.latest_size = d.target_bytes;
    state.latest_crc = content_crc;
  }

  // Jobs need bytes, not digests. Materialize a pin when the delta alone
  // (all literals) or the resident base content allows it; otherwise the
  // scheduler issues a materialize pull for full content.
  bool needed_by_job = false;
  for (const auto& [id, record] : queue_.all()) {
    if (record.state != proto::JobState::kQueued &&
        record.state != proto::JobState::kWaitingFiles) {
      continue;
    }
    for (const auto& ref : record.files) {
      if (domains_.cache_key(ref.file) == state.cache_key &&
          m.new_version >= ref.version) {
        needed_by_job = true;
      }
    }
  }
  if (needed_by_job) {
    Result<std::string> bytes =
        Error{ErrorCode::kCacheMiss, "no bytes resident"};
    if (!d.has_copies()) {
      bytes = d.apply(std::string_view());
    } else if (entry != nullptr && entry->has_bytes() &&
               entry->version == m.base_version) {
      bytes = d.apply(entry->content);
    } else {
      // An earlier materialize pull may have pinned the base bytes for a
      // job still in the queue; advancing the pin with the delta beats
      // re-pulling the whole file when edits race the job.
      auto pin = pinned_.find(state.cache_key);
      if (pin != pinned_.end() && pin->second.version == m.base_version) {
        bytes = d.apply(pin->second.content);
      }
    }
    if (bytes.ok()) {
      pinned_[state.cache_key] =
          PinnedFile{m.new_version, std::move(bytes).take()};
    }
  }

  cdc::Signature sig = std::move(advanced).take();
  Bytes body = digest_record_body(state, m.new_version, content_crc, sig);
  (void)cache_.put_digest(state.cache_key, m.new_version, std::move(sig),
                          content_crc);
  record_event(telemetry::EventKind::kCache,
               "digest " + state.cache_key + " v" +
                   std::to_string(m.new_version) + " (" +
                   std::to_string(d.target_bytes) + " bytes described)");

  // Write-ahead rule, unchanged: the ack promises durability of the
  // digest record, so it waits for the journal fsync.
  persist_append_then(
      persist::RecordType::kShadowDigest, std::move(body),
      [this, conn, client = conn->client_name, file = m.file,
       version = m.new_version] {
        proto::UpdateAck ack;
        ack.file = file;
        ack.version = version;
        ack.ok = true;
        send_if_attached(conn, client, ack);
        drain_deferred_pulls();
        schedule_jobs();
      });
}

void ShadowServer::handle(Connection* conn, const proto::SubmitJob& m) {
  // Duplicate submit: the original or its reply was lost and the client
  // resent after a resync. Answer from the existing record instead of
  // queueing the job twice. Matching is scoped to this connection: token
  // counters restart with a client process, so an identical-looking
  // submission from a new connection is a genuinely new job.
  for (auto& [id, record] : queue_.all_mutable()) {
    if (record.submitted_via != conn ||
        record.client_name != conn->client_name ||
        record.client_job_token != m.client_job_token ||
        record.command_file != m.command_file) {
      continue;
    }
    proto::SubmitReply reply;
    reply.client_job_token = m.client_job_token;
    reply.job_id = record.job_id;
    reply.accepted = true;
    send(conn, reply);
    if (record.state == proto::JobState::kCompleted ||
        record.state == proto::JobState::kFailed) {
      deliver_output(record);
    }
    return;
  }
  ++stats_.jobs_submitted;
  // Unified overload budget: shed the submit with a retry hint while the
  // server is past any hard budget (drain, parked persist acks, queued
  // output bytes). Unlike the queue-full rejection below — which is
  // final — ServerBusy means "try the same job again in a moment".
  if (const char* refusal = admission_refusal(); refusal != nullptr) {
    ++stats_.busy_rejects;
    record_event(telemetry::EventKind::kJob,
                 "submit shed (" + std::string(refusal) + ") from " +
                     conn->client_name);
    if (conn->protocol_version >= 1) {
      send_busy(conn, m.client_job_token, refusal);
    } else {
      // Legacy clients understand only SubmitReply; refuse the old way.
      proto::SubmitReply reject;
      reject.client_job_token = m.client_job_token;
      reject.job_id = 0;
      reject.accepted = false;
      reject.reason = refusal;
      send(conn, reject);
    }
    return;
  }
  // Admission control: a saturated batch queue refuses new work rather
  // than letting it pile up without bound (§5.2's overload concern).
  if (config_.max_queued_jobs != 0 &&
      queue_.active_count() >= config_.max_queued_jobs) {
    ++stats_.jobs_rejected;
    record_event(telemetry::EventKind::kJob,
                 "submit rejected (queue full) from " + conn->client_name);
    proto::SubmitReply reject;
    reject.client_job_token = m.client_job_token;
    reject.job_id = 0;
    reject.accepted = false;
    reject.reason = "job queue full (" +
                    std::to_string(config_.max_queued_jobs) + " active)";
    send(conn, reject);
    return;
  }
  job::JobRecord record;
  record.client_name = conn->client_name;
  record.submitted_via = conn;
  record.client_job_token = m.client_job_token;
  record.command_file = m.command_file;
  record.files = m.files;
  record.output_name = m.output_name;
  record.error_name = m.error_name;
  record.output_route = m.output_route;
  record.detail = "queued";
  const u64 job_id = queue_.add(std::move(record));

  // Record what the job will need; the submitting client serves pulls.
  for (const auto& ref : m.files) {
    FileState& state = file_state(ref.file);
    // Owner change with different content: per-client version numbers
    // restart, exactly as in the NotifyNewVersion handler.
    if (!state.owner_client.empty() &&
        state.owner_client != conn->client_name &&
        ref.crc != state.latest_crc) {
      cache_.erase(state.cache_key);
      persist_eviction(state.cache_key);
      state.latest_known = 0;
      if (state.pull_outstanding != 0 && outstanding_pulls_ > 0) {
        --outstanding_pulls_;
      }
      state.pull_outstanding = 0;
    }
    if (ref.version > state.latest_known) {
      state.latest_known = ref.version;
      state.latest_crc = ref.crc;
      // The submitter holds this version; it must serve the pull.
      state.owner_client = conn->client_name;
    }
    if (state.owner_client.empty()) state.owner_client = conn->client_name;
  }

  // Journal the accepted job before the SubmitReply: an acked job id is a
  // promise that the job survives a server crash. If the record is never
  // durable there is no reply; the client resubmits after reconnect.
  Bytes job_body;
  {
    auto added = queue_.find(job_id);
    BufWriter w;
    job::encode_job_record(*added.value(), w);
    job_body = w.take();
  }
  // Event details are one-line; keep only the command's first line.
  std::string command_head =
      m.command_file.substr(0, m.command_file.find('\n'));
  persist_append_then(
      persist::RecordType::kJobSubmitted, std::move(job_body),
      [this, conn, client = conn->client_name, job_id,
       token = m.client_job_token, command_head] {
        record_event(telemetry::EventKind::kJob,
                     "job " + std::to_string(job_id) + " accepted from " +
                         client + " (" + command_head + ")");
        proto::SubmitReply reply;
        reply.client_job_token = token;
        reply.job_id = job_id;
        reply.accepted = true;
        send_if_attached(conn, client, reply);
        schedule_jobs();
      });
}

bool ShadowServer::files_ready(const job::JobRecord& record) const {
  for (const auto& ref : record.files) {
    // cache_key() interns, so use the const-safe lookup path.
    const auto* dir = domains_.find(ref.file.domain);
    if (dir == nullptr) return false;
    const auto sid = dir->lookup(ref.file);
    if (!sid) return false;
    const std::string key =
        ref.file.domain + "/" + std::to_string(*sid);
    // Only entries with resident BYTES count: a digest entry tracks the
    // version but cannot fill an executor sandbox.
    const auto* entry = cache_.peek(key);
    if (entry != nullptr && entry->has_bytes() &&
        entry->version >= ref.version) {
      continue;
    }
    auto pinned = pinned_.find(key);
    if (pinned != pinned_.end() && pinned->second.version >= ref.version) {
      continue;
    }
    return false;
  }
  return true;
}

void ShadowServer::schedule_jobs() {
  for (auto& [id, record] : queue_.all_mutable()) {
    if (record.state != proto::JobState::kQueued &&
        record.state != proto::JobState::kWaitingFiles) {
      continue;
    }
    if (files_ready(record)) {
      if (running_jobs_ < config_.max_concurrent_jobs &&
          !load_says_wait()) {
        start_job(record);
      }
      continue;
    }
    // Demand-driven: pull exactly what the job is missing.
    if (record.state == proto::JobState::kQueued) {
      (void)queue_.transition(record.job_id, proto::JobState::kWaitingFiles,
                              "waiting for input files");
    }
    for (const auto& ref : record.files) {
      FileState& state = file_state(ref.file);
      // Jobs need bytes: a current-but-digest-only entry still pulls.
      maybe_pull(state, /*need_bytes=*/true);
    }
  }
}

void ShadowServer::start_job(job::JobRecord& record) {
  std::map<std::string, std::string> sandbox;
  for (const auto& ref : record.files) {
    const std::string key = domains_.cache_key(ref.file);
    auto cached = cache_.get(key);
    if (cached.ok() && cached.value()->has_bytes() &&
        cached.value()->version >= ref.version) {
      sandbox[ref.local_name] = cached.value()->content;
      continue;
    }
    auto pinned = pinned_.find(key);
    if (pinned != pinned_.end() && pinned->second.version >= ref.version) {
      sandbox[ref.local_name] = pinned->second.content;
      continue;
    }
    // Evicted between readiness check and start (or resident as digests
    // only): go back to waiting and pull real bytes.
    (void)queue_.transition(record.job_id, proto::JobState::kWaitingFiles,
                            "input evicted before start; re-pulling");
    FileState& state = file_state(ref.file);
    maybe_pull(state, /*need_bytes=*/true);
    return;
  }

  (void)queue_.transition(record.job_id, proto::JobState::kRunning,
                          "running");
  // Non-gating: losing this record just means the crash-recovered job
  // replays as still-queued and runs again from scratch.
  {
    BufWriter w;
    w.put_varint(record.job_id);
    persist_append_then(persist::RecordType::kJobStarted, w.take(),
                        nullptr);
  }
  ++running_jobs_;
  load_monitor_.set_demand(static_cast<double>(running_jobs_));

  auto outcome = executor_.run_command_file(record.command_file,
                                            std::move(sandbox));
  job::ExecutionResult result;
  if (outcome.ok()) {
    result = std::move(outcome).take();
  } else {
    result.exit_code = 2;
    result.error = outcome.error().to_string() + "\n";
  }

  const u64 job_id = record.job_id;
  if (sim_ != nullptr) {
    const double seconds =
        static_cast<double>(result.cpu_cost) / config_.cpu_ops_per_second;
    sim_->schedule(sim::from_seconds(seconds),
                   [this, job_id, result = std::move(result)]() mutable {
                     finish_job(job_id, std::move(result));
                   });
  } else {
    finish_job(job_id, std::move(result));
  }
}

void ShadowServer::finish_job(u64 job_id, job::ExecutionResult result) {
  auto found = queue_.find(job_id);
  if (!found.ok()) return;
  job::JobRecord& record = *found.value();
  if (running_jobs_ > 0) --running_jobs_;
  load_monitor_.set_demand(static_cast<double>(running_jobs_));

  record.exit_code = result.exit_code;
  record.cpu_cost = result.cpu_cost;
  record.error_content = result.error;
  // The job's declared output file, if it produced one, takes priority;
  // otherwise stdout is the output (classic batch semantics).
  auto produced = result.sandbox.find(record.output_name);
  record.output_content = (produced != result.sandbox.end())
                              ? produced->second
                              : result.output;

  if (result.exit_code == 0) {
    ++stats_.jobs_completed;
    (void)queue_.transition(job_id, proto::JobState::kCompleted, "completed");
  } else {
    ++stats_.jobs_failed;
    (void)queue_.transition(job_id, proto::JobState::kFailed,
                            "failed: " + result.error);
  }
  record_event(telemetry::EventKind::kJob,
               "job " + std::to_string(job_id) +
                   (result.exit_code == 0 ? " completed" : " failed") +
                   " (exit " + std::to_string(result.exit_code) + ")");

  // The result must be durable before it is delivered: the client's
  // JobOutputAck would otherwise mark delivered a result a crashed server
  // no longer has. The continuation re-finds the record — under group
  // commit it runs after this frame is long gone.
  persist_append_then(persist::RecordType::kJobFinished,
                      finished_record_body(record), [this, job_id] {
                        auto finished = queue_.find(job_id);
                        if (finished.ok()) deliver_output(*finished.value());
                      });

  release_pins(record);

  // A freed job slot may unblock the next queued job.
  schedule_jobs();
}

void ShadowServer::release_pins(const job::JobRecord& finished) {
  for (const auto& ref : finished.files) {
    const std::string key = domains_.cache_key(ref.file);
    auto it = pinned_.find(key);
    if (it == pinned_.end()) continue;
    bool still_needed = false;
    for (const auto& [id, record] : queue_.all()) {
      if (record.job_id == finished.job_id) continue;
      if (record.state != proto::JobState::kQueued &&
          record.state != proto::JobState::kWaitingFiles &&
          record.state != proto::JobState::kRunning) {
        continue;
      }
      for (const auto& other_ref : record.files) {
        if (domains_.cache_key(other_ref.file) == key) still_needed = true;
      }
    }
    if (!still_needed) pinned_.erase(it);
  }
}

std::string ShadowServer::job_signature(const job::JobRecord& record) {
  std::string sig = record.client_name + "|" + record.output_name + "|" +
                    record.command_file;
  std::vector<std::string> keys;
  for (const auto& ref : record.files) keys.push_back(ref.file.key());
  std::sort(keys.begin(), keys.end());
  for (const auto& k : keys) sig += "|" + k;
  return sig;
}

void ShadowServer::deliver_output(job::JobRecord& record) {
  const std::string route = record.output_route.empty()
                                ? record.client_name
                                : record.output_route;

  proto::JobOutput out;
  out.job_id = record.job_id;
  out.client_job_token = record.client_job_token;
  out.exit_code = record.exit_code;
  out.output_name = record.output_name;
  out.error_name = record.error_name;

  // Reverse shadow processing (§8.3): delta against the previous output of
  // the same job. Only applicable when output goes back to the same place.
  diff::Delta output_delta = diff::Delta::make_full(record.output_content);
  const std::string sig = job_signature(record);
  if (config_.reverse_shadow) {
    auto prev = output_cache_.find(sig);
    if (prev != output_cache_.end()) {
      output_delta =
          diff::Delta::compute(prev->second.content, record.output_content,
                               config_.output_delta_algo);
      if (output_delta.needs_base()) {
        out.output_base_generation = prev->second.generation;
        ++stats_.output_delta_hits;
      }
    }
    auto& entry = output_cache_[sig];
    entry.generation += 1;
    entry.content = record.output_content;
    out.output_generation = entry.generation;
    // Non-gating: a lost reverse-shadow base costs one full output
    // transfer on the next re-run, never correctness.
    BufWriter w;
    w.put_string(sig);
    w.put_varint(entry.generation);
    w.put_string(entry.content);
    persist_append_then(persist::RecordType::kOutputStored, w.take(),
                        nullptr);
  }

  BufWriter w;
  output_delta.encode(w);
  out.output_payload = compress::compress(w.take(), config_.output_codec);

  BufWriter ew;
  diff::Delta::make_full(record.error_content).encode(ew);
  out.error_payload = compress::compress(ew.take(), config_.output_codec);

  ++stats_.outputs_sent;
  stats_.output_bytes += out.output_payload.size() + out.error_payload.size();
  send_to(route, out);
}

void ShadowServer::handle(Connection* conn, const proto::StatusQuery& m) {
  proto::StatusReply reply;
  if (m.job_id == 0) {
    reply.jobs = queue_.status_for_client(conn->client_name);
  } else {
    auto found = queue_.find(m.job_id);
    if (found.ok()) {
      proto::JobStatusInfo info;
      info.job_id = m.job_id;
      info.client_job_token = found.value()->client_job_token;
      info.state = found.value()->state;
      info.detail = found.value()->detail;
      reply.jobs.push_back(std::move(info));
    }
  }
  send(conn, reply);
}

void ShadowServer::handle(Connection* conn, const proto::JobOutputAck& m) {
  auto found = queue_.find(m.job_id);
  if (!found.ok()) return;
  job::JobRecord& record = *found.value();
  if (m.ok) {
    if (record.state == proto::JobState::kCompleted ||
        record.state == proto::JobState::kFailed) {
      (void)queue_.transition(m.job_id, proto::JobState::kDelivered,
                              "output delivered");
      // Non-gating: if this record is lost the job replays as kCompleted
      // and the output is re-delivered — a duplicate, not a loss.
      BufWriter w;
      w.put_varint(m.job_id);
      persist_append_then(persist::RecordType::kJobDelivered, w.take(),
                          nullptr);
    }
    return;
  }
  // Client could not apply the output delta (lost its previous output):
  // resend as full content.
  SHADOW_DEBUG() << config_.name << ": client " << conn->client_name
                 << " nacked output of job " << m.job_id
                 << " (" << m.error << "); resending full";
  proto::JobOutput out;
  out.job_id = record.job_id;
  out.client_job_token = record.client_job_token;
  out.exit_code = record.exit_code;
  out.output_name = record.output_name;
  out.error_name = record.error_name;
  if (config_.reverse_shadow) {
    auto it = output_cache_.find(job_signature(record));
    if (it != output_cache_.end()) out.output_generation = it->second.generation;
  }
  BufWriter w;
  diff::Delta::make_full(record.output_content).encode(w);
  out.output_payload = compress::compress(w.take(), config_.output_codec);
  BufWriter ew;
  diff::Delta::make_full(record.error_content).encode(ew);
  out.error_payload = compress::compress(ew.take(), config_.output_codec);
  ++stats_.outputs_sent;
  stats_.output_bytes += out.output_payload.size() + out.error_payload.size();
  const std::string route = record.output_route.empty()
                                ? record.client_name
                                : record.output_route;
  send_to(route, out);
}

void ShadowServer::handle(Connection* conn, const proto::AdminQuery& m) {
  // Read-only: refresh the mirrored server.*/load.* values, then answer
  // from the global registry. Version mismatches come back ok=false from
  // the builder; the query mutates nothing, so it is chaos-safe.
  sync_telemetry();
  send(conn, proto::build_admin_reply(m, telemetry::Registry::global(),
                                      config_.name));
}

namespace {
constexpr u32 kServerSnapshotMagic = 0x53485356;  // "SHSV"
// v2 appended the job queue (crash-consistent durability needs jobs in
// the compacted snapshot, not only in the journal). v3 appended the
// shard manifest (shard id + shard count) for the thread-per-core
// server; v2 snapshots still restore (as shard 0 of 1). v4 added the
// per-entry kind byte to the cache section (content vs digest-only CDC
// entries); v2/v3 snapshots decode every entry as content.
constexpr u8 kSnapshotVersion = 4;
constexpr u8 kMinSnapshotVersion = 2;
}  // namespace

Bytes ShadowServer::save_state() const {
  BufWriter w;
  w.put_u32(kServerSnapshotMagic);
  w.put_u8(kSnapshotVersion);
  cache_.encode(w);
  domains_.encode(w);
  w.put_varint(files_.size());
  for (const auto& [key, state] : files_) {
    w.put_string(key);
    state.id.encode(w);
    w.put_varint(state.latest_known);
    w.put_varint(state.latest_size);
    w.put_u32(state.latest_crc);
    w.put_string(state.owner_client);
  }
  w.put_varint(output_cache_.size());
  for (const auto& [sig, entry] : output_cache_) {
    w.put_string(sig);
    w.put_varint(entry.generation);
    w.put_string(entry.content);
  }
  queue_.encode(w);
  // v3 shard manifest, at the tail so a v2 reader-shaped layout precedes
  // it unchanged.
  w.put_varint(config_.shard_id);
  w.put_varint(config_.shard_count);
  return w.take();
}

Status ShadowServer::restore_state(const Bytes& snapshot) {
  BufReader r(snapshot);
  SHADOW_ASSIGN_OR_RETURN(magic, r.get_u32());
  SHADOW_ASSIGN_OR_RETURN(version, r.get_u8());
  if (magic != kServerSnapshotMagic || version < kMinSnapshotVersion ||
      version > kSnapshotVersion) {
    return Error{ErrorCode::kInvalidArgument, "not a server snapshot"};
  }
  SHADOW_TRY(cache_.restore(r, /*with_kinds=*/version >= 4));
  SHADOW_ASSIGN_OR_RETURN(domains, naming::DomainMap::decode(r));
  domains_ = std::move(domains);
  SHADOW_ASSIGN_OR_RETURN(file_count, r.get_varint());
  if (file_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "file count exceeds data"};
  }
  files_.clear();
  for (u64 i = 0; i < file_count; ++i) {
    FileState state;
    SHADOW_ASSIGN_OR_RETURN(key, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(id, naming::GlobalFileId::decode(r));
    SHADOW_ASSIGN_OR_RETURN(latest, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(size, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
    SHADOW_ASSIGN_OR_RETURN(owner, r.get_string());
    state.id = std::move(id);
    state.cache_key = key;
    state.latest_known = latest;
    state.latest_size = size;
    state.latest_crc = crc;
    state.owner_client = std::move(owner);
    // No pulls are in flight in a fresh process.
    state.pull_outstanding = 0;
    state.pull_wanted = false;
    files_.emplace(std::move(key), std::move(state));
  }
  SHADOW_ASSIGN_OR_RETURN(output_count, r.get_varint());
  if (output_count > r.remaining()) {
    return Error{ErrorCode::kProtocolError, "output count exceeds data"};
  }
  output_cache_.clear();
  for (u64 i = 0; i < output_count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(sig, r.get_string());
    SHADOW_ASSIGN_OR_RETURN(generation, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(content, r.get_string());
    output_cache_[sig] = OutputCacheEntry{generation, std::move(content)};
  }
  SHADOW_ASSIGN_OR_RETURN(queue, job::JobQueue::restore(r));
  queue_ = std::move(queue);
  if (version >= 3) {
    SHADOW_ASSIGN_OR_RETURN(snap_shard, r.get_varint());
    SHADOW_ASSIGN_OR_RETURN(snap_count, r.get_varint());
    // A re-sharded deployment (e.g. --threads 4 over a store written with
    // --threads 2) changes which shard owns which file. Stale entries are
    // only cache — clients re-announce and re-pull on reconnect — so warn
    // and keep what we have rather than refuse to start.
    if (snap_shard != config_.shard_id || snap_count != config_.shard_count) {
      SHADOW_WARN() << config_.name << ": snapshot written as shard "
                    << snap_shard << "/" << snap_count << ", recovering as "
                    << config_.shard_id << "/" << config_.shard_count
                    << "; cached state may belong to sibling shards";
    }
  }
  if (!r.at_end()) {
    return Error{ErrorCode::kProtocolError, "trailing bytes in snapshot"};
  }
  outstanding_pulls_ = 0;
  return Status();
}

void ShadowServer::reset_volatile_state() {
  cache_.clear();
  domains_ = naming::DomainMap();
  queue_ = job::JobQueue();
  files_.clear();
  output_cache_.clear();
  pinned_.clear();
  outstanding_pulls_ = 0;
}

namespace {
/// Shadow id encoded in a cache key ("<domain>/<shadow-id>"), or nullopt
/// for a malformed key (possible only with a corrupted-but-CRC-colliding
/// journal; the caller skips the record).
std::optional<std::pair<std::string, naming::ShadowId>> split_cache_key(
    const std::string& key) {
  const auto slash = key.rfind('/');
  if (slash == std::string::npos || slash + 1 >= key.size()) {
    return std::nullopt;
  }
  naming::ShadowId sid = 0;
  for (std::size_t i = slash + 1; i < key.size(); ++i) {
    const char c = key[i];
    if (c < '0' || c > '9') return std::nullopt;
    if (sid > (~u64{0} - (c - '0')) / 10) return std::nullopt;  // overflow
    sid = sid * 10 + static_cast<u64>(c - '0');
  }
  return std::make_pair(key.substr(0, slash), sid);
}
}  // namespace

Status ShadowServer::replay_record(const persist::JournalRecord& record) {
  BufReader r(record.body);
  switch (record.type) {
    case persist::RecordType::kShadowCached: {
      SHADOW_ASSIGN_OR_RETURN(id, naming::GlobalFileId::decode(r));
      SHADOW_ASSIGN_OR_RETURN(key, r.get_string());
      SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
      SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
      SHADOW_ASSIGN_OR_RETURN(content, r.get_string());
      SHADOW_ASSIGN_OR_RETURN(owner, r.get_string());
      const auto split = split_cache_key(key);
      if (!split) {
        return Error{ErrorCode::kProtocolError, "malformed cache key " + key};
      }
      domains_.bind(id, split->second);
      FileState& state = files_[key];
      state.id = std::move(id);
      state.cache_key = key;
      if (version >= state.latest_known) {
        state.latest_known = version;
        state.latest_size = content.size();
        state.latest_crc = crc;
        state.owner_client = std::move(owner);
      }
      state.pull_outstanding = 0;
      state.pull_wanted = false;
      // A refused put (over budget) is the cache's normal best-effort
      // behaviour, not a replay failure.
      (void)cache_.put(key, version, std::move(content), crc);
      return Status();
    }
    case persist::RecordType::kShadowDigest: {
      SHADOW_ASSIGN_OR_RETURN(id, naming::GlobalFileId::decode(r));
      SHADOW_ASSIGN_OR_RETURN(key, r.get_string());
      SHADOW_ASSIGN_OR_RETURN(version, r.get_varint());
      SHADOW_ASSIGN_OR_RETURN(crc, r.get_u32());
      SHADOW_ASSIGN_OR_RETURN(sig, cdc::Signature::decode(r));
      SHADOW_ASSIGN_OR_RETURN(owner, r.get_string());
      const auto split = split_cache_key(key);
      if (!split) {
        return Error{ErrorCode::kProtocolError, "malformed cache key " + key};
      }
      domains_.bind(id, split->second);
      FileState& state = files_[key];
      state.id = std::move(id);
      state.cache_key = key;
      if (version >= state.latest_known) {
        state.latest_known = version;
        state.latest_size = sig.total_bytes();
        state.latest_crc = crc;
        state.owner_client = std::move(owner);
      }
      state.pull_outstanding = 0;
      state.pull_wanted = false;
      (void)cache_.put_digest(key, version, std::move(sig), crc);
      return Status();
    }
    case persist::RecordType::kShadowEvicted: {
      SHADOW_ASSIGN_OR_RETURN(key, r.get_string());
      cache_.erase(key);
      auto it = files_.find(key);
      if (it != files_.end()) it->second.latest_known = 0;
      return Status();
    }
    case persist::RecordType::kJobSubmitted: {
      SHADOW_ASSIGN_OR_RETURN(job, job::decode_job_record(r));
      // Seed per-file knowledge so the rerun can pull what it needs once
      // the owner reconnects; intern is safe — every key the journal ever
      // assigned was bound in the pre-pass.
      for (const auto& ref : job.files) {
        FileState& state = file_state(ref.file);
        if (ref.version > state.latest_known) {
          state.latest_known = ref.version;
          state.latest_crc = ref.crc;
          state.owner_client = job.client_name;
        }
        if (state.owner_client.empty()) state.owner_client = job.client_name;
      }
      queue_.restore_record(std::move(job));
      return Status();
    }
    case persist::RecordType::kJobStarted: {
      SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
      auto found = queue_.find(job_id);
      if (!found.ok()) return Status();  // older than the snapshot horizon
      job::JobRecord& job = *found.value();
      if (job.state == proto::JobState::kQueued ||
          job.state == proto::JobState::kWaitingFiles) {
        job.state = proto::JobState::kRunning;
        job.detail = "running (journal)";
      }
      return Status();
    }
    case persist::RecordType::kJobFinished: {
      SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
      SHADOW_ASSIGN_OR_RETURN(state_raw, r.get_u8());
      SHADOW_ASSIGN_OR_RETURN(exit_code, r.get_varint_signed());
      SHADOW_ASSIGN_OR_RETURN(output_content, r.get_string());
      SHADOW_ASSIGN_OR_RETURN(error_content, r.get_string());
      SHADOW_ASSIGN_OR_RETURN(cpu_cost, r.get_varint());
      SHADOW_ASSIGN_OR_RETURN(detail, r.get_string());
      if (state_raw != static_cast<u8>(proto::JobState::kCompleted) &&
          state_raw != static_cast<u8>(proto::JobState::kFailed)) {
        return Error{ErrorCode::kProtocolError, "bad finished state"};
      }
      auto found = queue_.find(job_id);
      if (!found.ok()) return Status();
      job::JobRecord& job = *found.value();
      if (job.state == proto::JobState::kDelivered) return Status();
      job.state = static_cast<proto::JobState>(state_raw);
      job.exit_code = static_cast<int>(exit_code);
      job.output_content = std::move(output_content);
      job.error_content = std::move(error_content);
      job.cpu_cost = cpu_cost;
      job.detail = std::move(detail);
      return Status();
    }
    case persist::RecordType::kJobDelivered: {
      SHADOW_ASSIGN_OR_RETURN(job_id, r.get_varint());
      auto found = queue_.find(job_id);
      if (!found.ok()) return Status();
      job::JobRecord& job = *found.value();
      if (job.state == proto::JobState::kCompleted ||
          job.state == proto::JobState::kFailed) {
        job.state = proto::JobState::kDelivered;
        job.detail = "output delivered";
      }
      return Status();
    }
    case persist::RecordType::kOutputStored: {
      SHADOW_ASSIGN_OR_RETURN(sig, r.get_string());
      SHADOW_ASSIGN_OR_RETURN(generation, r.get_varint());
      SHADOW_ASSIGN_OR_RETURN(content, r.get_string());
      auto& entry = output_cache_[sig];
      if (generation >= entry.generation) {
        entry.generation = generation;
        entry.content = std::move(content);
      }
      return Status();
    }
  }
  return Error{ErrorCode::kProtocolError,
               "unknown record type " +
                   std::to_string(static_cast<unsigned>(record.type))};
}

void ShadowServer::requeue_orphans() {
  for (auto& [id, record] : queue_.all_mutable()) {
    if (record.state != proto::JobState::kRunning) continue;
    if (record.retries >= config_.max_job_retries) {
      // Enough is enough: a job that dies with the server on every
      // attempt is failed for good, and the owner is told why (the
      // failure is delivered like any other result).
      ++stats_.retry_capped_jobs;
      ++stats_.jobs_failed;
      record.state = proto::JobState::kFailed;
      record.exit_code = 2;
      record.detail = "failed: interrupted by repeated server crashes";
      record.error_content =
          "job " + std::to_string(id) + " was interrupted by a server "
          "crash " + std::to_string(record.retries + 1) + " time(s); "
          "retry limit (" + std::to_string(config_.max_job_retries) +
          ") reached, not re-queued\n";
      record.output_content.clear();
    } else {
      (void)queue_.requeue(id, "re-queued after server restart");
      ++stats_.requeued_jobs;
    }
  }
}

Status ShadowServer::recover_from_storage() {
  if (store_ == nullptr) return Status();
  SHADOW_ASSIGN_OR_RETURN(recovered, store_->recover());

  bool dirty = recovered.journal_torn || recovered.snapshot_corrupt;
  if (!recovered.snapshot.empty()) {
    Status st = restore_state(recovered.snapshot);
    if (!st.ok()) {
      // Same posture as a CRC failure inside the store: a snapshot this
      // process cannot parse degrades to journal-only recovery.
      SHADOW_WARN() << config_.name << ": snapshot unusable ("
                    << st.to_string() << "); replaying journal only";
      reset_volatile_state();
      dirty = true;
    } else {
      dirty = true;
    }
  }

  // Pre-pass: bind every (file id, shadow id) pair the journal assigned
  // BEFORE any record is replayed. Replaying a job first could otherwise
  // intern one of its files under a fresh id that a later kShadowCached
  // record claims for a different file.
  for (const auto& record : recovered.records) {
    if (record.type != persist::RecordType::kShadowCached) continue;
    BufReader r(record.body);
    auto id = naming::GlobalFileId::decode(r);
    auto key = r.get_string();
    if (!id.ok() || !key.ok()) continue;  // full replay will reject it
    const auto split = split_cache_key(key.value());
    if (split) domains_.bind(id.value(), split->second);
  }

  for (const auto& record : recovered.records) {
    Status st = replay_record(record);
    if (!st.ok()) {
      // A record that passed its CRC but does not decode is as trustworthy
      // as a torn tail: stop here and keep the clean prefix.
      SHADOW_WARN() << config_.name << ": journal replay stopped at offset "
                    << record.offset << ": " << st.to_string();
      dirty = true;
      break;
    }
    ++stats_.recovered_records;
    dirty = true;
  }

  requeue_orphans();

  record_event(telemetry::EventKind::kServer,
               "recovered from storage: " +
                   std::to_string(stats_.recovered_records) +
                   " journal records replayed");

  if (dirty) {
    // Fold the replay into a fresh snapshot and truncate — this is also
    // what durably discards a torn tail instead of re-reading it forever.
    Status cs = store_->compact(save_state());
    if (!cs.ok()) {
      persist_dead_ = true;
      ++stats_.journal_failures;
      SHADOW_WARN() << config_.name << ": post-recovery compaction failed: "
                    << cs.to_string();
    } else {
      ++stats_.compactions;
    }
  }

  schedule_jobs();
  return Status();
}

void ShadowServer::sync_telemetry() const {
  auto& r = telemetry::Registry::global();
  // Every name carries this server's prefix ("shard2." on shard 2 of a
  // ShardedServer, empty standalone) so `shadowtop --filter shard2.`
  // selects one shard's view; the facade writes the aggregated plain
  // server.* names.
  const std::string& p = config_.telemetry_prefix;
  // store(), not add(): these counters MIRROR the authoritative ServerStats
  // accumulators, so re-syncing is idempotent.
  r.counter(p + "server.notifies_received").store(stats_.notifies_received);
  r.counter(p + "server.pulls_sent").store(stats_.pulls_sent);
  r.counter(p + "server.pulls_deferred").store(stats_.pulls_deferred);
  r.counter(p + "server.updates_received").store(stats_.updates_received);
  r.counter(p + "server.update_bytes").store(stats_.update_bytes);
  r.counter(p + "server.full_transfers").store(stats_.full_transfers);
  r.counter(p + "server.delta_transfers").store(stats_.delta_transfers);
  r.counter(p + "server.jobs_submitted").store(stats_.jobs_submitted);
  r.counter(p + "server.jobs_rejected").store(stats_.jobs_rejected);
  r.counter(p + "server.jobs_completed").store(stats_.jobs_completed);
  r.counter(p + "server.jobs_failed").store(stats_.jobs_failed);
  r.counter(p + "server.outputs_sent").store(stats_.outputs_sent);
  r.counter(p + "server.output_bytes").store(stats_.output_bytes);
  r.counter(p + "server.output_delta_hits").store(stats_.output_delta_hits);
  r.counter(p + "server.unsolicited_updates")
      .store(stats_.unsolicited_updates);
  r.counter(p + "server.deferred_by_load").store(stats_.deferred_by_load);
  r.counter(p + "server.session_resyncs").store(stats_.session_resyncs);
  r.counter(p + "server.journal_appends").store(stats_.journal_appends);
  r.counter(p + "server.journal_failures").store(stats_.journal_failures);
  r.counter(p + "server.acks_deferred").store(stats_.acks_deferred);
  r.counter(p + "server.persist_flushes").store(stats_.persist_flushes);
  r.counter(p + "server.compactions").store(stats_.compactions);
  r.counter(p + "server.recovered_records").store(stats_.recovered_records);
  r.counter(p + "server.requeued_jobs").store(stats_.requeued_jobs);
  r.counter(p + "server.retry_capped_jobs").store(stats_.retry_capped_jobs);

  // CDC digest tracking (docs/DELTAS.md): how many transfers arrived as
  // chunk deltas, whether the server could advance its signature without
  // the bytes, and what the digest-only entries cost vs represent.
  r.counter(p + "server.cdc_transfers").store(stats_.cdc_transfers);
  r.counter(p + "server.digest_advances").store(stats_.digest_advances);
  r.counter(p + "server.digest_advance_failures")
      .store(stats_.digest_advance_failures);
  const auto digests = cache_.digest_stats();
  r.gauge(p + "server.digest_entries")
      .set(static_cast<double>(digests.entries));
  r.gauge(p + "server.digest_resident_bytes")
      .set(static_cast<double>(digests.resident_bytes));
  r.gauge(p + "server.digest_represented_bytes")
      .set(static_cast<double>(digests.represented_bytes));

  // Overload control & leases (docs/OPERATIONS.md): how much work the
  // server is refusing, and why.
  r.counter(p + "overload.busy_rejects").store(stats_.busy_rejects);
  r.counter(p + "overload.conns_dropped")
      .store(stats_.conns_dropped_overflow);
  r.counter(p + "overload.drain_notices").store(stats_.drain_notices);
  r.counter(p + "lease.expired").store(stats_.leases_expired);
  r.counter(p + "lease.heartbeats").store(stats_.heartbeats_received);
  r.gauge(p + "overload.queued_bytes")
      .set(static_cast<double>(total_queued_bytes()));
  r.gauge(p + "overload.draining").set(draining_ ? 1.0 : 0.0);
  r.gauge(p + "lease.usec").set(static_cast<double>(config_.lease_usec));

  r.gauge(p + "server.connections")
      .set(static_cast<double>(connections_.size()));
  r.gauge(p + "server.named_clients")
      .set(static_cast<double>(clients_.size()));
  r.gauge(p + "server.tracked_files").set(static_cast<double>(files_.size()));
  r.gauge(p + "server.outstanding_pulls")
      .set(static_cast<double>(outstanding_pulls_));
  r.gauge(p + "server.running_jobs").set(static_cast<double>(running_jobs_));
  r.gauge(p + "server.active_jobs")
      .set(static_cast<double>(queue_.active_count()));
  r.gauge(p + "server.cache_bytes")
      .set(static_cast<double>(cache_.bytes_used()));
  r.gauge(p + "server.cache_entries")
      .set(static_cast<double>(cache_.entry_count()));
  r.gauge(p + "server.pinned_files").set(static_cast<double>(pinned_.size()));
  r.gauge(p + "server.output_cache_entries")
      .set(static_cast<double>(output_cache_.size()));
  r.gauge(p + "server.persist_alive").set(persist_alive() ? 1.0 : 0.0);

  // Per-connection session totals, summed (the per-channel breakdown stays
  // in ReliableChannel::Stats).
  const auto sessions = session_stats();
  r.counter(p + "server.session_data_sent").store(sessions.data_sent);
  r.counter(p + "server.session_delivered").store(sessions.delivered);
  r.counter(p + "server.session_retransmits").store(sessions.retransmits);
  r.counter(p + "server.session_corrupt_dropped")
      .store(sessions.corrupt_dropped);
  r.counter(p + "server.session_desyncs").store(sessions.desyncs);

  load_monitor_.publish(p);
}

void ShadowServer::evict_file(const naming::GlobalFileId& id) {
  const std::string key = domains_.cache_key(id);
  cache_.erase(key);
  pinned_.erase(key);
  persist_eviction(key);
}

}  // namespace shadow::server
