// The shadow server (paper §4, §6): runs at the supercomputer site,
// maintains the best-effort cache of shadow files, pulls updates on its
// own schedule (demand-driven flow control, §5.2), accepts job
// submissions, executes them, and transfers results back — optionally as
// deltas against the previous output of the same job (reverse shadow
// processing, §8.3) and optionally routed to a different client (§8.3).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cache/shadow_cache.hpp"
#include "compress/compress.hpp"
#include "diff/delta.hpp"
#include "job/executor.hpp"
#include "job/queue.hpp"
#include "naming/domain_map.hpp"
#include "net/transport.hpp"
#include "persist/durable_store.hpp"
#include "proto/messages.hpp"
#include "proto/session.hpp"
#include "server/load_monitor.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"

namespace shadow::server {

/// When does the server pull a new version into its cache?
enum class PullPolicy : u8 {
  /// Immediately on NotifyNewVersion — updates flow in the background
  /// while the user keeps editing (§5.1's concurrency advantage).
  kEager = 0,
  /// Only when a submitted job actually needs the file.
  kLazyOnSubmit = 1,
};

const char* pull_policy_name(PullPolicy policy);

struct ServerConfig {
  std::string name = "supercomputer";
  u64 cache_budget = 0;  // bytes; 0 = unlimited
  cache::EvictionPolicy eviction = cache::EvictionPolicy::kLru;
  PullPolicy pull_policy = PullPolicy::kEager;
  /// Cap on simultaneously outstanding PullRequests (overrun avoidance —
  /// the flow-control advantage §5.2 claims for demand-driven).
  std::size_t max_outstanding_pulls = 4;
  /// Cache job outputs and ship output deltas on re-runs (§8.3).
  bool reverse_shadow = false;
  diff::Algorithm output_delta_algo = diff::Algorithm::kHuntMcIlroy;
  /// Compression applied to outbound JobOutput payloads (§8.3).
  compress::Codec output_codec = compress::Codec::kStored;
  /// Abstract executor ops per second of simulated CPU.
  double cpu_ops_per_second = 50e6;
  std::size_t max_concurrent_jobs = 4;
  /// Admission control: queued+waiting+running jobs above this are
  /// REJECTED at submit (SubmitReply.accepted = false). 0 = unlimited.
  std::size_t max_queued_jobs = 0;
  /// Load-average-based deferral (§5.2 / §3 adaptability). Disabled by
  /// default (high_water <= 0).
  LoadMonitorConfig load;
  /// Hard admission budgets answered with ServerBusy + retry_after_usec
  /// (overload control; all budgets default off).
  OverloadConfig overload;
  /// Session lease: a connection whose lease has not been renewed (by any
  /// traffic or an explicit Heartbeat) for this long is expired and its
  /// per-client state reclaimed. 0 = leases disabled.
  u64 lease_usec = 0;
  /// Run every client connection over the reliable session layer
  /// (sequence numbers + CRC frames + ack/retransmit). Both ends must
  /// agree (ShadowEnvironment::reliable_session).
  bool reliable_session = false;
  /// First retransmit delay / backoff cap for the reliable sessions'
  /// ack/retransmit timers, microseconds. 0 keeps the channel defaults
  /// (200ms / 1.6s). Slow links need timers longer than the worst-case
  /// frame transmission time or large frames are resent before their
  /// acks can possibly arrive (see ShadowEnvironment for the client end).
  u64 retransmit_initial_usec = 0;
  u64 retransmit_cap_usec = 0;
  /// How many times a job interrupted mid-run by a crash is re-queued
  /// before it is marked failed and the owner is notified instead.
  u64 max_job_retries = 3;
  /// Which shard of a ShardedServer this instance is (recorded in the
  /// snapshot manifest so recovery can detect a re-sharded store), and
  /// how many shards the server was split into. 0/1 = standalone.
  std::size_t shard_id = 0;
  std::size_t shard_count = 1;
  /// Prepended to every telemetry name this server mirrors ("shard2." for
  /// shard 2; empty for a standalone server, preserving the plain
  /// server.*/load.* names shadowtop has always shown).
  std::string telemetry_prefix;
  /// Accept the content-defined-chunking delta codec and hold CDC-tracked
  /// files as digest-only cache entries (docs/DELTAS.md). Off, the server
  /// advertises only the legacy codecs and every client falls back to
  /// ed-script/block-move.
  bool cdc_enabled = true;
};

struct ServerStats {
  u64 notifies_received = 0;
  u64 pulls_sent = 0;
  u64 pulls_deferred = 0;   // postponed by flow control
  u64 updates_received = 0;
  u64 update_bytes = 0;     // Update payload bytes received
  u64 full_transfers = 0;   // updates that carried full content
  u64 delta_transfers = 0;  // updates that carried a delta
  u64 cdc_transfers = 0;    // delta updates in the CDC codec
  u64 digest_advances = 0;  // signatures advanced without content bytes
  u64 digest_advance_failures = 0;  // stale/failed advances (full re-pull)
  u64 jobs_submitted = 0;
  u64 jobs_rejected = 0;  // admission control refusals
  u64 jobs_completed = 0;
  u64 jobs_failed = 0;
  u64 outputs_sent = 0;
  u64 output_bytes = 0;     // JobOutput payload bytes sent
  u64 output_delta_hits = 0;  // reverse-shadow deltas shipped
  u64 unsolicited_updates = 0;  // request-driven clients pushing
  u64 deferred_by_load = 0;   // pulls/starts postponed by the load monitor
  u64 session_resyncs = 0;    // desyncs detected by the reliable session
  u64 journal_appends = 0;    // durable mutation records written
  u64 journal_failures = 0;   // appends/compactions the storage refused
  u64 acks_deferred = 0;      // gating acks parked behind a commit batch
  u64 persist_flushes = 0;    // group-commit flushes this server forced
  u64 compactions = 0;        // snapshot + journal-truncate cycles
  u64 recovered_records = 0;  // journal records replayed at startup
  u64 requeued_jobs = 0;      // orphaned kRunning jobs put back in queue
  u64 retry_capped_jobs = 0;  // orphans failed after too many retries
  u64 busy_rejects = 0;          // Hellos/submits shed with ServerBusy
  u64 conns_dropped_overflow = 0;  // connections dropped at the byte cap
  u64 leases_expired = 0;        // sessions reclaimed by lease expiry
  u64 heartbeats_received = 0;   // explicit lease renewals
  u64 drain_notices = 0;         // ServerBusy(draining) sent at drain
};

class ShadowServer {
 public:
  /// `store` (optional) makes every mutation crash-consistent: the server
  /// appends a journal record — and waits for the fsync — BEFORE it
  /// acknowledges anything to a client. Must outlive the server.
  explicit ShadowServer(ServerConfig config, sim::Simulator* simulator = nullptr,
                        persist::DurableStore* store = nullptr);
  /// Waits out any in-flight batch fsync and DROPS unresolved commit
  /// callbacks (they capture this server); never sends from a destructor.
  ~ShadowServer();

  /// Attach a client connection. The server installs itself as the
  /// transport's receiver; the client identifies itself with Hello.
  void attach(net::Transport* transport);

  /// Forget a connection whose transport is about to be destroyed (the
  /// sharded event loops reap closed sockets). Drops the Connection and
  /// its clients_ entry; per-file state stays — the client may reconnect.
  void detach(net::Transport* transport);

  /// Cross-shard delivery hook: when send_to() finds no local connection
  /// for a client, the router is offered the message (ShardedServer posts
  /// it to the client's home shard — the §8.3 output_route case where a
  /// job's output goes to a different workstation). Return true when the
  /// message was taken.
  using PeerRouteFn =
      std::function<bool(const std::string& client_name,
                         const proto::Message& m)>;
  void set_peer_router(PeerRouteFn fn) { peer_router_ = std::move(fn); }

  /// True if this client said Hello over one of OUR connections.
  bool has_client(const std::string& client_name) const {
    return clients_.count(client_name) != 0;
  }

  /// Deliver a message to a locally connected client (the receiving half
  /// of the peer-router hook; runs on this shard's thread).
  void deliver_to_client(const std::string& client_name,
                         const proto::Message& m);

  /// Feed one already-received wire message through the normal dispatch
  /// path on behalf of `transport` (which must be attach()ed). The
  /// sharded lobby uses this to replay the Hello it consumed while
  /// deciding which shard owns the connection.
  void inject_message(net::Transport* transport, Bytes wire);

  const ServerConfig& config() const { return config_; }
  const ServerStats& stats() const { return stats_; }
  const LoadMonitor& load_monitor() const { return load_monitor_; }
  cache::ShadowCache& file_cache() { return cache_; }
  const job::JobQueue& jobs() const { return queue_; }
  naming::DomainMap& domains() { return domains_; }

  /// Failure injection for tests: drop a cached file as if evicted.
  void evict_file(const naming::GlobalFileId& id);

  /// One retransmit round on every reliable session (no-op without
  /// config.reliable_session). Returns the number of frames resent.
  /// Also reaps doomed connections and expires stale leases.
  std::size_t tick();

  // ---- overload control & graceful drain -----------------------------

  /// Expire every connection whose lease ran out (config.lease_usec > 0),
  /// reclaiming its per-client state; clients renew by any traffic or an
  /// explicit Heartbeat. Safe from event-loop idle hooks — never call
  /// from inside a message handler. Returns the number expired.
  std::size_t expire_leases();

  /// Destroy connections doomed by a send-queue overflow or lease expiry
  /// (dooming inside a handler only marks; this reclaims). Returns the
  /// number reaped.
  std::size_t reap_doomed();

  /// Enter drain: refuse new Hellos and submits (ServerBusy with
  /// draining=true), notify connected v1 clients once, and flush the open
  /// group-commit window so parked acks resolve. Idempotent.
  void begin_drain();
  bool draining() const { return draining_; }
  /// True once every journaled record has been fsynced and its deferred
  /// ack released — the point at which exiting loses nothing.
  bool drain_complete() const;

  /// Sum of all connections' queued outbound bytes (overload budget).
  std::size_t total_queued_bytes() const;

  /// Reliable-session stats summed over all connections (diagnostics).
  proto::ReliableChannel::Stats session_stats() const;

  /// Mirror this server's accumulated ServerStats, queue/cache/connection
  /// readings and load-monitor state into the global telemetry registry
  /// (server.* and load.* names). Called before every admin snapshot so
  /// shadowtop sees current values; cheap enough to call at will.
  void sync_telemetry() const;

  /// Snapshot the server's durable state: the shadow cache, the per-domain
  /// name maps, per-file version tracking and the reverse-shadow output
  /// cache. Live connections and in-flight jobs are NOT included — after
  /// a crash, clients reconnect and resubmit; the cache is what makes the
  /// resubmissions cheap.
  Bytes save_state() const;
  /// Restore a snapshot into a freshly constructed server (same config).
  Status restore_state(const Bytes& snapshot);

  /// Crash recovery: load the store's snapshot, replay the journal's
  /// valid prefix (damaged tails were already truncated by the store),
  /// re-queue jobs that were running when the lights went out, and
  /// compact so the next crash starts from here. Call once, before
  /// attach(). A missing/empty store directory recovers to empty state.
  Status recover_from_storage();

  /// False once the durable store has refused a write — acknowledgements
  /// stop flowing because durability can no longer be promised.
  bool persist_alive() const { return store_ == nullptr || !persist_dead_; }

  // ---- group commit (no-ops unless the store has window_us > 0) ------

  /// Seal + fsync the open commit batch now, releasing every deferred
  /// ack (UpdateAck / SubmitReply / output delivery) it gates, then
  /// compact if due. The commit-window expiry path and tests/shutdown
  /// call this; under a simulator the window schedules it automatically.
  void flush_persist();
  /// Block until no batch is staged, parked or syncing (pipelined mode);
  /// all pending acks resolve on the way.
  void wait_persist_idle();
  /// Periodic persist housekeeping for event-loop idle time: collect
  /// completed pipelined batches (releasing their acks), flush when the
  /// real-time commit window has expired, run deferred compaction.
  /// Returns the amount of work done (0 = nothing pending).
  std::size_t pump_persist();
  /// How soon (ms) the event loop should call pump_persist() again for a
  /// timely flush: remaining commit-window time when a window is open,
  /// 1 ms while a pipelined sync is in flight (its acks are waiting to be
  /// collected), -1 when nothing is pending and the loop may sleep its
  /// full poll timeout.
  int persist_poll_hint_ms() const;

 private:
  struct Connection {
    net::Transport* transport = nullptr;
    /// Present iff config.reliable_session.
    std::unique_ptr<proto::ReliableChannel> channel;
    std::string client_name;  // empty until Hello
    /// From the client's Hello; 0 (legacy) clients never receive
    /// ServerBusy or Heartbeat frames they would not understand.
    u32 protocol_version = 0;
    /// Delta codecs the client advertised at Hello, intersected with what
    /// this server accepts. Legacy frames imply ed-script + block-move.
    u32 codecs = proto::kLegacyCodecs;
    /// Last traffic/Heartbeat, sim or steady micros (lease bookkeeping).
    u64 lease_renewed_us = 0;
    /// Marked dead mid-dispatch (queue overflow, expired lease); ignored
    /// by every path and reclaimed by reap_doomed() once off the stack.
    bool doomed = false;
  };

  /// Per-file server-side knowledge.
  struct FileState {
    naming::GlobalFileId id;
    std::string cache_key;
    u64 latest_known = 0;  // newest version any client announced
    u64 latest_size = 0;
    u32 latest_crc = 0;
    u64 pull_outstanding = 0;  // version requested, 0 = none
    std::string owner_client;  // client that serves pulls for this file
    bool pull_wanted = false;  // deferred by flow control; retry later
  };

  void on_message(Connection* conn, Bytes wire);
  void handle(Connection* conn, const proto::Hello& m);
  void handle(Connection* conn, const proto::NotifyNewVersion& m);
  void handle(Connection* conn, const proto::Update& m);
  /// The digest-only arm of handle(Update): advance the file's signature
  /// from a CDC delta without materializing content (docs/DELTAS.md).
  void handle_cdc_update(Connection* conn, const proto::Update& m,
                         FileState& state, const diff::Delta& delta);
  void handle(Connection* conn, const proto::SubmitJob& m);
  void handle(Connection* conn, const proto::StatusQuery& m);
  void handle(Connection* conn, const proto::JobOutputAck& m);
  void handle(Connection* conn, const proto::AdminQuery& m);
  void handle(Connection* conn, const proto::Heartbeat& m);

  void send_to(const std::string& client_name, const proto::Message& m);
  void send(Connection* conn, const proto::Message& m);

  FileState& file_state(const naming::GlobalFileId& id);
  /// Issue a PullRequest for `state` if flow control allows. `need_bytes`
  /// is set when a job must materialize the file: a current-but-digest-
  /// only cache entry then still triggers a pull (for full content),
  /// because digests cannot feed an executor sandbox.
  void maybe_pull(FileState& state, bool need_bytes = false);
  /// Retry pulls deferred by the outstanding-pull cap.
  void drain_deferred_pulls();

  /// Move jobs forward: pull missing files, start runnable jobs.
  void schedule_jobs();
  bool files_ready(const job::JobRecord& record) const;
  void start_job(job::JobRecord& record);
  void finish_job(u64 job_id, job::ExecutionResult result);
  void deliver_output(job::JobRecord& record);

  /// Reverse-shadow signature: identifies "the same job" across re-runs.
  static std::string job_signature(const job::JobRecord& record);

  /// Drop pinned copies no longer needed by any active job.
  void release_pins(const job::JobRecord& finished);

  /// Postpone work while overloaded; retries are self-scheduled.
  bool load_says_wait();

  /// Current sim or steady-clock time for lease bookkeeping.
  u64 now_micros() const;
  /// Mark a connection dead without touching the connection list (safe
  /// mid-dispatch); the transport is asked to close so event loops reap
  /// it, and reap_doomed() reclaims the rest.
  void doom_connection(Connection* conn, const std::string& why);
  /// Budget violated by accepting more work right now, or nullptr.
  const char* admission_refusal() const;
  /// ServerBusy with the configured retry-after (v1 clients only — the
  /// caller keeps the legacy fallback for protocol_version 0 peers).
  void send_busy(Connection* conn, u64 client_job_token,
                 const std::string& reason);

  /// Reliable-session desync recovery: re-arm pulls that were in flight
  /// and re-deliver outputs the client never acknowledged.
  void resync_connection(Connection* conn);

  /// Append one journal record (then compact if due). Returns true when
  /// the mutation is durable — the caller may acknowledge it. With no
  /// store attached this is trivially true. Classic sync-per-record
  /// path; group-commit servers go through persist_append_then().
  bool persist_append(persist::RecordType type, Bytes body);
  /// Journal one record and run `on_durable` once it is fsynced: inline
  /// (classic / window=0) or from the flush that seals its batch (group
  /// commit). On storage failure the callback never runs and the server
  /// stops acking. Pass nullptr for non-gating records.
  void persist_append_then(persist::RecordType type, Bytes body,
                           std::function<void()> on_durable);
  /// Storage refused a write/fsync: count it, stop acking, log once.
  void mark_persist_dead(persist::RecordType type, const Status& st);
  /// Deferred compaction: runs only between batches so snapshot-then-
  /// truncate never sits on the ack path.
  void maybe_compact_persist();
  /// Arm the commit-window flush for the just-staged record (simulator:
  /// schedule; real time: open the window for pump_persist()).
  void schedule_window_flush();
  /// Send only if `conn` is still one of ours under the same client name
  /// (deferred acks may outlive a detach).
  void send_if_attached(Connection* conn, const std::string& client_name,
                        const proto::Message& m);
  /// Journal bodies for the record types built in several places.
  static Bytes cached_record_body(const FileState& state, u64 version,
                                  u32 crc, const std::string& content);
  static Bytes digest_record_body(const FileState& state, u64 version,
                                  u32 crc, const cdc::Signature& signature);
  static Bytes finished_record_body(const job::JobRecord& record);
  /// Non-gating eviction record (losing it costs a re-pull, not
  /// correctness).
  void persist_eviction(const std::string& cache_key);

  /// Replay one journal record over the current state; all replays are
  /// idempotent so records older than the snapshot are harmless.
  Status replay_record(const persist::JournalRecord& record);
  /// Drop every piece of recoverable state (used when a damaged snapshot
  /// degrades recovery to journal-only).
  void reset_volatile_state();
  /// Jobs found kRunning after a restart never finished: re-queue them,
  /// or fail them for good once the retry budget is spent.
  void requeue_orphans();

  ServerConfig config_;
  sim::Simulator* sim_;  // nullptr = execute instantaneously
  PeerRouteFn peer_router_;  // cross-shard send_to fallback
  persist::DurableStore* store_;  // nullptr = in-memory only
  bool persist_dead_ = false;     // storage refused a write; stop acking
  bool persist_flush_scheduled_ = false;  // sim-mode window flush armed
  bool persist_window_open_ = false;      // real-time window running
  u64 persist_window_start_us_ = 0;       // steady-clock stamp at open
  LoadMonitor load_monitor_;
  bool load_retry_scheduled_ = false;
  bool draining_ = false;  // refusing new work; exiting soon
  cache::ShadowCache cache_;
  naming::DomainMap domains_;
  job::JobQueue queue_;
  job::Executor executor_;
  ServerStats stats_;

  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::string, Connection*> clients_;  // name -> connection
  std::map<std::string, FileState> files_;      // cache key -> state
  std::size_t outstanding_pulls_ = 0;
  std::size_t running_jobs_ = 0;

  struct OutputCacheEntry {
    u64 generation = 0;
    std::string content;
  };
  std::map<std::string, OutputCacheEntry> output_cache_;  // signature -> prev

  /// Content the best-effort cache refused (over budget) but an active job
  /// still needs; released when the last interested job finishes.
  struct PinnedFile {
    u64 version = 0;
    std::string content;
  };
  std::map<std::string, PinnedFile> pinned_;
};

}  // namespace shadow::server
