#include "server/shard_router.hpp"

namespace shadow::server {

u64 ShardRouter::stable_hash(std::string_view domain,
                             std::string_view owner) {
  // FNV-1a, 64-bit. The 0x1f separator keeps ("ab","c") and ("a","bc")
  // distinct; it cannot appear in a domain or host name.
  u64 h = 14695981039346656037ull;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  mix(domain);
  h ^= 0x1f;
  h *= 1099511628211ull;
  mix(owner);
  return h;
}

}  // namespace shadow::server
