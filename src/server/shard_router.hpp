// Stable (domain, owner) → shard assignment for the thread-per-core
// server (docs/CONCURRENCY.md).
//
// Every connection is pinned to one shard when its Hello arrives, and all
// state about a file lives on the shard of the file's OWNER — the
// (domain, host) pair, which for shadow-edited files equals the client
// that registered them (§5.3: the client names its own files). Because a
// file's messages only ever arrive over its owner's single pinned
// connection, no cross-shard coordination is needed on the submit/update
// hot path.
//
// The hash is FNV-1a over the raw id bytes — a pure function of the id,
// deliberately NOT std::hash (whose value may change across processes or
// library versions). Assignment must be stable across restarts so that
// per-shard journals recover onto the shard that wrote them.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "naming/file_id.hpp"
#include "util/types.hpp"

namespace shadow::server {

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shard_count)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {}

  std::size_t shard_count() const { return shard_count_; }

  /// Shard owning a file: hash of (domain, host) — the owner-locality
  /// projection of the id. Deliberately ignores path/inode so every file
  /// owned by one host lands on one shard, matching where that host's
  /// connection is pinned.
  std::size_t shard_of(const naming::GlobalFileId& id) const {
    return shard_of_owner(id.domain, id.host);
  }

  /// Shard for a client connection, decided at Hello time from the only
  /// identity the handshake carries. Agrees with shard_of() whenever the
  /// client names files it hosts (client_name == file.host), the shadow
  /// editing ownership model.
  std::size_t shard_of_client(const std::string& domain,
                              const std::string& client_name) const {
    return shard_of_owner(domain, client_name);
  }

  /// The underlying pure hash, exposed for tests that pin its value.
  static u64 stable_hash(std::string_view domain, std::string_view owner);

 private:
  std::size_t shard_of_owner(std::string_view domain,
                             std::string_view owner) const {
    return static_cast<std::size_t>(stable_hash(domain, owner) %
                                    shard_count_);
  }

  std::size_t shard_count_;
};

}  // namespace shadow::server
