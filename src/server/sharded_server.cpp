#include "server/sharded_server.hpp"

#include <unistd.h>

#include <variant>

#include "proto/admin.hpp"
#include "telemetry/registry.hpp"
#include "util/logging.hpp"

namespace shadow::server {

namespace {
void accumulate(ServerStats& total, const ServerStats& s) {
  total.notifies_received += s.notifies_received;
  total.pulls_sent += s.pulls_sent;
  total.pulls_deferred += s.pulls_deferred;
  total.updates_received += s.updates_received;
  total.update_bytes += s.update_bytes;
  total.full_transfers += s.full_transfers;
  total.delta_transfers += s.delta_transfers;
  total.jobs_submitted += s.jobs_submitted;
  total.jobs_rejected += s.jobs_rejected;
  total.jobs_completed += s.jobs_completed;
  total.jobs_failed += s.jobs_failed;
  total.outputs_sent += s.outputs_sent;
  total.output_bytes += s.output_bytes;
  total.output_delta_hits += s.output_delta_hits;
  total.unsolicited_updates += s.unsolicited_updates;
  total.deferred_by_load += s.deferred_by_load;
  total.session_resyncs += s.session_resyncs;
  total.journal_appends += s.journal_appends;
  total.journal_failures += s.journal_failures;
  total.acks_deferred += s.acks_deferred;
  total.persist_flushes += s.persist_flushes;
  total.compactions += s.compactions;
  total.recovered_records += s.recovered_records;
  total.requeued_jobs += s.requeued_jobs;
  total.retry_capped_jobs += s.retry_capped_jobs;
  total.busy_rejects += s.busy_rejects;
  total.conns_dropped_overflow += s.conns_dropped_overflow;
  total.leases_expired += s.leases_expired;
  total.heartbeats_received += s.heartbeats_received;
  total.drain_notices += s.drain_notices;
}
}  // namespace

ShardedServer::ShardedServer(ServerConfig base, std::size_t shard_count,
                             std::vector<persist::DurableStore*> stores,
                             sim::Simulator* simulator)
    : base_(std::move(base)),
      router_(shard_count),
      sim_(simulator) {
  // The lobby reads raw protocol frames to route; a reliable session
  // would wrap them in channel frames it cannot peek through.
  base_.reliable_session = false;
  const std::size_t n = router_.shard_count();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ServerConfig cfg = base_;
    cfg.shard_id = i;
    cfg.shard_count = n;
    cfg.telemetry_prefix =
        n > 1 ? "shard" + std::to_string(i) + "." : std::string();
    persist::DurableStore* store =
        i < stores.size() ? stores[i] : nullptr;
    auto shard = std::make_unique<ShadowServer>(cfg, sim_, store);
    shard->set_peer_router(
        [this, i](const std::string& client, const proto::Message& m) {
          return route_to_peer(i, client, m);
        });
    shards_.push_back(std::move(shard));
  }
}

ShardedServer::~ShardedServer() { stop_threads(); }

std::optional<std::size_t> ShardedServer::shard_of_client(
    const std::string& client_name) const {
  std::lock_guard<std::mutex> lock(clients_mu_);
  auto it = client_shard_.find(client_name);
  if (it == client_shard_.end()) return std::nullopt;
  return it->second;
}

Status ShardedServer::recover_all() {
  for (auto& shard : shards_) {
    SHADOW_TRY(shard->recover_from_storage());
  }
  return Status();
}

std::size_t ShardedServer::route_hello(const proto::Hello& hello) {
  const std::size_t s =
      router_.shard_of_client(hello.domain, hello.client_name);
  std::lock_guard<std::mutex> lock(clients_mu_);
  client_shard_[hello.client_name] = s;
  return s;
}

bool ShardedServer::route_to_peer(std::size_t from_shard,
                                  const std::string& client_name,
                                  const proto::Message& m) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    auto it = client_shard_.find(client_name);
    if (it == client_shard_.end()) return false;
    target = it->second;
  }
  if (target == from_shard) return false;  // send_to already missed here
  if (target < loops_.size() && !threads_.empty()) {
    // Hop to the client's home loop; the send happens on its thread.
    proto::Message copy = m;
    loops_[target]->post([this, target, client_name, copy = std::move(copy)] {
      shards_[target]->deliver_to_client(client_name, copy);
    });
  } else {
    shards_[target]->deliver_to_client(client_name, m);
  }
  return true;
}

// ---- inline mode ----

void ShardedServer::attach(net::Transport* transport) {
  transport->set_receiver([this, transport](Bytes wire) {
    route_first_message(transport, wire);
  });
}

void ShardedServer::route_first_message(net::Transport* transport,
                                        const Bytes& wire) {
  auto decoded = proto::decode_message(wire);
  if (!decoded.ok()) {
    SHADOW_WARN() << base_.name << ": lobby dropping malformed message: "
                  << decoded.error().to_string();
    return;
  }
  if (const auto* hello = std::get_if<proto::Hello>(&decoded.value())) {
    const std::size_t s = route_hello(*hello);
    // attach() installs the shard as the transport's receiver; replaying
    // the consumed Hello through inject_message() makes the handshake
    // indistinguishable from a standalone server's.
    shards_[s]->attach(transport);
    shards_[s]->inject_message(transport, wire);
    return;
  }
  if (const auto* admin = std::get_if<proto::AdminQuery>(&decoded.value())) {
    // shadowtop never says Hello; the connection stays in the lobby and
    // every AdminQuery it sends lands back here.
    Status st = transport->send(proto::encode_message(answer_admin(*admin)));
    if (!st.ok()) {
      SHADOW_WARN() << base_.name
                    << ": admin reply failed: " << st.to_string();
    }
    return;
  }
  SHADOW_WARN() << base_.name << ": lobby expected Hello, got "
                << proto::message_type_name(proto::type_of(decoded.value()));
}

std::size_t ShardedServer::tick() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->tick();
  return total;
}

// ---- overload control & graceful drain ----

void ShardedServer::begin_drain() {
  if (draining_.exchange(true)) return;
  on_every_shard([this](std::size_t i) { shards_[i]->begin_drain(); });
}

bool ShardedServer::drain_complete() {
  std::vector<char> done(shards_.size(), 0);
  on_every_shard([this, &done](std::size_t i) {
    // drain() collects finished pipelined batches (releasing their acks)
    // before the completeness check — all on shard i's own thread.
    (void)shards_[i]->pump_persist();
    done[i] = shards_[i]->drain_complete() ? 1 : 0;
  });
  for (const char d : done) {
    if (d == 0) return false;
  }
  return true;
}

std::size_t ShardedServer::expire_leases() {
  std::size_t expired = 0;
  for (auto& shard : shards_) {
    expired += shard->expire_leases();
    shard->reap_doomed();
  }
  return expired;
}

// ---- threaded mode ----

void ShardedServer::start_threads() {
  if (!threads_.empty() || sim_ != nullptr) return;
  const std::size_t n = shards_.size();
  loops_.clear();
  loops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto loop = std::make_unique<net::EventLoop>();
    loop->set_on_detach([this, i](net::TcpTransport* t) {
      shards_[i]->detach(t);
    });
    // Per-shard group commit: the idle hook closes expired commit
    // windows and collects pipelined batches without any cross-shard
    // coordination — each shard batches only its own journal. While a
    // window is open the loop polls with the window's remaining time as
    // its timeout, so a deferred ack never waits out the full 50 ms
    // default on an otherwise idle shard.
    loop->set_on_idle([this, i, raw = loop.get()] {
      (void)shards_[i]->pump_persist();
      // Lease expiry and doomed-connection reaping run here — never from
      // inside a handler — so a reclaimed Connection can't be on the
      // loop's dispatch stack.
      (void)shards_[i]->expire_leases();
      (void)shards_[i]->reap_doomed();
      const int hint = shards_[i]->persist_poll_hint_ms();
      if (hint > 0) raw->set_poll_timeout_hint(hint);
    });
    loops_.push_back(std::move(loop));
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([loop = loops_[i].get()] { loop->run(); });
  }
}

void ShardedServer::stop_threads() {
  for (auto& loop : loops_) loop->stop();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  // Close every shard's open commit window before shutdown returns: a
  // record the server wrote must not sit unfsynced in a batch whose
  // window never expired. Any acks this releases go to connections the
  // stopped loops already detached, which send_if_attached drops.
  for (auto& shard : shards_) {
    shard->flush_persist();
    shard->wait_persist_idle();
  }
}

void ShardedServer::adopt_tcp(std::unique_ptr<net::TcpTransport> transport) {
  auto conn = std::make_unique<LobbyConn>();
  conn->transport = std::move(transport);
  LobbyConn* raw = conn.get();
  raw->transport->set_receiver(
      [raw](Bytes wire) { raw->inbox.push_back(std::move(wire)); });
  lobby_.push_back(std::move(conn));
}

std::size_t ShardedServer::poll_lobby() {
  std::size_t handled = 0;
  for (auto it = lobby_.begin(); it != lobby_.end();) {
    LobbyConn& conn = **it;
    conn.transport->poll();
    if (conn.inbox.empty()) {
      if (conn.transport->closed()) {
        it = lobby_.erase(it);  // gone before identifying itself
        continue;
      }
      ++it;
      continue;
    }
    auto decoded = proto::decode_message(conn.inbox.front());
    if (!decoded.ok()) {
      SHADOW_WARN() << base_.name << ": lobby dropping malformed message: "
                    << decoded.error().to_string();
      conn.inbox.erase(conn.inbox.begin());
      ++handled;
      ++it;
      continue;
    }
    if (const auto* hello = std::get_if<proto::Hello>(&decoded.value())) {
      if (draining_.load()) {
        // Drain refuses at the lobby: the socket never reaches a shard
        // loop. v1 clients get the retry hint; v0 just see the close.
        if (hello->protocol_version >= 1) {
          proto::ServerBusy busy;
          busy.retry_after_usec = base_.overload.retry_after_usec;
          busy.draining = true;
          busy.reason = "server draining";
          (void)conn.transport->send(proto::encode_message(busy));
        }
        it = lobby_.erase(it);
        ++handled;
        continue;
      }
      const std::size_t s = route_hello(*hello);
      // Push every buffered frame (Hello included) back onto the front of
      // the receive buffer — reverse order restores arrival order — so the
      // shard's first poll replays them through its own dispatch.
      for (auto frame = conn.inbox.rbegin(); frame != conn.inbox.rend();
           ++frame) {
        conn.transport->unread_message(*frame);
      }
      conn.inbox.clear();
      conn.transport->set_receiver(nullptr);
      loops_[s]->adopt(std::move(conn.transport),
                       [this, s](net::TcpTransport* t) {
                         shards_[s]->attach(t);
                       });
      it = lobby_.erase(it);
      ++handled;
      continue;
    }
    if (const auto* admin =
            std::get_if<proto::AdminQuery>(&decoded.value())) {
      conn.inbox.erase(conn.inbox.begin());
      Status st = conn.transport->send(
          proto::encode_message(answer_admin(*admin)));
      if (!st.ok()) {
        SHADOW_WARN() << base_.name
                      << ": admin reply failed: " << st.to_string();
      }
      ++handled;
      ++it;
      continue;
    }
    SHADOW_WARN() << base_.name << ": lobby expected Hello, got "
                  << proto::message_type_name(
                         proto::type_of(decoded.value()));
    conn.inbox.erase(conn.inbox.begin());
    ++handled;
    ++it;
  }
  return handled;
}

std::size_t ShardedServer::live_connections() const {
  std::size_t total = lobby_.size();
  for (const auto& loop : loops_) total += loop->connections();
  return total;
}

void ShardedServer::on_every_shard(
    const std::function<void(std::size_t)>& fn) {
  if (threads_.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    loops_[i]->post([&fn, &done, i] {
      fn(i);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  // Bounded wait: a loop thread services its queue every round (<= 50ms
  // poll timeout). 5s of silence means a wedged loop; give up rather than
  // hang the admin path with it.
  for (int spins = 0; done.load(std::memory_order_acquire) < shards_.size();
       ++spins) {
    if (spins > 5000) {
      SHADOW_WARN() << base_.name
                    << ": shard loop unresponsive; partial aggregation";
      break;
    }
    ::usleep(1000);
  }
}

ServerStats ShardedServer::aggregate_stats() {
  std::vector<ServerStats> copies(shards_.size());
  on_every_shard([this, &copies](std::size_t i) {
    copies[i] = shards_[i]->stats();  // copied on shard i's own thread
  });
  ServerStats total;
  for (const auto& s : copies) accumulate(total, s);
  return total;
}

void ShardedServer::sync_telemetry() {
  // Each shard refreshes its shard<i>.-prefixed mirror on its own thread;
  // aggregate_stats() rides the same hop for the per-shard copies.
  std::vector<ServerStats> copies(shards_.size());
  on_every_shard([this, &copies](std::size_t i) {
    shards_[i]->sync_telemetry();
    copies[i] = shards_[i]->stats();
  });
  ServerStats total;
  for (const auto& s : copies) accumulate(total, s);

  auto& r = telemetry::Registry::global();
  // The plain server.* names shadowtop has always shown now carry the
  // fleet-wide sums; shard<i>.server.* has the per-shard breakdown.
  r.counter("server.notifies_received").store(total.notifies_received);
  r.counter("server.pulls_sent").store(total.pulls_sent);
  r.counter("server.pulls_deferred").store(total.pulls_deferred);
  r.counter("server.updates_received").store(total.updates_received);
  r.counter("server.update_bytes").store(total.update_bytes);
  r.counter("server.full_transfers").store(total.full_transfers);
  r.counter("server.delta_transfers").store(total.delta_transfers);
  r.counter("server.jobs_submitted").store(total.jobs_submitted);
  r.counter("server.jobs_rejected").store(total.jobs_rejected);
  r.counter("server.jobs_completed").store(total.jobs_completed);
  r.counter("server.jobs_failed").store(total.jobs_failed);
  r.counter("server.outputs_sent").store(total.outputs_sent);
  r.counter("server.output_bytes").store(total.output_bytes);
  r.counter("server.output_delta_hits").store(total.output_delta_hits);
  r.counter("server.unsolicited_updates").store(total.unsolicited_updates);
  r.counter("server.deferred_by_load").store(total.deferred_by_load);
  r.counter("server.journal_appends").store(total.journal_appends);
  r.counter("server.journal_failures").store(total.journal_failures);
  r.counter("server.acks_deferred").store(total.acks_deferred);
  r.counter("server.persist_flushes").store(total.persist_flushes);
  r.counter("server.compactions").store(total.compactions);
  r.counter("server.recovered_records").store(total.recovered_records);
  r.counter("server.requeued_jobs").store(total.requeued_jobs);
  r.counter("server.retry_capped_jobs").store(total.retry_capped_jobs);
  r.counter("overload.busy_rejects").store(total.busy_rejects);
  r.counter("overload.conns_dropped").store(total.conns_dropped_overflow);
  r.counter("overload.drain_notices").store(total.drain_notices);
  r.counter("lease.expired").store(total.leases_expired);
  r.counter("lease.heartbeats").store(total.heartbeats_received);
  r.gauge("overload.draining").set(draining_ ? 1.0 : 0.0);

  r.gauge("shards.count").set(static_cast<double>(shards_.size()));
  std::size_t connections = lobby_.size();
  for (const auto& loop : loops_) connections += loop->connections();
  r.gauge("shards.connections").set(static_cast<double>(connections));
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    r.gauge("shards.named_clients")
        .set(static_cast<double>(client_shard_.size()));
  }
}

proto::AdminReply ShardedServer::answer_admin(
    const proto::AdminQuery& query) {
  sync_telemetry();
  return proto::build_admin_reply(query, telemetry::Registry::global(),
                                  base_.name);
}

}  // namespace shadow::server
