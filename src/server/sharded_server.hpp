// Thread-per-core server facade (docs/CONCURRENCY.md): N independent
// ShadowServer shards, each owning its own cache, job queue, file-state
// table and (optionally) durable store, with connections pinned to one
// shard for their whole life.
//
// A connection enters through the LOBBY. The first frame decides where it
// lives: a Hello routes it to ShardRouter::shard_of_client(domain, name)
// and is replayed into that shard so the handshake is handled exactly as
// a standalone server would; an AdminQuery keeps the connection in the
// lobby (shadowtop never says Hello) and is answered at the facade from
// aggregated telemetry. After routing, every message the connection ever
// carries is handled on its shard — the submit/update hot path takes no
// cross-shard lock, and in threaded mode no lock at all.
//
// Two run modes share all of the routing logic:
//   * INLINE (threaded == false): everything on the caller's thread —
//     loopback/Sim transports, tests, benchmarks. Deterministic; the only
//     mode allowed with a Simulator (ROADMAP: sim runs stay pinned to a
//     single loop).
//   * THREADED (threaded == true): one net::EventLoop + std::thread per
//     shard; the acceptor thread runs the lobby and hands routed sockets
//     over with EventLoop::adopt(). shadowd --threads N.
//
// Cross-shard traffic exists on exactly one path: a job whose
// output_route names a client pinned to a sibling shard (§8.3). The
// facade forwards the finished output to the client's home shard — a
// per-output cost, never per-update.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/transport.hpp"
#include "persist/durable_store.hpp"
#include "proto/messages.hpp"
#include "server/shadow_server.hpp"
#include "server/shard_router.hpp"
#include "sim/simulator.hpp"

namespace shadow::server {

class ShardedServer {
 public:
  /// `stores` is empty (no durability) or one DurableStore per shard, all
  /// outliving the facade. `simulator` forces inline mode. The base
  /// config's reliable_session must be false (the lobby peeks at raw
  /// frames); shard_id/shard_count/telemetry_prefix are overwritten per
  /// shard.
  ShardedServer(ServerConfig base, std::size_t shard_count,
                std::vector<persist::DurableStore*> stores = {},
                sim::Simulator* simulator = nullptr);
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  /// Direct shard access — inline mode / tests only.
  ShadowServer& shard(std::size_t i) { return *shards_[i]; }

  /// Where `client_name`'s connection landed; nullopt before its Hello.
  std::optional<std::size_t> shard_of_client(
      const std::string& client_name) const;

  /// Recover every shard from its store (call before attach/start).
  Status recover_all();

  // ---- inline mode ----

  /// Attach a lobby connection on the caller's thread (loopback or sim
  /// transports). The transport must outlive the facade or be detached by
  /// the caller.
  void attach(net::Transport* transport);

  /// Retransmit round on every shard (reliable sessions are not supported
  /// sharded, so this is only load-monitor-style housekeeping hooks).
  std::size_t tick();

  // ---- threaded mode ----

  /// Spawn one event loop thread per shard. No-op if already running or
  /// if a simulator was supplied.
  void start_threads();
  /// Stop and join all loop threads (idempotent; also run by ~ShardedServer).
  void stop_threads();
  bool threaded() const { return !threads_.empty(); }

  /// Take ownership of a freshly accepted socket (acceptor thread).
  void adopt_tcp(std::unique_ptr<net::TcpTransport> transport);
  /// Drive the lobby (acceptor thread): poll un-routed connections, route
  /// those whose first frame arrived, reap those that closed. Returns the
  /// number of frames handled.
  std::size_t poll_lobby();

  /// Connections alive anywhere (lobby + every shard loop). Approximate
  /// while loops are running; used for --once drain detection.
  std::size_t live_connections() const;

  /// Sum of per-shard ServerStats. Inline: reads shards directly.
  /// Threaded: each shard copies its stats on its own thread (bounded
  /// wait), so the result is a consistent-per-shard sum.
  ServerStats aggregate_stats();

  /// Refresh telemetry: each shard mirrors its stats under its shard<i>.
  /// prefix, then the facade writes the aggregated plain server.* values
  /// shadowtop has always shown, plus shards.count / shards.connections.
  void sync_telemetry();

  // ---- overload control & graceful drain ----

  /// Enter drain on every shard (on its own thread when threaded): new
  /// Hellos — lobby included — and submits are refused with
  /// ServerBusy(draining), connected clients are notified once, and the
  /// open group-commit windows are sealed. Idempotent.
  void begin_drain();
  bool draining() const { return draining_; }
  /// True once every shard's journaled records have fsynced and released
  /// their parked acks (checked on the shard threads when threaded).
  bool drain_complete();

  /// Lease sweep + doomed-connection reap on every shard (inline mode /
  /// tests; threaded shards run this from their loops' idle hooks).
  /// Returns the number of leases expired.
  std::size_t expire_leases();

 private:
  struct LobbyConn {
    std::unique_ptr<net::TcpTransport> transport;
    std::vector<Bytes> inbox;  // frames received while un-routed
  };

  /// Inline lobby: first decodable message routes the connection.
  void route_first_message(net::Transport* transport, const Bytes& wire);
  /// Shared routing decision; records the client's home shard.
  std::size_t route_hello(const proto::Hello& hello);
  /// Answer an AdminQuery at the facade from aggregated telemetry.
  proto::AdminReply answer_admin(const proto::AdminQuery& query);
  /// send_to() fallback installed on every shard (see class comment).
  bool route_to_peer(std::size_t from_shard, const std::string& client_name,
                     const proto::Message& m);
  /// Run `fn(i)` on shard i's thread for every shard and wait (threaded);
  /// direct calls inline.
  void on_every_shard(const std::function<void(std::size_t)>& fn);

  ServerConfig base_;
  ShardRouter router_;
  sim::Simulator* sim_;
  std::atomic<bool> draining_{false};  // set by begin_drain (any thread)
  std::vector<std::unique_ptr<ShadowServer>> shards_;
  std::vector<std::unique_ptr<net::EventLoop>> loops_;  // threaded mode
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<LobbyConn>> lobby_;  // acceptor-thread owned

  mutable std::mutex clients_mu_;  // guards client_shard_
  std::map<std::string, std::size_t> client_shard_;
};

}  // namespace shadow::server
