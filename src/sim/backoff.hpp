// Exponential backoff schedule for retry timers driven by the simulator
// (or by any deterministic tick source). Doubles up to a cap; reset() on
// forward progress. Pure arithmetic plus an OPTIONAL seeded jitter stream
// — no clock access — so schedules are reproducible: same seed, same
// sequence of delays.
//
// Jitter exists for the thundering-herd case: when a restarted or
// recovering server is shared by many clients, identical deterministic
// backoff schedules would synchronize every retry into one burst. A
// per-client seed decorrelates them while keeping each client's schedule
// bit-reproducible (docs/OPERATIONS.md).
#pragma once

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace shadow::sim {

class Backoff {
 public:
  Backoff(SimTime initial, SimTime cap) : initial_(initial), cap_(cap) {}

  /// Spread each next() uniformly over [base*(1-fraction),
  /// base*(1+fraction)], drawn from a stream seeded with `seed`.
  /// fraction is clamped to [0, 1]; 0 disables jitter again.
  void set_jitter(double fraction, u64 seed) {
    jitter_ = fraction < 0 ? 0 : (fraction > 1 ? 1 : fraction);
    rng_.reseed(seed);
  }

  /// Delay to wait before the next retry; the base doubles on each call.
  SimTime next() {
    const SimTime base = current_;
    current_ = current_ >= cap_ / 2 ? cap_ : current_ * 2;
    if (jitter_ <= 0 || base == 0) return base;
    const SimTime span = static_cast<SimTime>(
        static_cast<double>(base) * jitter_);
    if (span == 0) return base;
    // Uniform in [base - span, base + span]; never returns 0 so a
    // scheduled retry always lands strictly in the future.
    const SimTime low = base > span ? base - span : 1;
    return low + rng_.below(2 * span + 1);
  }

  /// Base delay the next call to next() will use (before jitter),
  /// without advancing.
  SimTime peek() const { return current_; }

  void reset() { current_ = initial_; }

 private:
  SimTime initial_;
  SimTime cap_;
  SimTime current_ = initial_;
  double jitter_ = 0.0;
  Rng rng_{0};
};

}  // namespace shadow::sim
