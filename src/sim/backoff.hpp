// Exponential backoff schedule for retry timers driven by the simulator
// (or by any deterministic tick source). Doubles up to a cap; reset() on
// forward progress. Pure arithmetic — no clock access — so schedules are
// reproducible.
#pragma once

#include "sim/simulator.hpp"

namespace shadow::sim {

class Backoff {
 public:
  Backoff(SimTime initial, SimTime cap) : initial_(initial), cap_(cap) {}

  /// Delay to wait before the next retry; doubles on each call.
  SimTime next() {
    const SimTime current = current_;
    current_ = current_ >= cap_ / 2 ? cap_ : current_ * 2;
    return current;
  }

  /// Delay the next call to next() will return, without advancing.
  SimTime peek() const { return current_; }

  void reset() { current_ = initial_; }

 private:
  SimTime initial_;
  SimTime cap_;
  SimTime current_ = initial_;
};

}  // namespace shadow::sim
