#include "sim/link.hpp"

#include <algorithm>
#include <utility>

namespace shadow::sim {

LinkConfig LinkConfig::cypress_9600() {
  LinkConfig c;
  c.name = "cypress-9600";
  c.bits_per_second = 9600.0;
  c.latency = 100'000;  // store-and-forward hops on capillary links
  c.per_message_overhead = 44;  // TCP/IP header over a serial line
  c.congestion_factor = 1.0;    // dedicated leased line
  return c;
}

LinkConfig LinkConfig::arpanet_56k() {
  LinkConfig c;
  c.name = "arpanet-56k";
  c.bits_per_second = 56'000.0;
  c.latency = 45'000;  // IMP path Purdue -> Illinois (a short haul)
  c.per_message_overhead = 44;
  // The paper stresses that ARPANET carried heavy shared traffic and that
  // effective per-user bandwidth was far below the trunk rate [Nag84].
  c.congestion_factor = 2.5;
  return c;
}

LinkConfig LinkConfig::ethernet_10m() {
  LinkConfig c;
  c.name = "ethernet-10m";
  c.bits_per_second = 10'000'000.0;
  c.latency = 1'000;
  c.per_message_overhead = 58;
  c.congestion_factor = 1.0;
  return c;
}

LinkConfig LinkConfig::dialup_1200() {
  LinkConfig c;
  c.name = "dialup-1200";
  c.bits_per_second = 1'200.0;
  c.latency = 150'000;  // modem pair + phone-network path
  c.per_message_overhead = 44;
  c.congestion_factor = 1.0;
  return c;
}

LinkConfig LinkConfig::modem_56k() {
  LinkConfig c;
  c.name = "modem-56k";
  c.bits_per_second = 56'000.0;
  c.latency = 120'000;  // V.90 interleaving + ISP hop
  c.per_message_overhead = 48;  // PPP framing over the serial line
  c.congestion_factor = 1.0;    // dedicated last mile, unlike the ARPANET
  return c;
}

LinkConfig LinkConfig::t1_fractional() {
  LinkConfig c;
  c.name = "t1-fractional";
  c.bits_per_second = 256'000.0;
  c.latency = 30'000;
  c.per_message_overhead = 44;
  c.congestion_factor = 1.0;
  return c;
}

LinkConfig LinkConfig::t1_full() {
  LinkConfig c;
  c.name = "t1";
  c.bits_per_second = 1'544'000.0;
  c.latency = 25'000;
  c.per_message_overhead = 44;
  c.congestion_factor = 1.0;
  return c;
}

LinkConfig LinkConfig::modern_wan() {
  LinkConfig c;
  c.name = "modern-wan";
  c.bits_per_second = 50'000'000.0;
  c.latency = 20'000;  // one-way coast-to-coast fiber
  c.per_message_overhead = 58;  // Ethernet + IP + TCP
  c.congestion_factor = 1.0;
  return c;
}

const std::vector<LinkPreset>& link_presets() {
  static const std::vector<LinkPreset> presets = {
      {"dialup-1200", &LinkConfig::dialup_1200},
      {"cypress-9600", &LinkConfig::cypress_9600},
      {"arpanet-56k", &LinkConfig::arpanet_56k},
      {"modem-56k", &LinkConfig::modem_56k},
      {"t1-fractional", &LinkConfig::t1_fractional},
      {"t1", &LinkConfig::t1_full},
      {"ethernet-10m", &LinkConfig::ethernet_10m},
      {"modern-wan", &LinkConfig::modern_wan},
  };
  return presets;
}

bool link_preset(const std::string& name, LinkConfig* out) {
  for (const auto& preset : link_presets()) {
    if (name == preset.name) {
      if (out != nullptr) *out = preset.make();
      return true;
    }
  }
  return false;
}

double SimplexChannel::transmission_seconds(std::size_t payload) const {
  const double bits =
      static_cast<double>(payload + config_.per_message_overhead) * 8.0;
  return bits / config_.bits_per_second * config_.congestion_factor;
}

void SimplexChannel::send(Bytes message, DeliverFn deliver) {
  const std::size_t payload = message.size();
  const SimTime tx =
      from_seconds(transmission_seconds(payload));
  const SimTime start = std::max(sim_->now(), busy_until_);
  const SimTime done = start + tx;
  busy_until_ = done;
  bytes_sent_ += payload;
  wire_bytes_ += payload + config_.per_message_overhead;
  ++messages_;
  const SimTime arrival = done + config_.latency;
  sim_->schedule_at(arrival,
                    [msg = std::move(message), cb = std::move(deliver)]() mutable {
                      cb(std::move(msg));
                    });
}

}  // namespace shadow::sim
