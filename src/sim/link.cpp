#include "sim/link.hpp"

#include <algorithm>
#include <utility>

namespace shadow::sim {

LinkConfig LinkConfig::cypress_9600() {
  LinkConfig c;
  c.name = "cypress-9600";
  c.bits_per_second = 9600.0;
  c.latency = 100'000;  // store-and-forward hops on capillary links
  c.per_message_overhead = 44;  // TCP/IP header over a serial line
  c.congestion_factor = 1.0;    // dedicated leased line
  return c;
}

LinkConfig LinkConfig::arpanet_56k() {
  LinkConfig c;
  c.name = "arpanet-56k";
  c.bits_per_second = 56'000.0;
  c.latency = 45'000;  // IMP path Purdue -> Illinois (a short haul)
  c.per_message_overhead = 44;
  // The paper stresses that ARPANET carried heavy shared traffic and that
  // effective per-user bandwidth was far below the trunk rate [Nag84].
  c.congestion_factor = 2.5;
  return c;
}

LinkConfig LinkConfig::ethernet_10m() {
  LinkConfig c;
  c.name = "ethernet-10m";
  c.bits_per_second = 10'000'000.0;
  c.latency = 1'000;
  c.per_message_overhead = 58;
  c.congestion_factor = 1.0;
  return c;
}

double SimplexChannel::transmission_seconds(std::size_t payload) const {
  const double bits =
      static_cast<double>(payload + config_.per_message_overhead) * 8.0;
  return bits / config_.bits_per_second * config_.congestion_factor;
}

void SimplexChannel::send(Bytes message, DeliverFn deliver) {
  const std::size_t payload = message.size();
  const SimTime tx =
      from_seconds(transmission_seconds(payload));
  const SimTime start = std::max(sim_->now(), busy_until_);
  const SimTime done = start + tx;
  busy_until_ = done;
  bytes_sent_ += payload;
  wire_bytes_ += payload + config_.per_message_overhead;
  ++messages_;
  const SimTime arrival = done + config_.latency;
  sim_->schedule_at(arrival,
                    [msg = std::move(message), cb = std::move(deliver)]() mutable {
                      cb(std::move(msg));
                    });
}

}  // namespace shadow::sim
