// Point-to-point link model — the stand-in for the paper's Cypress 9600
// baud lines and ARPANET 56 kbps connections (see DESIGN.md substitution
// table).
//
// A link is full duplex; each direction is a serial pipe: a message's
// transmission occupies the pipe for (framed size * 8 / bits_per_second) *
// congestion_factor seconds, transmissions queue behind one another, and
// delivery additionally lags by the propagation latency. Per-message
// framing overhead models packet headers (TCP/IP over a serial line).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace shadow::sim {

struct LinkConfig {
  std::string name = "link";
  double bits_per_second = 9600.0;
  SimTime latency = 50'000;            // one-way propagation, microseconds
  u64 per_message_overhead = 44;       // framing bytes per message
  double congestion_factor = 1.0;      // >1 models a shared, loaded net

  /// Cypress: 9600 baud leased lines (paper §8.1).
  static LinkConfig cypress_9600();
  /// ARPANET path to Univ. of Illinois: 56 kbps trunk, real throughput
  /// reduced by sharing/congestion ([Nag84], §8.1).
  static LinkConfig arpanet_56k();
  /// A modern-ish fast link for contrast experiments.
  static LinkConfig ethernet_10m();
  /// 1200 baud dialup — the slowest line the paper's niche covers.
  static LinkConfig dialup_1200();
  /// Dedicated 56k modem (a 1990s home line: full trunk rate, long
  /// last-mile latency, no trunk sharing).
  static LinkConfig modem_56k();
  /// Fractional T1 (256 kbps leased).
  static LinkConfig t1_fractional();
  /// Full T1 (1.544 Mbps leased).
  static LinkConfig t1_full();
  /// Modern long-haul WAN: ~50 Mbps per-flow across a continent. The
  /// contrast case where transfer time stops dominating and the
  /// workstation's diff CPU becomes the bottleneck.
  static LinkConfig modern_wan();
};

/// The canonical preset table — every named line the benches and the
/// scenario specs can refer to, defined once here (bench/figure_common.hpp
/// and src/scenario consume it; bench/abl_link_sweep iterates it).
struct LinkPreset {
  const char* name;           // == the LinkConfig's name
  LinkConfig (*make)();
};

/// All presets, slowest line first.
const std::vector<LinkPreset>& link_presets();

/// Preset lookup by name ("cypress-9600", "modem-56k", "modern-wan", ...).
/// Returns false when no preset has that name.
bool link_preset(const std::string& name, LinkConfig* out);

/// One direction of a link.
class SimplexChannel {
 public:
  SimplexChannel(Simulator* simulator, LinkConfig config)
      : sim_(simulator), config_(std::move(config)) {}

  using DeliverFn = std::function<void(Bytes)>;

  /// Queue `message` for transmission; `deliver` fires at arrival time.
  void send(Bytes message, DeliverFn deliver);

  /// Seconds a message of `payload` bytes occupies the pipe.
  double transmission_seconds(std::size_t payload) const;

  u64 bytes_sent() const { return bytes_sent_; }        // payload bytes
  u64 wire_bytes_sent() const { return wire_bytes_; }   // incl. framing
  u64 messages_sent() const { return messages_; }
  SimTime busy_until() const { return busy_until_; }

 private:
  Simulator* sim_;
  LinkConfig config_;
  SimTime busy_until_ = 0;
  u64 bytes_sent_ = 0;
  u64 wire_bytes_ = 0;
  u64 messages_ = 0;
};

/// Full-duplex link: two independent simplex channels.
class Link {
 public:
  Link(Simulator* simulator, const LinkConfig& config)
      : forward_(simulator, config), backward_(simulator, config) {}

  SimplexChannel& forward() { return forward_; }
  SimplexChannel& backward() { return backward_; }

  u64 total_payload_bytes() const {
    return forward_.bytes_sent() + backward_.bytes_sent();
  }
  u64 total_wire_bytes() const {
    return forward_.wire_bytes_sent() + backward_.wire_bytes_sent();
  }
  u64 total_messages() const {
    return forward_.messages_sent() + backward_.messages_sent();
  }

 private:
  SimplexChannel forward_;
  SimplexChannel backward_;
};

}  // namespace shadow::sim
