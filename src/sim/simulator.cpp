#include "sim/simulator.hpp"

#include <cassert>

namespace shadow::sim {

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the function (events are small).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ev.fn();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace shadow::sim
