// Deterministic discrete-event simulator.
//
// Time is in integer microseconds. Events scheduled for the same instant
// fire in FIFO order of scheduling (a strictly increasing sequence number
// breaks ties), so a run is a pure function of its inputs — DESIGN.md
// invariant 6. The figure benches run the whole client/server protocol on
// top of this clock; transfer durations come from the Link model.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace shadow::sim {

/// Simulated time in microseconds.
using SimTime = u64;

constexpr SimTime kMicrosPerSecond = 1'000'000;

inline double to_seconds(SimTime t) {
  return static_cast<double>(t) / kMicrosPerSecond;
}
inline SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * kMicrosPerSecond + 0.5);
}

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now.
  void schedule(SimTime delay, std::function<void()> fn);
  /// Schedule at an absolute time (must be >= now()).
  void schedule_at(SimTime when, std::function<void()> fn);

  /// Run events until the queue drains. Returns the number processed.
  std::size_t run();
  /// Run events with timestamp <= `until`, advancing the clock to exactly
  /// `until` even if the queue drains earlier.
  std::size_t run_until(SimTime until);
  /// Process a single event; returns false if the queue is empty.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    u64 seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  u64 next_seq_ = 0;
};

}  // namespace shadow::sim
