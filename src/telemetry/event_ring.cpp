#include "telemetry/event_ring.hpp"

#include <algorithm>

namespace shadow::telemetry {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kMessage: return "message";
    case EventKind::kCache: return "cache";
    case EventKind::kJournal: return "journal";
    case EventKind::kJob: return "job";
    case EventKind::kSession: return "session";
    case EventKind::kLoad: return "load";
    case EventKind::kServer: return "server";
  }
  return "?";
}

EventRing::EventRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void EventRing::record(EventKind kind, std::string detail) {
  if (detail.size() > kMaxDetailBytes) detail.resize(kMaxDetailBytes);
  std::lock_guard<std::mutex> lock(mu_);
  Event& slot = ring_[next_seq_ % capacity_];
  slot.seq = next_seq_++;
  slot.kind = kind;
  slot.detail = std::move(detail);
}

std::vector<Event> EventRing::recent(std::size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 total = next_seq_ - 1;
  u64 held = std::min<u64>(total, capacity_);
  if (max != 0) held = std::min<u64>(held, max);
  std::vector<Event> out;
  out.reserve(held);
  for (u64 seq = next_seq_ - held; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

u64 EventRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void EventRing::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : ring_) e = Event{};
  next_seq_ = 1;
}

}  // namespace shadow::telemetry
