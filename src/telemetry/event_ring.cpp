#include "telemetry/event_ring.hpp"

#include <algorithm>

namespace shadow::telemetry {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kMessage: return "message";
    case EventKind::kCache: return "cache";
    case EventKind::kJournal: return "journal";
    case EventKind::kJob: return "job";
    case EventKind::kSession: return "session";
    case EventKind::kLoad: return "load";
    case EventKind::kServer: return "server";
  }
  return "?";
}

EventRing::EventRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      ring_(std::make_unique<Slot[]>(capacity == 0 ? 1 : capacity)) {}

void EventRing::record(EventKind kind, std::string detail) {
  if (detail.size() > kMaxDetailBytes) detail.resize(kMaxDetailBytes);
  // Allocate this event's sequence number with a single atomic RMW: the
  // ring-wide ordering needs no lock.
  const u64 seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = ring_[seq % capacity_];
  // Claim the slot's seqlock. Contention here requires another producer
  // whose seq maps to the SAME slot, i.e. a full lap of the ring between
  // our allocation and now.
  u32 v = slot.version.load(std::memory_order_acquire);
  for (;;) {
    if ((v & 1) == 0 &&
        slot.version.compare_exchange_weak(v, v + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      break;
    }
    v = slot.version.load(std::memory_order_acquire);
  }
  if (slot.seq > seq) {
    // We were lapped while claiming: the slot already holds a NEWER event,
    // and ours has already rotated out of the most-recent window. Dropping
    // it preserves the "most recent capacity events" invariant.
    slot.version.store(v + 2, std::memory_order_release);
    return;
  }
  slot.seq = seq;
  slot.kind = kind;
  slot.detail = std::move(detail);
  slot.version.store(v + 2, std::memory_order_release);
}

std::vector<Event> EventRing::recent(std::size_t max) const {
  const u64 total = next_seq_.load(std::memory_order_acquire) - 1;
  u64 held = std::min<u64>(total, capacity_);
  if (max != 0) held = std::min<u64>(held, max);
  std::vector<Event> out;
  out.reserve(held);
  for (u64 seq = total + 1 - held; seq <= total; ++seq) {
    Slot& slot = ring_[seq % capacity_];
    // Claim the slot's lock for the copy (strings cannot be read torn the
    // way a seqlock would need): bounded attempts, then treat the slot as
    // in-flight — its producer allocated seq but has not finished the
    // write — and skip it. A quiescent ring never takes the skip path.
    Event copy;
    bool readable = false;
    for (int attempt = 0; attempt < 1024; ++attempt) {
      u32 v = slot.version.load(std::memory_order_acquire);
      if ((v & 1) != 0) continue;  // writer mid-flight
      if (!slot.version.compare_exchange_weak(v, v + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        continue;
      }
      copy.seq = slot.seq;
      copy.kind = slot.kind;
      copy.detail = slot.detail;
      slot.version.store(v + 2, std::memory_order_release);
      readable = true;
      break;
    }
    if (readable && copy.seq == seq) out.push_back(std::move(copy));
  }
  return out;
}

void EventRing::reset() {
  // Producers must be quiescent (documented contract); claim each slot
  // anyway so a straggler cannot corrupt the seqlock protocol.
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = ring_[i];
    u32 v = slot.version.load(std::memory_order_acquire);
    while ((v & 1) != 0 ||
           !slot.version.compare_exchange_weak(v, v + 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      v = slot.version.load(std::memory_order_acquire);
    }
    slot.seq = 0;
    slot.kind = EventKind::kServer;
    slot.detail.clear();
    slot.version.store(v + 2, std::memory_order_release);
  }
  next_seq_.store(1, std::memory_order_release);
}

}  // namespace shadow::telemetry
