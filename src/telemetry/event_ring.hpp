// Fixed-size ring of recent protocol/storage events — the flight recorder
// behind `shadowtop events`. Bounded memory, O(1) record, and one hard
// invariant the telemetry tests enforce: a quiescent ring always holds the
// min(total_recorded, capacity) MOST RECENT events, with strictly
// increasing sequence numbers and no gaps.
//
// Safe under CONCURRENT PRODUCERS (the sharded server records from every
// shard thread): sequence numbers are allocated with one atomic RMW on the
// ring-wide counter, and each slot is guarded by its own seqlock, so two
// producers serialize only when they land on the same slot — which takes a
// full capacity's worth of events recorded between allocation and write.
// A producer that IS lapped that way drops its own (already obsolete)
// event instead of overwriting a newer one. Readers copy slots through the
// seqlock and skip entries whose write is still in flight; on a quiescent
// ring the snapshot is exact.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace shadow::telemetry {

/// Coarse event taxonomy; the detail string carries the specifics.
enum class EventKind : u16 {
  kMessage = 1,  // protocol message received/sent
  kCache = 2,    // shadow-cache insert/evict/reject
  kJournal = 3,  // persist-layer append/compaction/recovery
  kJob = 4,      // job lifecycle transition
  kSession = 5,  // reliable-session resync/desync
  kLoad = 6,     // load-monitor deferral
  kServer = 7,   // server lifecycle (connect, recover, shutdown)
};

const char* event_kind_name(EventKind kind);

struct Event {
  u64 seq = 0;  // 1-based, strictly increasing, never reused
  EventKind kind = EventKind::kServer;
  std::string detail;
};

class EventRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;
  /// Longer details are truncated at record() time: the ring's footprint
  /// stays bounded no matter what callers pass in.
  static constexpr std::size_t kMaxDetailBytes = 160;

  explicit EventRing(std::size_t capacity = kDefaultCapacity);

  void record(EventKind kind, std::string detail);

  /// The most recent min(max, size) events, oldest first (0 = all held).
  /// Sequence numbers in the result are strictly increasing; entries whose
  /// write is still in flight on another thread are skipped, so only a
  /// quiescent ring is guaranteed gap-free.
  std::vector<Event> recent(std::size_t max = 0) const;

  u64 total_recorded() const {
    return next_seq_.load(std::memory_order_acquire) - 1;
  }
  std::size_t capacity() const { return capacity_; }

  /// Zero the ring. Callers must quiesce producers first (tests reset
  /// between trials; the live server never resets).
  void reset();

 private:
  /// One ring entry under a private seqlock: odd version = write in
  /// progress. Writers claim with a CAS; readers copy and re-check.
  struct Slot {
    std::atomic<u32> version{0};
    u64 seq = 0;
    EventKind kind = EventKind::kServer;
    std::string detail;
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> ring_;  // ring_[seq % capacity_]
  std::atomic<u64> next_seq_{1};
};

}  // namespace shadow::telemetry
