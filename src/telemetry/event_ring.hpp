// Fixed-size ring of recent protocol/storage events — the flight recorder
// behind `shadowtop events`. Bounded memory, O(1) record, and one hard
// invariant the telemetry tests enforce: the ring always holds the
// min(total_recorded, capacity) MOST RECENT events, with strictly
// increasing sequence numbers and no gaps.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace shadow::telemetry {

/// Coarse event taxonomy; the detail string carries the specifics.
enum class EventKind : u16 {
  kMessage = 1,  // protocol message received/sent
  kCache = 2,    // shadow-cache insert/evict/reject
  kJournal = 3,  // persist-layer append/compaction/recovery
  kJob = 4,      // job lifecycle transition
  kSession = 5,  // reliable-session resync/desync
  kLoad = 6,     // load-monitor deferral
  kServer = 7,   // server lifecycle (connect, recover, shutdown)
};

const char* event_kind_name(EventKind kind);

struct Event {
  u64 seq = 0;  // 1-based, strictly increasing, never reused
  EventKind kind = EventKind::kServer;
  std::string detail;
};

class EventRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;
  /// Longer details are truncated at record() time: the ring's footprint
  /// stays bounded no matter what callers pass in.
  static constexpr std::size_t kMaxDetailBytes = 160;

  explicit EventRing(std::size_t capacity = kDefaultCapacity);

  void record(EventKind kind, std::string detail);

  /// The most recent min(max, size) events, oldest first (0 = all held).
  std::vector<Event> recent(std::size_t max = 0) const;

  u64 total_recorded() const;
  std::size_t capacity() const { return capacity_; }

  void reset();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<Event> ring_;  // ring_[seq % capacity_]
  u64 next_seq_ = 1;
};

}  // namespace shadow::telemetry
