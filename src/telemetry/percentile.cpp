#include "telemetry/percentile.hpp"

#include <cmath>

namespace shadow::telemetry {

namespace {

/// Exclusive upper edge of bucket i, as a double (bucket 64's edge, 2^64,
/// overflows u64).
double bucket_ceiling(std::size_t i) {
  if (i == 0) return 1.0;
  return 2.0 * static_cast<double>(Histogram::bucket_floor(i));
}

/// Shared core over the sparse (index, count) form. Uses the nearest-rank
/// definition: the estimate interpolates the position of the k-th smallest
/// sample (k = clamp(ceil(q*n), 1, n)) across its bucket's value range, so
/// it always lies inside the bucket that truly holds the k-th sample.
double quantile_over_buckets(const std::vector<std::pair<u8, u64>>& buckets,
                             double q) {
  u64 total = 0;
  for (const auto& [index, count] : buckets) total += count;
  if (total == 0) return 0.0;

  double rank_d = std::ceil(q * static_cast<double>(total));
  if (rank_d < 1.0) rank_d = 1.0;
  if (rank_d > static_cast<double>(total)) {
    rank_d = static_cast<double>(total);
  }
  const u64 rank = static_cast<u64>(rank_d);  // 1-based order statistic

  u64 seen = 0;
  for (const auto& [index, count] : buckets) {
    if (seen + count < rank) {
      seen += count;
      continue;
    }
    const std::size_t i = index;
    if (i == 0) return 0.0;  // bucket 0 holds only the value 0
    const double lo = static_cast<double>(Histogram::bucket_floor(i));
    const double hi = bucket_ceiling(i);
    // Midpoint-of-rank interpolation: the j-th of c samples in a bucket
    // (j 1-based) sits at fraction (j - 0.5) / c of the bucket's range.
    const double j = static_cast<double>(rank - seen);
    const double f = (j - 0.5) / static_cast<double>(count);
    return lo + f * (hi - lo);
  }
  return 0.0;  // unreachable for a consistent histogram
}

}  // namespace

double estimate_quantile(const HistogramSnapshot& h, double q) {
  return quantile_over_buckets(h.buckets, q);
}

double estimate_quantile(const Histogram& h, double q) {
  std::vector<std::pair<u8, u64>> buckets;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const u64 c = h.bucket(i);
    if (c != 0) buckets.emplace_back(static_cast<u8>(i), c);
  }
  return quantile_over_buckets(buckets, q);
}

QuantileSummary summarize_quantiles(const HistogramSnapshot& h) {
  return QuantileSummary{estimate_quantile(h, 0.50),
                         estimate_quantile(h, 0.90),
                         estimate_quantile(h, 0.99)};
}

QuantileSummary summarize_quantiles(const Histogram& h) {
  return QuantileSummary{estimate_quantile(h, 0.50),
                         estimate_quantile(h, 0.90),
                         estimate_quantile(h, 0.99)};
}

}  // namespace shadow::telemetry
