// Quantile estimation over the registry's log2-bucketed histograms.
//
// A Histogram only remembers how many samples fell in each power-of-two
// bucket, so an exact quantile is unrecoverable; what IS recoverable is
// the bucket the quantile-ranked sample landed in, plus a linear
// interpolation of the rank's position across that bucket's value range.
// The estimate therefore carries a hard error bound: it lies inside the
// same [2^(i-1), 2^i) bucket as the exact order statistic, i.e. within a
// factor of 2 (and much closer in practice for smooth distributions) —
// tests/percentile_test.cpp pins both properties.
//
// Consumers: shadowsim's scenario reports, shadowtop --json (render_json
// attaches p50/p90/p99 to every histogram), and bench/abl_scale.
#pragma once

#include "telemetry/registry.hpp"

namespace shadow::telemetry {

/// Estimated value of the q-quantile (q in [0, 1]; 0.5 = median) of the
/// samples a histogram has observed. Returns 0 for an empty histogram.
/// q <= 0 estimates the minimum's bucket floor; q >= 1 the maximum's
/// bucket ceiling.
double estimate_quantile(const HistogramSnapshot& h, double q);
double estimate_quantile(const Histogram& h, double q);

/// The three quantiles every report ships.
struct QuantileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

QuantileSummary summarize_quantiles(const HistogramSnapshot& h);
QuantileSummary summarize_quantiles(const Histogram& h);

}  // namespace shadow::telemetry
