#include "telemetry/registry.hpp"

#include <algorithm>

#include "telemetry/percentile.hpp"
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace shadow::telemetry {

std::size_t Histogram::bucket_index(u64 v) {
  // bit_width(0) == 0, bit_width(1) == 1, ... bit_width(2^63) == 64.
  return static_cast<std::size_t>(std::bit_width(v));
}

u64 Histogram::bucket_floor(std::size_t i) {
  if (i == 0) return 0;
  return u64{1} << (i - 1);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

namespace {
template <typename Map>
auto& fetch_or_create(Map& map, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  return fetch_or_create(counters_, name, mu_);
}

Gauge& Registry::gauge(std::string_view name) {
  return fetch_or_create(gauges_, name, mu_);
}

Histogram& Registry::histogram(std::string_view name) {
  return fetch_or_create(histograms_, name, mu_);
}

namespace {
bool has_prefix(const std::string& name, std::string_view prefix) {
  return prefix.empty() ||
         (name.size() >= prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0);
}
}  // namespace

Snapshot Registry::snapshot(std::string_view prefix,
                            std::size_t max_events) const {
  Snapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      if (has_prefix(name, prefix)) out.counters.push_back({name, c->value()});
    }
    for (const auto& [name, g] : gauges_) {
      if (has_prefix(name, prefix)) out.gauges.push_back({name, g->value()});
    }
    for (const auto& [name, h] : histograms_) {
      if (!has_prefix(name, prefix)) continue;
      HistogramSnapshot hs;
      hs.name = name;
      hs.count = h->count();
      hs.sum = h->sum();
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        const u64 c = h->bucket(i);
        if (c != 0) hs.buckets.emplace_back(static_cast<u8>(i), c);
      }
      out.histograms.push_back(std::move(hs));
    }
  }
  if (max_events != 0) out.events = events_.recent(max_events);
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  events_.reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

namespace {
void append_format(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append_format(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

/// JSON string escaping for metric names and event details (control
/// characters, quotes, backslashes; everything else passes through).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_format(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string render_text(const Snapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& c : snapshot.counters) {
      append_format(out, "  %-44s %" PRIu64 "\n", c.name.c_str(), c.value);
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& g : snapshot.gauges) {
      append_format(out, "  %-44s %.3f\n", g.name.c_str(), g.value);
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& h : snapshot.histograms) {
      append_format(out, "  %-44s count=%" PRIu64 " sum=%" PRIu64 "\n",
                    h.name.c_str(), h.count, h.sum);
      for (const auto& [idx, count] : h.buckets) {
        const u64 lo = Histogram::bucket_floor(idx);
        std::string bar(static_cast<std::size_t>(
                            std::min<u64>(40, count)), '#');
        append_format(out, "    [%12" PRIu64 ", ...)  %-8" PRIu64 " %s\n",
                      lo, count, bar.c_str());
      }
    }
  }
  if (!snapshot.events.empty()) {
    out += "events (oldest first):\n";
    for (const auto& e : snapshot.events) {
      append_format(out, "  #%-6" PRIu64 " %-8s %s\n", e.seq,
                    event_kind_name(e.kind), e.detail.c_str());
    }
  }
  if (out.empty()) out = "(no metrics)\n";
  return out;
}

std::string render_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    append_format(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
                  json_escape(c.name).c_str(), c.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : snapshot.gauges) {
    append_format(out, "%s\n    \"%s\": %.6f", first ? "" : ",",
                  json_escape(g.name).c_str(), g.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    append_format(out, "%s\n    \"%s\": {\"count\": %" PRIu64
                       ", \"sum\": %" PRIu64 ", \"buckets\": [",
                  first ? "" : ",", json_escape(h.name).c_str(), h.count,
                  h.sum);
    bool bfirst = true;
    for (const auto& [idx, count] : h.buckets) {
      append_format(out, "%s[%" PRIu64 ", %" PRIu64 "]", bfirst ? "" : ", ",
                    Histogram::bucket_floor(idx), count);
      bfirst = false;
    }
    // Estimated percentiles (telemetry/percentile.hpp): within the exact
    // order statistic's log2 bucket, so a consumer never has to re-derive
    // them from the bucket list.
    const QuantileSummary qs = summarize_quantiles(h);
    append_format(out, "], \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f}",
                  qs.p50, qs.p90, qs.p99);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"events\": [";
  first = true;
  for (const auto& e : snapshot.events) {
    append_format(out, "%s\n    {\"seq\": %" PRIu64
                       ", \"kind\": \"%s\", \"detail\": \"%s\"}",
                  first ? "" : ",", e.seq, event_kind_name(e.kind),
                  json_escape(e.detail).c_str());
    first = false;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace shadow::telemetry
