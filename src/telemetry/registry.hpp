// First-class observability for the shadow system (ROADMAP: heavy
// multi-user traffic needs the server to SEE its own load — the paper's
// §5.2 "monitoring the load average, cache size ... number of incoming
// jobs" made queryable instead of buried in private fields).
//
// A Registry is a nameable, enumerable set of metrics:
//   * Counter   — monotonic u64 (events that happened),
//   * Gauge     — instantaneous double (current readings: load average,
//                 cache bytes, queue depth),
//   * Histogram — log2-bucketed u64 distribution (latencies, sizes).
//
// Lock-cheap by construction: instrumentation sites resolve their metric
// ONCE (registration takes a mutex, returns a stable reference) and then
// touch only relaxed atomics. The hot path is a single fetch_add.
//
//   static auto& c_hits = telemetry::Registry::global()
//                             .counter("cache.hits");
//   c_hits.add();
//
// One process-global registry serves the daemon (shadowd exposes it over
// the AdminQuery/AdminReply channel; see docs/OBSERVABILITY.md for the
// naming scheme). Tests may construct private registries, or zero the
// global one with reset_values() — references stay valid forever; metrics
// are never deleted.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/event_ring.hpp"
#include "util/types.hpp"

namespace shadow::telemetry {

/// Monotonic event count. store() exists only for mirroring an externally
/// accumulated statistic (e.g. ServerStats) into the registry; organic
/// instrumentation uses add().
class Counter {
 public:
  void add(u64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void store(u64 v) { value_.store(v, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<u64> value_{0};
};

/// Instantaneous reading; set() overwrites.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution of u64 samples: bucket i holds samples whose
/// bit width is i (bucket 0 = value 0, bucket 1 = 1, bucket 2 = 2..3,
/// bucket 3 = 4..7, ... bucket 64 = 2^63..). Fixed footprint, O(1)
/// observe, no allocation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(u64 v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum() const { return sum_.load(std::memory_order_relaxed); }
  u64 bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Bucket index a value falls in.
  static std::size_t bucket_index(u64 v);
  /// Smallest value of bucket i (0, 1, 2, 4, 8, ...).
  static u64 bucket_floor(std::size_t i);

 private:
  friend class Registry;
  void reset();
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> buckets_[kBuckets] = {};
};

// ---- enumeration ----

struct CounterSnapshot {
  std::string name;
  u64 value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  u64 count = 0;
  u64 sum = 0;
  /// Sparse: only non-empty buckets, as (bucket index, count).
  std::vector<std::pair<u8, u64>> buckets;
};

/// Point-in-time, self-contained copy of a registry (and optionally the
/// event ring) — what the admin channel ships and the renderers consume.
struct Snapshot {
  std::vector<CounterSnapshot> counters;   // sorted by name
  std::vector<GaugeSnapshot> gauges;       // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name
  std::vector<Event> events;               // oldest -> newest
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Fetch-or-create by name. References remain valid for the registry's
  /// lifetime (metrics are never deleted). A name denotes one kind only;
  /// re-registering under a different kind is an abort-worthy bug, caught
  /// by assert in debug builds and by the first snapshot in release.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  EventRing& events() { return events_; }
  const EventRing& events() const { return events_; }

  /// Enumerate everything whose name starts with `prefix` ("" = all).
  /// `max_events` caps the event section (0 = none included).
  Snapshot snapshot(std::string_view prefix = {},
                    std::size_t max_events = 0) const;

  /// Zero every value and clear the ring; references stay valid. Tests
  /// call this between trials to measure per-trial deltas.
  void reset_values();

  /// The process-wide registry all built-in instrumentation feeds.
  static Registry& global();

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  EventRing events_;
};

/// Human-oriented flat text ("name value" lines, histogram bucket bars,
/// recent events) — what `shadowtop` and `shadowd --metrics` print.
std::string render_text(const Snapshot& snapshot);

/// Machine-oriented JSON export (stable key order; no external deps).
std::string render_json(const Snapshot& snapshot);

}  // namespace shadow::telemetry
