#include "util/byte_io.hpp"

namespace shadow {

void BufWriter::put_u16(u16 v) {
  put_u8(static_cast<u8>(v));
  put_u8(static_cast<u8>(v >> 8));
}

void BufWriter::put_u32(u32 v) {
  put_u16(static_cast<u16>(v));
  put_u16(static_cast<u16>(v >> 16));
}

void BufWriter::put_u64(u64 v) {
  put_u32(static_cast<u32>(v));
  put_u32(static_cast<u32>(v >> 32));
}

void BufWriter::put_varint(u64 v) {
  while (v >= 0x80) {
    put_u8(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<u8>(v));
}

void BufWriter::put_varint_signed(i64 v) {
  // ZigZag: map signed to unsigned preserving small magnitudes.
  put_varint((static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63));
}

void BufWriter::put_bytes(const Bytes& b) {
  put_varint(b.size());
  put_raw(b);
}

void BufWriter::put_string(const std::string& s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BufWriter::put_raw(const u8* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Result<u8> BufReader::get_u8() {
  if (pos_ >= buf_.size()) {
    return Error{ErrorCode::kProtocolError, "read past end of buffer"};
  }
  return buf_[pos_++];
}

Result<u16> BufReader::get_u16() {
  SHADOW_ASSIGN_OR_RETURN(lo, get_u8());
  SHADOW_ASSIGN_OR_RETURN(hi, get_u8());
  return static_cast<u16>(lo | (static_cast<u16>(hi) << 8));
}

Result<u32> BufReader::get_u32() {
  SHADOW_ASSIGN_OR_RETURN(lo, get_u16());
  SHADOW_ASSIGN_OR_RETURN(hi, get_u16());
  return static_cast<u32>(lo) | (static_cast<u32>(hi) << 16);
}

Result<u64> BufReader::get_u64() {
  SHADOW_ASSIGN_OR_RETURN(lo, get_u32());
  SHADOW_ASSIGN_OR_RETURN(hi, get_u32());
  return static_cast<u64>(lo) | (static_cast<u64>(hi) << 32);
}

Result<u64> BufReader::get_varint() {
  u64 value = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) {
      return Error{ErrorCode::kProtocolError, "varint too long"};
    }
    SHADOW_ASSIGN_OR_RETURN(byte, get_u8());
    value |= static_cast<u64>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

Result<i64> BufReader::get_varint_signed() {
  SHADOW_ASSIGN_OR_RETURN(z, get_varint());
  return static_cast<i64>((z >> 1) ^ (0 - (z & 1)));
}

Result<Bytes> BufReader::get_bytes() {
  SHADOW_ASSIGN_OR_RETURN(len, get_varint());
  return get_raw(static_cast<std::size_t>(len));
}

Result<std::string> BufReader::get_string() {
  SHADOW_ASSIGN_OR_RETURN(raw, get_bytes());
  return std::string(raw.begin(), raw.end());
}

Result<Bytes> BufReader::get_raw(std::size_t len) {
  if (len > remaining()) {
    return Error{ErrorCode::kProtocolError,
                 "length prefix exceeds remaining buffer"};
  }
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace shadow
