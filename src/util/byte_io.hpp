// Bounds-checked binary readers/writers used by the wire codec and the
// delta serializer. Integers are little-endian; variable-length integers
// use LEB128 so that small values (line numbers, short lengths — the common
// case in ed-script deltas) cost one byte on the wire.
#pragma once

#include <cstddef>
#include <string>

#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow {

/// Appends primitives to a growable byte buffer.
class BufWriter {
 public:
  BufWriter() = default;

  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v);
  void put_u32(u32 v);
  void put_u64(u64 v);

  /// Unsigned LEB128.
  void put_varint(u64 v);
  /// ZigZag-encoded signed LEB128.
  void put_varint_signed(i64 v);

  /// Length-prefixed (varint) byte block.
  void put_bytes(const Bytes& b);
  /// Length-prefixed (varint) string.
  void put_string(const std::string& s);
  /// Raw bytes, no length prefix.
  void put_raw(const u8* data, std::size_t len);
  void put_raw(const Bytes& b) { put_raw(b.data(), b.size()); }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads primitives from a byte buffer with bounds checking. Every getter
/// returns an error instead of reading past the end, so a truncated or
/// malicious wire message can never cause out-of-bounds access.
class BufReader {
 public:
  explicit BufReader(const Bytes& buf) : buf_(buf) {}

  Result<u8> get_u8();
  Result<u16> get_u16();
  Result<u32> get_u32();
  Result<u64> get_u64();
  Result<u64> get_varint();
  Result<i64> get_varint_signed();
  Result<Bytes> get_bytes();
  Result<std::string> get_string();
  /// Exactly `len` raw bytes.
  Result<Bytes> get_raw(std::size_t len);

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t position() const { return pos_; }

 private:
  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace shadow
