#include "util/crc32.hpp"

#include <array>
#include <utility>

namespace shadow {

namespace {
std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<u32, 256>& table() {
  static const std::array<u32, 256> t = make_table();
  return t;
}
}  // namespace

void Crc32::update(const u8* data, std::size_t len) {
  const auto& t = table();
  for (std::size_t i = 0; i < len; ++i) {
    state_ = t[(state_ ^ data[i]) & 0xFFu] ^ (state_ >> 8);
  }
}

u32 crc32(const u8* data, std::size_t len) {
  Crc32 c;
  c.update(data, len);
  return c.value();
}

u32 crc32(const Bytes& data) { return crc32(data.data(), data.size()); }

namespace {

// GF(2) 32x32 matrix operating on CRC state vectors. mat[i] is the image
// of the i-th basis vector; multiplying by the matrix advances a CRC as
// if some number of zero bytes were appended.
using CrcMatrix = std::array<u32, 32>;

u32 gf2_times_vec(const CrcMatrix& mat, u32 vec) {
  u32 sum = 0;
  for (int i = 0; vec != 0; ++i, vec >>= 1) {
    if (vec & 1u) sum ^= mat[i];
  }
  return sum;
}

CrcMatrix gf2_square(const CrcMatrix& mat) {
  CrcMatrix sq{};
  for (int i = 0; i < 32; ++i) sq[i] = gf2_times_vec(mat, mat[i]);
  return sq;
}

}  // namespace

u32 crc32_combine(u32 crc_a, u32 crc_b, u64 len_b) {
  if (len_b == 0) return crc_a;
  // Operator for one zero BIT: the CRC shift with the reflected polynomial
  // folded in when the low bit falls off.
  CrcMatrix odd{};
  odd[0] = 0xEDB88320u;
  for (int i = 1; i < 32; ++i) odd[i] = 1u << (i - 1);
  // Squaring doubles the zero-length an operator appends.
  CrcMatrix even = gf2_square(odd);   // 2 bits
  odd = gf2_square(even);             // 4 bits
  even = gf2_square(odd);             // 8 bits = 1 byte
  // `even` now appends one zero byte; walk len_b's bits, squaring as we
  // go, so bit k of len_b applies the 2^k-zero-byte operator.
  u32 crc = crc_a;
  CrcMatrix* cur = &even;
  CrcMatrix* next = &odd;
  u64 len = len_b;
  while (true) {
    if (len & 1u) crc = gf2_times_vec(*cur, crc);
    len >>= 1;
    if (len == 0) break;
    *next = gf2_square(*cur);
    std::swap(cur, next);
  }
  return crc ^ crc_b;
}

}  // namespace shadow
