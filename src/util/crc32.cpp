#include "util/crc32.hpp"

#include <array>

namespace shadow {

namespace {
std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<u32, 256>& table() {
  static const std::array<u32, 256> t = make_table();
  return t;
}
}  // namespace

void Crc32::update(const u8* data, std::size_t len) {
  const auto& t = table();
  for (std::size_t i = 0; i < len; ++i) {
    state_ = t[(state_ ^ data[i]) & 0xFFu] ^ (state_ >> 8);
  }
}

u32 crc32(const u8* data, std::size_t len) {
  Crc32 c;
  c.update(data, len);
  return c.value();
}

u32 crc32(const Bytes& data) { return crc32(data.data(), data.size()); }

}  // namespace shadow
