// CRC-32 (IEEE 802.3 polynomial) used for content fingerprints and wire
// integrity checks. The paper's protocol must detect a stale or corrupted
// cached version before applying a delta to it; we use CRC32 of the file
// content as the cheap fingerprint.
#pragma once

#include <cstddef>

#include "util/types.hpp"

namespace shadow {

/// Incremental CRC-32 computation.
class Crc32 {
 public:
  /// Feed `len` bytes.
  void update(const u8* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }

  /// Finalized CRC value of everything fed so far.
  u32 value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  u32 state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte buffer.
u32 crc32(const Bytes& data);
u32 crc32(const u8* data, std::size_t len);

/// CRC-32 of the concatenation A||B given crc(A), crc(B) and |B| — the
/// zlib GF(2) matrix technique. Lets a digest-only peer compose per-chunk
/// CRCs into the whole-file fingerprint without ever holding the bytes
/// (the CDC codec's verified-apply path, docs/DELTAS.md).
u32 crc32_combine(u32 crc_a, u32 crc_b, u64 len_b);

}  // namespace shadow
