#include "util/logging.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace shadow {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Result<LogLevel> log_level_from_name(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return Error{ErrorCode::kInvalidArgument,
               "unknown log level '" + std::string(name) +
                   "' (want trace|debug|info|warn|error|off)"};
}

namespace {
std::mutex g_log_mutex;

void stderr_sink(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}
}  // namespace

Logger::Logger() : sink_(stderr_sink) {
  if (const char* env = std::getenv("SHADOW_LOG_LEVEL")) {
    auto level = log_level_from_name(env);
    if (level.ok()) {
      level_ = level.value();
    } else {
      std::fprintf(stderr, "[WARN] ignoring SHADOW_LOG_LEVEL: %s\n",
                   level.error().to_string().c_str());
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(LogSink sink) {
  sink_ = sink ? std::move(sink) : LogSink(stderr_sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace shadow
