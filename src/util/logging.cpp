#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace shadow {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace {
std::mutex g_log_mutex;

void stderr_sink(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}
}  // namespace

Logger::Logger() : sink_(stderr_sink) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(LogSink sink) {
  sink_ = sink ? std::move(sink) : LogSink(stderr_sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace shadow
