// Minimal leveled logger with pluggable sink.
//
// Default sink writes to stderr; tests install a capturing sink. Logging is
// process-global and cheap when the level is filtered out.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "util/result.hpp"

namespace shadow {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Parse a level name ("trace", "debug", "info", "warn", "error", "off";
/// case-insensitive). The inverse of log_level_name — what `--log-level`
/// and the SHADOW_LOG_LEVEL environment variable accept.
Result<LogLevel> log_level_from_name(std::string_view name);

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Global logger configuration. The first instance() call honours the
/// SHADOW_LOG_LEVEL environment variable (any log_level_from_name()
/// spelling); a later set_level() — e.g. from --log-level — overrides it.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink. Pass nullptr to restore the stderr sink.
  void set_sink(LogSink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  LogSink sink_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define SHADOW_LOG(level)                                  \
  if (!::shadow::Logger::instance().enabled(level)) {      \
  } else                                                   \
    ::shadow::detail::LogLine(level)

#define SHADOW_TRACE() SHADOW_LOG(::shadow::LogLevel::kTrace)
#define SHADOW_DEBUG() SHADOW_LOG(::shadow::LogLevel::kDebug)
#define SHADOW_INFO() SHADOW_LOG(::shadow::LogLevel::kInfo)
#define SHADOW_WARN() SHADOW_LOG(::shadow::LogLevel::kWarn)
#define SHADOW_ERROR() SHADOW_LOG(::shadow::LogLevel::kError)

}  // namespace shadow
