#include "util/result.hpp"

namespace shadow {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kVersionMismatch: return "VERSION_MISMATCH";
    case ErrorCode::kCacheMiss: return "CACHE_MISS";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kNotADirectory: return "NOT_A_DIRECTORY";
    case ErrorCode::kIsADirectory: return "IS_A_DIRECTORY";
    case ErrorCode::kLoopDetected: return "LOOP_DETECTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace shadow
