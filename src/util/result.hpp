// Lightweight Result<T> error-handling type.
//
// The shadow library does not throw exceptions across module boundaries:
// fallible operations return Result<T>, which either holds a value or an
// Error carrying a code and a human-readable message. This mirrors the
// paper's "best effort" philosophy — a missing cached file, an evicted
// shadow or a lost version is an expected outcome that callers must handle,
// not an exceptional one.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace shadow {

/// Machine-readable error categories used throughout the library.
enum class ErrorCode {
  kOk = 0,
  kNotFound,          // file / version / job / cache entry absent
  kAlreadyExists,     // creating something that exists
  kInvalidArgument,   // caller passed something malformed
  kProtocolError,     // malformed or out-of-order wire message
  kVersionMismatch,   // delta base version not available
  kCacheMiss,         // shadow copy evicted or never stored (best-effort)
  kIoError,           // transport / socket failure
  kPermissionDenied,  // operation not allowed in current state
  kResourceExhausted, // disk budget, queue limit, retention limit
  kNotADirectory,     // path component is not a directory
  kIsADirectory,      // file operation on a directory
  kLoopDetected,      // symlink / mount resolution cycle
  kInternal,          // invariant violation (bug)
};

/// Human-readable name for an ErrorCode.
const char* error_code_name(ErrorCode code);

/// An error: code + context message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

/// Result<T>: holds either a T or an Error.
///
/// Usage:
///   Result<int> r = parse(s);
///   if (!r.ok()) return r.error();
///   use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT implicit
  Result(Error error) : data_(std::move(error)) {}  // NOLINT implicit
  Result(ErrorCode code, std::string msg)
      : data_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  /// Value if ok, otherwise the provided fallback.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }
  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : error().code;
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue: success or an Error.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT
  Status(ErrorCode code, std::string msg)
      : error_(code, std::move(msg)), failed_(true) {}

  static Status ok_status() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(failed_);
    return error_;
  }
  ErrorCode code() const { return failed_ ? error_.code : ErrorCode::kOk; }
  std::string to_string() const {
    return failed_ ? error_.to_string() : "OK";
  }

 private:
  Error error_;
  bool failed_ = false;
};

/// Propagate an error from a Result/Status expression.
#define SHADOW_TRY(expr)                         \
  do {                                           \
    auto shadow_try_tmp_ = (expr);               \
    if (!shadow_try_tmp_.ok()) {                 \
      return shadow_try_tmp_.error();            \
    }                                            \
  } while (0)

/// Assign a Result's value or propagate its error.
#define SHADOW_ASSIGN_OR_RETURN(lhs, expr)       \
  auto lhs##_result_ = (expr);                   \
  if (!lhs##_result_.ok()) {                     \
    return lhs##_result_.error();                \
  }                                              \
  auto lhs = std::move(lhs##_result_).take()

}  // namespace shadow
