#include "util/rng.hpp"

namespace shadow {

namespace {
u64 splitmix64(u64& x) {
  x += 0x9E3779B97F4A7C15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(u64 seed) {
  u64 sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

u64 Rng::next() {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  // Rejection sampling to avoid modulo bias.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = next();
    if (r >= threshold) return r % bound;
  }
}

u64 Rng::between(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::string Rng::ascii_line(std::size_t length) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:";
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(kAlphabet[below(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

Bytes Rng::bytes(std::size_t length) {
  Bytes b(length);
  for (auto& byte : b) byte = static_cast<u8>(below(256));
  return b;
}

}  // namespace shadow
