// Deterministic pseudo-random generator (xoshiro256**) used by workload
// generators, property tests and the simulator. Seeded explicitly so every
// experiment is reproducible bit-for-bit.
#pragma once

#include <cstddef>
#include <string>

#include "util/types.hpp"

namespace shadow {

/// xoshiro256** seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eedULL) { reseed(seed); }

  void reseed(u64 seed);

  /// Uniform 64-bit value.
  u64 next();

  /// Uniform integer in [0, bound) — bound must be > 0.
  u64 below(u64 bound);

  /// Uniform integer in [lo, hi] inclusive.
  u64 between(u64 lo, u64 hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Random printable ASCII text line of the given length (no newline).
  std::string ascii_line(std::size_t length);

  /// Random byte buffer.
  Bytes bytes(std::size_t length);

 private:
  u64 state_[4];
};

}  // namespace shadow
