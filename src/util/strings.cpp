#include "util/strings.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>

namespace shadow {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (auto& part : split(s, delim)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes < 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  } else if (bytes < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
  }
  return buf;
}

Result<Bytes> read_disk_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kNotFound, "cannot open " + path};
  }
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Error{ErrorCode::kIoError, "read error on " + path};
  }
  return data;
}

Status write_disk_file(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Error{ErrorCode::kIoError, "cannot create " + tmp};
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) {
      return Error{ErrorCode::kIoError, "write error on " + tmp};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Error{ErrorCode::kIoError, "rename failed for " + path};
  }
  return Status();
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    const int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm %.1fs", minutes,
                  seconds - minutes * 60.0);
  }
  return buf;
}

}  // namespace shadow
