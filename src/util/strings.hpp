// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow {

/// Split on a delimiter character. "a,,b" -> {"a","","b"}; "" -> {""}.
std::vector<std::string> split(std::string_view s, char delim);

/// Split, dropping empty fields. "a,,b" -> {"a","b"}; "" -> {}.
std::vector<std::string> split_nonempty(std::string_view s, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Strip leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Format a byte count as "12.3 KB" style for reports.
std::string format_bytes(double bytes);

/// Format seconds as "1m 23.4s" style for reports.
std::string format_duration(double seconds);

/// Read a whole file from the REAL filesystem (used by the CLI tools for
/// snapshots; the simulated world uses vfs instead).
Result<Bytes> read_disk_file(const std::string& path);
/// Write a whole file to the real filesystem (atomic via rename).
Status write_disk_file(const std::string& path, const Bytes& data);

}  // namespace shadow
