#include "util/text.hpp"

namespace shadow {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start + 1));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    lines.emplace_back(text.substr(start));
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  std::size_t total = 0;
  for (const auto& line : lines) total += line.size();
  out.reserve(total);
  for (const auto& line : lines) out += line;
  return out;
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++n;
      start = i + 1;
    }
  }
  if (start < text.size()) ++n;
  return n;
}

}  // namespace shadow
