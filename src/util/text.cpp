#include "util/text.hpp"

#include <cstring>

namespace shadow {

std::vector<std::string_view> split_line_views(std::string_view text) {
  std::vector<std::string_view> lines;
  if (text.empty()) return lines;
  lines.reserve(count_lines(text));
  std::size_t start = 0;
  while (start < text.size()) {
    const void* nl = std::memchr(text.data() + start, '\n',
                                 text.size() - start);
    if (nl == nullptr) {
      lines.push_back(text.substr(start));
      break;
    }
    const std::size_t end =
        static_cast<std::size_t>(static_cast<const char*>(nl) - text.data());
    lines.push_back(text.substr(start, end - start + 1));
    start = end + 1;
  }
  return lines;
}

std::vector<std::string> split_lines(const std::string& text) {
  const auto views = split_line_views(text);
  return {views.begin(), views.end()};
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  std::size_t total = 0;
  for (const auto& line : lines) total += line.size();
  out.reserve(total);
  for (const auto& line : lines) out += line;
  return out;
}

std::size_t count_lines(std::string_view text) {
  std::size_t n = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    const void* nl = std::memchr(text.data() + start, '\n',
                                 text.size() - start);
    if (nl == nullptr) {
      ++n;
      break;
    }
    ++n;
    start = static_cast<std::size_t>(static_cast<const char*>(nl) -
                                     text.data()) +
            1;
  }
  return n;
}

}  // namespace shadow
