// Line-oriented text model used by the diff algorithms.
//
// A text file is a sequence of lines where every line RETAINS its trailing
// '\n' except possibly the last one. With this representation
// join_lines(split_lines(t)) == t for every input, including files with no
// trailing newline and empty files — the exact round-trip the diff/patch
// invariant depends on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace shadow {

/// Split into newline-terminated lines (terminators retained).
/// "" -> {}; "a\nb" -> {"a\n", "b"}; "a\n" -> {"a\n"}.
std::vector<std::string> split_lines(const std::string& text);

/// Zero-copy variant: the same line boundaries as split_lines, but each
/// element is a view INTO `text`. The views are valid only while the
/// underlying buffer outlives them — callers must keep `text` alive (and
/// unmodified) for as long as the returned vector is used.
std::vector<std::string_view> split_line_views(std::string_view text);

/// Inverse of split_lines: plain concatenation.
std::string join_lines(const std::vector<std::string>& lines);

/// Count lines using the same convention as split_lines.
std::size_t count_lines(std::string_view text);

}  // namespace shadow
