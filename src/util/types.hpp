// Fundamental type aliases shared across the shadow library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shadow {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Raw byte sequence used for file contents and wire payloads.
using Bytes = std::vector<u8>;

/// Convert a string to a byte vector (no encoding assumptions).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Convert raw bytes back to a std::string.
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace shadow
