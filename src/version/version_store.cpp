#include "version/version_store.hpp"

#include "util/crc32.hpp"

namespace shadow::version {

const char* storage_mode_name(StorageMode mode) {
  switch (mode) {
    case StorageMode::kFull: return "full";
    case StorageMode::kReverseDelta: return "reverse-delta";
  }
  return "?";
}

namespace {
u32 content_crc(const std::string& content) {
  return crc32(reinterpret_cast<const u8*>(content.data()), content.size());
}
}  // namespace

VersionNumber VersionChain::append(std::string content) {
  const VersionNumber number = next_++;
  const u32 crc = content_crc(content);
  if (mode_ == StorageMode::kFull) {
    Version v;
    v.number = number;
    v.crc = crc;
    v.content = std::move(content);
    full_.emplace(number, std::move(v));
  } else {
    if (has_latest_) {
      // Demote the old latest to a reverse delta from the new content.
      ReverseEntry entry;
      entry.delta = diff::Delta::compute(content, latest_.content,
                                         diff::Algorithm::kHuntMcIlroy);
      entry.crc = latest_.crc;
      reverse_.emplace(latest_.number, std::move(entry));
    }
    latest_.number = number;
    latest_.crc = crc;
    latest_.content = std::move(content);
    has_latest_ = true;
  }
  prune();
  return number;
}

std::optional<VersionNumber> VersionChain::latest_number() const {
  if (mode_ == StorageMode::kFull) {
    if (full_.empty()) return std::nullopt;
    return full_.rbegin()->first;
  }
  if (!has_latest_) return std::nullopt;
  return latest_.number;
}

Result<Version> VersionChain::latest() const {
  if (mode_ == StorageMode::kFull) {
    if (full_.empty()) {
      return Error{ErrorCode::kNotFound, "no versions recorded"};
    }
    return full_.rbegin()->second;
  }
  if (!has_latest_) {
    return Error{ErrorCode::kNotFound, "no versions recorded"};
  }
  return latest_;
}

bool VersionChain::has(VersionNumber n) const {
  if (mode_ == StorageMode::kFull) return full_.count(n) != 0;
  return (has_latest_ && latest_.number == n) || reverse_.count(n) != 0;
}

Result<Version> VersionChain::get(VersionNumber n) const {
  if (mode_ == StorageMode::kFull) {
    auto it = full_.find(n);
    if (it == full_.end()) {
      return Error{ErrorCode::kNotFound,
                   "version " + std::to_string(n) + " no longer stored"};
    }
    return it->second;
  }
  if (!has_latest_) {
    return Error{ErrorCode::kNotFound, "no versions recorded"};
  }
  if (n == latest_.number) return latest_;
  if (reverse_.count(n) == 0) {
    return Error{ErrorCode::kNotFound,
                 "version " + std::to_string(n) + " no longer stored"};
  }
  // Walk from the latest content back through the delta chain. Deltas are
  // stored for consecutive version numbers, so every step down to n must
  // exist — a gap means internal corruption.
  std::string content = latest_.content;
  for (VersionNumber k = latest_.number; k-- > n;) {
    auto it = reverse_.find(k);
    if (it == reverse_.end()) {
      return Error{ErrorCode::kInternal,
                   "reverse-delta chain broken at version " +
                       std::to_string(k)};
    }
    SHADOW_ASSIGN_OR_RETURN(older, it->second.delta.apply(content));
    content = std::move(older);
  }
  Version v;
  v.number = n;
  v.crc = content_crc(content);
  if (v.crc != reverse_.at(n).crc) {
    return Error{ErrorCode::kInternal,
                 "reconstructed version fails its CRC"};
  }
  v.content = std::move(content);
  return v;
}

void VersionChain::acknowledge(VersionNumber n) {
  if (n <= acked_) return;
  acked_ = n;
  // Delete versions strictly older than the acknowledged one; keep `n`
  // itself — it is the base the server will diff against next.
  if (mode_ == StorageMode::kFull) {
    full_.erase(full_.begin(), full_.lower_bound(n));
  } else {
    reverse_.erase(reverse_.begin(), reverse_.lower_bound(n));
  }
}

void VersionChain::set_retention_limit(std::size_t limit) {
  retention_limit_ = limit;
  prune();
}

void VersionChain::prune() {
  // Keep the latest version plus at most retention_limit_ older ones.
  if (mode_ == StorageMode::kFull) {
    while (full_.size() > retention_limit_ + 1) {
      full_.erase(full_.begin());
    }
  } else {
    while (reverse_.size() > retention_limit_) {
      reverse_.erase(reverse_.begin());
    }
  }
}

std::size_t VersionChain::stored_count() const {
  if (mode_ == StorageMode::kFull) return full_.size();
  return reverse_.size() + (has_latest_ ? 1 : 0);
}

u64 VersionChain::stored_bytes() const {
  u64 total = 0;
  if (mode_ == StorageMode::kFull) {
    for (const auto& [n, v] : full_) total += v.content.size();
    return total;
  }
  if (has_latest_) total += latest_.content.size();
  for (const auto& [n, entry] : reverse_) total += entry.delta.wire_size();
  return total;
}

void VersionChain::encode(BufWriter& out) const {
  out.put_u8(static_cast<u8>(mode_));
  out.put_varint(next_);
  out.put_varint(acked_);
  out.put_varint(retention_limit_);
  if (mode_ == StorageMode::kFull) {
    out.put_varint(full_.size());
    for (const auto& [n, v] : full_) {
      out.put_varint(n);
      out.put_u32(v.crc);
      out.put_string(v.content);
    }
    return;
  }
  out.put_u8(has_latest_ ? 1 : 0);
  if (has_latest_) {
    out.put_varint(latest_.number);
    out.put_u32(latest_.crc);
    out.put_string(latest_.content);
  }
  out.put_varint(reverse_.size());
  for (const auto& [n, entry] : reverse_) {
    out.put_varint(n);
    out.put_u32(entry.crc);
    entry.delta.encode(out);
  }
}

Result<VersionChain> VersionChain::decode(BufReader& in) {
  SHADOW_ASSIGN_OR_RETURN(mode_byte, in.get_u8());
  if (mode_byte > 1) {
    return Error{ErrorCode::kProtocolError, "bad storage mode"};
  }
  SHADOW_ASSIGN_OR_RETURN(next, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(acked, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(retention, in.get_varint());
  VersionChain chain(static_cast<std::size_t>(retention),
                     static_cast<StorageMode>(mode_byte));
  chain.next_ = next;
  chain.acked_ = acked;
  if (chain.mode_ == StorageMode::kFull) {
    SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
    if (count > in.remaining()) {
      return Error{ErrorCode::kProtocolError, "version count exceeds data"};
    }
    for (u64 i = 0; i < count; ++i) {
      Version v;
      SHADOW_ASSIGN_OR_RETURN(n, in.get_varint());
      SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
      SHADOW_ASSIGN_OR_RETURN(content, in.get_string());
      v.number = n;
      v.crc = crc;
      v.content = std::move(content);
      chain.full_.emplace(n, std::move(v));
    }
    return chain;
  }
  SHADOW_ASSIGN_OR_RETURN(has_latest, in.get_u8());
  chain.has_latest_ = has_latest != 0;
  if (chain.has_latest_) {
    SHADOW_ASSIGN_OR_RETURN(n, in.get_varint());
    SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
    SHADOW_ASSIGN_OR_RETURN(content, in.get_string());
    chain.latest_.number = n;
    chain.latest_.crc = crc;
    chain.latest_.content = std::move(content);
  }
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  if (count > in.remaining()) {
    return Error{ErrorCode::kProtocolError, "delta count exceeds data"};
  }
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(n, in.get_varint());
    SHADOW_ASSIGN_OR_RETURN(crc, in.get_u32());
    SHADOW_ASSIGN_OR_RETURN(delta, diff::Delta::decode(in));
    ReverseEntry entry;
    entry.crc = crc;
    entry.delta = std::move(delta);
    chain.reverse_.emplace(n, std::move(entry));
  }
  return chain;
}

void VersionStore::encode(BufWriter& out) const {
  out.put_varint(default_retention_);
  out.put_u8(static_cast<u8>(mode_));
  out.put_varint(chains_.size());
  for (const auto& [key, chain] : chains_) {
    out.put_string(key);
    chain.encode(out);
  }
}

Result<VersionStore> VersionStore::decode(BufReader& in) {
  SHADOW_ASSIGN_OR_RETURN(retention, in.get_varint());
  SHADOW_ASSIGN_OR_RETURN(mode_byte, in.get_u8());
  if (mode_byte > 1) {
    return Error{ErrorCode::kProtocolError, "bad storage mode"};
  }
  VersionStore store(static_cast<std::size_t>(retention),
                     static_cast<StorageMode>(mode_byte));
  SHADOW_ASSIGN_OR_RETURN(count, in.get_varint());
  if (count > in.remaining()) {
    return Error{ErrorCode::kProtocolError, "chain count exceeds data"};
  }
  for (u64 i = 0; i < count; ++i) {
    SHADOW_ASSIGN_OR_RETURN(key, in.get_string());
    SHADOW_ASSIGN_OR_RETURN(chain, VersionChain::decode(in));
    store.chains_.emplace(std::move(key), std::move(chain));
  }
  return store;
}

VersionChain& VersionStore::chain(const std::string& file_key) {
  auto it = chains_.find(file_key);
  if (it == chains_.end()) {
    it = chains_
             .emplace(file_key, VersionChain(default_retention_, mode_))
             .first;
  }
  return it->second;
}

const VersionChain* VersionStore::find(const std::string& file_key) const {
  auto it = chains_.find(file_key);
  return it == chains_.end() ? nullptr : &it->second;
}

u64 VersionStore::total_bytes() const {
  u64 total = 0;
  for (const auto& [key, chain] : chains_) total += chain.stored_bytes();
  return total;
}

}  // namespace shadow::version
