// Client-side version control (paper §6.3.2).
//
// Every edit of a shadow file creates a new numbered version. Old versions
// are retained so that when the server pulls an update and names the
// version it holds, the client can compute a delta against exactly that
// base. Versions are garbage-collected once the server acknowledges a
// later version, and a per-user retention limit bounds how many old
// versions are ever kept. If the server asks for a base the client no
// longer has, the client falls back to sending the full file (§6.3.2:
// "may transmit a completely new version if the specified version is not
// available for computing the differences").
//
// Two storage strategies:
//  - kFull: every retained version stored verbatim (simple, fast access);
//  - kReverseDelta: only the LATEST version stored verbatim, older ones as
//    reverse deltas from their successor — Tichy's RCS technique ([Tic84]
//    is in the paper's bibliography). Cuts client disk use to
//    latest + O(changes), at reconstruction cost proportional to age.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "diff/delta.hpp"
#include "util/byte_io.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::version {

using VersionNumber = u64;

enum class StorageMode : u8 {
  kFull = 0,
  kReverseDelta = 1,
};

const char* storage_mode_name(StorageMode mode);

struct Version {
  VersionNumber number = 0;
  std::string content;
  u32 crc = 0;
};

/// Version history for one file.
class VersionChain {
 public:
  explicit VersionChain(std::size_t retention_limit = 8,
                        StorageMode mode = StorageMode::kFull)
      : retention_limit_(retention_limit), mode_(mode) {}

  /// Record a new version; returns its number (1-based, increasing).
  /// Identical content to the latest version still creates a new version
  /// — the shadow editor decides whether to skip no-op edits, not us.
  VersionNumber append(std::string content);

  /// Latest version, if any version exists.
  std::optional<VersionNumber> latest_number() const;
  Result<Version> latest() const;
  /// Retrieve a version (reconstructing through reverse deltas if needed).
  Result<Version> get(VersionNumber n) const;
  bool has(VersionNumber n) const;

  /// Server acknowledged holding version `n`: every version < n becomes
  /// garbage (the server will never request an older base).
  void acknowledge(VersionNumber n);
  VersionNumber acked() const { return acked_; }

  /// Change the retention limit (count of versions kept besides the
  /// latest); prunes immediately.
  void set_retention_limit(std::size_t limit);
  std::size_t retention_limit() const { return retention_limit_; }

  StorageMode storage_mode() const { return mode_; }

  /// Number of retrievable versions.
  std::size_t stored_count() const;
  /// Actual bytes held (full contents, or latest + delta sizes).
  u64 stored_bytes() const;

  /// Checkpoint/restore (crash recovery — the paper's transparency goal
  /// says users never maintain this state by hand, so the SYSTEM must).
  void encode(BufWriter& out) const;
  static Result<VersionChain> decode(BufReader& in);

 private:
  void prune();
  VersionNumber oldest_stored() const;

  // kFull: every retained version, keyed by number.
  std::map<VersionNumber, Version> full_;

  // kReverseDelta: the newest version verbatim...
  Version latest_;
  bool has_latest_ = false;
  // ...plus, for each retained older version n, the delta that rebuilds n
  // from n+1's content, and n's crc for verification.
  struct ReverseEntry {
    diff::Delta delta;  // apply to content(n+1) to obtain content(n)
    u32 crc = 0;
  };
  std::map<VersionNumber, ReverseEntry> reverse_;

  VersionNumber next_ = 1;
  VersionNumber acked_ = 0;
  std::size_t retention_limit_;
  StorageMode mode_;
};

/// All version chains of one client, keyed by the file's global id key.
class VersionStore {
 public:
  explicit VersionStore(std::size_t default_retention = 8,
                        StorageMode mode = StorageMode::kFull)
      : default_retention_(default_retention), mode_(mode) {}

  VersionChain& chain(const std::string& file_key);
  const VersionChain* find(const std::string& file_key) const;
  bool has(const std::string& file_key) const {
    return chains_.count(file_key) != 0;
  }

  std::size_t file_count() const { return chains_.size(); }
  u64 total_bytes() const;

  void set_default_retention(std::size_t limit) {
    default_retention_ = limit;
  }
  StorageMode storage_mode() const { return mode_; }

  void encode(BufWriter& out) const;
  static Result<VersionStore> decode(BufReader& in);

 private:
  std::map<std::string, VersionChain> chains_;
  std::size_t default_retention_;
  StorageMode mode_;
};

}  // namespace shadow::version
