#include "vfs/cluster.hpp"

#include "vfs/path.hpp"

namespace shadow::vfs {

namespace {
// NFS forbids mount circularities (§6.5), but a misconfigured cluster
// could still produce one; bound the iteration defensively.
constexpr int kMaxMountHops = 32;
}

FileSystem& Cluster::add_host(const std::string& name) {
  auto [it, inserted] =
      hosts_.emplace(name, std::make_unique<FileSystem>(name));
  return *it->second;
}

Result<FileSystem*> Cluster::host(const std::string& name) {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    return Error{ErrorCode::kNotFound, "no such host: " + name};
  }
  return it->second.get();
}

Result<const FileSystem*> Cluster::host(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    return Error{ErrorCode::kNotFound, "no such host: " + name};
  }
  return static_cast<const FileSystem*>(it->second.get());
}

bool Cluster::has_host(const std::string& name) const {
  return hosts_.count(name) != 0;
}

Status Cluster::mount(const std::string& host_name,
                      const std::string& mount_point,
                      const std::string& remote_host,
                      const std::string& remote_path) {
  SHADOW_ASSIGN_OR_RETURN(fs, host(host_name));
  if (!has_host(remote_host)) {
    return Error{ErrorCode::kNotFound, "no such host: " + remote_host};
  }
  return fs->add_mount(mount_point, remote_host, remote_path);
}

Result<ResolvedFile> Cluster::resolve(const std::string& host_name,
                                      const std::string& path,
                                      bool require_exists) const {
  std::string cur_host = host_name;
  std::string cur_path = path;
  for (int hop = 0; hop < kMaxMountHops; ++hop) {
    SHADOW_ASSIGN_OR_RETURN(fs, host(cur_host));
    // Step 1 (§6.5): resolve aliases and symlinks locally.
    SHADOW_ASSIGN_OR_RETURN(canon, fs->realpath(cur_path));
    // Step 2: if a prefix belongs to a mounted file system, continue on
    // the exporting host.
    if (auto m = fs->mount_for(canon)) {
      const std::string rest = strip_prefix(canon, m->mount_point);
      cur_host = m->remote_host;
      cur_path = rest.empty() ? m->remote_path : m->remote_path + "/" + rest;
      continue;
    }
    ResolvedFile out;
    out.host = cur_host;
    out.path = canon;
    auto inode = fs->inode_of(canon);
    if (inode.ok()) {
      out.inode = inode.value();
    } else if (require_exists) {
      return Error{ErrorCode::kNotFound,
                   canon + " does not exist on " + cur_host};
    }
    return out;
  }
  return Error{ErrorCode::kLoopDetected, "mount resolution did not settle"};
}

Result<std::string> Cluster::read_file(const std::string& host_name,
                                       const std::string& path) const {
  SHADOW_ASSIGN_OR_RETURN(loc, resolve(host_name, path));
  SHADOW_ASSIGN_OR_RETURN(fs, host(loc.host));
  return fs->read_file(loc.path);
}

Status Cluster::write_file(const std::string& host_name,
                           const std::string& path,
                           const std::string& content) {
  SHADOW_ASSIGN_OR_RETURN(loc, resolve(host_name, path,
                                       /*require_exists=*/false));
  SHADOW_ASSIGN_OR_RETURN(fs, host(loc.host));
  return fs->write_file(loc.path, content);
}

}  // namespace shadow::vfs
