// A set of hosts whose filesystems are cross-connected by NFS mounts —
// the client-side "domain" of the paper (§5.3: "a domain may span a single
// host or a collection of hosts as in a NFS environment").
//
// Cluster implements the paper's iterative resolution (§6.5): resolve
// locally (symlinks/aliases), then if any prefix belongs to a mounted file
// system, continue resolution on the exporting host; iterate until the
// name settles on the host that actually stores the file. File reads and
// writes route through the same resolution, so a write on host A to a path
// mounted from host C lands in C's filesystem — exactly NFS behaviour.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "util/result.hpp"
#include "vfs/filesystem.hpp"

namespace shadow::vfs {

/// A file's physical location after full resolution.
struct ResolvedFile {
  std::string host;   // host that stores the file
  std::string path;   // canonical path on that host
  InodeId inode = 0;  // inode id on that host (0 if the file doesn't exist)

  bool operator==(const ResolvedFile&) const = default;
};

class Cluster {
 public:
  /// Create a host with an empty filesystem. Returns the filesystem
  /// (owned by the cluster).
  FileSystem& add_host(const std::string& name);

  Result<FileSystem*> host(const std::string& name);
  Result<const FileSystem*> host(const std::string& name) const;
  bool has_host(const std::string& name) const;

  /// NFS export/mount: `mount_point` on `host` shows `remote_path` from
  /// `remote_host`. (Exports are implicit; any path can be exported.)
  Status mount(const std::string& host_name, const std::string& mount_point,
               const std::string& remote_host,
               const std::string& remote_path);

  /// The paper's §6.5 iterative resolution. `require_exists` controls
  /// whether a missing final file is an error (reads) or fine (writes).
  Result<ResolvedFile> resolve(const std::string& host_name,
                               const std::string& path,
                               bool require_exists = true) const;

  /// Read/write through mounts (like an NFS client would).
  Result<std::string> read_file(const std::string& host_name,
                                const std::string& path) const;
  Status write_file(const std::string& host_name, const std::string& path,
                    const std::string& content);

 private:
  std::map<std::string, std::unique_ptr<FileSystem>> hosts_;
};

}  // namespace shadow::vfs
