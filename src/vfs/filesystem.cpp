#include "vfs/filesystem.hpp"

#include <algorithm>

#include "vfs/path.hpp"

namespace shadow::vfs {

namespace {
constexpr int kMaxSymlinkDepth = 40;  // matches Linux's ELOOP limit
}

FileSystem::FileSystem(std::string host_name)
    : host_name_(std::move(host_name)) {
  Inode root;
  root.type = FileType::kDirectory;
  root.link_count = 1;
  inodes_.emplace(kRootInode, std::move(root));
}

const Inode* FileSystem::get(InodeId id) const {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

Inode* FileSystem::get(InodeId id) {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

// Canonicalize: expand symlinks left-to-right, restarting from the root
// after each expansion. ".." is resolved lexically by normalize() (both in
// the input and in spliced symlink targets) — a documented simplification.
// Components with no local inode are kept verbatim (realpath -m), because
// they may live behind an NFS mount served by another host.
Result<std::string> FileSystem::realpath(const std::string& path) const {
  if (!is_absolute(path)) {
    return Error{ErrorCode::kInvalidArgument, "path must be absolute"};
  }
  std::string canon = normalize(path);
  int depth = 0;
restart:
  const auto parts = components(canon);
  InodeId current = kRootInode;
  std::string prefix;  // canonical, existing prefix walked so far
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Inode* node = get(current);
    if (node->type != FileType::kDirectory) {
      return Error{ErrorCode::kNotADirectory, prefix + " is not a directory"};
    }
    auto it = node->entries.find(parts[i]);
    if (it == node->entries.end()) {
      // Off the local tree: keep the remainder verbatim.
      std::string out = prefix;
      for (std::size_t j = i; j < parts.size(); ++j) out += "/" + parts[j];
      return out.empty() ? std::string("/") : out;
    }
    const Inode* child = get(it->second);
    if (child->type == FileType::kSymlink) {
      if (++depth > kMaxSymlinkDepth) {
        return Error{ErrorCode::kLoopDetected, "too many levels of symlinks"};
      }
      std::string base = is_absolute(child->symlink_target)
                             ? child->symlink_target
                             : prefix + "/" + child->symlink_target;
      for (std::size_t j = i + 1; j < parts.size(); ++j) {
        base += "/" + parts[j];
      }
      canon = normalize(base);
      goto restart;
    }
    prefix += "/" + parts[i];
    current = it->second;
  }
  return prefix.empty() ? std::string("/") : prefix;
}

// Strict lookup of a canonical (symlink-free up to the leaf) path; every
// component must exist locally.
Result<InodeId> FileSystem::resolve_components(InodeId base,
                                               std::vector<std::string> parts,
                                               bool follow_last,
                                               int /*depth*/) const {
  InodeId current = base;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Inode* node = get(current);
    if (node == nullptr) {
      return Error{ErrorCode::kInternal, "dangling inode id"};
    }
    if (node->type != FileType::kDirectory) {
      return Error{ErrorCode::kNotADirectory,
                   "path component is not a directory"};
    }
    auto it = node->entries.find(parts[i]);
    if (it == node->entries.end()) {
      return Error{ErrorCode::kNotFound, "no such file: " + parts[i]};
    }
    current = it->second;
    const bool is_last = (i + 1 == parts.size());
    if (is_last && !follow_last) return current;
  }
  return current;
}

Result<InodeId> FileSystem::resolve(const std::string& path,
                                    bool follow_last) const {
  if (!is_absolute(path)) {
    return Error{ErrorCode::kInvalidArgument,
                 "VFS paths must be absolute: " + path};
  }
  if (follow_last) {
    SHADOW_ASSIGN_OR_RETURN(canon, realpath(path));
    return resolve_components(kRootInode, components(canon), true, 0);
  }
  // lstat semantics: canonicalize the parent, not the leaf.
  const std::string norm = normalize(path);
  if (norm == "/") return kRootInode;
  SHADOW_ASSIGN_OR_RETURN(parent_canon, realpath(dirname(norm)));
  auto parts = components(parent_canon);
  parts.push_back(basename(norm));
  return resolve_components(kRootInode, std::move(parts), false, 0);
}

Result<std::pair<InodeId, std::string>> FileSystem::resolve_parent(
    const std::string& path) const {
  const std::string norm = normalize(path);
  if (norm == "/") {
    return Error{ErrorCode::kInvalidArgument, "cannot operate on root"};
  }
  SHADOW_ASSIGN_OR_RETURN(dir, resolve(dirname(norm), /*follow_last=*/true));
  const Inode* node = get(dir);
  if (node == nullptr || node->type != FileType::kDirectory) {
    return Error{ErrorCode::kNotADirectory, "parent is not a directory"};
  }
  return std::make_pair(dir, basename(norm));
}

Status FileSystem::mkdir(const std::string& path) {
  SHADOW_ASSIGN_OR_RETURN(parent, resolve_parent(path));
  Inode* dir = get(parent.first);
  if (dir->entries.count(parent.second) != 0) {
    return Error{ErrorCode::kAlreadyExists, "exists: " + path};
  }
  Inode node;
  node.type = FileType::kDirectory;
  node.link_count = 1;
  const InodeId id = next_inode_++;
  inodes_.emplace(id, std::move(node));
  dir->entries.emplace(parent.second, id);
  return Status();
}

Status FileSystem::mkdir_p(const std::string& path) {
  const auto parts = components(normalize(path));
  std::string prefix;
  for (const auto& part : parts) {
    prefix += "/" + part;
    auto existing = resolve(prefix, /*follow_last=*/true);
    if (existing.ok()) {
      const Inode* node = get(existing.value());
      if (node->type != FileType::kDirectory) {
        return Error{ErrorCode::kNotADirectory, prefix + " is not a dir"};
      }
      continue;
    }
    SHADOW_TRY(mkdir(prefix));
  }
  return Status();
}

Status FileSystem::write_file(const std::string& path,
                              const std::string& content) {
  SHADOW_ASSIGN_OR_RETURN(parent, resolve_parent(path));
  Inode* dir = get(parent.first);
  auto it = dir->entries.find(parent.second);
  if (it != dir->entries.end()) {
    // Existing entry: follow a symlink leaf to its target (POSIX open).
    SHADOW_ASSIGN_OR_RETURN(target, resolve(path, /*follow_last=*/true));
    Inode* node = get(target);
    if (node->type == FileType::kDirectory) {
      return Error{ErrorCode::kIsADirectory, path + " is a directory"};
    }
    node->data = content;
    return Status();
  }
  Inode node;
  node.type = FileType::kFile;
  node.data = content;
  node.link_count = 1;
  const InodeId id = next_inode_++;
  inodes_.emplace(id, std::move(node));
  dir->entries.emplace(parent.second, id);
  return Status();
}

Result<std::string> FileSystem::read_file(const std::string& path) const {
  SHADOW_ASSIGN_OR_RETURN(id, resolve(path, /*follow_last=*/true));
  const Inode* node = get(id);
  if (node->type == FileType::kDirectory) {
    return Error{ErrorCode::kIsADirectory, path + " is a directory"};
  }
  return node->data;
}

Status FileSystem::symlink(const std::string& target,
                           const std::string& link_path) {
  SHADOW_ASSIGN_OR_RETURN(parent, resolve_parent(link_path));
  Inode* dir = get(parent.first);
  if (dir->entries.count(parent.second) != 0) {
    return Error{ErrorCode::kAlreadyExists, "exists: " + link_path};
  }
  Inode node;
  node.type = FileType::kSymlink;
  node.symlink_target = target;
  node.link_count = 1;
  const InodeId id = next_inode_++;
  inodes_.emplace(id, std::move(node));
  dir->entries.emplace(parent.second, id);
  return Status();
}

Status FileSystem::hard_link(const std::string& existing,
                             const std::string& new_path) {
  SHADOW_ASSIGN_OR_RETURN(target, resolve(existing, /*follow_last=*/true));
  Inode* target_node = get(target);
  if (target_node->type == FileType::kDirectory) {
    return Error{ErrorCode::kIsADirectory,
                 "hard links to directories are not allowed"};
  }
  SHADOW_ASSIGN_OR_RETURN(parent, resolve_parent(new_path));
  Inode* dir = get(parent.first);
  if (dir->entries.count(parent.second) != 0) {
    return Error{ErrorCode::kAlreadyExists, "exists: " + new_path};
  }
  dir->entries.emplace(parent.second, target);
  ++target_node->link_count;
  return Status();
}

Status FileSystem::unlink(const std::string& path) {
  SHADOW_ASSIGN_OR_RETURN(parent, resolve_parent(path));
  Inode* dir = get(parent.first);
  auto it = dir->entries.find(parent.second);
  if (it == dir->entries.end()) {
    return Error{ErrorCode::kNotFound, "no such file: " + path};
  }
  Inode* node = get(it->second);
  if (node->type == FileType::kDirectory && !node->entries.empty()) {
    return Error{ErrorCode::kInvalidArgument, "directory not empty"};
  }
  if (--node->link_count == 0) {
    inodes_.erase(it->second);
  }
  dir->entries.erase(it);
  return Status();
}

Status FileSystem::rename(const std::string& from, const std::string& to) {
  SHADOW_ASSIGN_OR_RETURN(src, resolve_parent(from));
  Inode* src_dir = get(src.first);
  auto src_it = src_dir->entries.find(src.second);
  if (src_it == src_dir->entries.end()) {
    return Error{ErrorCode::kNotFound, "no such file: " + from};
  }
  const InodeId moving = src_it->second;

  // Moving a directory into itself would orphan the subtree.
  if (get(moving)->type == FileType::kDirectory &&
      has_prefix(normalize(to), normalize(from))) {
    return Error{ErrorCode::kInvalidArgument,
                 "cannot move a directory into itself"};
  }

  SHADOW_ASSIGN_OR_RETURN(dst, resolve_parent(to));
  Inode* dst_dir = get(dst.first);
  auto dst_it = dst_dir->entries.find(dst.second);
  if (dst_it != dst_dir->entries.end()) {
    if (dst_it->second == moving) return Status();  // same file: no-op
    Inode* existing = get(dst_it->second);
    if (existing->type == FileType::kDirectory) {
      return Error{ErrorCode::kIsADirectory,
                   "rename target is a directory: " + to};
    }
    if (get(moving)->type == FileType::kDirectory) {
      // POSIX: a directory may not replace a non-directory (ENOTDIR).
      return Error{ErrorCode::kNotADirectory,
                   "cannot rename a directory onto a file: " + to};
    }
    if (--existing->link_count == 0) inodes_.erase(dst_it->second);
    dst_dir->entries.erase(dst_it);
  }
  // Re-look up the source entry: the erase above may have invalidated
  // iterators when src and dst share a directory.
  src_dir = get(src.first);
  src_dir->entries.erase(src.second);
  get(dst.first)->entries.emplace(dst.second, moving);
  return Status();
}

Result<std::vector<std::string>> FileSystem::list_dir(
    const std::string& path) const {
  SHADOW_ASSIGN_OR_RETURN(id, resolve(path, /*follow_last=*/true));
  const Inode* node = get(id);
  if (node->type != FileType::kDirectory) {
    return Error{ErrorCode::kNotADirectory, path + " is not a directory"};
  }
  std::vector<std::string> names;
  names.reserve(node->entries.size());
  for (const auto& [name, unused] : node->entries) names.push_back(name);
  return names;
}

bool FileSystem::exists(const std::string& path) const {
  return resolve(path, /*follow_last=*/true).ok();
}

Result<FileType> FileSystem::type_of(const std::string& path) const {
  SHADOW_ASSIGN_OR_RETURN(id, resolve(path, /*follow_last=*/true));
  return get(id)->type;
}

Result<InodeId> FileSystem::inode_of(const std::string& path) const {
  return resolve(path, /*follow_last=*/true);
}

Status FileSystem::add_mount(const std::string& mount_point,
                             const std::string& remote_host,
                             const std::string& remote_path) {
  const std::string mp = normalize(mount_point);
  SHADOW_TRY(mkdir_p(mp));
  for (const auto& m : mounts_) {
    if (m.mount_point == mp) {
      return Error{ErrorCode::kAlreadyExists, "already mounted: " + mp};
    }
  }
  mounts_.push_back(MountEntry{mp, remote_host, normalize(remote_path)});
  return Status();
}

std::optional<MountEntry> FileSystem::mount_for(
    const std::string& path) const {
  const std::string p = normalize(path);
  const MountEntry* best = nullptr;
  for (const auto& m : mounts_) {
    if (has_prefix(p, m.mount_point)) {
      if (best == nullptr ||
          m.mount_point.size() > best->mount_point.size()) {
        best = &m;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

u64 FileSystem::total_file_bytes() const {
  u64 total = 0;
  for (const auto& [id, node] : inodes_) {
    if (node.type == FileType::kFile) total += node.data.size();
  }
  return total;
}

}  // namespace shadow::vfs
