// In-memory POSIX-like filesystem for one simulated host.
//
// Supports regular files, directories, symbolic links and hard links —
// everything the paper's name-resolution algorithm (§6.5) must see —
// plus an NFS-style mount table mapping local mount points to
// (remote host, remote path) pairs. Mount traversal itself lives in
// vfs::Cluster; a single FileSystem only records its mounts.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace shadow::vfs {

using InodeId = u64;
constexpr InodeId kRootInode = 1;

enum class FileType : u8 { kFile = 0, kDirectory = 1, kSymlink = 2 };

/// One filesystem object. Hard links are multiple directory entries
/// referring to the same inode id.
struct Inode {
  FileType type = FileType::kFile;
  std::string data;                       // kFile: content
  std::map<std::string, InodeId> entries; // kDirectory: name -> inode
  std::string symlink_target;             // kSymlink
  u32 link_count = 0;                     // directory entries pointing here
};

/// NFS mount record: `mount_point` on this host shows the tree exported by
/// `remote_host` at `remote_path`.
struct MountEntry {
  std::string mount_point;
  std::string remote_host;
  std::string remote_path;
};

class FileSystem {
 public:
  explicit FileSystem(std::string host_name);

  const std::string& host_name() const { return host_name_; }

  // ---- file & directory operations (paths may contain symlinks) ----
  Status mkdir(const std::string& path);
  /// mkdir -p: creates missing ancestors, succeeds if already a directory.
  Status mkdir_p(const std::string& path);
  /// Create or truncate a regular file (parent directory must exist).
  Status write_file(const std::string& path, const std::string& content);
  Result<std::string> read_file(const std::string& path) const;
  /// Create a symlink at `link_path` pointing to `target` (not resolved or
  /// validated — dangling links are legal, as in POSIX).
  Status symlink(const std::string& target, const std::string& link_path);
  /// Create a hard link: `new_path` becomes another name for `existing`.
  Status hard_link(const std::string& existing, const std::string& new_path);
  /// Remove a directory entry; file data is freed when link_count drops to
  /// zero. Directories must be empty.
  Status unlink(const std::string& path);
  /// POSIX rename: move a directory entry (any type, including whole
  /// subtrees) to a new name; replaces an existing non-directory target.
  /// The inode — and thus the file's shadow identity — is unchanged.
  Status rename(const std::string& from, const std::string& to);
  Result<std::vector<std::string>> list_dir(const std::string& path) const;

  bool exists(const std::string& path) const;
  Result<FileType> type_of(const std::string& path) const;
  /// Inode id after following symlinks — the identity hard-link aliases
  /// share.
  Result<InodeId> inode_of(const std::string& path) const;

  /// Resolve all symlinks, returning a canonical absolute path. Components
  /// that do not exist locally are kept verbatim (realpath -m semantics) —
  /// required because paths under NFS mount points have no local inodes.
  Result<std::string> realpath(const std::string& path) const;

  // ---- NFS mount table ----
  Status add_mount(const std::string& mount_point,
                   const std::string& remote_host,
                   const std::string& remote_path);
  const std::vector<MountEntry>& mounts() const { return mounts_; }
  /// Longest-prefix mount covering `path`, if any.
  std::optional<MountEntry> mount_for(const std::string& path) const;

  /// Total bytes of regular-file data (used by disk-pressure experiments).
  u64 total_file_bytes() const;

 private:
  Result<InodeId> resolve(const std::string& path, bool follow_last) const;
  Result<InodeId> resolve_components(InodeId base,
                                     std::vector<std::string> parts,
                                     bool follow_last, int depth) const;
  const Inode* get(InodeId id) const;
  Inode* get(InodeId id);
  /// Resolve the parent directory of `path`; returns (dir inode, leaf).
  Result<std::pair<InodeId, std::string>> resolve_parent(
      const std::string& path) const;

  std::string host_name_;
  std::unordered_map<InodeId, Inode> inodes_;
  InodeId next_inode_ = kRootInode + 1;
  std::vector<MountEntry> mounts_;
};

}  // namespace shadow::vfs
