#include "vfs/path.hpp"

#include "util/strings.hpp"

namespace shadow::vfs {

bool is_absolute(const std::string& path) {
  return !path.empty() && path.front() == '/';
}

std::string normalize(const std::string& path) {
  std::vector<std::string> stack;
  for (const auto& part : split(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;  // ".." at root stays at root
    }
    stack.push_back(part);
  }
  return from_components(stack);
}

std::vector<std::string> components(const std::string& path) {
  std::vector<std::string> out;
  for (const auto& part : split(path, '/')) {
    if (!part.empty() && part != ".") out.push_back(part);
  }
  return out;
}

std::string from_components(const std::vector<std::string>& parts) {
  if (parts.empty()) return "/";
  std::string out;
  for (const auto& part : parts) {
    out += '/';
    out += part;
  }
  return out;
}

std::string dirname(const std::string& path) {
  auto parts = components(normalize(path));
  if (parts.empty()) return "/";
  parts.pop_back();
  return from_components(parts);
}

std::string basename(const std::string& path) {
  const auto parts = components(normalize(path));
  return parts.empty() ? "" : parts.back();
}

std::string join_path(const std::string& base, const std::string& tail) {
  if (is_absolute(tail)) return normalize(tail);
  if (tail.empty()) return normalize(base);
  return normalize(base + "/" + tail);
}

bool has_prefix(const std::string& path, const std::string& prefix) {
  const std::string p = normalize(path);
  const std::string pre = normalize(prefix);
  if (pre == "/") return true;
  if (p == pre) return true;
  return p.size() > pre.size() && p.compare(0, pre.size(), pre) == 0 &&
         p[pre.size()] == '/';
}

std::string strip_prefix(const std::string& path, const std::string& prefix) {
  const std::string p = normalize(path);
  const std::string pre = normalize(prefix);
  if (pre == "/") return p == "/" ? "" : p.substr(1);
  if (p == pre) return "";
  return p.substr(pre.size() + 1);
}

}  // namespace shadow::vfs
