// Absolute-path utilities for the virtual filesystem. All VFS paths are
// absolute, '/'-separated, with no "." or ".." components after
// normalization.
#pragma once

#include <string>
#include <vector>

namespace shadow::vfs {

/// True when the path begins with '/'.
bool is_absolute(const std::string& path);

/// Normalize an absolute path: collapse "//", resolve "." and ".."
/// lexically ("/a/../b" -> "/b"; ".." at root stays at root). Returns "/"
/// for empty input.
std::string normalize(const std::string& path);

/// Split a normalized path into components ("/a/b" -> {"a","b"};
/// "/" -> {}).
std::vector<std::string> components(const std::string& path);

/// Join components back into an absolute path.
std::string from_components(const std::vector<std::string>& parts);

/// Parent directory ("/a/b" -> "/a"; "/a" -> "/"; "/" -> "/").
std::string dirname(const std::string& path);

/// Final component ("/a/b" -> "b"; "/" -> "").
std::string basename(const std::string& path);

/// Append a relative or absolute tail to a base directory. Absolute tails
/// replace the base entirely (symlink-target semantics).
std::string join_path(const std::string& base, const std::string& tail);

/// True when `path` equals `prefix` or lies underneath it.
/// has_prefix("/a/bc", "/a/b") is false.
bool has_prefix(const std::string& path, const std::string& prefix);

/// Remainder of `path` under `prefix` as a relative path ("" when equal).
/// Precondition: has_prefix(path, prefix).
std::string strip_prefix(const std::string& path, const std::string& prefix);

}  // namespace shadow::vfs
