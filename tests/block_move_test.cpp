// Unit tests for the Tichy block-move delta [Tic84].
#include <gtest/gtest.h>

#include "diff/block_move.hpp"
#include "util/rng.hpp"

namespace shadow::diff {
namespace {

std::string roundtrip(const std::string& source, const std::string& target) {
  const BlockMoveDelta delta = compute_block_move(source, target);
  auto result = apply_block_move(source, delta);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return result.ok() ? result.value() : std::string();
}

TEST(BlockMoveTest, IdenticalIsOneCopy) {
  std::string text(1000, 'q');
  for (int i = 0; i < 100; ++i) text += "unique " + std::to_string(i) + "\n";
  const BlockMoveDelta delta = compute_block_move(text, text);
  ASSERT_EQ(delta.ops.size(), 1u);
  EXPECT_EQ(delta.ops[0].kind, BlockOp::Kind::kCopy);
  EXPECT_EQ(delta.ops[0].length, text.size());
  EXPECT_EQ(roundtrip(text, text), text);
}

TEST(BlockMoveTest, EmptyCases) {
  EXPECT_EQ(roundtrip("", ""), "");
  EXPECT_EQ(roundtrip("abc", ""), "");
  EXPECT_EQ(roundtrip("", "xyz"), "xyz");
}

TEST(BlockMoveTest, MovedBlockIsCheap) {
  // ed-scripts handle moves badly; block moves handle them with 2 copies.
  std::string a, b;
  for (int i = 0; i < 50; ++i) a += "alpha line " + std::to_string(i) + "\n";
  for (int i = 0; i < 50; ++i) a += "beta line " + std::to_string(i) + "\n";
  // b = second half + first half.
  b = a.substr(a.size() / 2) + a.substr(0, a.size() / 2);
  const BlockMoveDelta delta = compute_block_move(a, b);
  std::size_t literal_bytes = 0;
  for (const auto& op : delta.ops) {
    if (op.kind == BlockOp::Kind::kAdd) literal_bytes += op.literal.size();
  }
  EXPECT_LT(literal_bytes, 32u);
  EXPECT_EQ(roundtrip(a, b), b);
}

TEST(BlockMoveTest, SmallEditMostlyCopies) {
  std::string source;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) source += rng.ascii_line(40) + "\n";
  std::string target = source;
  target.replace(2000, 10, "REPLACEMNT");
  const BlockMoveDelta delta = compute_block_move(source, target);
  EXPECT_LE(delta.ops.size(), 5u);
  EXPECT_EQ(roundtrip(source, target), target);
  EXPECT_LT(block_move_wire_size(delta), 128u);
}

TEST(BlockMoveTest, DisjointContentIsAllAdds) {
  Rng rng(6);
  const std::string source = rng.ascii_line(500);
  const std::string target = rng.ascii_line(500);
  const BlockMoveDelta delta = compute_block_move(source, target);
  EXPECT_EQ(roundtrip(source, target), target);
  // Delta cannot be meaningfully smaller than the target here.
  EXPECT_GE(block_move_wire_size(delta), 500u);
}

TEST(BlockMoveTest, SeedLengthControlsGranularity) {
  std::string source = "0123456789abcdef0123456789abcdef";
  std::string target = "0123456789abcdefXX0123456789abcdef";
  const BlockMoveDelta fine = compute_block_move(source, target, 8);
  EXPECT_EQ(apply_block_move(source, fine).value(), target);
  const BlockMoveDelta coarse = compute_block_move(source, target, 32);
  EXPECT_EQ(apply_block_move(source, coarse).value(), target);
}

TEST(BlockMoveTest, WrongSourceRejected) {
  const BlockMoveDelta delta = compute_block_move("source text here....",
                                                  "target text here....");
  EXPECT_EQ(apply_block_move("tampered source!....", delta).code(),
            ErrorCode::kVersionMismatch);
}

TEST(BlockMoveTest, OutOfBoundsCopyRejected) {
  BlockMoveDelta delta = compute_block_move("abcdefghijklmnopqrstuvwxyz",
                                            "abcdefghijklmnopqrstuvwxyz");
  ASSERT_FALSE(delta.ops.empty());
  delta.ops[0].length += 100;
  EXPECT_FALSE(apply_block_move("abcdefghijklmnopqrstuvwxyz", delta).ok());
}

TEST(BlockMoveTest, CodecRoundTrip) {
  Rng rng(7);
  std::string source;
  for (int i = 0; i < 50; ++i) source += rng.ascii_line(30) + "\n";
  std::string target = source.substr(300) + "inserted!" + source.substr(0, 300);
  const BlockMoveDelta delta = compute_block_move(source, target);
  BufWriter w;
  encode_block_move(delta, w);
  BufReader r(w.data());
  auto decoded = decode_block_move(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), delta);
  EXPECT_EQ(apply_block_move(source, decoded.value()).value(), target);
}

TEST(BlockMoveTest, DecodeRejectsBadOpKind) {
  BufWriter w;
  encode_block_move(compute_block_move("aaaa", "aaaa"), w);
  Bytes wire = w.take();
  // Op kind byte is right after two u32 CRCs + 2 varints + count varint.
  wire[4 + 4 + 1 + 1 + 1] = 9;
  BufReader r(wire);
  EXPECT_FALSE(decode_block_move(r).ok());
}

class BlockMoveProperty : public ::testing::TestWithParam<int> {};

TEST_P(BlockMoveProperty, RandomEditsRoundTrip) {
  Rng rng(static_cast<u64>(GetParam()) * 31 + 1);
  std::string source;
  const std::size_t n = rng.below(5000);
  for (std::size_t i = 0; i < n; i += 40) {
    source += rng.ascii_line(39) + "\n";
  }
  // Random splice edits.
  std::string target = source;
  for (int e = 0; e < 5 && !target.empty(); ++e) {
    const std::size_t pos = rng.below(target.size() + 1);
    switch (rng.below(3)) {
      case 0:
        target.insert(pos, rng.ascii_line(rng.below(100)));
        break;
      case 1:
        target.erase(pos, rng.below(100));
        break;
      default: {
        const std::size_t len =
            std::min<std::size_t>(rng.below(50), target.size() - pos);
        target.replace(pos, len, rng.ascii_line(len));
      }
    }
  }
  EXPECT_EQ(roundtrip(source, target), target);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockMoveProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace shadow::diff
