// Unit tests for the server-side best-effort shadow cache (paper §5.1).
#include <gtest/gtest.h>

#include "cache/shadow_cache.hpp"
#include "util/crc32.hpp"

namespace shadow::cache {
namespace {

Status put(ShadowCache& cache, const std::string& key, u64 version,
           const std::string& content) {
  return cache.put(key, version, content,
                   crc32(reinterpret_cast<const u8*>(content.data()),
                         content.size()));
}

TEST(ShadowCacheTest, PutGetRoundTrip) {
  ShadowCache cache;
  ASSERT_TRUE(put(cache, "k", 1, "hello").ok());
  auto entry = cache.get("k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value()->content, "hello");
  EXPECT_EQ(entry.value()->version, 1u);
  EXPECT_EQ(cache.bytes_used(), 5u);
}

TEST(ShadowCacheTest, MissIsCacheMissError) {
  ShadowCache cache;
  EXPECT_EQ(cache.get("ghost").code(), ErrorCode::kCacheMiss);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ShadowCacheTest, ReplaceUpdatesBytes) {
  ShadowCache cache;
  ASSERT_TRUE(put(cache, "k", 1, "short").ok());
  ASSERT_TRUE(put(cache, "k", 2, "much longer content").ok());
  EXPECT_EQ(cache.bytes_used(), 19u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.version_of("k").value(), 2u);
}

TEST(ShadowCacheTest, VersionOfDoesNotCountAsHit) {
  ShadowCache cache;
  ASSERT_TRUE(put(cache, "k", 3, "x").ok());
  EXPECT_EQ(cache.version_of("k").value(), 3u);
  EXPECT_FALSE(cache.version_of("ghost").has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ShadowCacheTest, EraseRemoves) {
  ShadowCache cache;
  ASSERT_TRUE(put(cache, "k", 1, "data").ok());
  cache.erase("k");
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_FALSE(cache.contains("k"));
  cache.erase("k");  // idempotent
}

TEST(ShadowCacheTest, BudgetTriggersEviction) {
  ShadowCache cache(/*byte_budget=*/10, EvictionPolicy::kLru);
  ASSERT_TRUE(put(cache, "a", 1, "12345").ok());
  ASSERT_TRUE(put(cache, "b", 1, "12345").ok());
  ASSERT_TRUE(put(cache, "c", 1, "12345").ok());  // evicts one
  EXPECT_LE(cache.bytes_used(), 10u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(ShadowCacheTest, LruEvictsLeastRecentlyUsed) {
  ShadowCache cache(10, EvictionPolicy::kLru);
  ASSERT_TRUE(put(cache, "a", 1, "12345").ok());
  ASSERT_TRUE(put(cache, "b", 1, "12345").ok());
  ASSERT_TRUE(cache.get("a").ok());  // refresh a
  ASSERT_TRUE(put(cache, "c", 1, "12345").ok());
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
}

TEST(ShadowCacheTest, FifoIgnoresRecency) {
  ShadowCache cache(10, EvictionPolicy::kFifo);
  ASSERT_TRUE(put(cache, "a", 1, "12345").ok());
  ASSERT_TRUE(put(cache, "b", 1, "12345").ok());
  ASSERT_TRUE(cache.get("a").ok());  // does not save "a" under FIFO
  ASSERT_TRUE(put(cache, "c", 1, "12345").ok());
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
}

TEST(ShadowCacheTest, LargestFirstEvictsBiggest) {
  ShadowCache cache(100, EvictionPolicy::kLargestFirst);
  ASSERT_TRUE(put(cache, "big", 1, std::string(60, 'b')).ok());
  ASSERT_TRUE(put(cache, "small", 1, std::string(10, 's')).ok());
  ASSERT_TRUE(put(cache, "medium", 1, std::string(40, 'm')).ok());
  EXPECT_FALSE(cache.contains("big"));
  EXPECT_TRUE(cache.contains("small"));
}

TEST(ShadowCacheTest, OversizedPutRefused) {
  ShadowCache cache(10, EvictionPolicy::kLru);
  ASSERT_TRUE(put(cache, "old", 1, "tiny").ok());
  Status st = put(cache, "huge", 1, std::string(100, 'x'));
  EXPECT_EQ(st.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(cache.stats().rejected, 1u);
  // Best-effort: nothing else was harmed... except a stale same-key entry
  // which must not survive (it would be the WRONG version).
  EXPECT_TRUE(cache.contains("old"));
  EXPECT_FALSE(cache.contains("huge"));
}

TEST(ShadowCacheTest, OversizedReplaceDropsStaleEntry) {
  ShadowCache cache(10, EvictionPolicy::kLru);
  ASSERT_TRUE(put(cache, "k", 1, "1234567").ok());
  Status st = put(cache, "k", 2, std::string(50, 'x'));
  EXPECT_FALSE(st.ok());
  // v1 must not masquerade as current.
  EXPECT_FALSE(cache.contains("k"));
}

TEST(ShadowCacheTest, UnlimitedBudgetNeverEvicts) {
  ShadowCache cache(0, EvictionPolicy::kLru);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        put(cache, "k" + std::to_string(i), 1, std::string(1000, 'x')).ok());
  }
  EXPECT_EQ(cache.entry_count(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ShadowCacheTest, ShrinkBudgetEvictsImmediately) {
  ShadowCache cache(100, EvictionPolicy::kLru);
  ASSERT_TRUE(put(cache, "a", 1, std::string(40, 'a')).ok());
  ASSERT_TRUE(put(cache, "b", 1, std::string(40, 'b')).ok());
  cache.set_byte_budget(50);
  EXPECT_LE(cache.bytes_used(), 50u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ShadowCacheTest, EvictOneFailureInjection) {
  ShadowCache cache;
  EXPECT_FALSE(cache.evict_one());
  ASSERT_TRUE(put(cache, "k", 1, "x").ok());
  EXPECT_TRUE(cache.evict_one());
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ShadowCacheTest, ClearResets) {
  ShadowCache cache;
  ASSERT_TRUE(put(cache, "a", 1, "xx").ok());
  cache.clear();
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ShadowCacheTest, HitRateAccounting) {
  ShadowCache cache;
  ASSERT_TRUE(put(cache, "k", 1, "v").ok());
  (void)cache.get("k");
  (void)cache.get("k");
  (void)cache.get("miss");
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST(ShadowCacheTest, PolicyNames) {
  EXPECT_STREQ(eviction_policy_name(EvictionPolicy::kLru), "lru");
  EXPECT_STREQ(eviction_policy_name(EvictionPolicy::kFifo), "fifo");
  EXPECT_STREQ(eviction_policy_name(EvictionPolicy::kLargestFirst),
               "largest-first");
}

}  // namespace
}  // namespace shadow::cache
