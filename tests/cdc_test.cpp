// The CDC delta codec (docs/DELTAS.md), bottom to top: chunker geometry
// and edit locality, CRC composition, signature/delta round trips, the
// digest-only advance, the client's crossover selection, the server's
// O(digests) residency, job materialization from a digest-tracked file,
// and the v0-peer regression — a legacy client that never heard of codec
// negotiation must see byte-identical wire traffic.
#include <gtest/gtest.h>

#include <string>

#include "cdc/cdc_delta.hpp"
#include "cdc/chunker.hpp"
#include "cdc/signature.hpp"
#include "cdc/sniff.hpp"
#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "core/workload.hpp"
#include "diff/delta.hpp"
#include "naming/resolver.hpp"
#include "net/loopback.hpp"
#include "proto/messages.hpp"
#include "server/shadow_server.hpp"
#include "telemetry/registry.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "vfs/cluster.hpp"

namespace shadow {
namespace {

/// Deterministic binary content: high-entropy bytes with guaranteed NULs,
/// so the binariness sniff always fires.
std::string make_binary(std::size_t size, u64 seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 3);
  std::string out(size, '\0');
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>(rng.below(256));
  }
  if (!out.empty()) out[out.size() / 2] = '\0';
  return out;
}

/// Overwrite ~percent of the content at one deterministic spot (a local
/// edit, the case CDC is built for).
std::string edit_region(std::string content, double percent, u64 seed) {
  if (content.empty()) return content;
  Rng rng(seed ^ 0xB1Fu);
  const std::size_t span = std::max<std::size_t>(
      1, static_cast<std::size_t>(content.size() * percent / 100.0));
  const std::size_t at = rng.below(content.size() - std::min(span, content.size()) + 1);
  for (std::size_t i = 0; i < span && at + i < content.size(); ++i) {
    content[at + i] = static_cast<char>(rng.below(256));
  }
  return content;
}

cdc::ChunkerParams small_chunks() {
  cdc::ChunkerParams params;
  params.min_bytes = 64;
  params.avg_bytes = 512;
  params.max_bytes = 4096;
  return params;
}

TEST(Chunker, DeterministicCutsCoverTheBuffer) {
  const std::string data = make_binary(100'000, 7);
  const auto a = cdc::chunk_spans(data, cdc::ChunkerParams{});
  const auto b = cdc::chunk_spans(data, cdc::ChunkerParams{});
  EXPECT_EQ(a, b);
  std::size_t cursor = 0;
  for (const auto& span : a) {
    EXPECT_EQ(span.offset, cursor);
    cursor += span.length;
  }
  EXPECT_EQ(cursor, data.size());
  EXPECT_TRUE(cdc::chunk_spans("", cdc::ChunkerParams{}).empty());
}

TEST(Chunker, DifferentSeedsCutDifferently) {
  const std::string data = make_binary(200'000, 8);
  cdc::ChunkerParams other;
  other.seed = 0x0ddba11;
  EXPECT_NE(cdc::chunk_spans(data, cdc::ChunkerParams{}),
            cdc::chunk_spans(data, other));
}

TEST(Chunker, LocalEditOnlyMovesNearbyBoundaries) {
  const std::string base = make_binary(300'000, 9);
  const std::string edited = edit_region(base, 1.0, 10);
  const auto params = small_chunks();
  const cdc::Signature base_sig = cdc::signature_of(base, params);
  const cdc::Signature edited_sig = cdc::signature_of(edited, params);

  // Count edited chunks found verbatim in the base — content-defined cuts
  // must realign after the edited region, so the overwhelming majority of
  // chunks keep their identity (a fixed-block scheme would lose every
  // chunk past the edit).
  std::size_t matched = 0;
  for (const auto& chunk : edited_sig.chunks) {
    for (const auto& have : base_sig.chunks) {
      if (chunk == have) {
        ++matched;
        break;
      }
    }
  }
  ASSERT_GT(edited_sig.chunks.size(), 20u);
  EXPECT_GT(matched * 10, edited_sig.chunks.size() * 8);  // > 80% survive
}

TEST(Crc32Combine, MatchesDirectCrcOfConcatenation) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    const Bytes a = rng.bytes(rng.below(5'000));
    const Bytes b = rng.bytes(rng.below(5'000));
    Bytes joined = a;
    joined.insert(joined.end(), b.begin(), b.end());
    const u32 combined = crc32_combine(crc32(a.data(), a.size()),
                                       crc32(b.data(), b.size()), b.size());
    EXPECT_EQ(combined, crc32(joined.data(), joined.size()));
  }
}

TEST(Signature, RoundTripsAndComposesTheWholeFileCrc) {
  const std::string data = make_binary(50'000, 12);
  const cdc::Signature sig = cdc::signature_of(data, small_chunks());
  EXPECT_EQ(sig.total_bytes(), data.size());
  // The composed per-chunk CRCs equal the flat CRC of the file — this is
  // what lets a digest-only server CRC-verify without the bytes.
  EXPECT_EQ(sig.whole_crc(),
            crc32(reinterpret_cast<const u8*>(data.data()), data.size()));

  BufWriter w;
  sig.encode(w);
  BufReader r(w.data());
  auto decoded = cdc::Signature::decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(decoded.value().chunks, sig.chunks);
  EXPECT_EQ(decoded.value().params, sig.params);
}

TEST(CdcDelta, SmallEditShipsMostlyCopies) {
  const std::string base = make_binary(400'000, 13);
  const std::string target = edit_region(base, 1.0, 14);
  const cdc::Signature base_sig = cdc::signature_of(base, small_chunks());
  const cdc::CdcDelta delta = cdc::CdcDelta::compute(base_sig, target);

  EXPECT_TRUE(delta.has_copies());
  EXPECT_LT(delta.literal_bytes(), target.size() / 5);
  EXPECT_LT(delta.wire_size(), target.size() / 4);

  auto applied = delta.apply(base);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), target);

  // Digest-only advance reaches the same signature as chunking the real
  // target — the server's entire correctness claim.
  auto advanced = delta.signature_after(base_sig);
  ASSERT_TRUE(advanced.ok());
  EXPECT_EQ(advanced.value().chunks,
            cdc::signature_of(target, small_chunks()).chunks);

  BufWriter w;
  delta.encode(w);
  BufReader r(w.data());
  auto decoded = cdc::CdcDelta::decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(decoded.value(), delta);
}

TEST(CdcDelta, EmptyBaseYieldsAllLiteralsThatApplyAgainstNothing) {
  const std::string target = make_binary(30'000, 15);
  cdc::Signature empty;
  empty.params = small_chunks();
  const cdc::CdcDelta delta = cdc::CdcDelta::compute(empty, target);
  EXPECT_FALSE(delta.has_copies());
  EXPECT_EQ(delta.literal_bytes(), target.size());
  auto applied = delta.apply(std::string_view());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), target);
}

TEST(CdcDelta, StaleBaseSignatureFailsTheAdvanceClosed) {
  const std::string base = make_binary(100'000, 16);
  const std::string target = edit_region(base, 1.0, 17);
  const cdc::Signature base_sig = cdc::signature_of(base, small_chunks());
  const cdc::CdcDelta delta = cdc::CdcDelta::compute(base_sig, target);
  ASSERT_TRUE(delta.has_copies());
  // The receiver's base moved on: copies reference digests it no longer
  // holds, and the advance must fail (triggering a full re-pull), never
  // fabricate a signature.
  const cdc::Signature wrong =
      cdc::signature_of(make_binary(100'000, 99), small_chunks());
  EXPECT_FALSE(delta.signature_after(wrong).ok());
}

TEST(Sniff, ClassifiesTextAndBinary) {
  EXPECT_FALSE(cdc::looks_binary(core::make_file(8'000, 18)));
  EXPECT_TRUE(cdc::looks_binary(make_binary(8'000, 19)));
  EXPECT_TRUE(cdc::looks_binary(std::string("hello\0world", 11)));
  EXPECT_FALSE(cdc::looks_binary(""));
}

TEST(DiffDispatch, ComputeCdcRidesTheDeltaEnvelope) {
  const std::string base = make_binary(200'000, 20);
  const std::string target = edit_region(base, 2.0, 21);
  const cdc::Signature base_sig = cdc::signature_of(base, small_chunks());
  const diff::Delta delta = diff::Delta::compute_cdc(base_sig, target);
  ASSERT_EQ(delta.format, diff::Delta::Format::kCdc);
  EXPECT_TRUE(delta.needs_base());

  BufWriter w;
  delta.encode(w);
  BufReader r(w.data());
  auto decoded = diff::Delta::decode(r);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().format, diff::Delta::Format::kCdc);
  auto applied = decoded.value().apply(base);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), target);

  // The cdc.* family balances its books at every instant.
  auto& reg = telemetry::Registry::global();
  EXPECT_GT(reg.counter("cdc.computes").value(), 0u);
  EXPECT_EQ(reg.counter("cdc.computes").value(),
            reg.counter("cdc.deltas").value() +
                reg.counter("cdc.fallbacks").value());
  EXPECT_EQ(reg.counter("cdc.wire_bytes").value(),
            reg.counter("cdc.copy_wire_bytes").value() +
                reg.counter("cdc.literal_bytes").value() +
                reg.counter("cdc.framing_bytes").value());
}

// ---- client/server integration over a loopback link ----

class QuietLogs {
 public:
  QuietLogs() : saved_(Logger::instance().level()) {
    Logger::instance().set_level(LogLevel::kError);
  }
  ~QuietLogs() { Logger::instance().set_level(saved_); }

 private:
  LogLevel saved_;
};

struct Rig {
  vfs::Cluster cluster;
  server::ShadowServer server;
  net::LoopbackPair pair;
  client::ShadowClient client;
  client::ShadowEditor editor;

  explicit Rig(client::ShadowEnvironment env,
               server::ServerConfig sc = make_server_config())
      : server(sc),
        pair(net::make_loopback_pair("ws", "super")),
        client("ws", std::move(env), &cluster, "net-cdc"),
        editor(&client, &cluster) {
    (void)cluster.add_host("ws").mkdir_p("/home/user");
    server.attach(pair.b.get());
    client.connect("super", pair.a.get());
    quiesce();
  }

  static server::ServerConfig make_server_config() {
    server::ServerConfig sc;
    sc.name = "super";
    return sc;
  }

  void quiesce() {
    for (int round = 0; round < 2'000; ++round) {
      if (pair.a->poll() + pair.b->poll() != 0) continue;
      if (client.tick() + server.tick() == 0) return;
    }
  }

  const cache::CacheEntry* entry(const std::string& path) {
    naming::NameResolver resolver("net-cdc", &cluster);
    auto id = resolver.resolve("ws", path);
    if (!id.ok()) return nullptr;
    return server.file_cache().peek(server.domains().cache_key(id.value()));
  }
};

client::ShadowEnvironment cdc_env() {
  client::ShadowEnvironment env;
  // Request-driven keeps the transfer schedule deterministic for counter
  // assertions; thresholds scaled down so test files stay small.
  env.flow = client::FlowMode::kRequestDriven;
  env.cdc_min_bytes = 64 * 1024;
  env.cdc_min_binary_bytes = 8 * 1024;
  env.cdc_params = small_chunks();
  return env;
}

TEST(CdcCrossover, SmallTextStaysOnLineDeltasBigAndBinaryCrossOver) {
  QuietLogs quiet;
  Rig rig(cdc_env());

  // Small text file: classic ed-script path, no digest tracking.
  std::string text = core::make_file(4'000, 31);
  ASSERT_TRUE(rig.editor.create("/home/user/notes", text).ok());
  rig.quiesce();
  EXPECT_EQ(rig.client.stats().cdc_sent, 0u);
  const auto* text_entry = rig.entry("/home/user/notes");
  ASSERT_NE(text_entry, nullptr);
  EXPECT_TRUE(text_entry->has_bytes());

  // Binary past the (lower) binary threshold: crosses over immediately.
  std::string blob = make_binary(32 * 1024, 32);
  ASSERT_TRUE(rig.editor.create("/home/user/blob", blob).ok());
  rig.quiesce();
  EXPECT_GE(rig.client.stats().cdc_sent, 1u);
  EXPECT_GE(rig.server.stats().cdc_transfers, 1u);
  const auto* blob_entry = rig.entry("/home/user/blob");
  ASSERT_NE(blob_entry, nullptr);
  EXPECT_FALSE(blob_entry->has_bytes());

  // Big text past the general threshold: crosses over too.
  std::string big = core::make_file(96 * 1024, 33);
  ASSERT_TRUE(rig.editor.create("/home/user/big", big).ok());
  rig.quiesce();
  const auto* big_entry = rig.entry("/home/user/big");
  ASSERT_NE(big_entry, nullptr);
  EXPECT_FALSE(big_entry->has_bytes());
}

TEST(CdcDigestServer, ResidencyIsDigestsNotBytesAndCrcTracksContent) {
  QuietLogs quiet;
  Rig rig(cdc_env());

  std::string blob = make_binary(256 * 1024, 41);
  ASSERT_TRUE(rig.editor.create("/home/user/blob", blob).ok());
  rig.quiesce();
  const u64 cdc_after_create = rig.server.stats().cdc_transfers;
  EXPECT_GE(cdc_after_create, 1u);

  for (int i = 0; i < 4; ++i) {
    blob = edit_region(blob, 1.0, 42 + static_cast<u64>(i));
    ASSERT_TRUE(rig.editor.create("/home/user/blob", blob).ok());
    rig.quiesce();
  }
  // Every edit advanced the digest signature without materializing bytes.
  EXPECT_GE(rig.server.stats().digest_advances, 5u);
  EXPECT_EQ(rig.server.stats().digest_advance_failures, 0u);

  const auto* entry = rig.entry("/home/user/blob");
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->has_bytes());
  EXPECT_EQ(entry->crc,
            crc32(reinterpret_cast<const u8*>(blob.data()), blob.size()));
  EXPECT_EQ(entry->represented_bytes(), blob.size());

  // O(digests), not O(bytes): resident cost is a small fraction of the
  // content the signature stands in for.
  const auto digests = rig.server.file_cache().digest_stats();
  EXPECT_EQ(digests.entries, 1u);
  EXPECT_EQ(digests.represented_bytes, blob.size());
  EXPECT_LT(digests.resident_bytes * 10, digests.represented_bytes);
}

TEST(CdcDigestServer, JobMaterializesExactBytesFromADigestTrackedFile) {
  QuietLogs quiet;
  Rig rig(cdc_env());

  std::string blob = make_binary(64 * 1024, 51);
  ASSERT_TRUE(rig.editor.create("/home/user/blob", blob).ok());
  rig.quiesce();
  blob = edit_region(blob, 2.0, 52);
  ASSERT_TRUE(rig.editor.create("/home/user/blob", blob).ok());
  rig.quiesce();
  const auto* before = rig.entry("/home/user/blob");
  ASSERT_NE(before, nullptr);
  ASSERT_FALSE(before->has_bytes());

  // `cat` copies the sandbox file verbatim: the job output IS the bytes
  // the server materialized from the digest-tracked file.
  client::ShadowClient::SubmitOptions job;
  job.files = {"/home/user/blob"};
  job.command_file = "cat blob\n";
  job.output_path = "/home/user/job.out";
  job.error_path = "/home/user/job.err";
  auto token = rig.client.submit(job);
  ASSERT_TRUE(token.ok());
  for (int attempt = 0; attempt < 8 && !rig.client.job_done(token.value());
       ++attempt) {
    rig.quiesce();
  }
  ASSERT_TRUE(rig.client.job_done(token.value()));
  EXPECT_EQ(rig.cluster.read_file("ws", "/home/user/job.out").value(), blob);

  // The materialize pull fed the job pin; the cache entry stays digests.
  const auto* after = rig.entry("/home/user/blob");
  ASSERT_NE(after, nullptr);
  EXPECT_FALSE(after->has_bytes());
}

TEST(CdcDigestServer, ServerWithCdcDisabledKeepsLegacyContentEntries) {
  QuietLogs quiet;
  auto sc = Rig::make_server_config();
  sc.cdc_enabled = false;
  Rig rig(cdc_env(), sc);

  std::string blob = make_binary(32 * 1024, 61);
  ASSERT_TRUE(rig.editor.create("/home/user/blob", blob).ok());
  rig.quiesce();
  // Negotiation removed kCodecCdc: the client shipped plain deltas and
  // the server cached real bytes.
  EXPECT_EQ(rig.client.stats().cdc_sent, 0u);
  EXPECT_EQ(rig.server.stats().cdc_transfers, 0u);
  const auto* entry = rig.entry("/home/user/blob");
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->has_bytes());
  EXPECT_EQ(entry->content, blob);
}

// ---- v0-peer regression: the wire without codec negotiation ----

TEST(LegacyPeer, HelloWithoutCodecsFieldNegotiatesLegacyCodecs) {
  // A pre-negotiation Hello ends after (name, domain, version): decode
  // must land on the two legacy codecs, not zero and not "everything".
  BufWriter w;
  w.put_u8(static_cast<u8>(proto::MessageType::kHello));
  w.put_string("oldws");
  w.put_string("net-legacy");
  w.put_varint(proto::kShadowProtocolVersion);
  auto decoded = proto::decode_message(w.take());
  ASSERT_TRUE(decoded.ok());
  const auto* hello = std::get_if<proto::Hello>(&decoded.value());
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->codecs, proto::kLegacyCodecs);
}

TEST(LegacyPeer, PullWithoutHintIsByteIdenticalToTheLegacyEncoding) {
  proto::PullRequest pull;
  pull.file.domain = "net-legacy";
  pull.file.host = "oldws";
  pull.file.path = "/home/user/f";
  pull.file.inode = 9;
  pull.have_version = 3;
  pull.want_version = 5;
  pull.codec_hint = 0;  // what every pull to a legacy client carries

  BufWriter legacy;
  legacy.put_u8(static_cast<u8>(proto::MessageType::kPullRequest));
  pull.file.encode(legacy);
  legacy.put_varint(pull.have_version);
  legacy.put_varint(pull.want_version);
  EXPECT_EQ(proto::encode_message(proto::Message(pull)), legacy.take());
}

TEST(LegacyPeer, ServerNeverDigestTracksALegacyClientsFiles) {
  QuietLogs quiet;
  server::ServerConfig sc;
  sc.name = "super";
  server::ShadowServer server(sc);
  auto pair = net::make_loopback_pair("oldws", "super");
  std::vector<proto::Message> inbox;
  pair.a->set_receiver([&](Bytes wire) {
    auto decoded = proto::decode_message(wire);
    ASSERT_TRUE(decoded.ok());
    inbox.push_back(std::move(decoded).take());
  });
  server.attach(pair.b.get());

  // The legacy Hello: no codecs field on the wire at all.
  BufWriter hello;
  hello.put_u8(static_cast<u8>(proto::MessageType::kHello));
  hello.put_string("oldws");
  hello.put_string("net-legacy");
  ASSERT_TRUE(pair.a->send(hello.take()).ok());
  net::pump(pair);
  ASSERT_FALSE(inbox.empty());
  ASSERT_NE(std::get_if<proto::HelloReply>(&inbox.front()), nullptr);

  // A big binary announced and pulled: the pull must carry NO codec hint
  // and the full transfer must land as a CONTENT entry.
  const std::string blob = make_binary(64 * 1024, 71);
  naming::GlobalFileId id;
  id.domain = "net-legacy";
  id.host = "oldws";
  id.path = "/home/user/blob";
  id.inode = 4;
  proto::NotifyNewVersion notify;
  notify.file = id;
  notify.version = 1;
  notify.size = blob.size();
  notify.crc = crc32(reinterpret_cast<const u8*>(blob.data()), blob.size());
  inbox.clear();
  ASSERT_TRUE(pair.a->send(proto::encode_message(notify)).ok());
  net::pump(pair);
  ASSERT_EQ(inbox.size(), 1u);
  const auto* pull = std::get_if<proto::PullRequest>(&inbox.front());
  ASSERT_NE(pull, nullptr);
  EXPECT_EQ(pull->codec_hint, 0u);
  EXPECT_EQ(pull->have_version, 0u);

  proto::Update update;
  update.file = id;
  update.base_version = 0;
  update.new_version = 1;
  BufWriter payload;
  diff::Delta::make_full(blob).encode(payload);
  update.payload = compress::compress(payload.take(),
                                      compress::Codec::kStored);
  ASSERT_TRUE(pair.a->send(proto::encode_message(update)).ok());
  net::pump(pair);

  EXPECT_EQ(server.stats().cdc_transfers, 0u);
  EXPECT_EQ(server.file_cache().digest_stats().entries, 0u);
  const auto* entry =
      server.file_cache().peek(server.domains().cache_key(id));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->has_bytes());
  EXPECT_EQ(entry->content, blob);
}

TEST(CdcEnvironment, KnobsRoundTripThroughTheDotfile) {
  client::ShadowEnvironment env;
  env.default_server = "super";  // to_text of an empty server doesn't parse
  env.cdc = false;
  env.cdc_min_bytes = 111'104;
  env.cdc_min_binary_bytes = 9'216;
  env.cdc_params.avg_bytes = 2048;
  env.cdc_params.min_bytes = 512;
  env.cdc_params.max_bytes = 16'384;
  auto parsed = client::ShadowEnvironment::from_text(env.to_text());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().cdc);
  EXPECT_EQ(parsed.value().cdc_min_bytes, 111'104u);
  EXPECT_EQ(parsed.value().cdc_min_binary_bytes, 9'216u);
  EXPECT_EQ(parsed.value().cdc_params.avg_bytes, 2048u);
}

}  // namespace
}  // namespace shadow
