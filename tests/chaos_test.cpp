// Seeded chaos property suite: the full edit→submit→retrieve workload runs
// under random fault schedules and must produce results byte-identical to
// the fault-free run (conformance oracle). Plus targeted desync scenarios
// proving the full-file-transfer fallback (§5.1) via transfer-type
// counters.
//
// Reproduce any failing schedule outside the test binary with
//   build/tools/chaos --seed N --algo hm|myers
// (see docs/TESTING.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "client/shadow_client.hpp"
#include "client/shadow_editor.hpp"
#include "core/chaos.hpp"
#include "core/workload.hpp"
#include "naming/resolver.hpp"
#include "net/fault_transport.hpp"
#include "net/loopback.hpp"
#include "server/shadow_server.hpp"
#include "telemetry/registry.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "vfs/cluster.hpp"

namespace shadow {
namespace {

/// Chaos runs provoke session warnings on purpose; mute them so a 100-case
/// suite stays readable.
class QuietLogs {
 public:
  QuietLogs() : saved_(Logger::instance().level()) {
    Logger::instance().set_level(LogLevel::kError);
  }
  ~QuietLogs() { Logger::instance().set_level(saved_); }

 private:
  LogLevel saved_;
};

/// Accounting identities the global telemetry registry must satisfy after
/// ANY workload — fault-injected or not. Counters accumulate across the
/// whole test binary; the identities hold at every instant because each
/// instrumentation site increments both sides of its equation together.
void expect_metrics_invariants() {
  auto& reg = telemetry::Registry::global();
  EXPECT_EQ(reg.counter("cache.lookups").value(),
            reg.counter("cache.hits").value() +
                reg.counter("cache.misses").value());
  EXPECT_EQ(reg.counter("diff.computes").value(),
            reg.counter("diff.ed_deltas").value() +
                reg.counter("diff.block_deltas").value() +
                reg.counter("diff.full_fallbacks").value());
  EXPECT_EQ(reg.counter("session.wire_bytes_sent").value(),
            reg.counter("session.payload_bytes_sent").value() +
                reg.counter("session.frame_overhead_bytes").value());
  EXPECT_EQ(reg.counter("cdc.computes").value(),
            reg.counter("cdc.deltas").value() +
                reg.counter("cdc.fallbacks").value());
  EXPECT_EQ(reg.counter("cdc.wire_bytes").value(),
            reg.counter("cdc.copy_wire_bytes").value() +
                reg.counter("cdc.literal_bytes").value() +
                reg.counter("cdc.framing_bytes").value());
}

void expect_conformance(diff::Algorithm algorithm, u64 seed) {
  core::ChaosOptions base;
  base.seed = seed;
  base.algorithm = algorithm;
  const auto oracle = core::run_chaos_trial(base);
  ASSERT_TRUE(oracle.converged) << "fault-free run failed: " << oracle.detail;
  ASSERT_EQ(oracle.server_cached, oracle.final_content);
  ASSERT_FALSE(oracle.job_output.empty());

  core::ChaosOptions chaotic = base;
  chaotic.client_to_server = core::random_fault_plan(seed * 2 + 1);
  chaotic.server_to_client = core::random_fault_plan(seed * 2 + 2);
  const auto outcome = core::run_chaos_trial(chaotic);
  const std::string repro =
      " [reproduce: build/tools/chaos --seed " + std::to_string(seed) +
      " --algo " + diff::algorithm_name(algorithm) + "]";
  ASSERT_TRUE(outcome.converged) << outcome.detail << repro;
  EXPECT_EQ(outcome.final_content, oracle.final_content) << repro;
  EXPECT_EQ(outcome.server_cached, oracle.server_cached) << repro;
  EXPECT_EQ(outcome.job_output, oracle.job_output) << repro;
  expect_metrics_invariants();
}

class ChaosConformance
    : public ::testing::TestWithParam<std::tuple<diff::Algorithm, int>> {};

TEST_P(ChaosConformance, ByteIdenticalToFaultFreeRun) {
  QuietLogs quiet;
  const auto [algorithm, seed] = GetParam();
  expect_conformance(algorithm, static_cast<u64>(seed));
}

INSTANTIATE_TEST_SUITE_P(
    FiftySchedules, ChaosConformance,
    ::testing::Combine(::testing::Values(diff::Algorithm::kHuntMcIlroy,
                                         diff::Algorithm::kMyers),
                       ::testing::Range(1, 51)),
    [](const ::testing::TestParamInfo<ChaosConformance::ParamType>& info) {
      // gtest names must be alphanumeric; "hunt-mcilroy" is not.
      const auto algorithm = std::get<0>(info.param);
      const char* tag =
          algorithm == diff::Algorithm::kHuntMcIlroy ? "hm" : "myers";
      return std::string(tag) + "_seed" + std::to_string(std::get<1>(info.param));
    });

// The same conformance property with every update forced onto the CDC
// chunk codec: the server tracks the file as digests only, so the oracle
// shifts from cache content to the digest fingerprint (entry CRC +
// described size must match the client's final bytes) plus the job output
// byte identity — the sandbox got exact bytes or the sort differs.
void expect_cdc_conformance(u64 seed) {
  core::ChaosOptions base;
  base.seed = seed;
  base.force_cdc = true;
  const auto oracle = core::run_chaos_trial(base);
  ASSERT_TRUE(oracle.converged) << "fault-free run failed: " << oracle.detail;
  // Digest-only memory model: no bytes resident, but the signature must
  // fingerprint the client's exact final content.
  EXPECT_TRUE(oracle.server_entry_digest);
  EXPECT_TRUE(oracle.server_cached.empty());
  EXPECT_EQ(oracle.server_entry_crc,
            crc32(reinterpret_cast<const u8*>(oracle.final_content.data()),
                  oracle.final_content.size()));
  EXPECT_EQ(oracle.server_described_bytes, oracle.final_content.size());
  EXPECT_GT(oracle.cdc_sent, 0u);
  EXPECT_GT(oracle.cdc_transfers, 0u);
  ASSERT_FALSE(oracle.job_output.empty());

  core::ChaosOptions chaotic = base;
  chaotic.client_to_server = core::random_fault_plan(seed * 2 + 1);
  chaotic.server_to_client = core::random_fault_plan(seed * 2 + 2);
  const auto outcome = core::run_chaos_trial(chaotic);
  const std::string repro =
      " [cdc chaos seed " + std::to_string(seed) + "]";
  ASSERT_TRUE(outcome.converged) << outcome.detail << repro;
  EXPECT_EQ(outcome.final_content, oracle.final_content) << repro;
  EXPECT_EQ(outcome.job_output, oracle.job_output) << repro;
  EXPECT_EQ(outcome.server_entry_crc, oracle.server_entry_crc) << repro;
  EXPECT_EQ(outcome.server_described_bytes, oracle.server_described_bytes)
      << repro;
  expect_metrics_invariants();
}

class CdcChaosConformance : public ::testing::TestWithParam<int> {};

TEST_P(CdcChaosConformance, DigestTrackedFileSurvivesFaultySchedules) {
  QuietLogs quiet;
  expect_cdc_conformance(static_cast<u64>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(HundredSchedules, CdcChaosConformance,
                         ::testing::Range(1, 101));

// CI's chaos job points SHADOW_CHAOS_EXTRA_SEEDS at schedules beyond the
// committed fifty (comma-separated); locally this is skipped.
TEST(ChaosExtraSeeds, EnvSelectedSchedulesHold) {
  const char* extra = std::getenv("SHADOW_CHAOS_EXTRA_SEEDS");
  if (extra == nullptr || *extra == '\0') {
    GTEST_SKIP() << "SHADOW_CHAOS_EXTRA_SEEDS not set";
  }
  QuietLogs quiet;
  std::stringstream list(extra);
  std::string item;
  int parsed = 0;
  while (std::getline(list, item, ',')) {
    if (item.empty()) continue;
    const u64 seed = std::strtoull(item.c_str(), nullptr, 10);
    ++parsed;
    SCOPED_TRACE("extra seed " + item);
    expect_conformance(diff::Algorithm::kHuntMcIlroy, seed);
    expect_conformance(diff::Algorithm::kMyers, seed);
  }
  EXPECT_GT(parsed, 0) << "SHADOW_CHAOS_EXTRA_SEEDS was set but empty";
}

// A corrupted delta payload (envelope intact, so it reaches the server's
// decoders) must degrade to a FULL transfer — visible in the transfer-type
// counters — and still converge to the exact content.
TEST(ChaosDesync, CorruptedDeltaPayloadFallsBackToFullTransfer) {
  QuietLogs quiet;
  vfs::Cluster cluster;
  (void)cluster.add_host("ws").mkdir_p("/home/user");

  server::ServerConfig sc;
  sc.name = "super";
  server::ShadowServer server(sc);

  // Raw link (no session layer): the corruption reaches the proto
  // decoders. Request-driven flow pins the wire schedule — client message
  // 0 is Hello, 1 the full Update for the created file, 2 the first delta
  // Update, whose payload we damage.
  auto pair = net::make_loopback_pair("ws", "super");
  net::FaultPlan plan;
  plan.corrupt_payload_only = true;  // keep the message envelope intact
  plan.script = {{2, net::FaultKind::kCorrupt}};
  net::FaultTransport to_server(pair.a.get(), plan);

  client::ShadowEnvironment env;
  env.flow = client::FlowMode::kRequestDriven;
  client::ShadowClient client("ws", env, &cluster, "net-chaos");
  client::ShadowEditor editor(&client, &cluster);
  server.attach(pair.b.get());
  client.connect("super", &to_server);

  auto quiesce = [&] {
    for (int round = 0; round < 500; ++round) {
      if (to_server.poll() + pair.b->poll() != 0) continue;
      if (client.tick() + server.tick() == 0) return;
    }
  };
  quiesce();

  const std::string v1 = core::make_file(4'000, 21);
  ASSERT_TRUE(editor.create("/home/user/f", v1).ok());
  quiesce();
  EXPECT_EQ(server.stats().full_transfers, 1u);
  EXPECT_EQ(server.stats().delta_transfers, 0u);

  const std::string v2 = core::modify_percent(v1, 5, 22);
  ASSERT_TRUE(editor.create("/home/user/f", v2).ok());
  quiesce();
  EXPECT_EQ(to_server.fault_stats().corrupted, 1u);
  // The damaged delta failed its embedded CRC on apply; the server
  // re-pulled the version as a FULL transfer instead of caching bad bytes
  // (§5.1: degrade to full-file copies, never to wrong content).
  EXPECT_EQ(server.stats().delta_transfers, 1u);  // attempted, failed closed
  EXPECT_EQ(server.stats().full_transfers, 2u);   // the fallback transfer
  naming::NameResolver resolver("net-chaos", &cluster);
  const auto id = resolver.resolve("ws", "/home/user/f").value();
  auto entry = server.file_cache().get(server.domains().cache_key(id));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value()->content, v2);
}

// A silent link outage long enough to exhaust the retransmit limit must
// make the client declare a session desync and, once the link returns,
// recover with a FULL transfer of the affected file.
TEST(ChaosDesync, LinkOutageDesyncRecoversWithFullTransfer) {
  QuietLogs quiet;
  vfs::Cluster cluster;
  (void)cluster.add_host("ws").mkdir_p("/home/user");

  server::ServerConfig sc;
  sc.name = "super";
  sc.reliable_session = true;
  server::ShadowServer server(sc);

  auto pair = net::make_loopback_pair("ws", "super");
  net::FaultTransport to_server(pair.a.get(), net::FaultPlan{});

  client::ShadowEnvironment env;
  env.reliable_session = true;
  // Request-driven: the client pushes deltas against what the server
  // acknowledged, so a desync visibly degrades its next push to full.
  env.flow = client::FlowMode::kRequestDriven;
  client::ShadowClient client("ws", env, &cluster, "net-chaos");
  client::ShadowEditor editor(&client, &cluster);

  server.attach(pair.b.get());
  client.connect("super", &to_server);

  auto quiesce = [&] {
    for (int round = 0; round < 500; ++round) {
      if (to_server.poll() + pair.b->poll() != 0) continue;
      if (client.tick() + server.tick() == 0) return;
    }
  };

  const std::string v1 = core::make_file(3'000, 11);
  ASSERT_TRUE(editor.create("/home/user/f", v1).ok());
  quiesce();
  EXPECT_EQ(server.stats().full_transfers, 1u);  // first push is full
  EXPECT_EQ(server.stats().delta_transfers, 0u);
  EXPECT_EQ(client.stats().session_resyncs, 0u);

  // The long-haul link dies silently. The next editing session's delta —
  // and every retransmission of it — vanishes.
  to_server.disconnect();
  const std::string v2 = core::modify_percent(v1, 5, 12);
  ASSERT_TRUE(editor.create("/home/user/f", v2).ok());
  for (int i = 0; i < 12; ++i) (void)client.tick();
  EXPECT_GE(client.stats().session_resyncs, 1u);

  // Link repaired: the resync's full-file fallback gets through.
  to_server.reconnect();
  quiesce();
  naming::NameResolver resolver("net-chaos", &cluster);
  const auto id = resolver.resolve("ws", "/home/user/f").value();
  auto entry = server.file_cache().get(server.domains().cache_key(id));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value()->content, v2);
  // The fallback was a FULL transfer (the lost delta was never replayed).
  EXPECT_GE(server.stats().full_transfers, 2u);
  EXPECT_EQ(server.stats().delta_transfers, 0u);
}

// Same outage while a job submission is in flight: the resync resends the
// submission, the server dedupes on the token, and the output arrives.
TEST(ChaosDesync, SubmitLostInOutageIsResentAfterResync) {
  QuietLogs quiet;
  vfs::Cluster cluster;
  (void)cluster.add_host("ws").mkdir_p("/home/user");

  server::ServerConfig sc;
  sc.name = "super";
  sc.reliable_session = true;
  server::ShadowServer server(sc);

  auto pair = net::make_loopback_pair("ws", "super");
  net::FaultTransport to_server(pair.a.get(), net::FaultPlan{});

  client::ShadowEnvironment env;
  env.reliable_session = true;
  client::ShadowClient client("ws", env, &cluster, "net-chaos");
  client::ShadowEditor editor(&client, &cluster);

  server.attach(pair.b.get());
  client.connect("super", &to_server);

  auto quiesce = [&] {
    for (int round = 0; round < 500; ++round) {
      if (to_server.poll() + pair.b->poll() != 0) continue;
      if (client.tick() + server.tick() == 0) return;
    }
  };

  ASSERT_TRUE(editor.create("/home/user/f", "b\na\n").ok());
  quiesce();

  to_server.disconnect();
  client::ShadowClient::SubmitOptions job;
  job.files = {"/home/user/f"};
  job.command_file = "sort f\n";
  job.output_path = "/home/user/out";
  job.error_path = "/home/user/err";
  auto token = client.submit(job);
  ASSERT_TRUE(token.ok());
  for (int i = 0; i < 12; ++i) (void)client.tick();
  EXPECT_GE(client.stats().session_resyncs, 1u);
  EXPECT_FALSE(client.job_done(token.value()));

  to_server.reconnect();
  quiesce();
  EXPECT_TRUE(client.job_done(token.value()));
  EXPECT_EQ(cluster.read_file("ws", "/home/user/out").value(), "a\nb\n");
  // Deduped: one job record despite the resent submission.
  EXPECT_EQ(server.stats().jobs_submitted, 1u);
}

}  // namespace
}  // namespace shadow
